"""Figure 5 — speed-up of GLAF-generated versions vs the original serial
implementation of the SARB kernels (4 threads, i5-2400 model).

Shape criteria asserted against the paper (0.89 / 0.48 / 0.66 / 1.11 / 1.41):

* v0 runs well below the original serial (OMP-everywhere penalty);
* each pruning increment improves on the previous variant;
* the serial->parallel crossover falls between v1 and v2;
* v3 lands in the 1.2-1.6x band and GLAF serial slightly trails 1.0.
"""

from repro.bench import format_table, run_figure5
from repro.sarb.perffig import PAPER_FIGURE5, figure5_rows


def test_figure5(benchmark):
    rows = benchmark(figure5_rows)
    print(format_table(run_figure5()))
    d = dict(rows)

    assert 0.80 <= d["GLAF serial"] <= 0.97          # paper: 0.89
    assert 0.30 <= d["GLAF-parallel v0"] <= 0.62     # paper: 0.48
    assert 0.50 <= d["GLAF-parallel v1"] <= 0.85     # paper: 0.66
    assert 1.00 <= d["GLAF-parallel v2"] <= 1.35     # paper: 1.11
    assert 1.20 <= d["GLAF-parallel v3"] <= 1.60     # paper: 1.41

    # Monotone improvement along the pruning pipeline.
    assert (d["GLAF-parallel v0"] < d["GLAF-parallel v1"]
            < d["GLAF-parallel v2"] < d["GLAF-parallel v3"])
    # Crossover: v1 still loses to original serial, v2 beats it.
    assert d["GLAF-parallel v1"] < 1.0 < d["GLAF-parallel v2"]


def test_figure5_close_to_paper(benchmark):
    rows = benchmark(figure5_rows)
    for name, speedup in rows:
        paper = PAPER_FIGURE5[name]
        # Within 25% relative of each reported bar.
        assert abs(speedup - paper) / paper <= 0.25, (name, speedup, paper)
