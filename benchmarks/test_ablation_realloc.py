"""Ablation — per-call reallocation vs SAVE'd temporaries (FUN3D §4.2.1).

"The innermost edge loop has 50 dynamically allocated temporary arrays and
is called an average of 10 times per cell ... Once this dynamic
reallocation was eliminated via FORTRAN SAVE attributes and manual pointer
storage, parallelization began to yield a performance benefit."
"""

from repro.fun3d import Fun3DOptions, make_mesh, run_ir_interpreter
from repro.fun3d.perffig import simulate_baseline, simulate_option


def test_realloc_dominates_glaf_serial(benchmark):
    """In the cost model, reallocation is the single largest overhead of
    the serial GLAF version."""

    def run():
        base = simulate_baseline()
        serial_realloc = simulate_option(Fun3DOptions(), threads=1)
        serial_saved = simulate_option(Fun3DOptions(no_reallocation=True), threads=1)
        return base, serial_realloc, serial_saved

    base, realloc, saved = benchmark.pedantic(run, rounds=1, iterations=1)
    # Removing reallocation recovers a large factor...
    assert realloc.total_cycles / saved.total_cycles > 3.0
    # ...and allocation accounts for the majority of the realloc run.
    assert realloc.alloc_cycles / realloc.total_cycles > 0.5
    assert saved.alloc_cycles == 0.0


def test_parallelization_only_pays_off_after_save(benchmark):
    """Paper: with reallocation, parallelizing EdgeJP still loses to the
    original serial; with SAVE it finally wins."""

    def run():
        base = simulate_baseline()
        with_realloc = simulate_option(Fun3DOptions(parallel_edgejp=True))
        with_save = simulate_option(
            Fun3DOptions(parallel_edgejp=True, no_reallocation=True))
        return (base.total_cycles / with_realloc.total_cycles,
                base.total_cycles / with_save.total_cycles)

    s_realloc, s_save = benchmark.pedantic(run, rounds=1, iterations=1)
    assert s_realloc < 1.0 < s_save


def test_save_preserves_functional_results():
    """The SAVE option must not change numbers (executed, not simulated)."""
    import numpy as np

    mesh = make_mesh(27)
    a = run_ir_interpreter(mesh, save_inner_arrays=False)
    b = run_ir_interpreter(mesh, save_inner_arrays=True)
    assert np.array_equal(a, b)
