"""The paper's functional-correctness gates as benchmarks (C1, C2).

These time the full validation pipelines — wrapper, side-by-side and
splice-and-run — while asserting every path passes its gate.
"""

import numpy as np

from repro.bench import format_table, run_fun3d_correctness, run_sarb_correctness
from repro.fun3d import jac_rms, make_mesh, rms_check, run_reference as fun3d_ref
from repro.fun3d import run_spliced as fun3d_spliced
from repro.sarb import OUTPUT_NAMES, make_inputs
from repro.sarb import run_reference as sarb_ref
from repro.sarb import run_spliced as sarb_spliced


def test_sarb_correctness_gate(benchmark):
    inp = make_inputs()
    ref = sarb_ref(inp)

    def run():
        return sarb_spliced(inp, variant="GLAF-parallel v3")[0]

    outs = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_table(run_sarb_correctness()))
    for n in OUTPUT_NAMES:
        assert np.allclose(outs[n], ref[n], rtol=1e-10, atol=1e-12), n


def test_fun3d_rms_gate(benchmark):
    mesh = make_mesh(27)
    ref = fun3d_ref(mesh)

    def run():
        return fun3d_spliced(mesh)[0]

    jac = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_table(run_fun3d_correctness()))
    assert rms_check(jac, ref)
    assert abs(jac_rms(jac) - jac_rms(ref)) <= 1e-7
