"""Ablation — machine sensitivity of the SARB study.

The paper's Figure 5/6 numbers are tied to the i5-2400 (4 physical cores).
Re-running the same variants on the FUN3D node's machine model (8 physical
cores) shows how the conclusions shift with hardware: the v3 speed-up grows
with the extra cores, the 8-thread point no longer collapses (8 threads now
fit the physical cores), and v0 remains a loss on any machine — i.e. the
paper's directive-pruning lesson is hardware-independent, while the
scaling numbers are not.
"""

from repro.optimize import make_plan
from repro.perf import SimOptions, i5_2400, simulate, xeon_e5_2637v4_node
from repro.sarb import build_sarb_program, sarb_workload


def _speedups(program, workload, machine):
    base = simulate(make_plan(program, "original serial"), machine, workload,
                    SimOptions(threads=1, monolithic=True))

    def s(variant, threads):
        r = simulate(make_plan(program, variant, threads=threads), machine,
                     workload, SimOptions(threads=threads))
        return base.total_cycles / r.total_cycles

    return {
        "v0@4T": s("GLAF-parallel v0", 4),
        "v3@4T": s("GLAF-parallel v3", 4),
        "v3@8T": s("GLAF-parallel v3", 8),
    }


def test_machine_sensitivity(benchmark, sarb_program):
    workload = sarb_workload()

    def run():
        return (_speedups(sarb_program, workload, i5_2400),
                _speedups(sarb_program, workload, xeon_e5_2637v4_node))

    i5, xeon = benchmark.pedantic(run, rounds=1, iterations=1)
    print("i5-2400:", {k: round(v, 2) for k, v in i5.items()})
    print("xeon node:", {k: round(v, 2) for k, v in xeon.items()})

    # Hardware-independent lesson: OMP-everywhere loses everywhere.
    assert i5["v0@4T"] < 1.0
    assert xeon["v0@4T"] < 1.0
    # Hardware-dependent scaling: 8 threads collapse on 4 physical cores
    # but keep scaling on 8 physical cores.
    assert i5["v3@8T"] < i5["v3@4T"]
    assert xeon["v3@8T"] > xeon["v3@4T"]
    # The crossover structure (v3 beating serial) holds on both machines.
    assert i5["v3@4T"] > 1.0 and xeon["v3@4T"] > 1.0
