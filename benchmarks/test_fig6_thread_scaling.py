"""Figure 6 — parallel scalability of GLAF-parallel v3 vs GLAF serial.

Paper: 0.92 (1T), 1.24 (2T), 1.59 (4T), 0.70 (8T) on a 4-core CPU.
Shape criteria: sub-1 at one thread (OpenMP runtime overhead), best at the
physical core count, and a collapse below the 1-thread figure when
oversubscribed (SMT contention + coherence on the reduction arrays).
"""

from repro.bench import format_table, run_figure6
from repro.perf import amdahl_speedup, parallel_fraction_from_speedup
from repro.sarb.perffig import PAPER_FIGURE6, figure6_rows


def test_figure6(benchmark):
    rows = benchmark(figure6_rows)
    print(format_table(run_figure6()))
    d = dict(rows)

    assert 0.85 <= d[1] < 1.0                 # paper: 0.92
    assert 1.05 <= d[2] <= 1.45               # paper: 1.24
    assert 1.40 <= d[4] <= 1.75               # paper: 1.59
    assert 0.55 <= d[8] <= 0.90               # paper: 0.70
    assert d[1] < d[2] < d[4]                 # scaling up to physical cores
    assert d[8] < d[1]                        # oversubscription cliff


def test_figure6_close_to_paper(benchmark):
    rows = benchmark(figure6_rows)
    for threads, speedup in rows:
        paper = PAPER_FIGURE6[threads]
        assert abs(speedup - paper) / paper <= 0.25, (threads, speedup, paper)


def test_figure6_amdahl_consistency():
    """The implied parallel fraction at 2T and 4T should roughly agree —
    the paper's Amdahl's-law explanation of the scaling cap."""
    d = dict(figure6_rows())
    f2 = parallel_fraction_from_speedup(d[2] / d[1], 2)
    f4 = parallel_fraction_from_speedup(d[4] / d[1], 4)
    assert abs(f2 - f4) < 0.25
    # And the 4T point must respect the Amdahl bound for that fraction.
    assert d[4] / d[1] <= amdahl_speedup(max(f2, f4), 4) * 1.05
