"""Micro-benchmarks of the reproduction's substrates themselves.

These time the machinery (not the modelled workloads): FORTRAN
lexing/parsing, the FORTRAN interpreter's loop throughput, the GLAF IR
interpreter, code generation, and the auto-parallelization analysis.
Useful for tracking regressions in the framework's own performance.
"""

import numpy as np

from repro.codegen import generate_fortran_module
from repro.core import GlafBuilder, I, T_INT, T_REAL8, T_VOID, ref
from repro.fortranlib import FortranRuntime
from repro.fortranlib.lexer import tokenize
from repro.fortranlib.parser import parse_source
from repro.glafexec import ExecutionContext, Interpreter
from repro.optimize import make_plan
from repro.sarb import build_sarb_program
from repro.sarb.legacy_src import full_legacy_source

_KERNEL_SRC = full_legacy_source()["sarb_kernels.f90"]

_LOOP_SRC = """
REAL(KIND=8) FUNCTION busy(n)
  INTEGER, INTENT(IN) :: n
  INTEGER :: i
  busy = 0.0D0
  DO i = 1, n
    busy = busy + SQRT(i * 1.0D0) * 0.5D0
  END DO
END FUNCTION busy
"""


def test_lexer_throughput(benchmark):
    tokens = benchmark(tokenize, _KERNEL_SRC)
    assert len(tokens) > 500


def test_parser_throughput(benchmark):
    tree = benchmark(parse_source, _KERNEL_SRC)
    assert len(tree.modules[0].subprograms) == 6


def test_fortran_interp_loop_throughput(benchmark):
    rt = FortranRuntime()
    rt.load(_LOOP_SRC)

    def run():
        return rt.call("busy", [2000])

    result = benchmark(run)
    assert result > 0


def test_ir_interp_loop_throughput(benchmark):
    b = GlafBuilder("bench")
    m = b.module("M")
    f = m.function("busy", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    s = f.step()
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), ref("a", I("i")) * 1.0001 + 0.5)
    program = b.build()
    ctx = ExecutionContext(program, sizes={"n": 2000})
    interp = Interpreter(program, ctx)
    a = np.zeros(2000)

    benchmark(lambda: interp.call("busy", [2000, a]))
    assert a[0] != 0.0


def test_sarb_program_build(benchmark):
    program = benchmark(build_sarb_program)
    assert len(list(program.functions())) == 6


def test_sarb_fortran_generation(benchmark, sarb_program):
    plan = make_plan(sarb_program, "GLAF-parallel v0")
    src = benchmark(generate_fortran_module, plan)
    assert "MODULE glaf_sarb_mod" in src


def test_sarb_analysis(benchmark, sarb_program):
    from repro.analysis import analyze_program

    plan = benchmark(analyze_program, sarb_program)
    assert len(plan.steps) > 20
