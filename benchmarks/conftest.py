"""Shared fixtures for the benchmark suite."""

import pytest


@pytest.fixture(scope="session")
def sarb_program():
    from repro.sarb import build_sarb_program

    return build_sarb_program()


@pytest.fixture(scope="session")
def fun3d_program():
    from repro.fun3d import build_fun3d_program

    return build_fun3d_program()
