"""Ablation — GLAF's function-per-nested-loop structure vs the monolithic
original (paper §4.1.2's explanation of GLAF serial trailing original
serial: call overhead + lost cross-function compiler optimization).
"""

from repro.perf import CompilerModel, SimOptions, Simulator, i5_2400
from repro.optimize import make_plan
from repro.sarb import build_sarb_program, sarb_workload


def _cycles(program, workload, *, monolithic, fusion=0.90):
    plan = make_plan(program, "GLAF serial", threads=1)
    compiler = CompilerModel(i5_2400, monolithic_fusion_factor=fusion)
    sim = Simulator(plan, i5_2400, workload,
                    SimOptions(threads=1, monolithic=monolithic),
                    compiler=compiler)
    return sim.run()


def test_structure_overhead(benchmark):
    program = build_sarb_program()
    workload = sarb_workload()

    def run():
        glaf = _cycles(program, workload, monolithic=False)
        mono = _cycles(program, workload, monolithic=True)
        return glaf, mono

    glaf, mono = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = mono.total_cycles / glaf.total_cycles
    # GLAF structure costs a single-digit percentage on SARB (paper: 0.89x,
    # i.e. ~11% slower than the original).
    assert 0.80 <= ratio <= 0.97
    # The GLAF run pays call overhead; the monolithic run pays none.
    assert glaf.call_overhead_cycles > 0
    assert mono.call_overhead_cycles == 0


def test_fusion_factor_controls_the_gap():
    program = build_sarb_program()
    workload = sarb_workload()
    glaf = _cycles(program, workload, monolithic=False)
    strong = _cycles(program, workload, monolithic=True, fusion=0.80)
    weak = _cycles(program, workload, monolithic=True, fusion=1.00)
    assert strong.total_cycles < weak.total_cycles
    # With no fusion benefit at all, the gap reduces to call overhead only.
    assert weak.total_cycles <= glaf.total_cycles
