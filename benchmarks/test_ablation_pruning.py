"""Ablation — per-class contribution of the directive-pruning pipeline.

DESIGN.md flags OMP-everywhere vs classified pruning as the central design
choice of the Figure 5 study.  This bench isolates each pruned class's
contribution by toggling one class at a time, confirming the paper's
narrative: the *initialization* loops are the worst OMP candidates per
directive, and simple loops collectively dominate the v1->v2 jump.
"""

from repro.analysis.classify import LoopClass
from repro.optimize import Variant, directives_for_variant, make_plan
from repro.optimize.plan import OptimizationPlan
from repro.perf import SimOptions, i5_2400, simulate
from repro.sarb import build_sarb_program, sarb_workload


def _speedup_with_pruned(program, workload, pruned_classes):
    variant = Variant(
        name=f"ablation-{'+'.join(c.value for c in pruned_classes) or 'none'}",
        description="ablation variant",
        glaf_generated=True,
        parallel=True,
        pruned_classes=tuple(pruned_classes),
    )
    plan = make_plan(program, "GLAF-parallel v0", threads=4)
    plan = OptimizationPlan(
        program=plan.program,
        parallel_plan=plan.parallel_plan,
        variant=variant,
        directives=directives_for_variant(program, plan.parallel_plan, variant),
        tweaks=plan.tweaks,
        threads=4,
    )
    base_plan = make_plan(program, "original serial", threads=1)
    base = simulate(base_plan, i5_2400, workload,
                    SimOptions(threads=1, monolithic=True))
    r = simulate(plan, i5_2400, workload, SimOptions(threads=4))
    return base.total_cycles / r.total_cycles


def test_per_class_pruning_contributions(benchmark):
    program = build_sarb_program()
    workload = sarb_workload()

    def run():
        none = _speedup_with_pruned(program, workload, [])
        out = {"none": none}
        for cls in (LoopClass.ZERO_INIT, LoopClass.BROADCAST_INIT,
                    LoopClass.SIMPLE_SINGLE, LoopClass.SIMPLE_DOUBLE):
            out[cls.value] = _speedup_with_pruned(program, workload, [cls])
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("ablation (speedup vs original serial):", res)

    # Pruning any class on its own improves on OMP-everywhere.
    for cls, s in res.items():
        if cls != "none":
            assert s > res["none"], (cls, s)
    # The simple-single class removes the most directives, so it gives the
    # largest single-class gain on this kernel set.
    gains = {k: v - res["none"] for k, v in res.items() if k != "none"}
    assert max(gains, key=gains.get) == LoopClass.SIMPLE_SINGLE.value


def test_pruning_monotone(benchmark):
    """Cumulative pruning (the paper's v0->v3 order) is monotone."""
    program = build_sarb_program()
    workload = sarb_workload()
    order = [
        [],
        [LoopClass.ZERO_INIT, LoopClass.BROADCAST_INIT],
        [LoopClass.ZERO_INIT, LoopClass.BROADCAST_INIT, LoopClass.SIMPLE_SINGLE],
        [LoopClass.ZERO_INIT, LoopClass.BROADCAST_INIT, LoopClass.SIMPLE_SINGLE,
         LoopClass.SIMPLE_DOUBLE],
    ]

    def run():
        return [_speedup_with_pruned(program, workload, classes) for classes in order]

    speeds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert speeds == sorted(speeds)
