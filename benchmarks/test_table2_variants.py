"""Table 2 — the implementation-variant matrix.

Checks that the automated pruning pipeline reproduces the paper's variant
set and that the directive counts are strictly decreasing from v0 to v3
while targeting exactly the documented loop classes.
"""

from repro.analysis.classify import LoopClass
from repro.bench import format_table, run_table2
from repro.optimize import VARIANTS, directives_for_variant, make_plan, variant_by_name
from repro.sarb import build_sarb_program


def _directive_counts(program):
    plan0 = make_plan(program, "GLAF-parallel v0")
    out = {}
    for v in VARIANTS:
        ds = directives_for_variant(program, plan0.parallel_plan, v)
        out[v.name] = ds.n_directives()
    return out


def test_table2_matrix(benchmark, sarb_program):
    counts = benchmark(_directive_counts, sarb_program)
    print(format_table(run_table2()))
    print("directive counts:", counts)

    assert counts["original serial"] == 0
    assert counts["GLAF serial"] == 0
    v0, v1, v2, v3 = (counts[f"GLAF-parallel v{i}"] for i in range(4))
    assert v0 > v1 > v2 > v3 > 0
    # v3 keeps exactly the two large complex loops of the longwave model.
    plan3 = make_plan(sarb_program, "GLAF-parallel v3")
    kept = plan3.directives.kept_keys()
    assert len(kept) == 2
    assert all(fn == "longwave_entropy_model" for fn, _ in kept)


def test_table2_pruned_classes():
    v1 = variant_by_name("GLAF-parallel v1")
    assert set(v1.pruned_classes) == {LoopClass.ZERO_INIT, LoopClass.BROADCAST_INIT}
    v2 = variant_by_name("GLAF-parallel v2")
    assert LoopClass.SIMPLE_SINGLE in v2.pruned_classes
    v3 = variant_by_name("GLAF-parallel v3")
    assert LoopClass.SIMPLE_DOUBLE in v3.pruned_classes
    assert LoopClass.COMPLEX not in v3.pruned_classes
