"""Figure 7 — FUN3D 16-thread speed-ups for all combinations of
parallelization and no-reallocation options, plus the manual version.

Paper anchors: manual 3.85x; best GLAF (parallel EdgeJP + no reallocation)
1.67x; manual beats best GLAF by ~2.3x; fine-grained-only combinations
collapse to deep slowdowns (down to ~1/128x).
"""

from repro.bench import format_table, run_figure7
from repro.fun3d import Fun3DOptions
from repro.fun3d.perffig import (
    PAPER_FIGURE7,
    figure7_rows,
    simulate_baseline,
    simulate_manual,
    simulate_option,
)


def test_figure7_lattice(benchmark):
    rows = benchmark(figure7_rows)
    print(format_table(run_figure7()))
    d = {r.label: r.speedup for r in rows}

    manual = d["manual parallel (original, outermost)"]
    best = d["EdgeJP | no-realloc"]

    # Paper anchor bands.
    assert 3.2 <= manual <= 4.6          # paper: 3.85
    assert 1.3 <= best <= 2.1            # paper: 1.67
    assert 1.9 <= manual / best <= 2.8   # paper: ~2.3
    # Best GLAF combo is the best GLAF bar in the whole lattice.
    glaf_speeds = {k: v for k, v in d.items() if "manual" not in k}
    assert max(glaf_speeds, key=glaf_speeds.get) == "EdgeJP | no-realloc"
    # Deep collapse for fine-grained-only parallelization.
    worst = min(d.values())
    assert worst <= 1.0 / 50.0           # paper shows bars near 1/128


def test_figure7_mechanisms():
    base = simulate_baseline()

    def speedup(opts):
        return base.total_cycles / simulate_option(opts).total_cycles

    # No-reallocation helps every EdgeJP configuration.
    with_realloc = speedup(Fun3DOptions(parallel_edgejp=True))
    without = speedup(Fun3DOptions(parallel_edgejp=True, no_reallocation=True))
    assert without > with_realloc * 2

    # Coarse-grained beats fine-grained at equal realloc settings.
    coarse = speedup(Fun3DOptions(parallel_edgejp=True, no_reallocation=True))
    fine = speedup(Fun3DOptions(parallel_edge_loop=True, no_reallocation=True))
    assert coarse > fine * 5

    # Parallelizing ioff_search (CRITICAL early-return protocol) is the
    # most catastrophic single option.
    ioff = speedup(Fun3DOptions(parallel_ioff_search=True, no_reallocation=True))
    assert ioff < fine
