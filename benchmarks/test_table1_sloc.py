"""Table 1 — SLOC of the six SARB subroutines implemented via GLAF.

Regenerates the per-subroutine SLOC table from the generated FORTRAN and
checks the shape: the longwave entropy model dominates, the shortwave
entropy model is tiny, and the set spans several hundred lines in total.
"""

from repro.bench import format_table, run_table1
from repro.sarb.perffig import PAPER_TABLE1, table1_rows


def test_table1_sloc_benchmark(benchmark):
    slocs = benchmark(table1_rows)
    result = run_table1()
    print(format_table(result))

    # Shape: ordering of the extremes matches the paper.
    assert max(slocs, key=slocs.get) == "longwave_entropy_model"
    assert min(slocs, key=slocs.get) == "shortwave_entropy_model"
    # Every subroutine produced a non-trivial generated body.
    for name, n in slocs.items():
        assert n >= 5, (name, n)
    assert 100 <= sum(slocs.values()) <= 900


def test_table1_covers_paper_rows(benchmark):
    slocs = benchmark(table1_rows)
    assert set(slocs) == set(PAPER_TABLE1)
