"""Ablation — the model-guided advisor vs the paper's manual pruning.

The paper proposes a performance-prediction back-end as future work; this
bench shows the implemented advisor reaches v3-level performance on the
SARB kernel set *without* the manual v0->v3 class-pruning study, and
quantifies the benefit attributed to each kept directive.
"""

from repro.optimize import advise, make_plan
from repro.perf import SimOptions, i5_2400, simulate
from repro.sarb import build_sarb_program, sarb_workload


def test_advisor_matches_manual_v3(benchmark):
    program = build_sarb_program()
    workload = sarb_workload()

    def run():
        auto_plan, report = advise(program, i5_2400, workload, threads=4)
        auto = simulate(auto_plan, i5_2400, workload, SimOptions(threads=4))
        v3 = simulate(make_plan(program, "GLAF-parallel v3", threads=4),
                      i5_2400, workload, SimOptions(threads=4))
        v0 = simulate(make_plan(program, "GLAF-parallel v0", threads=4),
                      i5_2400, workload, SimOptions(threads=4))
        return auto, v3, v0, report

    auto, v3, v0, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(report.to_text())
    # Automated selection must reach manual-v3 performance...
    assert auto.total_cycles <= v3.total_cycles * 1.001
    # ...and massively improve on OMP-everywhere.
    assert v0.total_cycles / auto.total_cycles > 2.0
    # The annotated set is small and all-complex (the paper's two large
    # loops); the advisor may refine one to a SIMD directive.
    annotated = report.kept() + report.simd()
    assert len(annotated) == 2
    assert all(d.loop_class == "complex" for d in annotated)
