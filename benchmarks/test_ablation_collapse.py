"""Ablation — COLLAPSE(2) on the large double loops.

The paper notes the v3 loops run with COLLAPSE(2), turning 60 outer
iterations into 720 collapsed iterations (their case: 2x60=120).  Without
collapse the outer trip count still exceeds the team size here, so the
effect is modest at 4 threads but must never hurt; at 8 threads the
collapsed form also changes how the trip count interacts with the SMT cap.
"""

from repro.optimize import make_plan
from repro.perf import SimOptions, i5_2400, simulate
from repro.sarb import build_sarb_program, sarb_workload


def _v3_cycles(program, workload, *, collapse, threads):
    plan = make_plan(program, "GLAF-parallel v3", threads=threads,
                     enable_collapse=collapse)
    return simulate(plan, i5_2400, workload, SimOptions(threads=threads)).total_cycles


def test_collapse_ablation(benchmark):
    program = build_sarb_program()
    workload = sarb_workload()

    def run():
        return {
            (c, t): _v3_cycles(program, workload, collapse=c, threads=t)
            for c in (True, False)
            for t in (4, 8)
        }

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    # Collapsing never hurts at either thread count on these rectangular nests.
    assert cycles[(True, 4)] <= cycles[(False, 4)] * 1.001
    assert cycles[(True, 8)] <= cycles[(False, 8)] * 1.001


def test_collapse_changes_directive_text():
    from repro.codegen import generate_fortran_module

    program = build_sarb_program()
    with_c = generate_fortran_module(make_plan(program, "GLAF-parallel v3",
                                               enable_collapse=True))
    without = generate_fortran_module(make_plan(program, "GLAF-parallel v3",
                                                enable_collapse=False))
    assert "COLLAPSE(2)" in with_c
    assert "COLLAPSE" not in without
