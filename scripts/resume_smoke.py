#!/usr/bin/env python
"""Resume-integrity smoke test: kill work mid-run, resume it, and prove
the resumed artifact is as trustworthy as an uninterrupted one.

Two phases, both against the real CLI in subprocesses — no test doubles.

**bench phase** (``repro bench record``):

1. start a recording with a checkpoint directory, wait until at least
   one per-repeat checkpoint has landed, then SIGKILL it;
2. resume with ``--resume`` and require it to report restored repeats;
3. verify the artifact loads with its ``content_sha256`` digest intact
   (``load_bench`` raises ``BenchArtifactError`` on mismatch), covers
   the requested experiments at the requested repeat count, and records
   ``meta.resumed >= 1``;
4. record an uninterrupted control run and require the identical stats
   *schema* (same experiments, same per-experiment keys, same repeat
   counts) — wall-clock values differ, the shape must not;
5. require the spent checkpoint directory to have been cleared.

**batch phase** (``repro batch``, docs/BATCH.md):

1. start a parallel batch campaign (fuzz corpus + a poison item), wait
   for per-item checkpoints, SIGKILL the driver mid-campaign;
2. finish with ``--resume`` and require restored items;
3. run an uninterrupted control campaign in fresh directories and
   require the two digest-stamped manifests to have *identical*
   ``content_sha256`` — an interruption must be observationally
   invisible in the digested outcome;
4. require the poison item quarantined in both runs and the spent
   checkpoints cleared.

Exit 0 on success, 1 with a diagnostic on any failure.  CI runs this
(see ``.github/workflows/ci.yml``) and ``make ci``; the machinery is
documented in docs/NUMERICS.md and docs/BATCH.md.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")
IDS = ["T1", "T2"]
REPEATS = 3


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _record_cmd(out: Path, ckpt: Path, *extra: str) -> list:
    return [sys.executable, "-m", "repro", "bench", "record", *IDS,
            "--repeats", str(REPEATS), "--out", str(out),
            "--checkpoint", str(ckpt), *extra]


BATCH_INPUTS = ["fuzz:5:40", "poison:crash"]


def _batch_cmd(tmp: Path, tag: str, *extra: str) -> list:
    base = tmp / tag
    return [sys.executable, "-m", "repro", "batch", *BATCH_INPUTS,
            "--jobs", "2", "--retries", "1", "--seed", "5",
            # The deadline must dominate worker *startup* latency under
            # contention (see tests/integration/test_batch_chaos.py).
            "--timeout", "10",
            "--checkpoint", str(base / "ckpt"),
            "--quarantine", str(base / "quar"),
            "--cache", str(base / "cache"),
            "--manifest", str(base / "manifest.json"),
            "--no-ledger", *extra]


def fail(msg: str) -> "None":
    print(f"resume_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _kill_once_checkpointed(proc, ckpt: Path, want: int, what: str) -> list:
    """Wait for >= *want* checkpoints, SIGKILL *proc*, return survivors."""
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if len(list(ckpt.glob("*.ckpt.json"))) >= want:
            break
        if proc.poll() is not None:
            fail(f"{what} exited before it could be killed "
                 f"(rc={proc.returncode}); too few checkpoints to "
                 "exercise resume")
        time.sleep(0.02)
    else:
        proc.kill()
        fail(f"no {what} checkpoints appeared within 120s")
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    survivors = sorted(p.name for p in ckpt.glob("*.ckpt.json"))
    print(f"resume_smoke: killed {what} with {len(survivors)} "
          f"checkpoint(s) on disk")
    return survivors


def _batch_phase(tmp: Path) -> None:
    """SIGKILL a parallel batch campaign, resume it, and require the
    resumed manifest digest to equal an uninterrupted control run's."""
    manifest = tmp / "batch" / "manifest.json"
    ckpt = tmp / "batch" / "ckpt"

    # 1. start the campaign, kill it once item checkpoints land.
    proc = subprocess.Popen(_batch_cmd(tmp, "batch"), env=_env(),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    _kill_once_checkpointed(proc, ckpt, 2, "batch driver")
    if manifest.exists():
        fail("batch manifest exists after SIGKILL — the kill came too "
             "late to test resume")

    # 2. finish with --resume.  rc is 1 by design: the poison item is
    # quarantined, and a campaign with casualties reports failure.
    res = subprocess.run(_batch_cmd(tmp, "batch", "--resume"), env=_env(),
                         capture_output=True, text=True, timeout=600)
    if res.returncode != 1:
        fail(f"batch --resume exited {res.returncode} (expected 1 — the "
             f"poison item must be quarantined): {res.stderr.strip()}")

    sys.path.insert(0, SRC)
    from repro.batch import load_manifest   # noqa: E402

    doc = load_manifest(manifest)            # raises on digest mismatch
    if doc["run"]["resumed"] < 1:
        fail(f"run.resumed = {doc['run']['resumed']}, expected >= 1")
    quarantined = [i for i in doc["items"] if i["status"] == "quarantined"]
    if len(quarantined) != 1:
        fail(f"expected exactly 1 quarantined item, got "
             f"{[i['id'] for i in quarantined]}")
    print(f"resume_smoke: batch resume restored {doc['run']['resumed']} "
          f"item(s), quarantined {quarantined[0]['id']}")

    # 3. uninterrupted control campaign in fresh directories must be
    # digest-identical: the interruption is observationally invisible.
    res = subprocess.run(_batch_cmd(tmp, "control"), env=_env(),
                         capture_output=True, text=True, timeout=600)
    if res.returncode != 1:
        fail(f"batch control run exited {res.returncode} (expected 1): "
             f"{res.stderr.strip()}")
    control = load_manifest(tmp / "control" / "manifest.json")
    if doc["content_sha256"] != control["content_sha256"]:
        fail("resumed batch manifest digest diverges from the "
             f"uninterrupted run: {doc['content_sha256'][:12]}… vs "
             f"{control['content_sha256'][:12]}…")
    print(f"resume_smoke: batch manifests digest-identical "
          f"({doc['content_sha256'][:12]}…)")

    # 4. spent checkpoints must be gone.
    if ckpt.is_dir() and list(ckpt.glob("*.ckpt.json")):
        fail("spent batch checkpoints not cleared")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="resume_smoke.") as td:
        tmp = Path(td)
        out = tmp / "BENCH_smoke.json"
        ckpt = tmp / "ckpt"

        # 1. start recording, kill it once checkpoints start landing.
        proc = subprocess.Popen(_record_cmd(out, ckpt), env=_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        _kill_once_checkpointed(proc, ckpt, 2, "recorder")
        if out.exists():
            fail("artifact exists after SIGKILL — the kill came too late "
                 "to test resume")

        # 2. resume.
        res = subprocess.run(_record_cmd(out, ckpt, "--resume"), env=_env(),
                             capture_output=True, text=True, timeout=600)
        if res.returncode != 0:
            fail(f"--resume exited {res.returncode}: {res.stderr.strip()}")
        if "resumed from checkpoint" not in res.stdout:
            fail(f"--resume did not report restored repeats: {res.stdout!r}")
        print(f"resume_smoke: {res.stdout.strip().splitlines()[-1]}")

        # 3. digest + shape of the resumed artifact.
        sys.path.insert(0, SRC)
        from repro.bench import load_bench   # noqa: E402

        doc = load_bench(out)                # raises on digest mismatch
        if set(doc["experiments"]) != set(IDS):
            fail(f"experiments {sorted(doc['experiments'])} != {IDS}")
        if doc["meta"]["resumed"] < 1:
            fail(f"meta.resumed = {doc['meta']['resumed']}, expected >= 1")
        for exp_id, exp in doc["experiments"].items():
            if exp["wall_s"]["n"] != REPEATS:
                fail(f"{exp_id}: wall_s.n = {exp['wall_s']['n']}, "
                     f"expected {REPEATS}")
        digest = doc["environment"]["content_sha256"]
        print(f"resume_smoke: resumed artifact verified "
              f"(digest {digest[:12]}…, meta.resumed="
              f"{doc['meta']['resumed']})")

        # 4. stats schema must match an uninterrupted control run.
        control_out = tmp / "BENCH_control.json"
        res = subprocess.run(
            _record_cmd(control_out, tmp / "ckpt2"), env=_env(),
            capture_output=True, text=True, timeout=600)
        if res.returncode != 0:
            fail(f"control run exited {res.returncode}: "
                 f"{res.stderr.strip()}")
        control = load_bench(control_out)

        def shape(d: dict) -> dict:
            return {
                "meta_keys": sorted(d["meta"]),
                "experiments": {
                    eid: {k: (sorted(v) if isinstance(v, dict) else type(v).__name__)
                          for k, v in exp.items()}
                    for eid, exp in sorted(d["experiments"].items())
                },
            }

        got, want = shape(doc), shape(control)
        if got != want:
            fail("resumed artifact's stats schema diverges from the "
                 f"uninterrupted run:\n{json.dumps(got, indent=1)}\nvs\n"
                 f"{json.dumps(want, indent=1)}")
        print("resume_smoke: stats schema identical to uninterrupted run")

        # 5. spent checkpoints must be gone.
        leftovers = list(ckpt.glob("*.ckpt.json"))
        if leftovers:
            fail(f"spent checkpoints not cleared: "
                 f"{[p.name for p in leftovers]}")

        _batch_phase(tmp)

    print("resume_smoke: OK")


if __name__ == "__main__":
    main()
