#!/usr/bin/env python
"""Resume-integrity smoke test: kill a recording mid-sweep, resume it,
and prove the resumed artifact is as trustworthy as an uninterrupted one.

What it does (against the real CLI, in subprocesses — no test doubles):

1. start ``repro bench record`` with a checkpoint directory, wait until
   at least one per-repeat checkpoint has landed, then SIGKILL it;
2. resume with ``--resume`` and require it to report restored repeats;
3. verify the artifact loads with its ``content_sha256`` digest intact
   (``load_bench`` raises ``BenchArtifactError`` on mismatch), covers
   the requested experiments at the requested repeat count, and records
   ``meta.resumed >= 1``;
4. record an uninterrupted control run and require the identical stats
   *schema* (same experiments, same per-experiment keys, same repeat
   counts) — wall-clock values differ, the shape must not;
5. require the spent checkpoint directory to have been cleared.

Exit 0 on success, 1 with a diagnostic on any failure.  CI runs this
(see ``.github/workflows/ci.yml``) and ``make ci``; the machinery is
documented in docs/NUMERICS.md.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")
IDS = ["T1", "T2"]
REPEATS = 3


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _record_cmd(out: Path, ckpt: Path, *extra: str) -> list:
    return [sys.executable, "-m", "repro", "bench", "record", *IDS,
            "--repeats", str(REPEATS), "--out", str(out),
            "--checkpoint", str(ckpt), *extra]


def fail(msg: str) -> "None":
    print(f"resume_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="resume_smoke.") as td:
        tmp = Path(td)
        out = tmp / "BENCH_smoke.json"
        ckpt = tmp / "ckpt"

        # 1. start recording, kill it once checkpoints start landing.
        proc = subprocess.Popen(_record_cmd(out, ckpt), env=_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(list(ckpt.glob("*.ckpt.json"))) >= 2:
                break
            if proc.poll() is not None:
                fail("recorder exited before it could be killed "
                     f"(rc={proc.returncode}); too few checkpoints to "
                     "exercise resume")
            time.sleep(0.02)
        else:
            proc.kill()
            fail("no checkpoints appeared within 120s")
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        survivors = sorted(p.name for p in ckpt.glob("*.ckpt.json"))
        print(f"resume_smoke: killed recorder with {len(survivors)} "
              f"checkpoint(s) on disk: {', '.join(survivors)}")
        if out.exists():
            fail("artifact exists after SIGKILL — the kill came too late "
                 "to test resume")

        # 2. resume.
        res = subprocess.run(_record_cmd(out, ckpt, "--resume"), env=_env(),
                             capture_output=True, text=True, timeout=600)
        if res.returncode != 0:
            fail(f"--resume exited {res.returncode}: {res.stderr.strip()}")
        if "resumed from checkpoint" not in res.stdout:
            fail(f"--resume did not report restored repeats: {res.stdout!r}")
        print(f"resume_smoke: {res.stdout.strip().splitlines()[-1]}")

        # 3. digest + shape of the resumed artifact.
        sys.path.insert(0, SRC)
        from repro.bench import load_bench   # noqa: E402

        doc = load_bench(out)                # raises on digest mismatch
        if set(doc["experiments"]) != set(IDS):
            fail(f"experiments {sorted(doc['experiments'])} != {IDS}")
        if doc["meta"]["resumed"] < 1:
            fail(f"meta.resumed = {doc['meta']['resumed']}, expected >= 1")
        for exp_id, exp in doc["experiments"].items():
            if exp["wall_s"]["n"] != REPEATS:
                fail(f"{exp_id}: wall_s.n = {exp['wall_s']['n']}, "
                     f"expected {REPEATS}")
        digest = doc["environment"]["content_sha256"]
        print(f"resume_smoke: resumed artifact verified "
              f"(digest {digest[:12]}…, meta.resumed="
              f"{doc['meta']['resumed']})")

        # 4. stats schema must match an uninterrupted control run.
        control_out = tmp / "BENCH_control.json"
        res = subprocess.run(
            _record_cmd(control_out, tmp / "ckpt2"), env=_env(),
            capture_output=True, text=True, timeout=600)
        if res.returncode != 0:
            fail(f"control run exited {res.returncode}: "
                 f"{res.stderr.strip()}")
        control = load_bench(control_out)

        def shape(d: dict) -> dict:
            return {
                "meta_keys": sorted(d["meta"]),
                "experiments": {
                    eid: {k: (sorted(v) if isinstance(v, dict) else type(v).__name__)
                          for k, v in exp.items()}
                    for eid, exp in sorted(d["experiments"].items())
                },
            }

        got, want = shape(doc), shape(control)
        if got != want:
            fail("resumed artifact's stats schema diverges from the "
                 f"uninterrupted run:\n{json.dumps(got, indent=1)}\nvs\n"
                 f"{json.dumps(want, indent=1)}")
        print("resume_smoke: stats schema identical to uninterrupted run")

        # 5. spent checkpoints must be gone.
        leftovers = list(ckpt.glob("*.ckpt.json"))
        if leftovers:
            fail(f"spent checkpoints not cleared: "
                 f"{[p.name for p in leftovers]}")

    print("resume_smoke: OK")


if __name__ == "__main__":
    main()
