"""Generality demo: the grid abstraction on a graph workload.

The paper (§2.1) claims the grid abstraction "can represent data structures
as simple as a scalar variable or multi-dimensional array or as complex as
C-like structs with elements of varying data types, e.g., trees or graphs
... any discrete and finite mathematical relation."

This example backs that claim with a graph kernel outside the paper's CFD /
radiative-transfer domains: a weighted PageRank-style iteration over a CSR
graph (built with networkx), expressed as GLAF grids and steps, then
auto-parallelized, generated to FORTRAN, and cross-checked against both
networkx's PageRank ordering and a NumPy reference.

Run:  python examples/graph_kernel.py
"""

import networkx as nx
import numpy as np

from repro import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.analysis import analyze_program
from repro.codegen import generate_fortran_module
from repro.fortranlib import FortranRuntime
from repro.glafexec import ExecutionContext, Interpreter
from repro.optimize import make_plan

DAMPING = 0.85


def build_program():
    """One power-iteration sweep: rank_new(v) = (1-d)/n + d * sum over
    in-neighbours u of rank(u)/outdeg(u), CSR-encoded like FUN3D's ioff."""
    b = GlafBuilder("graphrank")
    b.global_grid("row_ptr", T_INT, dims=("np1",), exists_in_module="graph_mod",
                  comment="CSR offsets of each node's in-edges (1-based)")
    b.global_grid("src", T_INT, dims=("nnz",), exists_in_module="graph_mod",
                  comment="source node of each in-edge")
    b.global_grid("outdeg", T_REAL8, dims=("n",), exists_in_module="graph_mod")
    m = b.module("Module1")

    f = m.function("rank_sweep", return_type=T_VOID,
                   comment="one damped power-iteration sweep")
    f.param("n", T_INT, intent="in")
    f.param("rank", T_REAL8, dims=("n",), intent="in")
    f.param("rank_new", T_REAL8, dims=("n",), intent="inout")
    f.local("acc", T_REAL8)

    s = f.step("base", comment="teleportation term")
    s.foreach(v=(1, "n"))
    s.formula(ref("rank_new", I("v")), (1.0 - DAMPING) / ref("n"))

    s = f.step("gather", comment="gather in-neighbour contributions")
    s.foreach(v=(1, "n"), e=(ref("row_ptr", I("v")), ref("row_ptr", I("v") + 1) - 1))
    s.formula(
        ref("rank_new", I("v")),
        ref("rank_new", I("v"))
        + DAMPING * ref("rank", ref("src", I("e")))
        / lib("MAX", ref("outdeg", ref("src", I("e"))), 1.0),
    )
    return b.build()


def csr_from_graph(g: nx.DiGraph):
    """In-edge CSR (1-based) + out-degrees, node ids 0..n-1."""
    n = g.number_of_nodes()
    rows = [[] for _ in range(n)]
    for u, v in g.edges():
        rows[v].append(u)
    row_ptr = np.ones(n + 1, dtype=np.int64)
    src = []
    for v in range(n):
        row_ptr[v + 1] = row_ptr[v] + len(rows[v])
        src.extend(sorted(rows[v]))
    outdeg = np.array([g.out_degree(v) for v in range(n)], dtype=np.float64)
    return row_ptr, np.array(src, dtype=np.int64) + 1, outdeg


def reference_sweep(rank, row_ptr, src, outdeg, n):
    new = np.full(n, (1.0 - DAMPING) / n)
    for v in range(n):
        for e in range(row_ptr[v] - 1, row_ptr[v + 1] - 1):
            u = src[e] - 1
            new[v] += DAMPING * rank[u] / max(outdeg[u], 1.0)
    return new


def main():
    g = nx.gnp_random_graph(40, 0.12, seed=4, directed=True)
    # Avoid dangling nodes so one sweep conserves probability mass (networkx
    # handles dangling mass specially; our kernel-level demo should not).
    for v in list(g.nodes()):
        if g.out_degree(v) == 0:
            g.add_edge(v, (v + 1) % g.number_of_nodes())
    n = g.number_of_nodes()
    row_ptr, src, outdeg = csr_from_graph(g)
    program = build_program()

    print("=== auto-parallelization of the graph kernel ===")
    plan_analysis = analyze_program(program)
    for sp in plan_analysis.for_function("rank_sweep"):
        print(f"  {sp.step_name:8s} parallel={sp.parallel} reasons={sp.reasons[:1]}")

    sizes = {"n": n, "np1": n + 1, "nnz": len(src)}
    values = {"row_ptr": row_ptr, "src": src, "outdeg": outdeg}

    # Iterate to (near) fixpoint through the IR interpreter.
    ctx = ExecutionContext(program, sizes=sizes, values=values)
    interp = Interpreter(program, ctx)
    rank = np.full(n, 1.0 / n)
    for _ in range(40):
        rank_new = np.zeros(n)
        interp.call("rank_sweep", [n, rank, rank_new])
        rank = rank_new
    assert np.isclose(rank.sum(), 1.0, atol=1e-6)

    # Cross-check one sweep against the NumPy reference.
    probe = np.zeros(n)
    interp.call("rank_sweep", [n, rank, probe])
    assert np.allclose(probe, reference_sweep(rank, row_ptr, src, outdeg, n))

    # And against the generated FORTRAN.
    plan = make_plan(program, "GLAF-parallel v0", threads=4)
    fortran_src = generate_fortran_module(plan)
    rt = FortranRuntime()
    rt.load(f"""
MODULE graph_mod
  IMPLICIT NONE
  INTEGER :: row_ptr({n + 1})
  INTEGER :: src({len(src)})
  REAL(KIND=8) :: outdeg({n})
END MODULE graph_mod
""")
    rt.load(fortran_src)
    gm = rt.modules["graph_mod"]
    gm.variables["row_ptr"].store[...] = row_ptr
    gm.variables["src"].store[...] = src
    gm.variables["outdeg"].store[...] = outdeg
    probe_f = np.zeros(n)
    rt.call("rank_sweep", [n, rank.copy(), probe_f])
    assert np.allclose(probe_f, probe, rtol=1e-14)

    # Ordering sanity vs networkx's own PageRank.
    nx_rank = nx.pagerank(g, alpha=DAMPING, tol=1e-12)
    ours_top = np.argsort(rank)[::-1][:5]
    nx_top = sorted(nx_rank, key=nx_rank.get, reverse=True)[:5]
    print(f"\n  our top-5 nodes:      {list(map(int, ours_top))}")
    print(f"  networkx top-5 nodes: {nx_top}")
    overlap = len(set(map(int, ours_top)) & set(nx_top))
    assert overlap >= 4, "ranking disagrees with networkx"
    print(f"  top-5 overlap with networkx: {overlap}/5")
    print("\n  grid abstraction handled a CSR graph kernel end to end "
          "(IR = NumPy = generated FORTRAN).")


if __name__ == "__main__":
    main()
