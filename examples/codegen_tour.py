"""Tour of every §3 legacy-integration mechanism in one kernel.

Builds a kernel that uses existing-module variables (§3.1), COMMON-block
members (§3.2), module-scope grids (§3.3), the SUBROUTINE form (§3.4),
TYPE elements (§3.5) and extended library functions (§3.6); prints the
generated FORTRAN, C and OpenCL; and shows the integration report plus the
model-guided advisor (the paper's proposed future work) at work.

Run:  python examples/codegen_tour.py
"""

from repro import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.codegen import (
    generate_c_source,
    generate_fortran_module,
    generate_opencl,
)
from repro.integration import build_report
from repro.optimize import advise, make_plan
from repro.perf import Workload, i5_2400


def build_program():
    b = GlafBuilder("tour")
    # §3.5: TYPE elements of an existing variable.
    b.derived_type("state_t", {"temp0": (T_REAL8, 0), "levels": (T_REAL8, 1)},
                   defined_in_module="model_mod")
    b.global_grid("temp0", T_REAL8, exists_in_module="model_mod",
                  type_parent="state", type_name="state_t",
                  comment="reference temperature")
    b.global_grid("levels", T_REAL8, dims=(32,), exists_in_module="model_mod",
                  type_parent="state", type_name="state_t")
    # §3.1: a plain existing-module array.
    b.global_grid("profile", T_REAL8, dims=(32,), exists_in_module="model_mod")
    # §3.2: COMMON block members.
    b.global_grid("coef_a", T_REAL8, dims=(4,), common_block="coefs")
    b.global_grid("coef_b", T_REAL8, dims=(4,), common_block="coefs")
    # §3.3: module-scope scratch.
    b.global_grid("work", T_REAL8, dims=(32,), module_scope=True)

    m = b.module("Module1")
    # §3.4: void return type -> SUBROUTINE + CALL site.
    f = m.function("relax", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("out", T_REAL8, dims=(32,), intent="inout")
    s = f.step("stage")
    s.foreach(i=(1, "n"))
    # §3.6: ALOG/ABS/EXP library functions.
    s.formula(ref("work", I("i")),
              lib("ALOG", lib("ABS", ref("profile", I("i"))) + 1.0)
              + ref("temp0") * ref("coef_a", 1))
    s = f.step("relaxation")
    s.foreach(i=(1, "n"))
    s.formula(ref("out", I("i")),
              ref("work", I("i")) * lib("EXP", -ref("levels", I("i")) * 0.1)
              + ref("coef_b", 2))

    g = m.function("driver", return_type=T_VOID)
    g.param("n", T_INT, intent="in")
    g.param("res", T_REAL8, dims=(32,), intent="inout")
    g.step("run").call("relax", [ref("n"), ref("res")])
    return b.build()


def main():
    program = build_program()
    plan = make_plan(program, "GLAF-parallel v0", threads=4)

    print("=== FORTRAN back-end (all section-3 features) ===")
    print(generate_fortran_module(plan))

    print("=== C back-end (excerpt) ===")
    print("\n".join(generate_c_source(plan).splitlines()[:30]))
    print("    ...")

    print("\n=== OpenCL back-end: kernels + launch plan ===")
    ocl = generate_opencl(plan)
    for launch in ocl.launch_plan:
        print(f"  {launch.kind:6s} {launch.name} (dims={launch.work_dims})")

    print("\n=== integration report ===")
    print(build_report(plan).to_text())

    print("\n=== model-guided advisor (the paper's future work) ===")
    workload = Workload(name="tour", entry="driver", sizes={"n": 32})
    auto_plan, report = advise(program, i5_2400, workload, threads=4)
    print(report.to_text())
    print(f"\n  advisor variant: {auto_plan.variant.name!r} keeps "
          f"{auto_plan.directives.n_directives()} directive(s) on this tiny "
          "workload (threading never pays off at n=32)")


if __name__ == "__main__":
    main()
