"""Quickstart: build a kernel with the programmatic GPI, auto-parallelize it,
generate FORTRAN/C/Python, and execute it three ways.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GlafBuilder, I, T_INT, T_REAL8, T_VOID, lib, ref
from repro.analysis import analyze_program, classify_step
from repro.codegen import (
    generate_c_source,
    generate_fortran_module,
    generate_python_source,
)
from repro.fortranlib import FortranRuntime
from repro.glafexec import run_generated_python, run_interpreted
from repro.optimize import make_plan


def build_program():
    """A small smoothing kernel: zero-init, stencil work, and a reduction —
    three different loop classes for the auto-parallelizer to reason about."""
    b = GlafBuilder("quickstart")
    b.global_grid("total", T_REAL8, module_scope=True,
                  comment="running sum of smoothed values")
    m = b.module("Module1")

    f = m.function("smooth", return_type=T_VOID,
                   comment="3-point smoothing with edge clamping")
    f.param("n", T_INT, intent="in")
    f.param("src", T_REAL8, dims=("n",), intent="in")
    f.param("dst", T_REAL8, dims=("n",), intent="inout")

    s = f.step("init", comment="zero the destination")
    s.foreach(i=(1, "n"))
    s.formula(ref("dst", I("i")), 0.0)

    s = f.step("stencil", comment="interior 3-point average")
    s.foreach(i=(2, ref("n") - 1))
    s.formula(
        ref("dst", I("i")),
        (ref("src", I("i") - 1) + ref("src", I("i")) + ref("src", I("i") + 1)) / 3.0,
    )

    s = f.step("accumulate", comment="reduce into the module-scope total")
    s.foreach(i=(1, "n"))
    s.formula(ref("total"), ref("total") + lib("ABS", ref("dst", I("i"))))
    return b.build()


def main():
    program = build_program()

    print("=== auto-parallelization verdicts ===")
    plan_analysis = analyze_program(program)
    fn = program.find_function("smooth")
    for i, step in enumerate(fn.steps):
        sp = plan_analysis.get("smooth", i)
        print(f"  {step.name:12s} class={classify_step(step).value:15s} "
              f"parallel={sp.parallel} reductions={sp.reductions}")

    plan = make_plan(program, "GLAF-parallel v0", threads=4)

    print("\n=== generated FORTRAN ===")
    print(generate_fortran_module(plan))

    print("=== generated C (excerpt) ===")
    print("\n".join(generate_c_source(plan).splitlines()[:28]))

    # Execute three ways and compare.
    src = np.sin(np.linspace(0, 3, 12))
    expected_mid = (src[:-2] + src[1:-1] + src[2:]) / 3.0

    dst1 = np.zeros(12)
    _, ctx, _ = run_interpreted(program, "smooth", [12, src, dst1])
    dst2 = np.zeros(12)
    run_generated_python(program, "smooth", [12, src, dst2])

    rt = FortranRuntime()
    rt.load(generate_fortran_module(plan))
    dst3 = np.zeros(12)
    rt.call("smooth", [12, src.copy(), dst3])

    assert np.allclose(dst1[1:-1], expected_mid)
    assert np.array_equal(dst1, dst2)
    assert np.allclose(dst1, dst3, rtol=1e-14)
    print("\n=== execution ===")
    print("  IR interpreter, generated Python and generated FORTRAN agree.")
    print(f"  total (module-scope reduction) = {ctx.value('total'):.6f}")


if __name__ == "__main__":
    main()
