"""The full Synoptic SARB workflow of paper §4.1, end to end:

1. build the six Table-1 subroutines through the programmatic GPI;
2. check every generated interface against the legacy codebase;
3. splice the generated subroutines into the legacy source and run the
   legacy test-suite driver under the FORTRAN interpreter;
4. reproduce Figure 5 and Figure 6 with the performance model;
5. profile the pipeline under :mod:`repro.observe` (the worked example of
   ``docs/OBSERVABILITY.md``).

Run:  python examples/sarb_integration.py
"""

import numpy as np

from repro.bench import format_table, run_figure5, run_figure6, run_table1
from repro.integration import check_program
from repro.sarb import (
    OUTPUT_NAMES,
    SARB_SUBROUTINES,
    build_legacy_codebase,
    build_sarb_program,
    make_inputs,
    run_legacy_fortran,
    run_reference,
    run_spliced,
)


def main():
    inp = make_inputs()
    program = build_sarb_program(inp.dims)

    print("=== step 1: interface checks against the legacy codebase ===")
    legacy = build_legacy_codebase(inp.dims)
    reports = check_program(program, legacy, list(SARB_SUBROUTINES))
    for name, report in reports.items():
        status = "OK" if report.ok else "FAIL"
        warnings = sum(1 for i in report.issues if i.severity == "warning")
        print(f"  {name:28s} {status}  ({warnings} warning(s))")
    assert all(r.ok for r in reports.values())

    print("\n=== step 2: splice GLAF-parallel v3 into the legacy code ===")
    ref = run_reference(inp)
    leg, _ = run_legacy_fortran(inp)
    spl, rt, driver_output = run_spliced(inp, variant="GLAF-parallel v3")
    max_err = max(float(np.max(np.abs(spl[n] - leg[n]))) for n in OUTPUT_NAMES)
    print(f"  legacy test-suite driver output: {driver_output}")
    print(f"  max |error| vs original serial run: {max_err:.2e}")
    omp = [e for e in rt.omp_log if e.kind == "parallel_do"]
    print(f"  OpenMP regions executed: {len(omp)} "
          f"(both in longwave_entropy_model, COLLAPSE(2)) — the paper's v3")

    print("\n=== step 3: Table 1 (generated SLOC) ===")
    print(format_table(run_table1()))

    print("\n=== step 4: Figure 5 (variant speed-ups vs original serial) ===")
    print(format_table(run_figure5()))

    print("\n=== step 5: Figure 6 (v3 thread scaling vs GLAF serial) ===")
    print(format_table(run_figure6()))

    print("\n=== step 6: where v0's time goes (the 0.48x explanation) ===")
    from repro.optimize import make_plan
    from repro.perf import SimOptions, breakdown_table, i5_2400, \
        overhead_summary, simulate
    from repro.sarb import sarb_workload

    r = simulate(make_plan(program, "GLAF-parallel v0", threads=4),
                 i5_2400, sarb_workload(inp.dims), SimOptions(threads=4))
    print(overhead_summary(r))

    print("\n=== step 7: profile the pipeline itself (docs/OBSERVABILITY.md) ===")
    from repro import observe
    from repro.codegen import generate_fortran_module

    with observe.observed() as obs:
        plan = make_plan(program, "GLAF-parallel v2", threads=4)
        generate_fortran_module(plan)
    print(observe.render_stage_summary(obs.tracer))
    pruned = [d for d in obs.decisions.for_stage("pruning")
              if d.verdict == "pruned"]
    print(f"v2 pruned {len(pruned)} directive(s); "
          f"run 'python -m repro profile' for the full decision log")


if __name__ == "__main__":
    main()
