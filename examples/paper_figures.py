"""Regenerate every table and figure of the paper's evaluation section.

Run:  python examples/paper_figures.py
"""

from repro.bench import EXPERIMENTS, run_and_format


def main():
    for exp_id in ("T1", "T2", "F5", "F6", "F7", "C1", "C2"):
        exp = EXPERIMENTS[exp_id]
        _, text = run_and_format(exp)
        print(text)
        print()


if __name__ == "__main__":
    main()
