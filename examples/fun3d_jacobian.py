"""The FUN3D Jacobian-reconstruction workflow of paper §4.2, end to end:

1. generate a synthetic unstructured tet mesh;
2. run the GLAF five-function decomposition and check the RMS gate at 1e-7;
3. demonstrate the no-reallocation (SAVE) adaptation's effect on the
   allocation count;
4. reproduce Figure 7 (the 16-thread option lattice + manual version).

Run:  python examples/fun3d_jacobian.py
"""

import numpy as np

from repro.bench import format_table, run_figure7
from repro.fun3d import (
    jac_rms,
    make_mesh,
    rms_check,
    run_generated_fortran,
    run_legacy_fortran,
    run_reference,
)
from repro.fun3d.perffig import PAPER_FIGURE7


def main():
    print("=== step 1: synthetic unstructured mesh ===")
    mesh = make_mesh(64)
    print(f"  cells={mesh.ncell} nodes={mesh.nnode} edges={mesh.nedge} "
          f"nnz={mesh.nnz}")

    print("\n=== step 2: correctness — the paper's RMS gate at 1e-7 ===")
    ref = run_reference(mesh)
    leg, _ = run_legacy_fortran(mesh)
    gen, rt_realloc, _ = run_generated_fortran(mesh)
    print(f"  reference jac RMS:          {jac_rms(ref):.12f}")
    print(f"  legacy FORTRAN jac RMS:     {jac_rms(leg):.12f}")
    print(f"  GLAF-generated jac RMS:     {jac_rms(gen):.12f}")
    assert rms_check(gen, ref), "RMS gate failed"
    print("  RMS gate: PASS (|ΔRMS| <= 1e-7)")

    print("\n=== step 3: the no-reallocation adaptation (§4.2.1) ===")
    _, rt_saved, _ = run_generated_fortran(mesh, save_inner_arrays=True)
    print(f"  heap allocations, per-call reallocation: {rt_realloc.allocation_count}")
    print(f"  heap allocations, SAVE'd temporaries:    {rt_saved.allocation_count}")
    print("  (the paper: 50 temporaries x ~10 edge-loop calls per cell)")

    print("\n=== step 4: Figure 7 — 16-thread option lattice ===")
    result = run_figure7()
    print(format_table(result))
    d = result.as_dict()
    manual = d["manual parallel (original, outermost)"]
    best = d["EdgeJP | no-realloc"]
    print(f"\n  paper anchors: manual {PAPER_FIGURE7['manual']}x -> model {manual}x")
    print(f"                 best GLAF {PAPER_FIGURE7['best_glaf']}x -> model {best}x")
    print(f"                 manual/best ratio: paper ~2.3x -> model "
          f"{manual / best:.2f}x")


if __name__ == "__main__":
    main()
