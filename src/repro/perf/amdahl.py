"""Amdahl's-law helpers.

The paper invokes Amdahl's law to explain why the SARB kernels cap out well
below the thread count ("serial parts of the algorithm between the parallel
sections can limit the maximum parallelism").  These helpers compute the
idealized bounds that the simulator's mechanistic results can be checked
against in tests.
"""

from __future__ import annotations

__all__ = ["amdahl_speedup", "parallel_fraction_from_speedup", "max_speedup"]


def amdahl_speedup(parallel_fraction: float, threads: int,
                   overhead_fraction: float = 0.0) -> float:
    """Idealized speedup for a workload with the given parallel fraction.

    ``overhead_fraction`` adds a per-run constant cost expressed as a
    fraction of the serial runtime (OpenMP region overheads).
    """
    if not (0.0 <= parallel_fraction <= 1.0):
        raise ValueError("parallel fraction must be within [0, 1]")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    denom = (1.0 - parallel_fraction) + parallel_fraction / threads + overhead_fraction
    return 1.0 / denom


def parallel_fraction_from_speedup(speedup: float, threads: int) -> float:
    """Invert Amdahl's law: the parallel fraction implied by an observed
    speedup at a given thread count."""
    if threads <= 1:
        raise ValueError("need threads > 1 to infer a parallel fraction")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    f = (1.0 - 1.0 / speedup) / (1.0 - 1.0 / threads)
    return min(max(f, 0.0), 1.0)


def max_speedup(parallel_fraction: float) -> float:
    """Infinite-thread Amdahl limit."""
    if parallel_fraction >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - parallel_fraction)
