"""The performance simulator.

Predicts the run time of a GLAF program under an
:class:`~repro.optimize.plan.OptimizationPlan` (which fixes the OpenMP
directive set), a :class:`Workload` (concrete sizes and data-dependent trip
counts), a :class:`~repro.perf.machine.MachineSpec` and
:class:`SimOptions`.

This is the reproduction's substitute for running natively compiled
binaries on the paper's testbeds (see DESIGN.md §2).  Every mechanism the
paper invokes to explain its numbers is modelled explicitly:

* loop work from the IR (cost model) with compiler optimization per loop
  class (memset / SIMD / unroll / scalar);
* OpenMP region overheads, per-thread costs, SMT contention, nested-region
  penalties;
* function-call overhead for GLAF's function-per-nested-loop structure,
  versus the ``monolithic`` option modelling the hand-written original;
* per-call heap reallocation of temporary arrays, versus SAVE'd storage
  (the FUN3D no-reallocation option);
* ATOMIC / CRITICAL costs for the FUN3D adaptation clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.expr import BinOp, Const, Expr, FuncCall, GridRef, IndexVar, LibCall, UnOp
from ..core.function import GlafFunction, GlafProgram
from ..core.step import Assign, CallStmt, ExitLoop, IfStmt, Return, Step, Stmt, walk_stmts
from ..errors import PerfModelError
from ..optimize.plan import OptimizationPlan
from .compilermodel import CompilerModel
from .costmodel import Cost, ZERO, expr_cost, stmt_cost
from .machine import MachineSpec
from .omp_runtime import OmpCostModel

__all__ = ["Workload", "SimOptions", "StepBreakdown", "SimResult", "Simulator",
           "simulate"]


@dataclass(frozen=True)
class Workload:
    """Concrete workload: sizes for symbolic bounds plus dynamic-behaviour
    knobs the IR cannot express statically."""

    name: str
    entry: str
    sizes: dict[str, int] = field(default_factory=dict)
    entry_calls: int = 1
    # (function, step_index) -> average trip count of that step's whole nest,
    # for bounds the simulator cannot evaluate (data-dependent loops).
    trip_overrides: dict[tuple[str, int], float] = field(default_factory=dict)
    # (function, step_index) -> fraction of iterations whose IfStmt bodies
    # execute (default 0.5) / whose step condition holds (default 1.0).
    branch_fractions: dict[tuple[str, int], float] = field(default_factory=dict)
    # (function, step_index) -> fraction of the nominal trip count actually
    # executed before an early exit (search loops; default 0.5 when the
    # step contains Return/ExitLoop).
    early_exit_fractions: dict[tuple[str, int], float] = field(default_factory=dict)
    # Maximum useful parallel speedup when this workload's data streams
    # from DRAM (bandwidth-bound kernels stop scaling once memory
    # saturates).  None = cache-resident working set, no cap.
    parallel_throughput_cap: float | None = None


@dataclass(frozen=True)
class SimOptions:
    threads: int = 1
    # Model the hand-written monolithic original: all calls inlined and the
    # compiler optimizes across GLAF's step/function boundaries.
    monolithic: bool = False
    # SAVE temporaries instead of reallocating per call (FUN3D tweak).
    save_arrays: bool = False


@dataclass
class StepBreakdown:
    function: str
    step_index: int
    step_name: str
    trips: float
    parallel: bool
    opt_kind: str
    body_cycles_per_iter: float
    total_cycles: float
    overhead_cycles: float = 0.0


@dataclass
class SimResult:
    workload: str
    variant: str
    machine: str
    threads: int
    total_cycles: float
    seconds: float
    steps: list[StepBreakdown] = field(default_factory=list)
    alloc_cycles: float = 0.0
    call_overhead_cycles: float = 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        return baseline.total_cycles / self.total_cycles


class Simulator:
    def __init__(
        self,
        plan: OptimizationPlan,
        machine: MachineSpec,
        workload: Workload,
        options: SimOptions,
        omp: OmpCostModel | None = None,
        compiler: CompilerModel | None = None,
    ):
        self.plan = plan
        self.program: GlafProgram = plan.program
        self.machine = machine
        self.workload = workload
        self.options = options
        self.omp = omp or OmpCostModel()
        self.compiler = compiler or CompilerModel(machine)
        self._memo: dict[tuple[str, bool], float] = {}
        self._steps: list[StepBreakdown] = []
        self._alloc_cycles = 0.0
        self._call_cycles = 0.0
        # Call multiplicity accounting for breakdown totals.
        self._mult_stack: list[float] = [1.0]

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        self._steps = []
        self._alloc_cycles = 0.0
        self._call_cycles = 0.0
        self._memo.clear()
        per_call = self._function_cycles(self.workload.entry, in_parallel=False,
                                         multiplicity=float(self.workload.entry_calls))
        total = per_call * self.workload.entry_calls
        return SimResult(
            workload=self.workload.name,
            variant=self.plan.variant.name + (" (monolithic)" if self.options.monolithic else ""),
            machine=self.machine.name,
            threads=self.options.threads,
            total_cycles=total,
            seconds=self.machine.seconds(total),
            steps=self._steps,
            alloc_cycles=self._alloc_cycles,
            call_overhead_cycles=self._call_cycles,
        )

    def _grid_rank(self, fn: GlafFunction, name: str) -> int:
        try:
            return self.program.resolve_grid(fn, name).rank
        except KeyError:
            return 0

    # ------------------------------------------------------------------
    # size evaluation
    # ------------------------------------------------------------------
    def eval_size(self, e: Expr) -> float:
        if isinstance(e, Const):
            if isinstance(e.value, (int, float)):
                return float(e.value)
            raise PerfModelError(f"non-numeric bound {e.value!r}")
        if isinstance(e, GridRef) and not e.indices:
            if e.grid in self.workload.sizes:
                return float(self.workload.sizes[e.grid])
            g = self.program.global_grids.get(e.grid)
            if g is not None and g.is_parameter and g.init_data is not None:
                return float(g.init_data)
            raise PerfModelError(
                f"workload {self.workload.name!r} gives no size for {e.grid!r}"
            )
        if isinstance(e, BinOp):
            l, r = self.eval_size(e.left), self.eval_size(e.right)
            return {
                "+": l + r, "-": l - r, "*": l * r, "/": l / r,
                "//": float(int(l // r)), "%": float(l % r), "**": l ** r,
            }[e.op]
        if isinstance(e, UnOp) and e.op == "neg":
            return -self.eval_size(e.operand)
        raise PerfModelError(
            f"cannot statically evaluate bound {e!r}; add a trip_override"
        )

    def _nest_trips(self, fname: str, idx: int, step: Step) -> float:
        override = self.workload.trip_overrides.get((fname, idx))
        if override is not None:
            return max(0.0, float(override))
        trips = 1.0
        for r in step.ranges:
            start = self.eval_size(r.start)
            end = self.eval_size(r.end)
            stride = self.eval_size(r.step)
            trips *= max(0.0, (end - start) / max(stride, 1e-300) + 1.0)
        return trips

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------
    def _function_cycles(self, fname: str, *, in_parallel: bool,
                         multiplicity: float) -> float:
        key = (fname, in_parallel)
        if key in self._memo:
            return self._memo[key]
        fn = self.program.find_function(fname)

        cycles = 0.0
        # Per-call allocation of local array temporaries.
        n_arrays = sum(1 for g in fn.local_grids().values() if g.rank > 0)
        saved = self.options.save_arrays or any(
            g.save for g in fn.local_grids().values()
        )
        if n_arrays:
            if saved:
                alloc = 0.0   # first-call cost amortized to nothing
            else:
                alloc = n_arrays * self.machine.alloc_cycles
            cycles += alloc
            self._alloc_cycles += alloc * multiplicity

        for idx, step in enumerate(fn.steps):
            cycles += self._step_cycles(fn, idx, step, in_parallel=in_parallel,
                                        multiplicity=multiplicity)
        self._memo[key] = cycles
        return cycles

    # ------------------------------------------------------------------
    # steps
    # ------------------------------------------------------------------
    def _step_cycles(self, fn: GlafFunction, idx: int, step: Step, *,
                     in_parallel: bool, multiplicity: float) -> float:
        fname = fn.name
        key = (fname, idx)
        sp = self.plan.parallel_plan.steps.get(key)
        parallel = self.plan.step_is_parallel(fname, idx) and step.is_loop

        trips = self._nest_trips(fname, idx, step) if step.is_loop else 1.0
        # Early exit shortens the executed trip count.
        has_exit = any(isinstance(s, (Return, ExitLoop)) for s in walk_stmts(step.stmts))
        if has_exit and step.is_loop:
            frac = self.workload.early_exit_fractions.get(key, 0.5)
            trips *= frac

        branch_frac = self.workload.branch_fractions.get(key, 0.5)
        body_in_parallel = in_parallel or parallel
        body = self._body_cost(fn, idx, step.stmts, branch_frac,
                               in_parallel=body_in_parallel,
                               multiplicity=multiplicity * max(trips, 1.0))
        per_iter = body.cycles(self.machine)
        if step.condition is not None:
            cond_frac = self.workload.branch_fractions.get(key, 1.0)
            per_iter = expr_cost(step.condition).cycles(self.machine) \
                + per_iter * cond_frac

        # ATOMIC / CRITICAL costs under parallel execution.
        overhead = 0.0
        if parallel and sp is not None:
            n_atomic_stmts = sum(
                1 for s in walk_stmts(step.stmts)
                if isinstance(s, Assign) and s.target.grid in sp.atomic
            )
            per_iter += n_atomic_stmts * self.omp.atomic_cycles
            if sp.critical_early_exit:
                per_iter += self.omp.critical_cycles

        if not step.is_loop:
            total = per_iter
            self._steps.append(StepBreakdown(
                function=fname, step_index=idx, step_name=step.name,
                trips=1.0, parallel=False, opt_kind="straight-line",
                body_cycles_per_iter=per_iter, total_cycles=total * multiplicity,
            ))
            return total

        has_calls = self.compiler.has_calls(step)
        if parallel:
            threads = self.options.threads
            # Array reductions share cache lines between threads; scalar
            # reductions live in registers.
            contended = any(
                self._grid_rank(fn, g) > 0 for g in (sp.reductions if sp else {})
            )
            useful, penalty = self.omp.effective_speedup(
                self.machine, threads, trips, contended=contended
            )
            cap = self.workload.parallel_throughput_cap
            if cap is not None:
                useful = min(useful, cap)
            region = self.omp.region_overhead(
                threads, nested=in_parallel,
                n_reductions=len(sp.reductions) if sp else 0,
            )
            work = per_iter * penalty * trips / useful
            total = region + work
            overhead += region
            opt_kind = f"omp({threads}T{',nested' if in_parallel else ''})"
        elif self.plan.step_is_simd(fname, idx) and not has_calls:
            # `!$OMP SIMD`: forced vectorization with masked lanes — both
            # branch sides execute, so the payoff is below plain SIMD but
            # available even where the auto-vectorizer gave up.
            opt = self.compiler.loop_optimization(step, trips, under_omp=False)
            forced = max(1.0, self.machine.simd_doubles
                         * self.machine.simd_masked_efficiency)
            speed = max(opt.speedup, forced)
            total = per_iter * trips / speed
            opt_kind = f"simd-directive(x{speed:.2f})"
        else:
            opt = self.compiler.loop_optimization(step, trips, under_omp=False)
            # Calls inside the body cannot be vectorized away.
            speed = 1.0 if has_calls else opt.speedup
            total = per_iter * trips / speed
            opt_kind = opt.kind if not has_calls else "scalar+calls"
        self._steps.append(StepBreakdown(
            function=fname, step_index=idx, step_name=step.name,
            trips=trips, parallel=parallel, opt_kind=opt_kind,
            body_cycles_per_iter=per_iter, total_cycles=total * multiplicity,
            overhead_cycles=overhead * multiplicity,
        ))
        return total

    def _body_cost(self, fn: GlafFunction, idx: int, stmts, branch_frac: float,
                   *, in_parallel: bool, multiplicity: float) -> Cost:
        """Cost of one iteration of a statement list (callee time included
        as flop-equivalents so it flows through the loop math)."""
        # The monolithic original benefits from cross-step fusion/CSE on its
        # *local* statement work; callee cycles are scaled inside the callee.
        fusion = (self.compiler.monolithic_fusion_factor
                  if self.options.monolithic else 1.0)
        total = ZERO
        for s in stmts:
            if isinstance(s, IfStmt):
                cond = stmt_cost(s).scaled(fusion)
                then = self._body_cost(fn, idx, s.then, branch_frac,
                                       in_parallel=in_parallel,
                                       multiplicity=multiplicity * branch_frac)
                orelse = self._body_cost(fn, idx, s.orelse, branch_frac,
                                         in_parallel=in_parallel,
                                         multiplicity=multiplicity * (1 - branch_frac))
                total = total + cond + then.scaled(branch_frac) \
                    + orelse.scaled(1.0 - branch_frac)
                continue
            total = total + stmt_cost(s).scaled(fusion)
            # User-function calls: add callee cycles (+ call overhead).
            callees: list[str] = []
            if isinstance(s, CallStmt):
                callees.append(s.name)
            for e in _stmt_exprs(s):
                for node in _walk_expr(e):
                    if isinstance(node, FuncCall):
                        callees.append(node.name)
            for cname in callees:
                callee_cycles = self._function_cycles(
                    cname, in_parallel=in_parallel, multiplicity=multiplicity
                )
                call_oh = 0.0
                if not self.options.monolithic:
                    callee = self.program.find_function(cname)
                    if not self.compiler.should_inline(callee):
                        call_oh = self.machine.call_overhead_cycles
                        self._call_cycles += call_oh * multiplicity
                # Express as flops so cycles() reproduces the value.
                total = total + Cost(
                    flops=(callee_cycles + call_oh) / self.machine.cycles_per_flop
                )
        return total


def _stmt_exprs(s: Stmt):
    from ..core.step import stmt_exprs

    yield from stmt_exprs(s)


def _walk_expr(e: Expr):
    from ..core.expr import walk

    yield from walk(e)


def simulate(
    plan: OptimizationPlan,
    machine: MachineSpec,
    workload: Workload,
    options: SimOptions | None = None,
    **kw,
) -> SimResult:
    """One-call simulation."""
    options = options or SimOptions(threads=plan.threads)
    return Simulator(plan, machine, workload, options, **kw).run()
