"""Machine models.

The paper's two testbeds are modelled with first-principles magnitudes:

* ``i5_2400``  — the SARB machine: Intel Core i5-2400, 4 cores at 3.10 GHz
  (the paper treats it as 4 physical / 8 logical and observes the 8-thread
  collapse of Figure 6), AVX (4 doubles/vector).
* ``xeon_e5_2637v4_node`` — the FUN3D machine: dual Xeon E5-2637 v4,
  2 x 4 cores / 8 threads at 3.50 GHz, AVX2.

Constants are set from architecture datasheet magnitudes, not fitted per
figure; EXPERIMENTS.md records how well the resulting shapes match.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "i5_2400", "xeon_e5_2637v4_node", "MACHINES",
           "machine_fingerprint"]


@dataclass(frozen=True)
class MachineSpec:
    name: str
    physical_cores: int
    logical_cores: int
    freq_ghz: float
    simd_doubles: int              # doubles per SIMD vector
    # Effective fraction of ideal SIMD speedup real loops achieve.
    simd_efficiency: float = 0.6
    # Efficiency of *directive-forced* vectorization of branchy bodies
    # (`!$OMP SIMD` with masked lanes): both branches execute, masked.
    simd_masked_efficiency: float = 0.35
    # Sustained memset bandwidth in bytes/cycle (rep stosb / NT stores).
    memset_bytes_per_cycle: float = 16.0
    # Plain streaming copy bandwidth in bytes/cycle.
    copy_bytes_per_cycle: float = 8.0
    # Scalar issue: cycles per floating-point op (pipelined, ~1).
    cycles_per_flop: float = 1.0
    # Cycles per (cache-resident) load/store.
    cycles_per_access: float = 1.0
    # Penalty multiplier on per-iteration work when running more threads
    # than physical cores (SMT contention + coherence, paper Figure 6 8T).
    smt_work_penalty: float = 5.5
    # Function-call overhead in cycles (prologue/epilogue + spills).
    call_overhead_cycles: float = 40.0
    # Heap allocation cost in cycles (malloc/free pair, amortized).
    alloc_cycles: float = 350.0

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / (self.freq_ghz * 1e9)

    def seconds(self, cycles: float) -> float:
        return cycles * self.cycle_time_s


i5_2400 = MachineSpec(
    name="i5-2400",
    physical_cores=4,
    logical_cores=8,
    freq_ghz=3.10,
    simd_doubles=4,        # AVX, 256-bit
)

xeon_e5_2637v4_node = MachineSpec(
    name="2x Xeon E5-2637 v4",
    physical_cores=8,
    logical_cores=16,
    freq_ghz=3.50,
    simd_doubles=4,        # AVX2, 256-bit
    call_overhead_cycles=40.0,
)

MACHINES = {m.name: m for m in (i5_2400, xeon_e5_2637v4_node)}


def machine_fingerprint() -> dict[str, dict[str, object]]:
    """The simulated testbeds, as recorded in bench artifacts.

    Model predictions (Figures 5–7 cells) depend on these constants, so
    ``BENCH_<n>.json`` embeds them: a cell drift between two artifacts with
    different fingerprints is a model change, not a regression.
    """
    return {
        name: {
            "physical_cores": m.physical_cores,
            "logical_cores": m.logical_cores,
            "freq_ghz": m.freq_ghz,
            "simd_doubles": m.simd_doubles,
            "smt_work_penalty": m.smt_work_penalty,
        }
        for name, m in MACHINES.items()
    }
