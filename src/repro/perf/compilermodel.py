"""Compiler optimization model.

Models what gfortran/ifort at ``-O3`` do to each loop of the generated (or
original) code — the effects the paper reads out of "compiler optimization
reports and/or generated assembly" (§4.1.2):

* zero-initialization loops compile to ``memset``;
* single-value broadcast loops compile to SIMD stores;
* simple loops without control flow (including recognized reductions)
  vectorize; very short trip counts unroll instead;
* loops containing control flow, calls or indirect subscripts do **not**
  vectorize ("the compiler fails to identify these loops as parallel");
* loops under an OMP directive are *not* auto-vectorized (the outlined
  body defeats the vectorizer — the paper's premise for removing
  directives in v1-v3);
* small functions inline; large ones pay call overhead (the GLAF
  function-per-nested-loop structure, §4.1.2's explanation of GLAF serial
  trailing original serial).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.classify import LoopClass, classify_step
from ..analysis.accesses import step_accesses
from ..core.function import GlafFunction
from ..core.step import CallStmt, Step, walk_stmts
from .machine import MachineSpec

__all__ = ["LoopOpt", "CompilerModel"]


@dataclass(frozen=True)
class LoopOpt:
    """How the compiler treats one (serial) loop."""

    kind: str            # 'memset' | 'simd-store' | 'simd' | 'unroll' | 'scalar'
    speedup: float       # divisor applied to the scalar body work


@dataclass(frozen=True)
class CompilerModel:
    machine: MachineSpec
    # Functions whose flattened statement count is at or below this inline.
    inline_threshold_stmts: int = 8
    # Trip counts at or below this unroll fully instead of vectorizing.
    unroll_trip_threshold: int = 8
    unroll_speedup: float = 1.25
    # Work reduction the compiler gets from optimizing across what GLAF
    # splits into separate steps/functions (fusion, CSE, scheduling).  The
    # original monolithic source enjoys it; GLAF-structured code does not.
    monolithic_fusion_factor: float = 0.90

    def should_inline(self, fn: GlafFunction) -> bool:
        # -O3 inlines small straight-line procedures; procedures containing
        # loops keep their call overhead (no IPO across the generated
        # module boundary).
        if any(s.is_loop for s in fn.steps):
            return False
        n = sum(len(list(walk_stmts(s.stmts))) for s in fn.steps)
        return n <= self.inline_threshold_stmts

    def _vector_width_speedup(self, elem_bytes: int) -> float:
        lanes = (
            self.machine.simd_doubles
            if elem_bytes >= 8
            else self.machine.simd_doubles * 2
        )
        return max(1.0, lanes * self.machine.simd_efficiency)

    def loop_optimization(self, step: Step, trip_count: float,
                          *, under_omp: bool) -> LoopOpt:
        """Decide the optimization class for a loop nest."""
        if under_omp:
            # The outlined OMP body is compiled scalar.
            return LoopOpt("scalar", 1.0)
        cls = classify_step(step)
        if cls is LoopClass.ZERO_INIT:
            # memset: bandwidth-bound; modelled as a large fixed divisor on
            # the scalar store loop.
            return LoopOpt("memset", self.machine.memset_bytes_per_cycle)
        if cls is LoopClass.BROADCAST_INIT:
            return LoopOpt("simd-store", self.machine.copy_bytes_per_cycle / 2.0)
        if cls in (LoopClass.SIMPLE_SINGLE, LoopClass.SIMPLE_DOUBLE):
            if self._has_indirect_access(step):
                return LoopOpt("scalar", 1.0)
            if trip_count <= self.unroll_trip_threshold:
                return LoopOpt("unroll", self.unroll_speedup)
            return LoopOpt("simd", self._vector_width_speedup(8))
        # COMPLEX: control flow / calls defeat the vectorizer.
        return LoopOpt("scalar", 1.0)

    @staticmethod
    def _has_indirect_access(step: Step) -> bool:
        return any(not a.fully_affine for a in step_accesses(step) if a.indices)

    @staticmethod
    def has_calls(step: Step) -> bool:
        return any(isinstance(s, CallStmt) for s in walk_stmts(step.stmts))
