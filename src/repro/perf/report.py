"""Human-readable breakdowns of simulation results.

The paper reasons about *where* the time goes ("the compiler emits SIMD
instructions", "the cost of repeated calls ... cannot be efficiently
amortized"); this report makes the model's version of that reasoning
inspectable: per-step cycles, the optimization the compiler model applied,
trip counts, and the overhead split (OpenMP regions, allocations, calls).
"""

from __future__ import annotations

from .simulate import SimResult

__all__ = ["breakdown_table", "overhead_summary"]


def breakdown_table(result: SimResult, top: int = 12) -> str:
    """The ``top`` most expensive steps, with their model treatment."""
    rows = sorted(result.steps, key=lambda s: -s.total_cycles)[:top]
    header = (f"{'function/step':38s} {'trips':>9s} {'treatment':>18s} "
              f"{'cycles':>12s} {'share':>6s}")
    lines = [
        f"== {result.workload} [{result.variant}] on {result.machine} "
        f"({result.threads}T): {result.total_cycles:.3e} cycles "
        f"({result.seconds * 1e3:.2f} ms) ==",
        header,
        "-" * len(header),
    ]
    for s in rows:
        share = s.total_cycles / max(result.total_cycles, 1e-300)
        lines.append(
            f"{s.function + '/' + s.step_name:38s} {s.trips:9.0f} "
            f"{s.opt_kind:>18s} {s.total_cycles:12.3e} {share:6.1%}"
        )
    return "\n".join(lines)


def overhead_summary(result: SimResult) -> str:
    """Where the non-compute cycles went."""
    region = sum(s.overhead_cycles for s in result.steps)
    total = max(result.total_cycles, 1e-300)
    parts = [
        ("OpenMP regions", region),
        ("heap (re)allocation", result.alloc_cycles),
        ("function-call overhead", result.call_overhead_cycles),
    ]
    lines = [f"overheads of {result.workload} [{result.variant}]:"]
    for label, cycles in parts:
        lines.append(f"  {label:24s} {cycles:12.3e} cycles ({cycles / total:6.2%})")
    return "\n".join(lines)
