"""Per-statement work estimation from the IR.

Counts floating-point operations and memory accesses in expression trees,
using the library-function registry's per-function FLOP costs.  The
absolute cycle counts only matter relative to each other and to the OpenMP
runtime constants; the reproduction reports speed-up ratios, like the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expr import (
    BinOp,
    Const,
    Expr,
    FuncCall,
    GridRef,
    IndexVar,
    LibCall,
    UnOp,
)
from ..core.libfuncs import get as get_libfunc
from ..core.step import Assign, CallStmt, ExitLoop, IfStmt, Return, Stmt
from .machine import MachineSpec

__all__ = ["Cost", "expr_cost", "stmt_cost", "branch_cost"]

_OP_FLOPS = {
    "+": 1.0, "-": 1.0, "*": 1.0, "/": 4.0, "**": 20.0, "//": 4.0, "%": 4.0,
    "==": 1.0, "!=": 1.0, "<": 1.0, "<=": 1.0, ">": 1.0, ">=": 1.0,
    "and": 1.0, "or": 1.0,
}


@dataclass(frozen=True)
class Cost:
    flops: float = 0.0
    accesses: float = 0.0     # loads + stores

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.flops + other.flops, self.accesses + other.accesses)

    def scaled(self, k: float) -> "Cost":
        return Cost(self.flops * k, self.accesses * k)

    def cycles(self, machine: MachineSpec) -> float:
        return (
            self.flops * machine.cycles_per_flop
            + self.accesses * machine.cycles_per_access
        )


ZERO = Cost()


def expr_cost(e: Expr) -> Cost:
    if isinstance(e, (Const, IndexVar)):
        return ZERO
    if isinstance(e, GridRef):
        c = Cost(flops=0.0, accesses=1.0 if e.indices or True else 0.0)
        # Subscript arithmetic (linearization) per index.
        sub = Cost(flops=0.5 * len(e.indices))
        for i in e.indices:
            sub = sub + expr_cost(i)
        return c + sub
    if isinstance(e, BinOp):
        return Cost(flops=_OP_FLOPS.get(e.op, 1.0)) + expr_cost(e.left) + expr_cost(e.right)
    if isinstance(e, UnOp):
        return Cost(flops=1.0) + expr_cost(e.operand)
    if isinstance(e, LibCall):
        c = Cost(flops=get_libfunc(e.name).flop_cost)
        for a in e.args:
            c = c + expr_cost(a)
        return c
    if isinstance(e, FuncCall):
        # The callee's own cost is added by the simulator's call handling;
        # here only argument evaluation counts.
        c = ZERO
        for a in e.args:
            c = c + expr_cost(a)
        return c
    return ZERO


def stmt_cost(s: Stmt) -> Cost:
    """Cost of one statement, excluding callee bodies (the simulator adds
    those) and excluding control-flow descent (see :func:`branch_cost`)."""
    if isinstance(s, Assign):
        c = expr_cost(s.expr) + Cost(accesses=1.0)  # the store
        for i in s.target.indices:
            c = c + expr_cost(i)
        c = c + Cost(flops=0.5 * len(s.target.indices))
        return c
    if isinstance(s, CallStmt):
        c = ZERO
        for a in s.args:
            c = c + expr_cost(a)
        return c
    if isinstance(s, IfStmt):
        return expr_cost(s.cond) + Cost(flops=1.0)   # compare + branch
    if isinstance(s, Return):
        return expr_cost(s.value) if s.value is not None else ZERO
    if isinstance(s, ExitLoop):
        return ZERO
    return ZERO


def branch_cost(s: IfStmt, then_cost: Cost, else_cost: Cost,
                taken_fraction: float = 0.5) -> Cost:
    """Average cost of an if/else given pre-computed branch body costs."""
    avg = then_cost.scaled(taken_fraction) + else_cost.scaled(1.0 - taken_fraction)
    return stmt_cost(s) + avg
