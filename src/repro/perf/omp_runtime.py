"""OpenMP runtime cost model.

Captures the overheads the paper's incremental study exposes: entering a
parallel region is expensive relative to a 60-iteration loop body (which is
why GLAF-parallel v0 runs at 0.48x), per-thread bookkeeping grows with the
team size (part of the Figure 6 8-thread collapse), and nested parallel
regions pay the full region cost on every entry (which is why parallelizing
FUN3D's interior loops is catastrophic in Figure 7).

Magnitudes follow the classic EPCC microbenchmark ballpark for a
2010s-era libgomp: ~1-2 microseconds for a PARALLEL DO fork/join.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import MachineSpec

__all__ = ["OmpCostModel"]


@dataclass(frozen=True)
class OmpCostModel:
    # Cycles to fork+join a parallel region (independent of team size).
    fork_join_cycles: float = 4000.0
    # Additional cycles per thread in the team (barrier + TCB bookkeeping).
    per_thread_cycles: float = 450.0
    # Cycles per scheduled chunk (static: one chunk per thread).
    per_chunk_cycles: float = 60.0
    # Multiplier on region cost when the region is entered from inside an
    # enclosing parallel region (team re-creation, no thread reuse).
    nested_region_factor: float = 3.0
    # Cycles per ATOMIC update beyond the plain store it replaces.
    atomic_cycles: float = 30.0
    # Cycles to acquire+release a CRITICAL section (uncontended).
    critical_cycles: float = 180.0
    # Per-reduction-variable combine cost at join, per thread.
    reduction_cycles_per_var: float = 80.0

    def region_overhead(self, threads: int, *, nested: bool = False,
                        n_reductions: int = 0) -> float:
        """Total region-entry overhead in cycles."""
        base = (
            self.fork_join_cycles
            + self.per_thread_cycles * threads
            + self.per_chunk_cycles * threads
            + self.reduction_cycles_per_var * n_reductions * threads
        )
        return base * (self.nested_region_factor if nested else 1.0)

    def effective_speedup(self, machine: MachineSpec, threads: int,
                          trip_count: float, *,
                          contended: bool = False) -> tuple[float, float]:
        """(work divisor, per-iteration work multiplier) for a team.

        The divisor is limited by both the team size and the trip count
        (static scheduling cannot use more threads than iterations).

        Running wider than the physical core count behaves differently for
        the two kernel shapes the paper exercises:

        * ``contended`` loops — array-reduction bodies whose threads update
          neighbouring cache lines of the same small arrays — collapse under
          SMT: concurrency caps at the physical cores and every iteration
          pays the coherence/false-sharing penalty (SARB's 8-thread cliff,
          Figure 6);
        * streaming loops with per-iteration-private outputs merely stop
          gaining (SMT adds a little latency hiding, no FP throughput), as
          in FUN3D's 16-thread runs on 8 physical cores (Figure 7).
        """
        useful = max(1.0, min(float(threads), float(trip_count)))
        penalty = 1.0
        if threads > machine.physical_cores:
            if contended:
                useful = max(1.0, min(float(machine.physical_cores), float(trip_count)))
                penalty = machine.smt_work_penalty
            else:
                smt_gain = 1.25   # modest latency hiding from SMT
                useful = max(1.0, min(machine.physical_cores * smt_gain,
                                      float(trip_count)))
        return useful, penalty
