"""Performance-model substrate: machine, compiler and OpenMP-runtime models
plus the simulator that predicts run times of annotated GLAF programs."""

from .amdahl import amdahl_speedup, max_speedup, parallel_fraction_from_speedup
from .compilermodel import CompilerModel, LoopOpt
from .costmodel import Cost, expr_cost, stmt_cost
from .machine import (
    MACHINES,
    MachineSpec,
    i5_2400,
    machine_fingerprint,
    xeon_e5_2637v4_node,
)
from .omp_runtime import OmpCostModel
from .report import breakdown_table, overhead_summary
from .simulate import SimOptions, SimResult, Simulator, StepBreakdown, Workload, simulate

__all__ = [
    "amdahl_speedup", "max_speedup", "parallel_fraction_from_speedup",
    "CompilerModel", "LoopOpt",
    "Cost", "expr_cost", "stmt_cost",
    "MACHINES", "MachineSpec", "i5_2400", "xeon_e5_2637v4_node",
    "machine_fingerprint",
    "OmpCostModel",
    "breakdown_table", "overhead_summary",
    "SimOptions", "SimResult", "Simulator", "StepBreakdown", "Workload",
    "simulate",
]
