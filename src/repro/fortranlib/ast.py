"""AST for the FORTRAN subset.

The subset covers everything the GLAF FORTRAN generator emits plus the
constructs our synthetic legacy codes use: modules with CONTAINS, derived
TYPEs, COMMON blocks, USE/ONLY, subroutines and functions, DO/IF control
flow, ALLOCATE/DEALLOCATE, and ``!$OMP`` sentinels (which parse into
annotation nodes the interpreter records and the performance model reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FNode", "FExpr", "FNum", "FString", "FLogical", "FVar", "FIndexed",
    "FFieldRef", "FBin", "FUn", "FCallExpr",
    "FStmt", "FAssign", "FCall", "FIf", "FArithIfBranch", "FDo", "FDoWhile",
    "FReturn", "FExit", "FCycle", "FAllocate", "FDeallocate", "FPrint",
    "FStop", "FContinue", "FOmpClause", "FOmpDirective", "FOmpEnd",
    "FTypeSpec", "FDecl", "FDeclEntity", "FCommon", "FUse", "FImplicitNone",
    "FTypeDef", "FSubprogram", "FModule", "FProgramUnit", "FSourceFile",
]


class FNode:
    __slots__ = ()


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class FExpr(FNode):
    __slots__ = ()


@dataclass(frozen=True)
class FNum(FExpr):
    value: int | float
    is_double: bool = False  # had a D exponent or is a REAL literal


@dataclass(frozen=True)
class FString(FExpr):
    value: str


@dataclass(frozen=True)
class FLogical(FExpr):
    value: bool


@dataclass(frozen=True)
class FVar(FExpr):
    name: str  # lowercase canonical


@dataclass(frozen=True)
class FIndexed(FExpr):
    """``base(args)`` — array reference or function call; resolved at runtime."""

    base: FExpr           # FVar or FFieldRef
    args: tuple[FExpr, ...]


@dataclass(frozen=True)
class FFieldRef(FExpr):
    """``base%field`` access on a derived-type value."""

    base: FExpr
    field: str


@dataclass(frozen=True)
class FBin(FExpr):
    op: str               # + - * / ** == /= < <= > >= .and. .or. //(concat unused)
    left: FExpr
    right: FExpr


@dataclass(frozen=True)
class FUn(FExpr):
    op: str               # neg, not, pos
    operand: FExpr


@dataclass(frozen=True)
class FCallExpr(FExpr):
    """Explicit intrinsic call kept distinct when unambiguous (rare)."""

    name: str
    args: tuple[FExpr, ...]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class FStmt(FNode):
    __slots__ = ()


@dataclass
class FAssign(FStmt):
    target: FExpr         # FVar / FIndexed / FFieldRef chain
    value: FExpr
    line: int = 0


@dataclass
class FCall(FStmt):
    name: str
    args: tuple[FExpr, ...]
    line: int = 0


@dataclass
class FIf(FStmt):
    branches: list[tuple[FExpr | None, list[FStmt]]]  # (cond|None for else, body)
    line: int = 0


@dataclass
class FArithIfBranch(FStmt):
    """Unused placeholder kept for grammar completeness."""


@dataclass
class FDo(FStmt):
    var: str
    start: FExpr
    end: FExpr
    step: FExpr | None
    body: list[FStmt]
    omp: "FOmpDirective | None" = None
    line: int = 0


@dataclass
class FDoWhile(FStmt):
    cond: FExpr
    body: list[FStmt]
    line: int = 0


@dataclass
class FReturn(FStmt):
    line: int = 0


@dataclass
class FExit(FStmt):
    line: int = 0


@dataclass
class FCycle(FStmt):
    line: int = 0


@dataclass
class FAllocate(FStmt):
    items: list[tuple[FExpr, tuple[FExpr, ...]]]  # (variable ref, dims)
    line: int = 0


@dataclass
class FDeallocate(FStmt):
    items: list[FExpr]
    line: int = 0


@dataclass
class FPrint(FStmt):
    args: tuple[FExpr, ...]
    line: int = 0


@dataclass
class FStop(FStmt):
    message: str | None = None
    line: int = 0


@dataclass
class FContinue(FStmt):
    line: int = 0


@dataclass(frozen=True)
class FOmpClause:
    """One parsed clause of an ``!$OMP`` directive.

    ``name`` is the lowercase clause keyword (``private``, ``reduction``,
    ``collapse``, ...); ``vars`` carries the variable list for list-valued
    clauses, ``op`` the REDUCTION operator, and ``value`` the integer
    argument of COLLAPSE / NUM_THREADS.
    """

    name: str
    vars: tuple[str, ...] = ()
    op: str | None = None
    value: int | None = None


@dataclass
class FOmpDirective(FStmt):
    """A ``!$OMP`` sentinel: PARALLEL DO / ATOMIC / CRITICAL / END ...

    ``kind`` in {"parallel_do", "atomic", "critical", "end_critical",
    "end_parallel_do"}; the raw text is kept alongside the structured
    ``clauses`` tuple and the derived convenience fields (``private``,
    ``reductions``, ``collapse``) the performance model and the static
    linter consume.  For ``parallel_do`` directives the parser also
    attaches the node to the following loop's :attr:`FDo.omp`.
    """

    kind: str
    text: str
    private: tuple[str, ...] = ()
    firstprivate: tuple[str, ...] = ()
    reductions: tuple[tuple[str, str], ...] = ()
    collapse: int = 1
    clauses: tuple[FOmpClause, ...] = ()
    line: int = 0


@dataclass
class FOmpEnd(FStmt):
    kind: str
    line: int = 0


# ---------------------------------------------------------------------------
# declarations and units
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FTypeSpec:
    base: str                  # 'integer' 'real' 'logical' 'character' 'type'
    kind: int = 4              # 4 or 8 for numeric
    type_name: str | None = None   # for TYPE(name)
    char_len: int | None = None


@dataclass
class FDeclEntity:
    name: str
    dims: tuple[FExpr, ...] = ()       # () = scalar; deferred shape = (None-like,)
    deferred_rank: int = 0             # number of ':' dims (allocatable)
    init: FExpr | None = None


@dataclass
class FDecl(FStmt):
    spec: FTypeSpec
    attrs: tuple[str, ...]             # 'parameter','allocatable','save','pointer'
    intent: str | None
    entities: list[FDeclEntity]
    line: int = 0


@dataclass
class FCommon(FStmt):
    block: str
    names: list[str]
    line: int = 0


@dataclass
class FUse(FStmt):
    module: str
    only: tuple[str, ...] | None = None
    line: int = 0


@dataclass
class FImplicitNone(FStmt):
    line: int = 0


@dataclass
class FTypeDef(FStmt):
    name: str
    decls: list[FDecl]
    line: int = 0


@dataclass
class FSubprogram(FNode):
    kind: str                      # 'subroutine' | 'function'
    name: str
    params: list[str]
    result: str | None             # function result variable
    decls: list[FStmt]             # FDecl / FCommon / FUse / FImplicitNone
    body: list[FStmt]
    line: int = 0


@dataclass
class FModule(FNode):
    name: str
    decls: list[FStmt] = field(default_factory=list)   # incl. FTypeDef
    subprograms: list[FSubprogram] = field(default_factory=list)
    line: int = 0


@dataclass
class FProgramUnit(FNode):
    """A main PROGRAM."""

    name: str
    decls: list[FStmt] = field(default_factory=list)
    body: list[FStmt] = field(default_factory=list)
    subprograms: list[FSubprogram] = field(default_factory=list)  # CONTAINS
    line: int = 0


@dataclass
class FSourceFile(FNode):
    modules: list[FModule] = field(default_factory=list)
    programs: list[FProgramUnit] = field(default_factory=list)
    subprograms: list[FSubprogram] = field(default_factory=list)  # bare units
