"""Tree-walking interpreter for the FORTRAN subset.

This is the reproduction's stand-in for compiling with gfortran/ifort and
running natively: generated GLAF FORTRAN and the hand-written "legacy"
sources both execute here, so the paper's side-by-side functional
comparisons (§4.1.1, §4.2.1) can be run for real.

Semantics notes:

* Scalars are stored as 0-d NumPy arrays; arrays are NumPy arrays with
  1-based index adjustment at access time.  Kind 4/8 map to
  float32/float64 and int64 (FORTRAN default integers are modelled as
  int64 throughout, which only widens).
* Arguments pass by reference whenever the actual argument is a variable,
  array, array element or derived-type component; other expressions pass as
  anonymous temporaries, matching FORTRAN's evaluation of expressions into
  temporaries.
* COMMON blocks are runtime-global, name-associated storage: every unit
  declaring ``COMMON /blk/ a, b`` sees the same cells (§3.2).  Shape/kind
  consistency across units is checked.
* SAVE (and ``ALLOCATABLE, SAVE``) locals persist across calls — the FUN3D
  no-reallocation behaviour (§4.2.1).
* ``!$OMP`` sentinels do not change results (execution is sequential) but
  every region entry is logged in :attr:`FortranRuntime.omp_log` so tests
  can verify which loops executed under which directives, and allocation
  events are counted for the performance model's calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..errors import FortranRuntimeError
from ..numeric import sentinel as _sentinel
from .ast import (
    FAllocate,
    FAssign,
    FBin,
    FCall,
    FCommon,
    FContinue,
    FCycle,
    FDeallocate,
    FDecl,
    FDeclEntity,
    FDo,
    FDoWhile,
    FExit,
    FExpr,
    FFieldRef,
    FIf,
    FImplicitNone,
    FIndexed,
    FLogical,
    FModule,
    FNum,
    FOmpDirective,
    FPrint,
    FProgramUnit,
    FReturn,
    FSourceFile,
    FStop,
    FStmt,
    FString,
    FSubprogram,
    FTypeDef,
    FTypeSpec,
    FUn,
    FUse,
    FVar,
)
from .intrinsics import INTRINSICS, SPECIAL_FORMS
from .parser import parse_source

__all__ = ["FortranRuntime", "Slot", "DerivedValue", "OmpEvent", "StopSignal"]


# ---------------------------------------------------------------------------
# storage
# ---------------------------------------------------------------------------

_DTYPES = {
    ("integer", 4): np.dtype(np.int64),
    ("integer", 8): np.dtype(np.int64),
    ("real", 4): np.dtype(np.float32),
    ("real", 8): np.dtype(np.float64),
    ("logical", 4): np.dtype(np.bool_),
    ("logical", 8): np.dtype(np.bool_),
}


def _dtype_of(spec: FTypeSpec) -> np.dtype:
    if spec.base == "character":
        return np.dtype("U256")
    try:
        return _DTYPES[(spec.base, spec.kind)]
    except KeyError:
        raise FortranRuntimeError(f"unsupported type {spec.base}*{spec.kind}") from None


@dataclass
class DerivedValue:
    """An instance of a derived TYPE: named fields holding storage."""

    type_name: str
    fields: dict[str, Any]


@dataclass
class Slot:
    """One variable's storage cell."""

    name: str
    spec: FTypeSpec
    dims: tuple[FExpr, ...] = ()
    deferred_rank: int = 0
    allocatable: bool = False
    save: bool = False
    parameter: bool = False
    intent: str | None = None
    store: Any = None            # ndarray | DerivedValue | None (unallocated)

    @property
    def is_array(self) -> bool:
        return bool(self.dims) or self.deferred_rank > 0

    @property
    def allocated(self) -> bool:
        return self.store is not None


@dataclass
class OmpEvent:
    kind: str                    # 'parallel_do' | 'atomic' | 'critical'
    unit: str
    line: int
    collapse: int = 1
    reductions: tuple = ()
    private: tuple = ()
    iterations: int = 0


class StopSignal(Exception):
    def __init__(self, message: str | None):
        self.message = message
        super().__init__(message or "STOP")


class _Return(Exception):
    pass


class _Exit(Exception):
    pass


class _Cycle(Exception):
    pass


@dataclass
class ModuleEnv:
    name: str
    variables: dict[str, Slot] = field(default_factory=dict)
    typedefs: dict[str, list[FDecl]] = field(default_factory=dict)
    subprograms: dict[str, FSubprogram] = field(default_factory=dict)
    uses: list[FUse] = field(default_factory=list)


@dataclass
class _Frame:
    unit: FSubprogram
    module: ModuleEnv | None
    locals: dict[str, Slot]
    uses: list[FUse]
    commons: dict[str, str] = field(default_factory=dict)  # local name -> block
    do_depth: int = 0


class FortranRuntime:
    """Loads FORTRAN sources and executes subprograms / programs."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleEnv] = {}
        self.programs: dict[str, FProgramUnit] = {}
        self.bare_subprograms: dict[str, FSubprogram] = {}
        self.commons: dict[str, dict[str, Slot]] = {}
        self.output: list[tuple] = []
        self.omp_log: list[OmpEvent] = []
        self.allocation_count = 0
        self._save_store: dict[tuple[str, str], Slot] = {}
        self._call_depth = 0
        self.max_call_depth = 100

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, source: str) -> None:
        """Parse and register a source file (modules become importable)."""
        f = parse_source(source)
        for mod in f.modules:
            self._load_module(mod)
        for prog in f.programs:
            self.programs[prog.name] = prog
        for sub in f.subprograms:
            self.bare_subprograms[sub.name] = sub

    def _load_module(self, mod: FModule) -> None:
        env = ModuleEnv(name=mod.name)
        self.modules[mod.name] = env
        for d in mod.decls:
            if isinstance(d, FUse):
                env.uses.append(d)
            elif isinstance(d, FTypeDef):
                env.typedefs[d.name] = d.decls
            elif isinstance(d, FDecl):
                for slot, ent in zip(self._decl_slots(d, env=env, frame=None),
                                     d.entities):
                    env.variables[slot.name] = slot
                    self._initialize_slot(slot, env=env, frame=None,
                                          init=ent.init)
            elif isinstance(d, FImplicitNone):
                pass
            elif isinstance(d, FOmpDirective):
                # Module-level THREADPRIVATE: recorded, no storage effect in
                # this sequential runtime.
                self.omp_log.append(OmpEvent(kind=d.kind, unit=mod.name,
                                             line=d.line, private=d.private))
            else:
                raise FortranRuntimeError(
                    f"module {mod.name}: unsupported declaration {type(d).__name__}"
                )
        for sub in mod.subprograms:
            env.subprograms[sub.name] = sub

    # ------------------------------------------------------------------
    # declaration -> slots
    # ------------------------------------------------------------------
    def _decl_slots(self, d: FDecl, env: ModuleEnv | None, frame: _Frame | None) -> Iterator[Slot]:
        for ent in d.entities:
            yield Slot(
                name=ent.name,
                spec=d.spec,
                dims=ent.dims if not ent.deferred_rank else (),
                deferred_rank=ent.deferred_rank,
                allocatable="allocatable" in d.attrs or "pointer" in d.attrs,
                save="save" in d.attrs,
                parameter="parameter" in d.attrs,
                intent=d.intent,
            )

    def _initialize_slot(self, slot: Slot, env: ModuleEnv | None, frame: _Frame | None,
                         init: FExpr | None = None) -> None:
        """Materialize storage for a non-allocatable slot."""
        if slot.allocatable or slot.deferred_rank:
            return
        if slot.spec.base == "type":
            slot.store = self._new_derived(slot.spec.type_name, env, frame)
            return
        dtype = _dtype_of(slot.spec)
        if slot.is_array:
            shape = tuple(
                int(self._eval(dim, frame)) if frame is not None else int(self._eval_const(dim, env))
                for dim in slot.dims
            )
            for n in shape:
                if n < 0:
                    raise FortranRuntimeError(f"{slot.name}: negative extent {n}")
            slot.store = np.zeros(shape, dtype=dtype)
            self.allocation_count += 1
        else:
            slot.store = np.zeros((), dtype=dtype)
        if init is not None:
            value = self._eval(init, frame) if frame is not None else self._eval_const(init, env)
            if slot.is_array:
                slot.store[...] = value
            else:
                slot.store[()] = value

    def _new_derived(self, type_name: str | None, env: ModuleEnv | None,
                     frame: _Frame | None) -> DerivedValue:
        decls = self._find_typedef(type_name, env, frame)
        fields: dict[str, Any] = {}
        for d in decls:
            for ent in d.entities:
                dtype = _dtype_of(d.spec)
                if ent.dims:
                    shape = tuple(int(self._eval_const(x, env)) for x in ent.dims)
                    fields[ent.name] = np.zeros(shape, dtype=dtype)
                else:
                    fields[ent.name] = np.zeros((), dtype=dtype)
        return DerivedValue(type_name=type_name or "?", fields=fields)

    def _find_typedef(self, type_name: str | None, env: ModuleEnv | None,
                      frame: _Frame | None) -> list[FDecl]:
        if type_name is None:
            raise FortranRuntimeError("TYPE declaration without a type name")
        envs: list[ModuleEnv] = []
        if env is not None:
            envs.append(env)
        if frame is not None and frame.module is not None:
            envs.append(frame.module)
        seen: set[str] = set()
        stack = list(envs)
        for e in envs:
            for u in e.uses:
                if u.module in self.modules:
                    stack.append(self.modules[u.module])
        if frame is not None:
            for u in frame.uses:
                if u.module in self.modules:
                    stack.append(self.modules[u.module])
        for e in stack:
            if e.name in seen:
                continue
            seen.add(e.name)
            if type_name in e.typedefs:
                return e.typedefs[type_name]
            for u in e.uses:
                m = self.modules.get(u.module)
                if m and type_name in m.typedefs:
                    return m.typedefs[type_name]
        raise FortranRuntimeError(f"unknown derived type {type_name!r}")

    def _eval_const(self, e: FExpr, env: ModuleEnv | None) -> Any:
        """Evaluate an expression using only module-level names."""
        if isinstance(e, FNum):
            return e.value
        if isinstance(e, FVar) and env is not None:
            slot = env.variables.get(e.name)
            if slot is None:
                for u in env.uses:
                    m = self.modules.get(u.module)
                    if m and e.name in m.variables:
                        slot = m.variables[e.name]
                        break
            if slot is not None and slot.store is not None and slot.store.ndim == 0:
                return slot.store[()]
        if isinstance(e, FUn) and e.op == "neg":
            return -self._eval_const(e.operand, env)
        if isinstance(e, FBin):
            l = self._eval_const(e.left, env)
            r = self._eval_const(e.right, env)
            return {"+": l + r, "-": l - r, "*": l * r}[e.op]
        raise FortranRuntimeError("unsupported constant expression at module scope")

    # ------------------------------------------------------------------
    # calling
    # ------------------------------------------------------------------
    def call(self, name: str, args: list[Any] | tuple = (), module: str | None = None) -> Any:
        """Call a subprogram by name with NumPy arguments.

        Arrays pass by reference; Python scalars are copied into
        temporaries (use 0-d arrays for intent(out) scalars).
        """
        sub, env = self._find_subprogram(name.lower(), module)
        return self._invoke(sub, env, list(args))

    def run_program(self, name: str | None = None) -> None:
        if not self.programs:
            raise FortranRuntimeError("no PROGRAM unit loaded")
        prog = self.programs[name] if name else next(iter(self.programs.values()))
        pseudo = FSubprogram(kind="subroutine", name=prog.name, params=[],
                             result=None, decls=prog.decls, body=prog.body)
        env = None
        # A PROGRAM's CONTAINS'd subprograms are registered as bare units.
        for sub in prog.subprograms:
            self.bare_subprograms.setdefault(sub.name, sub)
        try:
            self._invoke(pseudo, env, [])
        except StopSignal:
            pass

    def _find_subprogram(self, name: str, module: str | None) -> tuple[FSubprogram, ModuleEnv | None]:
        if module is not None:
            env = self.modules.get(module)
            if env and name in env.subprograms:
                return env.subprograms[name], env
            raise FortranRuntimeError(f"no subprogram {name!r} in module {module!r}")
        for env in self.modules.values():
            if name in env.subprograms:
                return env.subprograms[name], env
        if name in self.bare_subprograms:
            return self.bare_subprograms[name], None
        raise FortranRuntimeError(f"no subprogram named {name!r}")

    def _invoke(self, sub: FSubprogram, env: ModuleEnv | None, args: list[Any]) -> Any:
        if self._call_depth >= self.max_call_depth:
            raise FortranRuntimeError(f"call depth exceeded in {sub.name}")
        if len(args) != len(sub.params):
            raise FortranRuntimeError(
                f"{sub.name}: expected {len(sub.params)} argument(s), got {len(args)}"
            )
        frame = _Frame(unit=sub, module=env, locals={}, uses=[])
        # Pass 1: classify declarations.
        decl_by_name: dict[str, tuple[FDecl, FDeclEntity]] = {}
        commons: list[FCommon] = []
        for d in sub.decls:
            if isinstance(d, FUse):
                frame.uses.append(d)
            elif isinstance(d, FCommon):
                commons.append(d)
            elif isinstance(d, FDecl):
                for ent in d.entities:
                    decl_by_name[ent.name] = (d, ent)
            elif isinstance(d, (FImplicitNone, FTypeDef)):
                pass
        # Bind parameters by reference.
        for pname, actual in zip(sub.params, args):
            slot = self._make_slot(pname, decl_by_name.get(pname))
            slot.store = self._coerce_argument(pname, slot, actual)
            frame.locals[pname] = slot
        # Result variable.
        if sub.kind == "function" and sub.result:
            rslot = self._make_slot(sub.result, decl_by_name.get(sub.result))
            self._materialize_local(rslot, frame, decl_by_name.get(sub.result))
            frame.locals[sub.result] = rslot
        # COMMON associations.
        for c in commons:
            block = self.commons.setdefault(c.block, {})
            for vname in c.names:
                spec = decl_by_name.get(vname)
                if vname not in block:
                    slot = self._make_slot(vname, spec)
                    self._materialize_local(slot, frame, spec)
                    block[vname] = slot
                else:
                    self._check_common_compat(c.block, block[vname], spec, frame)
                frame.locals[vname] = block[vname]
                frame.commons[vname] = c.block
        # Remaining locals.
        for vname, (d, ent) in decl_by_name.items():
            if vname in frame.locals:
                continue
            slot = self._make_slot(vname, (d, ent))
            if slot.save:
                key = (sub.name, vname)
                prev = self._save_store.get(key)
                if prev is not None:
                    frame.locals[vname] = prev
                    continue
                self._materialize_local(slot, frame, (d, ent))
                self._save_store[key] = slot
            else:
                self._materialize_local(slot, frame, (d, ent))
            frame.locals[vname] = slot

        self._call_depth += 1
        try:
            self._exec_block(frame, sub.body)
        except _Return:
            pass
        finally:
            self._call_depth -= 1

        if sub.kind == "function":
            rslot = frame.locals[sub.result]
            if rslot.store is None:
                raise FortranRuntimeError(f"{sub.name}: result never set")
            return rslot.store[()] if getattr(rslot.store, "ndim", 1) == 0 else rslot.store
        return None

    def _make_slot(self, name: str, spec: tuple[FDecl, FDeclEntity] | None) -> Slot:
        if spec is None:
            raise FortranRuntimeError(
                f"variable {name!r} has no declaration (IMPLICIT NONE everywhere)"
            )
        d, ent = spec
        return Slot(
            name=name,
            spec=d.spec,
            dims=ent.dims if not ent.deferred_rank else (),
            deferred_rank=ent.deferred_rank,
            allocatable="allocatable" in d.attrs or "pointer" in d.attrs,
            save="save" in d.attrs,
            parameter="parameter" in d.attrs,
            intent=d.intent,
        )

    def _materialize_local(self, slot: Slot, frame: _Frame,
                           spec: tuple[FDecl, FDeclEntity] | None) -> None:
        if slot.allocatable or slot.deferred_rank:
            return
        if slot.spec.base == "type":
            slot.store = self._new_derived(slot.spec.type_name, frame.module, frame)
            return
        dtype = _dtype_of(slot.spec)
        if slot.is_array:
            shape = tuple(int(self._as_int(self._eval(x, frame))) for x in slot.dims)
            slot.store = np.zeros(shape, dtype=dtype)
            self.allocation_count += 1
        else:
            slot.store = np.zeros((), dtype=dtype)
        if spec is not None and spec[1].init is not None:
            value = self._eval(spec[1].init, frame)
            if slot.is_array:
                slot.store[...] = value
            else:
                slot.store[()] = value

    def _coerce_argument(self, pname: str, slot: Slot, actual: Any) -> Any:
        if isinstance(actual, DerivedValue):
            return actual
        if isinstance(actual, np.ndarray):
            if slot.spec.base != "type":
                want = _dtype_of(slot.spec)
                if actual.ndim > 0 and actual.dtype != want:
                    raise FortranRuntimeError(
                        f"argument {pname!r}: dtype {actual.dtype} != {want}"
                    )
            return actual
        if isinstance(actual, (int, float, bool, np.generic)):
            dtype = _dtype_of(slot.spec)
            cell = np.zeros((), dtype=dtype)
            cell[()] = actual
            return cell
        raise FortranRuntimeError(f"argument {pname!r}: unsupported value {type(actual)}")

    def _check_common_compat(self, block: str, existing: Slot,
                             spec: tuple[FDecl, FDeclEntity] | None, frame: _Frame) -> None:
        if spec is None:
            return
        d, ent = spec
        if _dtype_of(d.spec) != _dtype_of(existing.spec):
            raise FortranRuntimeError(
                f"COMMON /{block}/ {existing.name}: kind mismatch across units"
            )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec_block(self, frame: _Frame, stmts: list[FStmt]) -> None:
        pending_omp: FOmpDirective | None = None
        skip_next_atomic = False
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if isinstance(s, FOmpDirective):
                if s.kind == "parallel_do":
                    pending_omp = s
                elif s.kind == "atomic":
                    self.omp_log.append(OmpEvent(kind="atomic", unit=frame.unit.name,
                                                 line=s.line))
                elif s.kind == "critical":
                    self.omp_log.append(OmpEvent(kind="critical", unit=frame.unit.name,
                                                 line=s.line))
                elif s.kind == "simd":
                    self.omp_log.append(OmpEvent(kind="simd", unit=frame.unit.name,
                                                 line=s.line,
                                                 reductions=s.reductions))
                # end_* markers need no action.
                i += 1
                continue
            if isinstance(s, FDo) and pending_omp is not None:
                s.omp = pending_omp
                pending_omp = None
            self._exec_stmt(frame, s)
            i += 1

    def _exec_stmt(self, frame: _Frame, s: FStmt) -> None:
        if isinstance(s, FAssign):
            self._exec_assign(frame, s)
        elif isinstance(s, FCall):
            self._exec_call(frame, s.name, s.args)
        elif isinstance(s, FIf):
            for cond, body in s.branches:
                if cond is None or bool(self._eval(cond, frame)):
                    self._exec_block(frame, body)
                    return
        elif isinstance(s, FDo):
            self._exec_do(frame, s)
        elif isinstance(s, FDoWhile):
            guard = 0
            while bool(self._eval(s.cond, frame)):
                guard += 1
                if guard > 100_000_000:
                    raise FortranRuntimeError("DO WHILE runaway")
                try:
                    self._exec_block(frame, s.body)
                except _Exit:
                    break
                except _Cycle:
                    continue
        elif isinstance(s, FReturn):
            raise _Return()
        elif isinstance(s, FExit):
            raise _Exit()
        elif isinstance(s, FCycle):
            raise _Cycle()
        elif isinstance(s, FContinue):
            pass
        elif isinstance(s, FAllocate):
            for target, dims in s.items:
                slot = self._resolve_slot(frame, target)
                shape = tuple(int(self._as_int(self._eval(d, frame))) for d in dims)
                dtype = _dtype_of(slot.spec)
                slot.store = np.zeros(shape, dtype=dtype)
                self.allocation_count += 1
        elif isinstance(s, FDeallocate):
            for item in s.items:
                slot = self._resolve_slot(frame, item)
                slot.store = None
        elif isinstance(s, FPrint):
            self.output.append(tuple(self._to_python(self._eval(a, frame)) for a in s.args))
        elif isinstance(s, FStop):
            raise StopSignal(s.message)
        else:
            raise FortranRuntimeError(f"cannot execute {type(s).__name__}")

    @staticmethod
    def _to_python(v: Any) -> Any:
        if isinstance(v, np.generic):
            return v.item()
        return v

    def _exec_do(self, frame: _Frame, s: FDo) -> None:
        start = self._as_int(self._eval(s.start, frame))
        end = self._as_int(self._eval(s.end, frame))
        step = self._as_int(self._eval(s.step, frame)) if s.step is not None else 1
        if step == 0:
            raise FortranRuntimeError("DO step of zero")
        var_slot = frame.locals.get(s.var)
        if var_slot is None or var_slot.store is None:
            raise FortranRuntimeError(f"undeclared DO variable {s.var!r}")
        if s.omp is not None:
            trip = max(0, (end - start) // step + 1) if (end - start) * step >= 0 else 0
            self.omp_log.append(OmpEvent(
                kind="parallel_do", unit=frame.unit.name, line=s.line,
                collapse=s.omp.collapse, reductions=s.omp.reductions,
                private=s.omp.private, iterations=trip,
            ))
        frame.do_depth += 1
        try:
            i = start
            while (i <= end) if step > 0 else (i >= end):
                var_slot.store[()] = i
                try:
                    self._exec_block(frame, s.body)
                except _Exit:
                    break
                except _Cycle:
                    pass
                i += step
        finally:
            frame.do_depth -= 1

    def _exec_assign(self, frame: _Frame, s: FAssign) -> None:
        target = s.target
        value = self._eval(s.value, frame)
        if isinstance(target, FVar):
            slot = frame.locals.get(target.name)
            if slot is None:
                slot = self._lookup_nonlocal_slot(frame, target.name)
            if slot is None:
                raise FortranRuntimeError(f"assignment to undeclared {target.name!r}")
            if slot.parameter:
                raise FortranRuntimeError(f"cannot assign to PARAMETER {target.name!r}")
            if slot.store is None:
                raise FortranRuntimeError(f"{target.name!r} used before ALLOCATE")
            if _sentinel._ACTIVE is not None:
                _sentinel.check_value(
                    value, function=self._assign_site(frame, s),
                    grid=target.name)
            if slot.store.ndim == 0:
                slot.store[()] = value
            else:
                slot.store[...] = value   # whole-array assignment
            return
        store, idx = self._resolve_element(frame, target)
        if _sentinel._ACTIVE is not None:
            _sentinel.check_value(
                value, function=self._assign_site(frame, s),
                grid=self._target_name(target),
                cell=None if idx is None else tuple(i + 1 for i in idx))
        if idx is None:
            store[...] = value
        else:
            store[idx] = value

    @staticmethod
    def _assign_site(frame: _Frame, s: FAssign) -> str:
        name = frame.unit.name
        return f"{name}:{s.line}" if s.line else name

    @classmethod
    def _target_name(cls, target: FExpr) -> str:
        if isinstance(target, FVar):
            return target.name
        if isinstance(target, FIndexed):
            return cls._target_name(target.base)
        if isinstance(target, FFieldRef):
            return f"{cls._target_name(target.base)}%{target.field}"
        return ""

    def _exec_call(self, frame: _Frame, name: str, argexprs: tuple[FExpr, ...]) -> Any:
        sub, env = self._find_callee(frame, name)
        args = [self._eval_actual(frame, a) for a in argexprs]
        return self._invoke(sub, env, args)

    def _find_callee(self, frame: _Frame, name: str) -> tuple[FSubprogram, ModuleEnv | None]:
        if frame.module is not None and name in frame.module.subprograms:
            return frame.module.subprograms[name], frame.module
        for u in frame.uses + (frame.module.uses if frame.module else []):
            m = self.modules.get(u.module)
            if m and (u.only is None or name in u.only) and name in m.subprograms:
                return m.subprograms[name], m
        for env in self.modules.values():
            if name in env.subprograms:
                return env.subprograms[name], env
        if name in self.bare_subprograms:
            return self.bare_subprograms[name], None
        raise FortranRuntimeError(f"no subprogram named {name!r}")

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def _lookup_nonlocal_slot(self, frame: _Frame, name: str) -> Slot | None:
        if frame.module is not None and name in frame.module.variables:
            return frame.module.variables[name]
        search_uses = frame.uses + (frame.module.uses if frame.module else [])
        for u in search_uses:
            m = self.modules.get(u.module)
            if m is None:
                continue
            if u.only is not None and name not in u.only:
                continue
            if name in m.variables:
                return m.variables[name]
            # one level of re-export
            for u2 in m.uses:
                m2 = self.modules.get(u2.module)
                if m2 and name in m2.variables:
                    return m2.variables[name]
        return None

    def _resolve_slot(self, frame: _Frame, e: FExpr) -> Slot:
        if isinstance(e, FVar):
            slot = frame.locals.get(e.name) or self._lookup_nonlocal_slot(frame, e.name)
            if slot is None:
                raise FortranRuntimeError(f"unknown variable {e.name!r}")
            return slot
        if isinstance(e, FIndexed):
            return self._resolve_slot(frame, e.base)
        raise FortranRuntimeError(f"cannot resolve slot for {type(e).__name__}")

    def _resolve_element(self, frame: _Frame, target: FExpr) -> tuple[Any, tuple | None]:
        """Resolve an assignment target to (storage, index-or-None)."""
        if isinstance(target, FIndexed):
            base_store = self._eval_storage(frame, target.base)
            idx = tuple(self._as_int(self._eval(a, frame)) - 1 for a in target.args)
            self._check_bounds(base_store, idx, target)
            return base_store, idx
        if isinstance(target, FFieldRef):
            base = self._eval_storage(frame, target.base)
            if not isinstance(base, DerivedValue):
                raise FortranRuntimeError(f"%{target.field} on a non-TYPE value")
            store = base.fields.get(target.field)
            if store is None:
                raise FortranRuntimeError(
                    f"TYPE {base.type_name} has no component {target.field!r}"
                )
            if store.ndim == 0:
                return store, ()
            return store, None
        raise FortranRuntimeError(f"bad assignment target {type(target).__name__}")

    def _eval_storage(self, frame: _Frame, e: FExpr) -> Any:
        """Evaluate a designator to its *storage* (not a copied value)."""
        if isinstance(e, FVar):
            slot = frame.locals.get(e.name) or self._lookup_nonlocal_slot(frame, e.name)
            if slot is None:
                raise FortranRuntimeError(f"unknown variable {e.name!r}")
            if slot.store is None:
                raise FortranRuntimeError(f"{e.name!r} used before ALLOCATE")
            return slot.store
        if isinstance(e, FFieldRef):
            base = self._eval_storage(frame, e.base)
            if isinstance(base, DerivedValue):
                store = base.fields.get(e.field)
                if store is None:
                    raise FortranRuntimeError(
                        f"TYPE {base.type_name} has no component {e.field!r}"
                    )
                return store
            raise FortranRuntimeError(f"%{e.field} on a non-TYPE value")
        if isinstance(e, FIndexed):
            # Element of array-of-derived or sub-array: only element access
            # of numeric arrays is supported as storage.
            base = self._eval_storage(frame, e.base)
            idx = tuple(self._as_int(self._eval(a, frame)) - 1 for a in e.args)
            self._check_bounds(base, idx, e)
            if isinstance(base, np.ndarray):
                return base[idx]
            raise FortranRuntimeError("unsupported indexed storage")
        raise FortranRuntimeError(f"not a designator: {type(e).__name__}")

    @staticmethod
    def _check_bounds(store: Any, idx: tuple, node: FExpr) -> None:
        if not isinstance(store, np.ndarray):
            raise FortranRuntimeError("indexing a non-array")
        if len(idx) != store.ndim:
            raise FortranRuntimeError(
                f"rank mismatch: {len(idx)} subscript(s) for rank-{store.ndim} array"
            )
        for k, (i, n) in enumerate(zip(idx, store.shape)):
            if not (0 <= i < n):
                raise FortranRuntimeError(
                    f"subscript {i + 1} out of bounds for dimension {k + 1} (extent {n})"
                )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval_actual(self, frame: _Frame, e: FExpr) -> Any:
        """Evaluate an actual argument, passing storage by reference when
        the argument is a designator."""
        if isinstance(e, FVar):
            slot = frame.locals.get(e.name) or self._lookup_nonlocal_slot(frame, e.name)
            if slot is not None:
                if slot.store is None:
                    raise FortranRuntimeError(f"{e.name!r} used before ALLOCATE")
                return slot.store
        if isinstance(e, FFieldRef):
            return self._eval_storage(frame, e)
        if isinstance(e, FIndexed) and isinstance(e.base, (FVar, FFieldRef)):
            # Array element by reference (0-d view) if base is an array.
            try:
                base = self._eval_storage(frame, e.base)
            except FortranRuntimeError:
                base = None
            if isinstance(base, np.ndarray) and base.ndim == len(e.args) and base.ndim > 0:
                idx = tuple(self._as_int(self._eval(a, frame)) - 1 for a in e.args)
                self._check_bounds(base, idx, e)
                view = base[idx[:-1] + (slice(idx[-1], idx[-1] + 1),)]
                return view.reshape(())
        value = self._eval(e, frame)
        if isinstance(value, np.ndarray):
            return value
        cell = np.zeros((), dtype=np.asarray(value).dtype if not isinstance(value, bool) else np.bool_)
        cell[()] = value
        return cell

    def _as_int(self, v: Any) -> int:
        if isinstance(v, np.ndarray):
            if v.ndim != 0:
                raise FortranRuntimeError("array used where a scalar is required")
            v = v[()]
        return int(v)

    def _eval(self, e: FExpr, frame: _Frame) -> Any:
        if isinstance(e, FNum):
            if isinstance(e.value, int):
                return np.int64(e.value)
            return np.float64(e.value)
        if isinstance(e, FString):
            return e.value
        if isinstance(e, FLogical):
            return np.bool_(e.value)
        if isinstance(e, FVar):
            slot = frame.locals.get(e.name) or self._lookup_nonlocal_slot(frame, e.name)
            if slot is not None:
                if slot.store is None:
                    raise FortranRuntimeError(f"{e.name!r} used before ALLOCATE")
                store = slot.store
                if isinstance(store, np.ndarray) and store.ndim == 0:
                    return store[()]
                return store
            # Argument-less function call? Not supported; report clearly.
            raise FortranRuntimeError(f"unknown name {e.name!r}")
        if isinstance(e, FFieldRef):
            store = self._eval_storage(frame, e)
            if isinstance(store, np.ndarray) and store.ndim == 0:
                return store[()]
            return store
        if isinstance(e, FIndexed):
            return self._eval_indexed(e, frame)
        if isinstance(e, FUn):
            v = self._eval(e.operand, frame)
            if e.op == "neg":
                return -v
            if e.op == "not":
                return np.bool_(not bool(v))
            return v
        if isinstance(e, FBin):
            return self._eval_bin(e, frame)
        raise FortranRuntimeError(f"cannot evaluate {type(e).__name__}")

    def _eval_indexed(self, e: FIndexed, frame: _Frame) -> Any:
        # Resolution order: variable (array) -> user subprogram -> intrinsic.
        if isinstance(e.base, FVar):
            name = e.base.name
            slot = frame.locals.get(name) or self._lookup_nonlocal_slot(frame, name)
            if slot is not None:
                store = slot.store
                if store is None:
                    raise FortranRuntimeError(f"{name!r} used before ALLOCATE")
                if isinstance(store, np.ndarray):
                    idx = tuple(self._as_int(self._eval(a, frame)) - 1 for a in e.args)
                    self._check_bounds(store, idx, e)
                    return store[idx]
                raise FortranRuntimeError(f"{name!r} is not indexable")
            if name in SPECIAL_FORMS:
                return self._special_form(name, e.args, frame)
            try:
                sub, env = self._find_callee(frame, name)
            except FortranRuntimeError:
                sub = None
            if sub is not None:
                args = [self._eval_actual(frame, a) for a in e.args]
                return self._invoke(sub, env, args)
            fn = INTRINSICS.get(name)
            if fn is not None:
                args = [self._eval(a, frame) for a in e.args]
                return fn(*args)
            raise FortranRuntimeError(f"unknown array/function {name!r}")
        if isinstance(e.base, FFieldRef):
            store = self._eval_storage(frame, e.base)
            if isinstance(store, np.ndarray):
                idx = tuple(self._as_int(self._eval(a, frame)) - 1 for a in e.args)
                self._check_bounds(store, idx, e)
                return store[idx]
        raise FortranRuntimeError("unsupported indexed expression")

    def _special_form(self, name: str, args: tuple[FExpr, ...], frame: _Frame) -> Any:
        if name == "allocated":
            if len(args) != 1:
                raise FortranRuntimeError("ALLOCATED takes one argument")
            slot = self._resolve_slot(frame, args[0])
            return np.bool_(slot.allocated)
        raise FortranRuntimeError(f"unknown special form {name!r}")

    def _eval_bin(self, e: FBin, frame: _Frame) -> Any:
        op = e.op
        if op == "and":
            return np.bool_(bool(self._eval(e.left, frame)) and bool(self._eval(e.right, frame)))
        if op == "or":
            return np.bool_(bool(self._eval(e.left, frame)) or bool(self._eval(e.right, frame)))
        lv = self._eval(e.left, frame)
        rv = self._eval(e.right, frame)
        if op == "+":
            return lv + rv
        if op == "-":
            return lv - rv
        if op == "*":
            return lv * rv
        if op == "/":
            if self._int_like(lv) and self._int_like(rv):
                return np.int64(np.trunc(lv / rv))
            return lv / rv
        if op == "**":
            return lv ** rv
        if op == "==":
            return np.bool_(lv == rv)
        if op == "/=":
            return np.bool_(lv != rv)
        if op == "<":
            return np.bool_(lv < rv)
        if op == "<=":
            return np.bool_(lv <= rv)
        if op == ">":
            return np.bool_(lv > rv)
        if op == ">=":
            return np.bool_(lv >= rv)
        raise FortranRuntimeError(f"unknown operator {op!r}")

    @staticmethod
    def _int_like(v: Any) -> bool:
        if isinstance(v, bool) or isinstance(v, np.bool_):
            return False
        if isinstance(v, (int, np.integer)):
            return True
        return isinstance(v, np.ndarray) and v.ndim == 0 and np.issubdtype(v.dtype, np.integer)
