"""Legacy-FORTRAN substrate: lexer, parser and interpreter for the subset
needed to execute GLAF-generated code inside synthetic legacy codebases."""

from .interp import DerivedValue, FortranRuntime, OmpEvent, Slot, StopSignal
from .lexer import Token, tokenize
from .parser import Parser, parse_source

__all__ = [
    "FortranRuntime", "DerivedValue", "OmpEvent", "Slot", "StopSignal",
    "Token", "tokenize",
    "Parser", "parse_source",
]
