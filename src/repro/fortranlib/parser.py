"""Recursive-descent parser for the FORTRAN subset.

Accepts free-form source containing MODULEs (with CONTAINS), PROGRAM units,
bare subprograms, and the statement set described in
:mod:`repro.fortranlib.ast`.  Both modern (``REAL(KIND=8) :: x(n)``) and
legacy (``REAL*8 x(n)``) declaration styles are accepted, since the
case-study "legacy" sources deliberately use FORTRAN-77 idioms (COMMON
blocks) alongside modern modules.
"""

from __future__ import annotations

import re

from ..errors import DiagnosticBundle, FortranSyntaxError
from .ast import (
    FAllocate,
    FAssign,
    FBin,
    FCall,
    FCommon,
    FContinue,
    FCycle,
    FDeallocate,
    FDecl,
    FDeclEntity,
    FDo,
    FDoWhile,
    FExit,
    FExpr,
    FFieldRef,
    FIf,
    FImplicitNone,
    FIndexed,
    FLogical,
    FModule,
    FNum,
    FOmpClause,
    FOmpDirective,
    FPrint,
    FProgramUnit,
    FReturn,
    FSourceFile,
    FStop,
    FStmt,
    FString,
    FSubprogram,
    FTypeDef,
    FTypeSpec,
    FUn,
    FUse,
    FVar,
)
from .lexer import Token, TokenStream, tokenize

__all__ = ["parse_source", "Parser"]

_TYPE_KEYWORDS = {"integer", "real", "double", "logical", "character", "type"}
_ATTR_KEYWORDS = {"parameter", "allocatable", "save", "pointer", "target"}


def parse_source(source: str, *, recover: bool = False) -> FSourceFile:
    """Parse ``source``; with ``recover=True`` the parser resynchronizes at
    statement and unit boundaries, collecting every syntax error into one
    :class:`DiagnosticBundle` (raised at the end, with the partial parse
    attached) instead of stopping at the first."""
    from ..observe import get_metrics, get_tracer

    with get_tracer().span("fortran.parse") as _sp:
        try:
            f = Parser(source, recover=recover).parse_file()
        except DiagnosticBundle:
            raise
        except FortranSyntaxError as e:
            if recover:
                # Lexer errors surface before any parsing can start; wrap
                # them so recover-mode callers see one exception type.
                raise DiagnosticBundle([e], partial=FSourceFile()) from e
            raise
        n_units = len(f.modules) + len(f.programs) + len(f.subprograms)
        _sp.set(units=n_units)
        get_metrics().counter("fortran.parse.units").inc(n_units)
        return f


class _RecoveryAbort(Exception):
    """Internal: recovery cannot make progress (or hit the diagnostics cap)."""


def _attach_omp(stmts: list) -> None:
    """Attach each ``parallel_do`` directive to the loop that follows it.

    The directive stays in the statement list (the interpreter and the
    performance model both walk the stream), but the following
    :class:`FDo` also gets it as :attr:`FDo.omp` so AST consumers — the
    static linter above all — see directive and loop as one region.
    """
    pending: FOmpDirective | None = None
    for s in stmts:
        if isinstance(s, FOmpDirective):
            pending = s if s.kind == "parallel_do" else None
            continue
        if isinstance(s, FDo):
            if pending is not None:
                s.omp = pending
            _attach_omp(s.body)
        elif isinstance(s, FDoWhile):
            _attach_omp(s.body)
        elif isinstance(s, FIf):
            for _, body in s.branches:
                _attach_omp(body)
        pending = None


def _attach_omp_file(out: FSourceFile) -> None:
    units = list(out.subprograms)
    for mod in out.modules:
        units.extend(mod.subprograms)
    for prog in out.programs:
        _attach_omp(prog.body)
        units.extend(prog.subprograms)
    for sub in units:
        _attach_omp(sub.body)


class Parser:
    def __init__(self, source: str, *, recover: bool = False,
                 max_diagnostics: int = 50):
        self.ts = TokenStream(tokenize(source))
        self.recover = recover
        self.max_diagnostics = max_diagnostics
        self.diagnostics: list[FortranSyntaxError] = []

    # ------------------------------------------------------------------
    # error recovery
    # ------------------------------------------------------------------
    def _note(self, err: FortranSyntaxError) -> None:
        self.diagnostics.append(err)
        if len(self.diagnostics) >= self.max_diagnostics:
            raise _RecoveryAbort()

    def _resync(self) -> None:
        """Statement-level resynchronization: skip past the next newline."""
        ts = self.ts
        while not (ts.at("newline") or ts.at("eof")):
            ts.next()
        if ts.at("newline"):
            ts.next()

    def _resync_unit(self) -> None:
        """Unit-level resynchronization: skip lines until a unit start."""
        ts = self.ts
        while not ts.at("eof"):
            ts.skip_newlines()
            if ts.at("eof"):
                return
            if (
                (ts.at_name("module") and ts.peek(1).kind == "name")
                or ts.at_name("program")
                or self._at_subprogram_start()
            ):
                return
            while not (ts.at("newline") or ts.at("eof")):
                ts.next()

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse_file(self) -> FSourceFile:
        out = FSourceFile()
        ts = self.ts
        ts.skip_newlines()
        while not ts.at("eof"):
            pos = ts.pos
            try:
                if ts.at_name("module") and ts.peek(1).kind == "name":
                    out.modules.append(self.parse_module())
                elif ts.at_name("program"):
                    out.programs.append(self.parse_program())
                elif self._at_subprogram_start():
                    out.subprograms.append(self.parse_subprogram())
                else:
                    t = ts.peek()
                    raise FortranSyntaxError(
                        f"expected MODULE, PROGRAM, SUBROUTINE or FUNCTION, found {t.text!r}",
                        t.line, t.col,
                    )
            except FortranSyntaxError as e:
                if not self.recover:
                    raise
                try:
                    self._note(e)
                except _RecoveryAbort:
                    break
                self._resync_unit()
                if ts.pos == pos:
                    break
            except _RecoveryAbort:
                break
            ts.skip_newlines()
        _attach_omp_file(out)
        if self.diagnostics:
            raise DiagnosticBundle(self.diagnostics, partial=out)
        return out

    def _at_subprogram_start(self) -> bool:
        ts = self.ts
        if ts.at_name("subroutine", "function"):
            return True
        # "REAL(KIND=8) FUNCTION foo(...)" style prefix.
        if ts.at("name") and ts.peek().lower() in _TYPE_KEYWORDS:
            i = 1
            depth = 0
            while True:
                t = ts.peek(i)
                if t.kind == "eof" or t.kind == "newline":
                    return False
                if t.kind == "op" and t.text == "(":
                    depth += 1
                elif t.kind == "op" and t.text == ")":
                    depth -= 1
                elif depth == 0 and t.kind == "name" and t.lower() == "function":
                    return True
                elif depth == 0 and t.kind == "op" and t.text == "::":
                    return False
                i += 1
        return False

    # ------------------------------------------------------------------
    # modules / programs
    # ------------------------------------------------------------------
    def parse_module(self) -> FModule:
        ts = self.ts
        start = ts.expect("name")  # MODULE
        name = ts.expect("name").lower()
        ts.expect_eol()
        mod = FModule(name=name, line=start.line)
        ts.skip_newlines()
        while True:
            if ts.peek().kind == "omp":
                # Module-level sentinels: THREADPRIVATE(...) and friends.
                mod.decls.append(self._parse_omp(ts.peek()))
                ts.skip_newlines()
                continue
            if ts.at_name("contains"):
                ts.next()
                ts.expect_eol()
                ts.skip_newlines()
                while not ts.at_name("end"):
                    mod.subprograms.append(self.parse_subprogram())
                    ts.skip_newlines()
                break
            if ts.at_name("end"):
                break
            mod.decls.append(self.parse_spec_statement())
            ts.skip_newlines()
        self._parse_end(("module",), name)
        return mod

    def parse_program(self) -> FProgramUnit:
        ts = self.ts
        start = ts.expect("name")  # PROGRAM
        name = ts.expect("name").lower()
        ts.expect_eol()
        unit = FProgramUnit(name=name, line=start.line)
        ts.skip_newlines()
        decls, body = self._parse_unit_body(end_kinds=("program",), unit_name=name,
                                            contains_target=unit.subprograms)
        unit.decls, unit.body = decls, body
        return unit

    def _parse_end(self, kinds: tuple[str, ...], name: str | None) -> None:
        ts = self.ts
        t = ts.expect("name")  # END
        if t.lower() != "end":
            raise FortranSyntaxError(f"expected END, found {t.text!r}", t.line, t.col)
        if ts.at("name") and ts.peek().lower() in kinds:
            ts.next()
            if ts.at("name"):
                ts.next()  # optional unit name
        ts.expect_eol()

    # ------------------------------------------------------------------
    # subprograms
    # ------------------------------------------------------------------
    def parse_subprogram(self) -> FSubprogram:
        ts = self.ts
        line = ts.peek().line
        # Optional function type prefix (recorded as a declaration for the
        # result variable).
        prefix_spec: FTypeSpec | None = None
        if ts.at("name") and ts.peek().lower() in _TYPE_KEYWORDS and not ts.at_name("type"):
            prefix_spec = self.parse_type_spec()
        kw = ts.expect("name").lower()
        if kw not in ("subroutine", "function"):
            raise FortranSyntaxError(f"expected SUBROUTINE or FUNCTION, found {kw!r}",
                                     line, None)
        name = ts.expect("name").lower()
        params: list[str] = []
        if ts.accept("op", "("):
            while not ts.at("op", ")"):
                params.append(ts.expect("name").lower())
                if not ts.accept("op", ","):
                    break
            ts.expect("op", ")")
        result = None
        if ts.at_name("result"):
            ts.next()
            ts.expect("op", "(")
            result = ts.expect("name").lower()
            ts.expect("op", ")")
        ts.expect_eol()
        if kw == "function" and result is None:
            result = name
        ts.skip_newlines()
        decls, body = self._parse_unit_body(
            end_kinds=("subroutine", "function"), unit_name=name, contains_target=None
        )
        if prefix_spec is not None and result is not None:
            decls.insert(0, FDecl(spec=prefix_spec, attrs=(), intent=None,
                                  entities=[FDeclEntity(name=result)], line=line))
        return FSubprogram(kind=kw, name=name, params=params, result=result,
                           decls=decls, body=body, line=line)

    def _parse_unit_body(
        self, end_kinds: tuple[str, ...], unit_name: str,
        contains_target: list | None,
    ) -> tuple[list[FStmt], list[FStmt]]:
        ts = self.ts
        decls: list[FStmt] = []
        body: list[FStmt] = []
        while True:
            ts.skip_newlines()
            if ts.at_name("end") and not ts.at_name("enddo", "endif"):
                nxt = ts.peek(1)
                if nxt.kind in ("newline", "eof") or (
                    nxt.kind == "name" and nxt.lower() in end_kinds
                ):
                    break
            if ts.at_name("contains") and contains_target is not None:
                ts.next()
                ts.expect_eol()
                ts.skip_newlines()
                while not ts.at_name("end"):
                    contains_target.append(self.parse_subprogram())
                    ts.skip_newlines()
                break
            if self._at_spec_statement():
                self._recovering_parse(self.parse_spec_statement, decls)
            else:
                self._recovering_parse(self.parse_exec_statement, body)
        self._parse_end(end_kinds, unit_name)
        return decls, body

    def _recovering_parse(self, parse_fn, sink: list) -> None:
        """Parse one statement into ``sink``; in recovery mode a syntax
        error is recorded and the stream resynchronized past the next
        newline (aborting if that makes no progress, e.g. at EOF)."""
        pos = self.ts.pos
        try:
            sink.append(parse_fn())
        except FortranSyntaxError as e:
            if not self.recover:
                raise
            self._note(e)
            self._resync()
            if self.ts.pos == pos:
                raise _RecoveryAbort()

    # ------------------------------------------------------------------
    # specification statements
    # ------------------------------------------------------------------
    def _at_spec_statement(self) -> bool:
        ts = self.ts
        if ts.at_name("use", "implicit", "common"):
            return True
        if ts.at("name") and ts.peek().lower() in _TYPE_KEYWORDS:
            if ts.at_name("type"):
                # TYPE(name) :: x  is a declaration; TYPE name is a typedef;
                # type_var%field = ... would be 'name' op '%', not keyword.
                nxt = ts.peek(1)
                return nxt.kind == "op" and nxt.text == "(" or nxt.kind == "name" \
                    or (nxt.kind == "op" and nxt.text == "::")
            # Distinguish "REAL(...) :: x" / "REAL x" declaration from an
            # assignment to a variable that happens to be named like a type
            # keyword (we simply forbid such variable names).
            return True
        return False

    def parse_spec_statement(self) -> FStmt:
        ts = self.ts
        t = ts.peek()
        if ts.at_name("use"):
            ts.next()
            module = ts.expect("name").lower()
            only = None
            if ts.accept("op", ","):
                word = ts.expect("name")
                if word.lower() != "only":
                    raise FortranSyntaxError("expected ONLY", word.line, word.col)
                ts.expect("op", ":")
                names = [ts.expect("name").lower()]
                while ts.accept("op", ","):
                    names.append(ts.expect("name").lower())
                only = tuple(names)
            ts.expect_eol()
            return FUse(module=module, only=only, line=t.line)
        if ts.at_name("implicit"):
            ts.next()
            word = ts.expect("name")
            if word.lower() != "none":
                raise FortranSyntaxError("only IMPLICIT NONE is supported",
                                         word.line, word.col)
            ts.expect_eol()
            return FImplicitNone(line=t.line)
        if ts.at_name("common"):
            ts.next()
            ts.expect("op", "/")
            block = ts.expect("name").lower()
            ts.expect("op", "/")
            names = [ts.expect("name").lower()]
            while ts.accept("op", ","):
                names.append(ts.expect("name").lower())
            ts.expect_eol()
            return FCommon(block=block, names=names, line=t.line)
        if ts.at_name("type") and ts.peek(1).kind == "name":
            return self.parse_type_def()
        return self.parse_declaration()

    def parse_type_def(self) -> FTypeDef:
        ts = self.ts
        t = ts.expect("name")  # TYPE
        name = ts.expect("name").lower()
        ts.expect_eol()
        decls: list[FDecl] = []
        ts.skip_newlines()
        while not ts.at_name("end"):
            stmt = self.parse_declaration()
            decls.append(stmt)
            ts.skip_newlines()
        self._parse_end(("type",), name)
        return FTypeDef(name=name, decls=decls, line=t.line)

    def parse_type_spec(self) -> FTypeSpec:
        ts = self.ts
        t = ts.expect("name")
        base = t.lower()
        if base == "double":
            word = ts.expect("name")
            if word.lower() != "precision":
                raise FortranSyntaxError("expected DOUBLE PRECISION", word.line, word.col)
            return FTypeSpec(base="real", kind=8)
        if base == "type":
            ts.expect("op", "(")
            tname = ts.expect("name").lower()
            ts.expect("op", ")")
            return FTypeSpec(base="type", type_name=tname)
        kind = 4
        char_len: int | None = None
        if base == "character":
            char_len = 64
            if ts.accept("op", "("):
                if ts.at_name("len"):
                    ts.next()
                    ts.expect("op", "=")
                tok = ts.accept("int")
                if tok:
                    char_len = int(tok.text)
                elif ts.accept("op", "*"):
                    char_len = None
                ts.expect("op", ")")
            elif ts.accept("op", "*"):
                char_len = int(ts.expect("int").text)
            return FTypeSpec(base="character", char_len=char_len)
        if ts.accept("op", "*"):  # REAL*8 legacy kind
            kind = int(ts.expect("int").text)
        elif ts.at("op", "(") and base in ("integer", "real", "logical"):
            # REAL(KIND=8) or REAL(8)
            ts.next()
            if ts.at_name("kind"):
                ts.next()
                ts.expect("op", "=")
            kind = int(ts.expect("int").text)
            ts.expect("op", ")")
        if base == "real" and kind not in (4, 8):
            raise FortranSyntaxError(f"unsupported REAL kind {kind}", t.line, t.col)
        return FTypeSpec(base=base, kind=kind)

    def parse_declaration(self) -> FDecl:
        ts = self.ts
        t = ts.peek()
        spec = self.parse_type_spec()
        attrs: list[str] = []
        intent: str | None = None
        dimension_dims: tuple | None = None
        while ts.accept("op", ","):
            word = ts.expect("name").lower()
            if word == "intent":
                ts.expect("op", "(")
                intent = ts.expect("name").lower()
                ts.expect("op", ")")
            elif word == "dimension":
                dims, deferred = self._parse_dims()
                dimension_dims = (dims, deferred)
            elif word in _ATTR_KEYWORDS:
                attrs.append(word)
            else:
                raise FortranSyntaxError(f"unknown attribute {word!r}", t.line, t.col)
        ts.accept("op", "::")
        entities: list[FDeclEntity] = []
        while True:
            name = ts.expect("name").lower()
            dims: tuple = ()
            deferred = 0
            if ts.at("op", "("):
                dims, deferred = self._parse_dims()
            elif dimension_dims is not None:
                dims, deferred = dimension_dims
            init: FExpr | None = None
            if ts.accept("op", "="):
                init = self.parse_expr()
            entities.append(FDeclEntity(name=name, dims=dims,
                                        deferred_rank=deferred, init=init))
            if not ts.accept("op", ","):
                break
        ts.expect_eol()
        return FDecl(spec=spec, attrs=tuple(attrs), intent=intent,
                     entities=entities, line=t.line)

    def _parse_dims(self) -> tuple[tuple[FExpr, ...], int]:
        ts = self.ts
        ts.expect("op", "(")
        dims: list[FExpr] = []
        deferred = 0
        while True:
            if ts.at("op", ":"):
                ts.next()
                deferred += 1
                dims.append(FNum(0))
            else:
                dims.append(self.parse_expr())
            if not ts.accept("op", ","):
                break
        ts.expect("op", ")")
        if deferred and deferred != len(dims):
            raise FortranSyntaxError("mixed explicit and deferred dimensions",
                                     ts.peek().line, ts.peek().col)
        return tuple(dims), deferred

    # ------------------------------------------------------------------
    # executable statements
    # ------------------------------------------------------------------
    def parse_exec_statement(self) -> FStmt:
        ts = self.ts
        t = ts.peek()
        if t.kind == "omp":
            return self._parse_omp(t)
        if ts.at_name("if"):
            return self.parse_if()
        if ts.at_name("do"):
            return self.parse_do()
        if ts.at_name("call"):
            ts.next()
            name = ts.expect("name").lower()
            args: list[FExpr] = []
            if ts.accept("op", "("):
                while not ts.at("op", ")"):
                    args.append(self.parse_expr())
                    if not ts.accept("op", ","):
                        break
                ts.expect("op", ")")
            ts.expect_eol()
            return FCall(name=name, args=tuple(args), line=t.line)
        if ts.at_name("return"):
            ts.next()
            ts.expect_eol()
            return FReturn(line=t.line)
        if ts.at_name("exit"):
            ts.next()
            ts.expect_eol()
            return FExit(line=t.line)
        if ts.at_name("cycle"):
            ts.next()
            ts.expect_eol()
            return FCycle(line=t.line)
        if ts.at_name("continue"):
            ts.next()
            ts.expect_eol()
            return FContinue(line=t.line)
        if ts.at_name("stop"):
            ts.next()
            msg = None
            if ts.at("string"):
                msg = ts.next().text
            elif ts.at("int"):
                msg = ts.next().text
            ts.expect_eol()
            return FStop(message=msg, line=t.line)
        if ts.at_name("allocate"):
            ts.next()
            ts.expect("op", "(")
            items: list[tuple[FExpr, tuple[FExpr, ...]]] = []
            while True:
                target = self.parse_designator()
                if not isinstance(target, FIndexed):
                    raise FortranSyntaxError("ALLOCATE needs shaped items",
                                             t.line, t.col)
                items.append((target.base, target.args))
                if not ts.accept("op", ","):
                    break
            ts.expect("op", ")")
            ts.expect_eol()
            return FAllocate(items=items, line=t.line)
        if ts.at_name("deallocate"):
            ts.next()
            ts.expect("op", "(")
            items = [self.parse_designator()]
            while ts.accept("op", ","):
                items.append(self.parse_designator())
            ts.expect("op", ")")
            ts.expect_eol()
            return FDeallocate(items=items, line=t.line)
        if ts.at_name("print"):
            ts.next()
            ts.expect("op", "*")
            args: list[FExpr] = []
            while ts.accept("op", ","):
                args.append(self.parse_expr())
            ts.expect_eol()
            return FPrint(args=tuple(args), line=t.line)
        if ts.at_name("write"):
            # WRITE(*,*) args — treated as PRINT.
            ts.next()
            ts.expect("op", "(")
            depth = 1
            while depth:
                tok = ts.next()
                if tok.kind == "op" and tok.text == "(":
                    depth += 1
                elif tok.kind == "op" and tok.text == ")":
                    depth -= 1
                elif tok.kind in ("newline", "eof"):
                    raise FortranSyntaxError("bad WRITE control list", t.line, t.col)
            args = []
            if not ts.at("newline"):
                args.append(self.parse_expr())
                while ts.accept("op", ","):
                    args.append(self.parse_expr())
            ts.expect_eol()
            return FPrint(args=tuple(args), line=t.line)
        # Assignment.
        target = self.parse_designator()
        ts.expect("op", "=")
        value = self.parse_expr()
        ts.expect_eol()
        return FAssign(target=target, value=value, line=t.line)

    # -- OMP ---------------------------------------------------------------
    _OMP_CLAUSE = re.compile(r"([a-z_]+)\s*(?:\(([^()]*)\))?", re.IGNORECASE)

    def _parse_omp_clauses(self, low: str, prefix: str,
                           t: Token) -> tuple[FOmpClause, ...]:
        """Parse the clause list following the directive keywords.

        ``low`` is the whitespace-normalized lowercase directive text;
        ``prefix`` the directive spelling (e.g. ``"!$omp parallel do"``).
        """
        rest = low[len(prefix):].strip()
        clauses: list[FOmpClause] = []
        pos, n = 0, len(rest)
        while pos < n:
            if rest[pos] in " ,":
                pos += 1
                continue
            m = self._OMP_CLAUSE.match(rest, pos)
            if not m or m.end() == pos:
                raise FortranSyntaxError(
                    f"malformed OMP clause text {rest[pos:]!r}", t.line, None
                )
            clauses.append(self._make_omp_clause(m.group(1), m.group(2), t))
            pos = m.end()
        return tuple(clauses)

    def _make_omp_clause(self, name: str, arg: str | None, t: Token) -> FOmpClause:
        name = name.lower()
        if name in ("collapse", "num_threads"):
            if arg is None or not arg.strip().isdigit():
                raise FortranSyntaxError(
                    f"OMP {name.upper()} needs an integer argument", t.line, None
                )
            return FOmpClause(name=name, value=int(arg))
        if name == "reduction":
            op, sep, var_text = (arg or "").partition(":")
            op = op.strip()
            vars_ = tuple(v.strip().lower() for v in var_text.split(",")
                          if v.strip())
            if not sep or not op or not vars_:
                raise FortranSyntaxError(
                    "OMP REDUCTION needs '(op : var, ...)'", t.line, None
                )
            op = op.upper() if op.lower() in ("min", "max") else op
            return FOmpClause(name=name, op=op, vars=vars_)
        # List-valued clauses (PRIVATE, FIRSTPRIVATE, SHARED, THREADPRIVATE,
        # SCHEDULE, DEFAULT, ...) — keep the argument list as-is.
        vars_ = tuple(v.strip().lower() for v in (arg or "").split(",")
                      if v.strip())
        return FOmpClause(name=name, vars=vars_)

    @staticmethod
    def _clause_vars(clauses: tuple[FOmpClause, ...], name: str) -> tuple[str, ...]:
        return tuple(v for c in clauses if c.name == name for v in c.vars)

    def _parse_omp(self, t: Token) -> FStmt:
        ts = self.ts
        ts.next()
        if ts.at("newline"):
            ts.next()
        text = t.text
        low = " ".join(text.lower().split())
        if low.startswith("!$omp end parallel do"):
            return FOmpDirective(kind="end_parallel_do", text=text, line=t.line)
        if low.startswith("!$omp end critical"):
            return FOmpDirective(kind="end_critical", text=text, line=t.line)
        if low.startswith("!$omp parallel do"):
            clauses = self._parse_omp_clauses(low, "!$omp parallel do", t)
            reds = tuple((c.op, v) for c in clauses if c.name == "reduction"
                         for v in c.vars)
            collapse = next((c.value for c in clauses
                             if c.name == "collapse"), 1)
            return FOmpDirective(kind="parallel_do", text=text,
                                 private=self._clause_vars(clauses, "private"),
                                 firstprivate=self._clause_vars(clauses,
                                                                "firstprivate"),
                                 reductions=reds, collapse=collapse,
                                 clauses=clauses, line=t.line)
        if low.startswith("!$omp atomic"):
            return FOmpDirective(kind="atomic", text=text, line=t.line)
        if low.startswith("!$omp critical"):
            return FOmpDirective(kind="critical", text=text, line=t.line)
        if low.startswith("!$omp end simd"):
            return FOmpDirective(kind="end_simd", text=text, line=t.line)
        if low.startswith("!$omp threadprivate"):
            clauses = self._parse_omp_clauses(low, "!$omp", t)
            names = self._clause_vars(clauses, "threadprivate")
            return FOmpDirective(kind="threadprivate", text=text,
                                 private=names, clauses=clauses, line=t.line)
        if low.startswith("!$omp simd"):
            clauses = self._parse_omp_clauses(low, "!$omp simd", t)
            reds = tuple((c.op, v) for c in clauses if c.name == "reduction"
                         for v in c.vars)
            return FOmpDirective(kind="simd", text=text, reductions=reds,
                                 clauses=clauses, line=t.line)
        raise FortranSyntaxError(f"unsupported OMP directive {text!r}", t.line, None)

    # -- control flow --------------------------------------------------------
    def parse_if(self) -> FStmt:
        ts = self.ts
        t = ts.expect("name")  # IF
        ts.expect("op", "(")
        cond = self.parse_expr()
        ts.expect("op", ")")
        if ts.at_name("then"):
            ts.next()
            ts.expect_eol()
            branches: list[tuple[FExpr | None, list[FStmt]]] = []
            body: list[FStmt] = []
            branches.append((cond, body))
            while True:
                ts.skip_newlines()
                if ts.at_name("else"):
                    ts.next()
                    if ts.at_name("if"):
                        ts.next()
                        ts.expect("op", "(")
                        c2 = self.parse_expr()
                        ts.expect("op", ")")
                        word = ts.expect("name")
                        if word.lower() != "then":
                            raise FortranSyntaxError("expected THEN", word.line, word.col)
                        ts.expect_eol()
                        body = []
                        branches.append((c2, body))
                    else:
                        ts.expect_eol()
                        body = []
                        branches.append((None, body))
                    continue
                if ts.at_name("end"):
                    nxt = ts.peek(1)
                    if nxt.kind == "name" and nxt.lower() == "if":
                        ts.next()
                        ts.next()
                        ts.expect_eol()
                        break
                    raise FortranSyntaxError("expected END IF", nxt.line, nxt.col)
                if ts.at_name("endif"):
                    ts.next()
                    ts.expect_eol()
                    break
                self._recovering_parse(self.parse_exec_statement, body)
            return FIf(branches=branches, line=t.line)
        # One-line IF.
        stmt = self.parse_exec_statement()
        return FIf(branches=[(cond, [stmt])], line=t.line)

    def parse_do(self) -> FStmt:
        ts = self.ts
        t = ts.expect("name")  # DO
        if ts.at_name("while"):
            ts.next()
            ts.expect("op", "(")
            cond = self.parse_expr()
            ts.expect("op", ")")
            ts.expect_eol()
            body = self._parse_do_body()
            return FDoWhile(cond=cond, body=body, line=t.line)
        var = ts.expect("name").lower()
        ts.expect("op", "=")
        start = self.parse_expr()
        ts.expect("op", ",")
        end = self.parse_expr()
        step = None
        if ts.accept("op", ","):
            step = self.parse_expr()
        ts.expect_eol()
        body = self._parse_do_body()
        return FDo(var=var, start=start, end=end, step=step, body=body, line=t.line)

    def _parse_do_body(self) -> list[FStmt]:
        ts = self.ts
        body: list[FStmt] = []
        while True:
            ts.skip_newlines()
            if ts.at_name("end"):
                nxt = ts.peek(1)
                if nxt.kind == "name" and nxt.lower() == "do":
                    ts.next()
                    ts.next()
                    ts.expect_eol()
                    return body
            if ts.at_name("enddo"):
                ts.next()
                ts.expect_eol()
                return body
            self._recovering_parse(self.parse_exec_statement, body)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> FExpr:
        return self._parse_or()

    def _parse_or(self) -> FExpr:
        left = self._parse_and()
        while self.ts.at("op", "or"):
            self.ts.next()
            left = FBin("or", left, self._parse_and())
        return left

    def _parse_and(self) -> FExpr:
        left = self._parse_not()
        while self.ts.at("op", "and"):
            self.ts.next()
            left = FBin("and", left, self._parse_not())
        return left

    def _parse_not(self) -> FExpr:
        if self.ts.at("op", "not"):
            self.ts.next()
            return FUn("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> FExpr:
        left = self._parse_add()
        if self.ts.peek().kind == "op" and self.ts.peek().text in (
            "==", "/=", "<", "<=", ">", ">=",
        ):
            op = self.ts.next().text
            return FBin(op, left, self._parse_add())
        return left

    def _parse_add(self) -> FExpr:
        ts = self.ts
        if ts.at("op", "-"):
            ts.next()
            left: FExpr = FUn("neg", self._parse_mul())
        elif ts.at("op", "+"):
            ts.next()
            left = self._parse_mul()
        else:
            left = self._parse_mul()
        while ts.peek().kind == "op" and ts.peek().text in ("+", "-"):
            op = ts.next().text
            left = FBin(op, left, self._parse_mul())
        return left

    def _parse_mul(self) -> FExpr:
        ts = self.ts
        left = self._parse_unary()
        while ts.peek().kind == "op" and ts.peek().text in ("*", "/"):
            op = ts.next().text
            left = FBin(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> FExpr:
        ts = self.ts
        if ts.at("op", "-"):
            ts.next()
            return FUn("neg", self._parse_unary())
        if ts.at("op", "+"):
            ts.next()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> FExpr:
        left = self._parse_primary()
        if self.ts.at("op", "**"):
            self.ts.next()
            # Right-associative.
            return FBin("**", left, self._parse_unary())
        return left

    def _parse_primary(self) -> FExpr:
        ts = self.ts
        t = ts.peek()
        if t.kind == "int":
            ts.next()
            text = t.text.split("_")[0]
            return FNum(int(text))
        if t.kind == "real":
            ts.next()
            text = t.text.split("_")[0]
            is_double = "d" in text.lower()
            norm = text.lower().replace("d", "e")
            return FNum(float(norm), is_double=is_double)
        if t.kind == "string":
            ts.next()
            return FString(t.text)
        if t.kind == "logical":
            ts.next()
            return FLogical(t.text == "true")
        if ts.accept("op", "("):
            e = self.parse_expr()
            ts.expect("op", ")")
            return e
        if t.kind == "name":
            return self.parse_designator()
        raise FortranSyntaxError(f"unexpected token {t.text!r}", t.line, t.col)

    def parse_designator(self) -> FExpr:
        """``name [ (args) ] [ % field [ (args) ] ]*``"""
        ts = self.ts
        name = ts.expect("name")
        node: FExpr = FVar(name.lower())
        while True:
            if ts.at("op", "("):
                ts.next()
                args: list[FExpr] = []
                while not ts.at("op", ")"):
                    args.append(self.parse_expr())
                    if not ts.accept("op", ","):
                        break
                ts.expect("op", ")")
                node = FIndexed(base=node, args=tuple(args))
            elif ts.at("op", "%"):
                ts.next()
                fieldname = ts.expect("name").lower()
                node = FFieldRef(base=node, field=fieldname)
            else:
                return node
