"""Tokenizer for the FORTRAN subset (free-form source).

Handles case-insensitive keywords/identifiers, integer/real literals with
``E``/``D`` exponents, string literals with doubled-quote escaping, dotted
logical operators (``.AND.``), ``&`` continuation lines, ``!`` comments, and
``!$OMP`` sentinels (surfaced as dedicated OMP tokens carrying their text).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import FortranSyntaxError
from ..robust import inject

__all__ = ["Token", "tokenize", "TokenStream"]


@dataclass(frozen=True)
class Token:
    kind: str        # 'name','int','real','string','op','newline','omp','eof'
    text: str
    line: int
    col: int

    def lower(self) -> str:
        return self.text.lower()


_OPS = [
    "::", "**", "==", "/=", "<=", ">=", "=>",
    "(", ")", ",", "+", "-", "*", "/", "<", ">", "=", "%", ":", ";",
]
_DOTTED = {
    ".and.": "and", ".or.": "or", ".not.": "not",
    ".true.": "true", ".false.": "false",
    ".eq.": "==", ".ne.": "/=", ".lt.": "<", ".le.": "<=",
    ".gt.": ">", ".ge.": ">=",
}

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(
    r"(\d+\.\d*|\.\d+|\d+)(([eEdD])([+-]?\d+))?(_\d+)?"
)


def tokenize(source: str) -> list[Token]:
    from ..observe import get_metrics, get_tracer

    with get_tracer().span("fortran.lex") as _sp:
        tokens = _tokenize(source)
        tokens = inject("fortran.lex.tokens", tokens) or tokens
        _sp.set(tokens=len(tokens))
        get_metrics().counter("fortran.lex.tokens").inc(len(tokens))
        return tokens


def _tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    lines = source.splitlines()
    pending_continuation = False
    # An OMP directive whose last line ended with '&': it continues on the
    # next line, which must be another '!$OMP' (or '!$OMP&') sentinel line.
    omp_open: Token | None = None

    for lineno, raw in enumerate(lines, start=1):
        line = raw
        i = 0
        n = len(line)
        emitted_on_line = False

        if omp_open is not None and not line.lstrip().upper().startswith("!$OMP"):
            raise FortranSyntaxError(
                "'!$OMP' continuation ('&') not followed by an '!$OMP' line",
                omp_open.line, omp_open.col,
            )

        while i < n:
            c = line[i]
            if c in " \t":
                i += 1
                continue
            if c == "!":
                rest = line[i:]
                if rest.upper().startswith("!$OMP"):
                    text = rest.strip()
                    if omp_open is not None:
                        # Continuation line: drop the '!$OMP' (or '!$OMP&')
                        # sentinel and splice onto the open directive.
                        body = text[5:]
                        if body.startswith("&"):
                            body = body[1:]
                        text = f"{omp_open.text} {body.strip()}"
                        omp_open = Token("omp", text, omp_open.line, omp_open.col)
                    else:
                        omp_open = Token("omp", text, lineno, i + 1)
                    if omp_open.text.endswith("&"):
                        # Multi-line directive: stay open for the next line.
                        omp_open = Token("omp", omp_open.text[:-1].rstrip(),
                                         omp_open.line, omp_open.col)
                    else:
                        tokens.append(omp_open)
                        omp_open = None
                        emitted_on_line = True
                i = n
                break
            if c == "&":
                # Continuation: swallow the rest of the line (after optional
                # comment) and suppress the newline.
                j = i + 1
                while j < n and line[j] in " \t":
                    j += 1
                if j < n and line[j] != "!":
                    raise FortranSyntaxError(
                        "unexpected text after continuation '&'", lineno, j + 1
                    )
                pending_continuation = True
                i = n
                break
            if c == ";":
                tokens.append(Token("newline", ";", lineno, i + 1))
                i += 1
                continue
            if c in "'\"":
                quote = c
                j = i + 1
                buf = []
                while True:
                    if j >= n:
                        raise FortranSyntaxError("unterminated string", lineno, i + 1)
                    if line[j] == quote:
                        if j + 1 < n and line[j + 1] == quote:
                            buf.append(quote)
                            j += 2
                            continue
                        break
                    buf.append(line[j])
                    j += 1
                tokens.append(Token("string", "".join(buf), lineno, i + 1))
                i = j + 1
                emitted_on_line = True
                continue
            if c == ".":
                m = re.match(r"\.[A-Za-z]+\.", line[i:])
                if m and m.group(0).lower() in _DOTTED:
                    word = _DOTTED[m.group(0).lower()]
                    kind = "op" if word not in ("true", "false") else "logical"
                    tokens.append(Token(kind, word, lineno, i + 1))
                    i += m.end()
                    emitted_on_line = True
                    continue
                # else: fall through to number like .5
            m = _NUM_RE.match(line, i)
            if m and (c.isdigit() or c == "."):
                text = m.group(0)
                has_dot = "." in m.group(1)
                exp = m.group(3)
                if has_dot or exp:
                    tokens.append(Token("real", text, lineno, i + 1))
                else:
                    tokens.append(Token("int", text, lineno, i + 1))
                i = m.end()
                emitted_on_line = True
                continue
            m = _NAME_RE.match(line, i)
            if m:
                tokens.append(Token("name", m.group(0), lineno, i + 1))
                i = m.end()
                emitted_on_line = True
                continue
            matched = False
            for op in _OPS:
                if line.startswith(op, i):
                    tokens.append(Token("op", op, lineno, i + 1))
                    i += len(op)
                    matched = True
                    emitted_on_line = True
                    break
            if not matched:
                raise FortranSyntaxError(f"unexpected character {c!r}", lineno, i + 1)

        if pending_continuation:
            pending_continuation = False
            continue
        if omp_open is not None:
            continue          # directive still open: no newline token yet
        if emitted_on_line or (tokens and tokens[-1].kind != "newline"):
            tokens.append(Token("newline", "\n", lineno, n + 1))

    if omp_open is not None:
        raise FortranSyntaxError(
            "'!$OMP' continuation ('&') at end of source",
            omp_open.line, omp_open.col,
        )
    tokens.append(Token("eof", "", len(lines) + 1, 1))
    return tokens


class TokenStream:
    """Cursor over the token list with convenience matchers."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        t = self.peek()
        if t.kind != "eof":
            self.pos += 1
        return t

    def at(self, kind: str, text: str | None = None) -> bool:
        t = self.peek()
        if t.kind != kind:
            return False
        return text is None or t.lower() == text.lower()

    def at_name(self, *names: str) -> bool:
        t = self.peek()
        return t.kind == "name" and t.lower() in {n.lower() for n in names}

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        t = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise FortranSyntaxError(
                f"expected {want!r}, found {t.text!r}", t.line, t.col
            )
        return self.next()

    def skip_newlines(self) -> None:
        while self.at("newline"):
            self.next()

    def expect_eol(self) -> None:
        t = self.peek()
        if t.kind in ("newline", "eof"):
            if t.kind == "newline":
                self.next()
            return
        raise FortranSyntaxError(
            f"expected end of statement, found {t.text!r}", t.line, t.col
        )
