"""Intrinsic functions for the FORTRAN interpreter.

Most intrinsics delegate to the GLAF library-function registry
(:mod:`repro.core.libfuncs`) so the generated code and the interpreter share
one definition of every function's semantics.  ``ALLOCATED`` is special: it
inspects the interpreter's allocation state rather than a value, so the
interpreter handles it before normal evaluation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core import libfuncs

__all__ = ["INTRINSICS", "is_intrinsic", "SPECIAL_FORMS"]

# Intrinsics that need slot-level (not value-level) access.
SPECIAL_FORMS = {"allocated"}


def _registry_intrinsics() -> dict[str, Callable]:
    out: dict[str, Callable] = {}
    for name, f in libfuncs.REGISTRY.items():
        out[name.lower()] = f.impl
    return out


INTRINSICS: dict[str, Callable] = _registry_intrinsics()

# FORTRAN spellings not covered 1:1 by the GLAF registry.
INTRINSICS.update(
    {
        "dabs": np.abs,
        "dsqrt": np.sqrt,
        "dexp": np.exp,
        "dlog": np.log,
        # Elementwise over the argument list (FORTRAN MAX/MIN are elemental):
        # np.maximum.reduce keeps array arguments elementwise where the old
        # np.max(np.stack(...)) collapsed them to a single scalar.
        "amax1": lambda *xs: np.maximum.reduce(
            [np.asarray(x, dtype=np.float64) for x in xs]),
        "amin1": lambda *xs: np.minimum.reduce(
            [np.asarray(x, dtype=np.float64) for x in xs]),
        "max0": lambda *xs: np.maximum.reduce(
            [np.asarray(x, dtype=np.int64) for x in xs]),
        "min0": lambda *xs: np.minimum.reduce(
            [np.asarray(x, dtype=np.int64) for x in xs]),
        "float": lambda x: np.float64(x),
        "iabs": lambda x: np.abs(np.int64(x)),
        "nint": lambda x: np.int64(np.rint(x)),
        "huge": lambda x: np.float64(np.finfo(np.float64).max)
        if np.issubdtype(np.asarray(x).dtype, np.floating)
        else np.int64(np.iinfo(np.int64).max),
        "tiny": lambda x: np.float64(np.finfo(np.float64).tiny),
        "epsilon": lambda x: np.float64(np.finfo(np.float64).eps),
        "maxloc1": lambda a: np.int64(int(np.argmax(a)) + 1),
        "minloc1": lambda a: np.int64(int(np.argmin(a)) + 1),
        "dot_product": lambda a, b: np.dot(a, b),
        "sqrt2": np.sqrt,
    }
)


def is_intrinsic(name: str) -> bool:
    return name.lower() in INTRINSICS or name.lower() in SPECIAL_FORMS
