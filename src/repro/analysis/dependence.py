"""Dependence tests.

GLAF's parallelism-detection back-end decides, per step, whether executing
the step's iterations concurrently preserves semantics.  The classic tests
implemented here cover the paper's kernels:

* **ZIV** (zero index variable): two constant index forms — dependent iff
  equal, and equality is iteration-independent, so it never serializes.
* **SIV/MIV distance**: identical coefficient vectors with differing
  constants — a loop-carried dependence at constant distance (e.g.
  ``a(i) = a(i-1)``).
* **Different coefficients**: treated conservatively as a potential
  loop-carried dependence (a GCD/Banerjee refinement could prove some of
  these independent; GLAF is conservative here too).
* **Indirect index** (non-affine): conservatively dependent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.grid import Grid
from .accesses import Access, AffineForm

__all__ = [
    "DepKind",
    "Dependence",
    "may_alias",
    "test_pair",
    "test_alias_pair",
    "write_is_injective",
]


class DepKind(enum.Enum):
    NONE = "none"                    # provably no cross-iteration dependence
    LOOP_INDEPENDENT = "loop-independent"  # same-iteration only; harmless
    LOOP_CARRIED = "loop-carried"    # serializes the loop
    UNKNOWN = "unknown"              # conservatively treated as carried


@dataclass(frozen=True)
class Dependence:
    kind: DepKind
    grid: str
    distance: tuple[int | None, ...] = ()   # per-dimension distance if known
    detail: str = ""


def _dim_relation(a: AffineForm | None, b: AffineForm | None) -> tuple[str, int | None]:
    """Classify one dimension pair.

    Returns ``(relation, distance)`` where relation is:

    * ``"equal"``        — identical forms; same element in same iteration.
    * ``"distance"``     — same coefficients, constant offset d != 0.
    * ``"independent"``  — constant forms with different values (ZIV, never equal).
    * ``"unknown"``      — non-affine or differing coefficients.
    """
    if a is None or b is None:
        return "unknown", None
    if a == b:
        return "equal", 0
    if a.coeffs == b.coeffs:
        d = a.const - b.const
        if not a.coeffs:
            return "independent", None  # ZIV: constants differ -> never alias
        return "distance", d
    return "unknown", None


def test_pair(w: Access, other: Access, loop_vars: tuple[str, ...]) -> Dependence:
    """Dependence between a write and another access to the same grid."""
    assert w.grid == other.grid and w.is_write
    from ..observe import get_metrics

    _m = get_metrics()
    if _m.enabled:
        _m.counter("analysis.dependence.tests").inc()
    if len(w.affine) != len(other.affine):
        # Whole-array reference vs indexed reference: conservatively carried.
        return Dependence(DepKind.UNKNOWN, w.grid, detail="rank-mismatched reference")

    if not w.affine:  # scalar grid: every iteration touches the same cell
        if not loop_vars:
            return Dependence(DepKind.LOOP_INDEPENDENT, w.grid, detail="scalar, no loop")
        return Dependence(
            DepKind.LOOP_CARRIED, w.grid, detail="scalar written in every iteration"
        )

    relations = [_dim_relation(a, b) for a, b in zip(w.affine, other.affine)]

    if any(rel == "independent" for rel, _ in relations):
        return Dependence(DepKind.NONE, w.grid, detail="ZIV: constant subscripts differ")

    if any(rel == "unknown" for rel, _ in relations):
        return Dependence(DepKind.UNKNOWN, w.grid, detail="non-affine or MIV subscript")

    distances = tuple(d for _, d in relations)
    if all(rel == "equal" for rel, _ in relations):
        # Same element in the same iteration... but only if the subscripts
        # actually vary with every loop variable; a pair like a(j) = a(j)
        # inside an i-j nest collides across i.
        used = {v for form in w.affine if form is not None for v in form.vars()}
        missing = [v for v in loop_vars if v not in used]
        if missing:
            return Dependence(
                DepKind.LOOP_CARRIED,
                w.grid,
                distance=distances,
                detail=f"subscripts invariant in loop var(s) {missing}",
            )
        return Dependence(DepKind.LOOP_INDEPENDENT, w.grid, distance=distances)

    # Same coefficients, nonzero constant distance in at least one dim.
    return Dependence(
        DepKind.LOOP_CARRIED,
        w.grid,
        distance=distances,
        detail=f"constant dependence distance {distances}",
    )


def may_alias(a: Grid, b: Grid) -> bool:
    """Conservative storage-association test between two grid declarations.

    Distinct GLAF grid names usually mean distinct storage, but the paper's
    §3 integration features open exactly three overlay channels:

    * **same COMMON block** (§3.2): FORTRAN storage association is by block
      layout, not by name — another unit may declare ``/blk/`` with a
      different variable list, so two names bound to the same block can
      denote the same slot.  Within one GLAF program the generated layout
      is consistent, but the legacy side of a splice is under no such
      obligation; treat same-block grids as potential aliases.
    * **TYPE element vs whole parent** (§3.5): ``fin%rad_input`` lives
      inside ``fin``, so a whole-variable reference to the parent overlaps
      every element.
    * **two elements with the same parent and element name**: two grids
      bound to the same ``var%elem`` slot are the same storage.

    Two elements of the same parent with *different* element names are
    disjoint (records do not overlap their own fields), as are unrelated
    locals/globals.
    """
    if a.name == b.name:
        return True
    if (a.common_block is not None
            and a.common_block == b.common_block):
        return True
    # Whole parent vs one of its TYPE elements, either direction.
    if a.is_type_element and a.type_parent == b.name:
        return True
    if b.is_type_element and b.type_parent == a.name:
        return True
    # Same parent, same element name: the same var%elem slot.
    if (a.is_type_element and b.is_type_element
            and a.type_parent == b.type_parent and a.name == b.name):
        return True
    return False


def test_alias_pair(w: Access, other: Access, loop_vars: tuple[str, ...]) -> Dependence:
    """Dependence between a write and an access to a *different-named* grid
    that may share storage (see :func:`may_alias`).

    Subscript forms on the two sides index different base addresses whose
    relative offset the IR does not know, so element-wise affine comparison
    is meaningless; the pair is conservatively :data:`DepKind.UNKNOWN`
    (treated as loop-carried by callers).
    """
    assert w.is_write and w.grid != other.grid
    from ..observe import get_metrics

    _m = get_metrics()
    if _m.enabled:
        _m.counter("analysis.dependence.tests").inc()
    return Dependence(
        DepKind.UNKNOWN, w.grid,
        detail=f"storage association with {other.grid} (COMMON/TYPE overlay)",
    )


def write_is_injective(w: Access, loop_vars: tuple[str, ...]) -> bool:
    """True if distinct iterations provably write distinct elements.

    Sufficient condition used by GLAF: every loop variable appears in
    exactly one subscript dimension, with unit-magnitude... any nonzero
    coefficient works as long as no two loop variables share a dimension
    *and* each dimension is affine.  (A variable appearing in two dimensions
    is still injective, but a dimension combining two variables like
    ``a(i+j)`` is not.)
    """
    if not w.fully_affine:
        return False
    seen: set[str] = set()
    for form in w.affine:
        assert form is not None
        if len(form.vars()) > 1:
            return False
        seen |= form.vars()
    return all(v in seen for v in loop_vars)
