"""Dependence tests.

GLAF's parallelism-detection back-end decides, per step, whether executing
the step's iterations concurrently preserves semantics.  The classic tests
implemented here cover the paper's kernels:

* **ZIV** (zero index variable): two constant index forms — dependent iff
  equal, and equality is iteration-independent, so it never serializes.
* **SIV/MIV distance**: identical coefficient vectors with differing
  constants — a loop-carried dependence at constant distance (e.g.
  ``a(i) = a(i-1)``).
* **Different coefficients**: treated conservatively as a potential
  loop-carried dependence (a GCD/Banerjee refinement could prove some of
  these independent; GLAF is conservative here too).
* **Indirect index** (non-affine): conservatively dependent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .accesses import Access, AffineForm

__all__ = ["DepKind", "Dependence", "test_pair", "write_is_injective"]


class DepKind(enum.Enum):
    NONE = "none"                    # provably no cross-iteration dependence
    LOOP_INDEPENDENT = "loop-independent"  # same-iteration only; harmless
    LOOP_CARRIED = "loop-carried"    # serializes the loop
    UNKNOWN = "unknown"              # conservatively treated as carried


@dataclass(frozen=True)
class Dependence:
    kind: DepKind
    grid: str
    distance: tuple[int | None, ...] = ()   # per-dimension distance if known
    detail: str = ""


def _dim_relation(a: AffineForm | None, b: AffineForm | None) -> tuple[str, int | None]:
    """Classify one dimension pair.

    Returns ``(relation, distance)`` where relation is:

    * ``"equal"``        — identical forms; same element in same iteration.
    * ``"distance"``     — same coefficients, constant offset d != 0.
    * ``"independent"``  — constant forms with different values (ZIV, never equal).
    * ``"unknown"``      — non-affine or differing coefficients.
    """
    if a is None or b is None:
        return "unknown", None
    if a == b:
        return "equal", 0
    if a.coeffs == b.coeffs:
        d = a.const - b.const
        if not a.coeffs:
            return "independent", None  # ZIV: constants differ -> never alias
        return "distance", d
    return "unknown", None


def test_pair(w: Access, other: Access, loop_vars: tuple[str, ...]) -> Dependence:
    """Dependence between a write and another access to the same grid."""
    assert w.grid == other.grid and w.is_write
    from ..observe import get_metrics

    _m = get_metrics()
    if _m.enabled:
        _m.counter("analysis.dependence.tests").inc()
    if len(w.affine) != len(other.affine):
        # Whole-array reference vs indexed reference: conservatively carried.
        return Dependence(DepKind.UNKNOWN, w.grid, detail="rank-mismatched reference")

    if not w.affine:  # scalar grid: every iteration touches the same cell
        if not loop_vars:
            return Dependence(DepKind.LOOP_INDEPENDENT, w.grid, detail="scalar, no loop")
        return Dependence(
            DepKind.LOOP_CARRIED, w.grid, detail="scalar written in every iteration"
        )

    relations = [_dim_relation(a, b) for a, b in zip(w.affine, other.affine)]

    if any(rel == "independent" for rel, _ in relations):
        return Dependence(DepKind.NONE, w.grid, detail="ZIV: constant subscripts differ")

    if any(rel == "unknown" for rel, _ in relations):
        return Dependence(DepKind.UNKNOWN, w.grid, detail="non-affine or MIV subscript")

    distances = tuple(d for _, d in relations)
    if all(rel == "equal" for rel, _ in relations):
        # Same element in the same iteration... but only if the subscripts
        # actually vary with every loop variable; a pair like a(j) = a(j)
        # inside an i-j nest collides across i.
        used = {v for form in w.affine if form is not None for v in form.vars()}
        missing = [v for v in loop_vars if v not in used]
        if missing:
            return Dependence(
                DepKind.LOOP_CARRIED,
                w.grid,
                distance=distances,
                detail=f"subscripts invariant in loop var(s) {missing}",
            )
        return Dependence(DepKind.LOOP_INDEPENDENT, w.grid, distance=distances)

    # Same coefficients, nonzero constant distance in at least one dim.
    return Dependence(
        DepKind.LOOP_CARRIED,
        w.grid,
        distance=distances,
        detail=f"constant dependence distance {distances}",
    )


def write_is_injective(w: Access, loop_vars: tuple[str, ...]) -> bool:
    """True if distinct iterations provably write distinct elements.

    Sufficient condition used by GLAF: every loop variable appears in
    exactly one subscript dimension, with unit-magnitude... any nonzero
    coefficient works as long as no two loop variables share a dimension
    *and* each dimension is affine.  (A variable appearing in two dimensions
    is still injective, but a dimension combining two variables like
    ``a(i+j)`` is not.)
    """
    if not w.fully_affine:
        return False
    seen: set[str] = set()
    for form in w.affine:
        assert form is not None
        if len(form.vars()) > 1:
            return False
        seen |= form.vars()
    return all(v in seen for v in loop_vars)
