"""Reduction recognition.

A statement of the form ``t = t op expr`` (or ``t = MIN(t, expr)`` /
``t = MAX(t, expr)``) where the re-read of ``t`` uses the *same* subscripts
as the write is a reduction over the loop, provided ``t`` is not otherwise
read or written in the step.  GLAF's back-end identifies these and emits an
OpenMP ``REDUCTION(op:var)`` clause; the paper notes that loops with
"effectively more than one output" need *multiple* reduction variables in
the clause (§4.2.1), which falls out naturally here because every qualifying
statement contributes its own entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expr import BinOp, Expr, GridRef, LibCall, walk
from ..core.step import Assign, CallStmt, IfStmt, Return, Step, walk_stmts

__all__ = ["Reduction", "find_reductions"]

# GLAF -> OpenMP reduction operator spellings.
_OMP_OP = {"+": "+", "*": "*", "MIN": "MIN", "MAX": "MAX"}


@dataclass(frozen=True)
class Reduction:
    grid: str
    op: str               # OpenMP spelling: + * MIN MAX
    indices: tuple[Expr, ...]


def _same_ref(a: GridRef, b: GridRef) -> bool:
    return a.grid == b.grid and a.indices == b.indices


def _flatten(e: Expr, op: str) -> list[Expr]:
    """Terms of an associative chain: ``a + b + c`` -> [a, b, c].

    For '+', a top-level ``x - y`` contributes ``x`` and ``-y``-as-is is not
    split further (subtraction only flattens on its left side, preserving
    evaluation semantics).
    """
    if isinstance(e, BinOp) and e.op == op:
        return _flatten(e.left, op) + _flatten(e.right, op)
    if op == "+" and isinstance(e, BinOp) and e.op == "-":
        return _flatten(e.left, op) + [UnOpNeg(e.right)]
    return [e]


def UnOpNeg(e: Expr) -> Expr:
    from ..core.expr import UnOp

    return UnOp("neg", e)


def _rebuild(terms: list[Expr], op: str) -> Expr:
    out = terms[0]
    for t in terms[1:]:
        out = BinOp(op, out, t)
    return out


def _match_update(stmt: Assign) -> tuple[str, Expr] | None:
    """Match ``t = t op rest`` (associatively, so ``t = t + a + b`` counts),
    ``t = rest op t`` and ``t = MIN/MAX(t, rest)``.

    Returns ``(omp_op, rest_expr)`` or None.
    """
    t = stmt.target
    e = stmt.expr
    for op in ("+", "*"):
        if isinstance(e, BinOp) and e.op in ((op, "-") if op == "+" else (op,)):
            terms = _flatten(e, op)
            self_terms = [
                x for x in terms if isinstance(x, GridRef) and _same_ref(x, t)
            ]
            if len(self_terms) == 1 and len(terms) > 1:
                rest = [x for x in terms if x is not self_terms[0]]
                return _OMP_OP[op], _rebuild(rest, op)
    if isinstance(e, LibCall) and e.name in ("MIN", "MAX") and len(e.args) == 2:
        for k in (0, 1):
            arg = e.args[k]
            if isinstance(arg, GridRef) and _same_ref(arg, t):
                return e.name, e.args[1 - k]
    return None


def find_reductions(step: Step) -> dict[str, Reduction]:
    """Reductions in a step, keyed by grid name."""
    from ..observe import get_metrics, get_tracer

    with get_tracer().span("analysis.reductions", step=step.name) as _sp:
        found = _find_reductions(step)
        _sp.set(found=len(found))
        if found:
            get_metrics().counter("analysis.reductions.found").inc(len(found))
        return found


def _find_reductions(step: Step) -> dict[str, Reduction]:
    updates: dict[str, list[tuple[Assign, str, Expr]]] = {}
    other_writes: set[str] = set()
    other_reads: set[str] = set()

    matched: list[tuple[Assign, str, Expr]] = []
    matched_ids: set[int] = set()

    for s in walk_stmts(step.stmts):
        if isinstance(s, Assign):
            m = _match_update(s)
            if m is not None:
                op, rest = m
                updates.setdefault(s.target.grid, []).append((s, op, rest))
                matched.append((s, op, rest))
                matched_ids.add(id(s))
            else:
                other_writes.add(s.target.grid)

    # Reads everywhere except the self-read inside a matched update.
    def note_reads(e: Expr) -> None:
        for n in walk(e):
            if isinstance(n, GridRef):
                other_reads.add(n.grid)

    for r in step.ranges:
        note_reads(r.start), note_reads(r.end), note_reads(r.step)
    if step.condition is not None:
        note_reads(step.condition)
    for s in walk_stmts(step.stmts):
        if isinstance(s, Assign):
            for idx in s.target.indices:
                note_reads(idx)
            if id(s) in matched_ids:
                # Only the "rest" expression counts as an outside read; the
                # self-reference is the reduction pattern itself.
                for su, op, rest in matched:
                    if su is s:
                        note_reads(rest)
                        for idx_args in _update_index_reads(su):
                            note_reads(idx_args)
                        break
            else:
                note_reads(s.expr)
        elif isinstance(s, CallStmt):
            for a in s.args:
                note_reads(a)
        elif isinstance(s, IfStmt):
            note_reads(s.cond)
        elif isinstance(s, Return) and s.value is not None:
            note_reads(s.value)

    out: dict[str, Reduction] = {}
    for g, ups in updates.items():
        if g in other_writes or g in other_reads:
            continue
        ops = {op for _, op, _ in ups}
        idxs = {tuple(s.target.indices) for s, _, _ in ups}
        if len(ops) != 1 or len(idxs) != 1:
            continue
        if any(isinstance(n, GridRef) and n.grid == g
               for _, _, rest in ups for n in walk(rest)):
            continue
        out[g] = Reduction(grid=g, op=ops.pop(), indices=ups[0][0].target.indices)
    return out


def _update_index_reads(stmt: Assign) -> list[Expr]:
    """Index expressions of the self-read inside a matched update."""
    return [i for i in stmt.target.indices]
