"""GLAF auto-parallelization back-end.

Parses the internal representation, identifies dependences, reductions and
private variables, classifies loops, and produces the parallelization plan
that guides code generation (paper §2.1, first back-end bullet).
"""

from .accesses import Access, AffineForm, affine_form, step_accesses
from .classify import LoopClass, classify_step
from .dependence import DepKind, Dependence, test_pair, write_is_injective
from .parallelize import (
    ParallelPlan,
    StepParallelism,
    analyze_program,
    analyze_step,
    callee_write_effects,
)
from .privatization import PrivatizationResult, classify_privates
from .reductions import Reduction, find_reductions

__all__ = [
    "Access", "AffineForm", "affine_form", "step_accesses",
    "LoopClass", "classify_step",
    "DepKind", "Dependence", "test_pair", "write_is_injective",
    "ParallelPlan", "StepParallelism", "analyze_program", "analyze_step",
    "callee_write_effects",
    "PrivatizationResult", "classify_privates",
    "Reduction", "find_reductions",
]
