"""Private/firstprivate/shared classification.

When a loop is parallelized, every grid written inside the loop that is not
the loop's output must become thread-private, or iterations would race on
it.  GLAF classifies:

* **private** — function-local grids whose first access in the body is a
  write and whose subscripts do not involve the loop's index variables
  (scalar temporaries, per-iteration scratch arrays).  The paper's FUN3D
  evaluation reports 219 such variables identified by GLAF for the manual
  version's PRIVATE clause.
* **firstprivate** — like private, but read before written (each thread
  needs the pre-loop value).
* **shared** — everything else (loop outputs indexed by the loop variables,
  read-only inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.function import GlafFunction, GlafProgram
from ..core.step import Step
from .accesses import Access, step_accesses

__all__ = ["PrivatizationResult", "classify_privates"]


@dataclass
class PrivatizationResult:
    private: set[str] = field(default_factory=set)
    firstprivate: set[str] = field(default_factory=set)
    shared: set[str] = field(default_factory=set)

    def clause_vars(self) -> list[str]:
        return sorted(self.private)


def classify_privates(
    program: GlafProgram, fn: GlafFunction, step: Step
) -> PrivatizationResult:
    """Classify every grid accessed by ``step`` for a parallel run of its nest."""
    from ..observe import get_metrics

    _m = get_metrics()
    if _m.enabled:
        _m.counter("analysis.privatization.steps").inc()
    loop_vars = set(step.index_names())
    accesses = step_accesses(step)
    by_grid: dict[str, list[Access]] = {}
    for a in accesses:
        by_grid.setdefault(a.grid, []).append(a)

    result = PrivatizationResult()
    for gname, accs in by_grid.items():
        try:
            scope = program.scope_of(fn, gname)
        except KeyError:
            scope = "global"
        writes = [a for a in accs if a.is_write]
        if not writes:
            result.shared.add(gname)
            continue

        # Subscripts involving loop vars mean different iterations touch
        # different elements: that is a shared output, not a temporary.
        def iteration_local(a: Access) -> bool:
            return not (a.vars_used() & loop_vars)

        if all(iteration_local(a) for a in accs):
            first_write_pos = min(w.stmt_pos for w in writes)
            read_before = any(
                (not a.is_write) and a.stmt_pos < first_write_pos for a in accs
            )
            # A conditional first write cannot guarantee initialization.
            first_write_conditional = all(
                w.conditional for w in writes if w.stmt_pos == first_write_pos
            )
            if scope in ("local",) and not read_before and not first_write_conditional:
                result.private.add(gname)
            elif scope in ("local", "param") and (read_before or first_write_conditional):
                result.firstprivate.add(gname)
            else:
                # Global/module/COMMON temporaries need the thread-private
                # treatment the paper lists among the FUN3D manual tweaks.
                result.shared.add(gname)
        else:
            result.shared.add(gname)
    return result
