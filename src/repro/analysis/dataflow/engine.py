"""The generic worklist fixpoint solver.

One engine serves every analysis in the package: a :class:`Problem`
bundles direction, the boundary state, a block transfer function and the
lattice join.  States are ordinary Python values compared with ``==``;
``None`` is the bottom element (unreachable along the solved direction)
and is produced automatically for blocks no state has flowed into — a
transfer function may also *return* ``None`` to cut a path it can prove
dead (e.g. a definitely zero-trip loop body).

For lattices of infinite height (intervals) a ``widen`` callback is
applied once a block has been revisited more than :data:`WIDEN_AFTER`
times, which forces convergence without giving up precision on the
first few loop iterations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from .cfg import CFG, Block

__all__ = ["Problem", "solve", "WIDEN_AFTER"]

WIDEN_AFTER = 4


@dataclass
class Problem:
    """One dataflow problem over a CFG.

    ``transfer(block, state)`` maps the joined state at the block's
    analysis entry (its start for forward problems, its end for backward
    ones) to the state at the opposite side.  ``join`` combines two
    non-``None`` states; ``widen(previous, joined)`` may over-approximate
    to force termination.
    """

    forward: bool
    boundary: object
    transfer: Callable[[Block, object], object]
    join: Callable[[object, object], object]
    widen: Callable[[object, object], object] | None = None


def solve(cfg: CFG, problem: Problem) -> tuple[dict[int, object],
                                               dict[int, object]]:
    """Run ``problem`` to fixpoint; returns ``(joined, transferred)``.

    For a forward problem ``joined[b]`` is the state at the *start* of
    block ``b`` and ``transferred[b]`` the state at its end; a backward
    problem flips both (``joined[b]`` is the state at the block's end —
    e.g. live-out — and ``transferred[b]`` the state at its start).
    """
    n = len(cfg.blocks)
    start = cfg.entry if problem.forward else cfg.exit

    def incoming(b: Block) -> list[int]:
        return b.preds if problem.forward else b.succs

    def outgoing(b: Block) -> list[int]:
        return b.succs if problem.forward else b.preds

    joined: dict[int, object] = {i: None for i in range(n)}
    transferred: dict[int, object] = {i: None for i in range(n)}
    visits = [0] * n
    work: deque[int] = deque([start])
    queued = {start}

    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]
        if bid == start:
            state: object = problem.boundary
        else:
            state = None
            for src in incoming(block):
                s = transferred[src]
                if s is None:
                    continue
                state = s if state is None else problem.join(state, s)
        if state is None:
            continue
        visits[bid] += 1
        if (problem.widen is not None and visits[bid] > WIDEN_AFTER
                and joined[bid] is not None):
            state = problem.widen(joined[bid], state)
        if state == joined[bid] and visits[bid] > 1:
            continue
        joined[bid] = state
        out = problem.transfer(block, state)
        if out != transferred[bid] or visits[bid] == 1:
            transferred[bid] = out
            for dst in outgoing(block):
                if dst not in queued:
                    queued.add(dst)
                    work.append(dst)
    return joined, transferred
