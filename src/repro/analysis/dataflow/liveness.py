"""Backward liveness: dead stores, never-read arrays, grid liveness.

The scalar analysis runs the generic engine backward over the unit CFG:
a store into a plain local scalar whose value no later-reachable read
consumes is a dead store.  Dummies, the function result, non-local
channels and SAVE'd locals escape the unit, so they are live at exit and
never reported.  Local arrays get the complementary *whole-object*
check: an array that is stored into but never read anywhere in the unit
is dead storage wholesale (weak per-element kills make element-level
liveness vacuous, so the flow-insensitive check is the precise one).

:func:`step_live_on_entry` runs the same engine over a GLAF step CFG
with grid-level uses and weak kills; the resulting live-on-entry set is
the proof obligation for eliding the vectorized executor's rollback
snapshot: a grid written pointwise, unmasked, and *not* live on entry
can never expose a pre-step (or torn mid-step) value to any read.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...fortranlib.ast import FAssign, FVar
from .cfg import CFG, build_step_cfg
from .engine import Problem, solve
from .model import UnitModel, atom_events

__all__ = ["DeadStore", "dead_stores", "step_live_on_entry"]


@dataclass(frozen=True)
class DeadStore:
    """A store whose value is provably never read."""

    name: str
    line: int
    kind: str          # 'scalar' | 'array-never-read'


def _escape_set(model: UnitModel) -> frozenset[str]:
    out = {n for n, ch in model.channels.items() if ch != "local"}
    out.update(model.params)
    if model.result:
        out.add(model.result)
    out.update(model.saved)
    return frozenset(out)


def dead_stores(cfg: CFG, model: UnitModel, summaries
                ) -> tuple[list[DeadStore], frozenset[str]]:
    """Returns (findings, live-at-entry names)."""
    boundary = _escape_set(model)

    def transfer(block, state):
        live = set(state)
        for atom in reversed(block.atoms):
            for ev in reversed(atom_events(atom, model, summaries)):
                if ev.op == "def" and ev.strong:
                    live.discard(ev.name)
                elif ev.op == "use":
                    live.add(ev.name)
        return frozenset(live)

    joined, transferred = solve(cfg, Problem(
        forward=False, boundary=boundary, transfer=transfer,
        join=lambda a, b: a | b))

    findings: list[DeadStore] = []
    reachable = cfg.reachable()
    reported: set[tuple[str, int]] = set()
    for bid in sorted(reachable):
        out_state = joined[bid]
        if out_state is None:
            continue
        live = set(out_state)
        for atom in reversed(cfg.blocks[bid].atoms):
            node = atom.node
            if (atom.kind == "stmt" and isinstance(node, FAssign)
                    and isinstance(node.target, FVar)):
                n = node.target.name.lower()
                if (model.is_local(n) and not model.is_array(n)
                        and n not in boundary and n not in live
                        and (n, atom.line) not in reported):
                    reported.add((n, atom.line))
                    findings.append(DeadStore(n, atom.line, "scalar"))
            for ev in reversed(atom_events(atom, model, summaries)):
                if ev.op == "def" and ev.strong:
                    live.discard(ev.name)
                elif ev.op == "use":
                    live.add(ev.name)

    findings.extend(_never_read_arrays(cfg, model, summaries, reachable))
    entry_live = transferred[cfg.entry]
    return findings, (entry_live if entry_live is not None else frozenset())


def _never_read_arrays(cfg: CFG, model: UnitModel, summaries,
                       reachable) -> list[DeadStore]:
    stored: dict[str, int] = {}
    read: set[str] = set()
    for bid in sorted(reachable):
        for atom in cfg.blocks[bid].atoms:
            for ev in atom_events(atom, model, summaries):
                if not ev.array or not model.is_local(ev.name):
                    continue
                if ev.op == "use":
                    read.add(ev.name)
                elif ev.store:
                    stored.setdefault(ev.name, ev.line)
    return [DeadStore(n, line, "array-never-read")
            for n, line in sorted(stored.items()) if n not in read]


# ----------------------------------------------------------------------
# GLAF step grid liveness
# ----------------------------------------------------------------------

def step_live_on_entry(step) -> frozenset[str]:
    """Grids whose pre-step value may be read by the step.

    Array writes are weak kills (a masked or partial write preserves
    other cells), so a grid is live on entry exactly when some reachable
    statement, condition, bound or subscript reads it.
    """
    from ...core.expr import grids_read
    from ...core.step import Assign, CallStmt, Return

    cfg = build_step_cfg(step)

    def atom_uses(atom) -> set[str]:
        node = atom.node
        if atom.kind == "step-range":
            return (grids_read(node.start) | grids_read(node.end)
                    | grids_read(node.step))
        if atom.kind == "step-cond":
            return grids_read(node)
        if atom.kind == "step-stmt":
            if isinstance(node, Assign):
                used = grids_read(node.expr)
                for ie in node.target.indices:
                    used |= grids_read(ie)
                return used
            if isinstance(node, CallStmt):
                used = set()
                for a in node.args:
                    used |= grids_read(a)
                return used
            if isinstance(node, Return) and node.value is not None:
                return grids_read(node.value)
        return set()

    def transfer(block, state):
        live = set(state)
        for atom in reversed(block.atoms):
            live |= atom_uses(atom)     # no strong kills for grids
        return frozenset(live)

    _, transferred = solve(cfg, Problem(
        forward=False, boundary=frozenset(), transfer=transfer,
        join=lambda a, b: a | b))
    entry = transferred[cfg.entry]
    return entry if entry is not None else frozenset()
