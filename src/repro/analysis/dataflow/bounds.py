"""Affine subscript classification against statically known extents.

Every array subscript in a unit is replayed against the interval
environment from :func:`..ranges.solve_ranges` and classified:

* **proven** — the subscript interval lies inside ``[1, extent]`` for a
  dimension whose extent is statically known, or the subscript and a
  symbolic extent share one *stable* symbol (``a(i)`` under ``DO i = 1,
  n`` against a declared/allocated extent ``n``, with ``n`` never
  assigned in the unit);
* **possible-oob** — the subscript interval provably escapes a *finite*
  bound (its low end is below 1, or its high end exceeds a known
  extent);
* **unknown** — everything else: unmatched symbolic extents, subscripts
  the interval lattice cannot pin down, ±inf endpoints that merely fail
  to prove containment.

Only the finite-violation case is reported as a finding; ``unknown`` is
deliberately silent so units indexing with COMMON- or argument-carried
extents stay lint-clean.  The same replay evaluates ``cond`` atoms that
guard parallel regions: a guard that folds to a constant ``.false.``
means dead parallel work and is surfaced as a :class:`GuardIssue`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...fortranlib.ast import (
    FAllocate,
    FAssign,
    FCall,
    FPrint,
)
from .cfg import CFG
from .engine import Problem, solve
from .model import (
    UnitModel,
    _const_int,
    atom_events,
    expr_subscript_sites,
    sym_affine,
)
from .ranges import Env, Interval, eval_bool, eval_interval, apply_atom

__all__ = ["BoundsIssue", "GuardIssue", "RangeSummary", "check_bounds"]


@dataclass(frozen=True)
class BoundsIssue:
    """A subscript proven to escape a finite dimension bound."""

    array: str
    dim: int           # 1-based dimension index
    line: int
    detail: str


@dataclass(frozen=True)
class GuardIssue:
    """A constant-false conditional guarding a parallel region."""

    line: int
    detail: str


@dataclass
class RangeSummary:
    """Per-unit result of the range/bounds pass."""

    proven: int = 0
    possible: int = 0
    unknown: int = 0
    issues: list[BoundsIssue] = field(default_factory=list)
    guards: list[GuardIssue] = field(default_factory=list)
    exit_env: dict[str, Interval] = field(default_factory=dict)


def _atom_exprs(atom) -> list:
    """Expressions whose subscripts the atom evaluates."""
    node = atom.node
    if atom.kind == "stmt":
        if isinstance(node, FAssign):
            return [node.target, node.value]
        if isinstance(node, FCall):
            return list(node.args)
        if isinstance(node, FPrint):
            return list(node.args)
        if isinstance(node, FAllocate):
            out = []
            for _, dims in node.items:
                out.extend(dims)
            return out
        return []
    if atom.kind == "do":
        out = [node.start, node.end]
        if node.step is not None:
            out.append(node.step)
        return out
    if atom.kind in ("while", "cond"):
        return [node]
    return []


# ----------------------------------------------------------------------
# symbolic upper bounds: var <= symbol + offset
# ----------------------------------------------------------------------
#
# A second, tiny fixpoint alongside the numeric intervals.  It exists
# for the canonical legacy shape the intervals cannot prove — ``DO i =
# 1, n`` indexing ``a(i)`` against a declared (or allocated) extent of
# the *same* symbol ``n``.  Entries are only trusted for symbols never
# assigned anywhere in the unit (extents bind at entry/allocation, so a
# mutated symbol would break the equation).

SymEnv = dict[str, tuple[str, int]]       # var -> var <= symbol + offset


def _modified_names(cfg: CFG, model: UnitModel, summaries) -> set[str]:
    """Every name carrying a def event anywhere in the unit."""
    out: set[str] = set()
    for block in cfg.blocks:
        for atom in block.atoms:
            for ev in atom_events(atom, model, summaries):
                if ev.op == "def":
                    out.add(ev.name)
    return out


def _sym_apply(atom, env: SymEnv, model: UnitModel, summaries,
               modified: set[str]) -> SymEnv:
    kind, node = atom.kind, atom.node
    if kind in ("do-bind", "do-post"):
        var = node.var.lower()
        step = 1 if node.step is None else _const_int(node.step)
        dec = sym_affine(node.end)
        env = dict(env)
        if (step is None or step < 1 or dec is None
                or dec[0] in modified or model.is_array(dec[0])):
            env.pop(var, None)
            return env
        # body-side: var <= end; exit-side: var <= end + step
        env[var] = (dec[0], dec[1] + (step if kind == "do-post" else 0))
        return env
    defs = [ev.name for ev in atom_events(atom, model, summaries)
            if ev.op == "def" and ev.name in env]
    if defs:
        env = dict(env)
        for n in defs:
            env.pop(n, None)
    return env


def _sym_join(a: SymEnv, b: SymEnv) -> SymEnv:
    out: SymEnv = {}
    for n in a.keys() & b.keys():
        if a[n][0] == b[n][0]:
            out[n] = (a[n][0], max(a[n][1], b[n][1]))
    return out


def _sym_widen(old: SymEnv, new: SymEnv) -> SymEnv:
    return {n: v for n, v in old.items() if new.get(n) == v}


def _solve_sym_ubs(cfg: CFG, model: UnitModel, summaries,
                   modified: set[str]) -> dict[int, SymEnv | None]:
    def transfer(block, env):
        if env is None:
            return None
        s: SymEnv = dict(env)
        for atom in block.atoms:
            s = _sym_apply(atom, s, model, summaries, modified)
        return s

    joined, _ = solve(cfg, Problem(
        forward=True, boundary={}, transfer=transfer,
        join=_sym_join, widen=_sym_widen))
    return joined


def _sym_proves(sub, array: str, dim: int, model: UnitModel,
                sym_env: SymEnv, modified: set[str]) -> bool:
    """True when ``sub <= extent`` holds symbolically for this dim."""
    sym_ext = model.array_sym_extents.get(array)
    if sym_ext is None or dim > len(sym_ext) or sym_ext[dim - 1] is None:
        return False
    ext_sym, ext_off = sym_ext[dim - 1]
    if ext_sym in modified or model.is_array(ext_sym):
        return False
    dec = sym_affine(sub)
    if dec is None:
        return False
    base, off = dec
    if base == ext_sym:               # a(n) / a(n-1) against extent n
        return off <= ext_off
    ub = sym_env.get(base)
    return (ub is not None and ub[0] == ext_sym
            and ub[1] + off <= ext_off)


def _classify(array: str, args, env: Env, model: UnitModel, line: int,
              summary: RangeSummary, seen: set[tuple[str, int]],
              sym_env: SymEnv, modified: set[str]) -> None:
    extents = model.array_extents.get(array)
    for dim, sub in enumerate(args, start=1):
        iv = eval_interval(sub, env, model)
        if iv.is_empty:
            summary.unknown += 1
            continue
        extent = None
        if extents is not None and dim <= len(extents):
            extent = extents[dim - 1]
        low_ok = iv.lo >= 1
        high_ok = extent is not None and iv.hi <= extent
        if low_ok and (high_ok or (extent is None and _sym_proves(
                sub, array, dim, model, sym_env, modified))):
            summary.proven += 1
            continue
        violates_low = iv.hi < 1           # every value below the base
        escapes_low = iv.lo < 1 and iv.lo != float("-inf")
        escapes_high = (extent is not None and iv.hi > extent
                        and iv.hi != float("inf"))
        if violates_low or escapes_low or escapes_high:
            summary.possible += 1
            if (array, line) in seen:
                continue
            seen.add((array, line))
            if escapes_high:
                detail = (f"subscript range {iv!r} exceeds extent "
                          f"{extent} of {array!r} dimension {dim}")
            else:
                detail = (f"subscript range {iv!r} goes below the "
                          f"1-based lower bound of {array!r} "
                          f"dimension {dim}")
            summary.issues.append(BoundsIssue(array, dim, line, detail))
        else:
            summary.unknown += 1


def check_bounds(cfg: CFG, model: UnitModel, summaries,
                 range_envs: dict[int, Env | None]) -> RangeSummary:
    """Classify every subscript and fold parallel-region guards."""
    out = RangeSummary()
    seen: set[tuple[str, int]] = set()
    seen_guards: set[int] = set()
    modified = _modified_names(cfg, model, summaries)
    sym_envs = _solve_sym_ubs(cfg, model, summaries, modified)

    for bid in sorted(cfg.reachable()):
        env = range_envs.get(bid)
        if env is None:
            continue       # statically dead block
        sym = sym_envs.get(bid) or {}
        for atom in cfg.blocks[bid].atoms:
            for e in _atom_exprs(atom):
                sites: list = []
                expr_subscript_sites(e, model, sites)
                for array, args in sites:
                    _classify(array, args, env, model, atom.line,
                              out, seen, sym, modified)
            if (atom.kind == "cond" and atom.guards_parallel
                    and atom.line not in seen_guards
                    and eval_bool(atom.node, env, model) is False):
                seen_guards.add(atom.line)
                out.guards.append(GuardIssue(
                    atom.line,
                    "condition is statically .false.; the parallel "
                    "region it guards can never execute"))
            sym = _sym_apply(atom, sym, model, summaries, modified)
            env = apply_atom(atom, env, model, summaries)
            if env is None:
                break

    exit_env = range_envs.get(cfg.exit)
    if exit_env:
        out.exit_env = dict(exit_env)
    return out
