"""Forward interval propagation on integer scalars.

The lattice maps integer scalar names to closed intervals with ±inf
bounds; the join is the interval hull and loops converge through the
engine's widening hook (a bound that keeps moving is pushed to its
infinity).  The DO-header split in :mod:`.cfg` gives the induction
variable a *body-side* binding (within the iteration range) and an
*exit-side* binding (the hull of the zero-trip value and one stride
past the last iterate), which is what makes the analysis sound for
reads of the variable after the loop while staying precise inside it.

``assume`` atoms refine the environment against branch conditions
(``x <= n``-style comparisons and conjunctions), and a refinement that
empties an interval proves the branch dead — the transfer returns the
bottom state and downstream blocks become unreachable along that path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...fortranlib.ast import (
    FBin,
    FDo,
    FExpr,
    FLogical,
    FNum,
    FUn,
    FVar,
)
from .cfg import CFG
from .engine import Problem, solve
from .model import UnitModel, atom_events

__all__ = ["Interval", "TOP", "eval_interval", "eval_bool", "solve_ranges"]

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed integer interval with ±inf bounds."""

    lo: float
    hi: float

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, newer: "Interval") -> "Interval":
        return Interval(-_INF if newer.lo < self.lo else self.lo,
                        _INF if newer.hi > self.hi else self.hi)

    def __repr__(self) -> str:
        def fmt(v: float) -> str:
            if v == -_INF:
                return "-inf"
            if v == _INF:
                return "+inf"
            return str(int(v))
        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


TOP = Interval(-_INF, _INF)


def _mul_bound(a: float, b: float) -> float:
    if a == 0 or b == 0:      # inf * 0 = 0 under interval arithmetic
        return 0.0
    return a * b


def _add(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo + b.lo, a.hi + b.hi)


def _sub(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo - b.hi, a.hi - b.lo)


def _mul(a: Interval, b: Interval) -> Interval:
    products = [_mul_bound(a.lo, b.lo), _mul_bound(a.lo, b.hi),
                _mul_bound(a.hi, b.lo), _mul_bound(a.hi, b.hi)]
    return Interval(min(products), max(products))


def _neg(a: Interval) -> Interval:
    return Interval(-a.hi, -a.lo)


Env = dict[str, Interval]      # names absent from the dict are TOP


def eval_interval(e: FExpr, env: Env, model: UnitModel) -> Interval:
    if isinstance(e, FNum):
        if isinstance(e.value, int):
            return Interval(e.value, e.value)
        return TOP
    if isinstance(e, FVar):
        n = e.name.lower()
        if n in model.const_values:
            v = model.const_values[n]
            return Interval(v, v)
        if n in env:
            return env[n]
        return TOP
    if isinstance(e, FUn):
        if e.op == "neg":
            return _neg(eval_interval(e.operand, env, model))
        if e.op == "pos":
            return eval_interval(e.operand, env, model)
        return TOP
    if isinstance(e, FBin):
        if e.op in ("+", "-", "*"):
            lv = eval_interval(e.left, env, model)
            rv = eval_interval(e.right, env, model)
            if lv.is_empty or rv.is_empty:
                return lv if lv.is_empty else rv
            if e.op == "+":
                return _add(lv, rv)
            if e.op == "-":
                return _sub(lv, rv)
            return _mul(lv, rv)
        return TOP
    return TOP


def eval_bool(e: FExpr, env: Env, model: UnitModel) -> bool | None:
    """Three-valued evaluation of a condition (None = undecidable)."""
    if isinstance(e, FLogical):
        return e.value
    if isinstance(e, FUn) and e.op == "not":
        v = eval_bool(e.operand, env, model)
        return None if v is None else not v
    if isinstance(e, FBin):
        if e.op == "and":
            lv = eval_bool(e.left, env, model)
            rv = eval_bool(e.right, env, model)
            if lv is False or rv is False:
                return False
            if lv is True and rv is True:
                return True
            return None
        if e.op == "or":
            lv = eval_bool(e.left, env, model)
            rv = eval_bool(e.right, env, model)
            if lv is True or rv is True:
                return True
            if lv is False and rv is False:
                return False
            return None
        if e.op in ("<", "<=", ">", ">=", "==", "!="):
            a = eval_interval(e.left, env, model)
            b = eval_interval(e.right, env, model)
            if a.is_empty or b.is_empty:
                return None
            return _compare(e.op, a, b)
    return None


def _compare(op: str, a: Interval, b: Interval) -> bool | None:
    if op == "<":
        if a.hi < b.lo:
            return True
        if a.lo >= b.hi:
            return False
        return None
    if op == "<=":
        if a.hi <= b.lo:
            return True
        if a.lo > b.hi:
            return False
        return None
    if op == ">":
        return _compare("<", b, a)
    if op == ">=":
        return _compare("<=", b, a)
    if op == "==":
        if a.lo == a.hi == b.lo == b.hi:
            return True
        if a.hi < b.lo or a.lo > b.hi:
            return False
        return None
    if op == "!=":
        v = _compare("==", a, b)
        return None if v is None else not v
    return None


# ----------------------------------------------------------------------
# transfer
# ----------------------------------------------------------------------

def _do_intervals(s: FDo, env: Env, model: UnitModel
                  ) -> tuple[Interval | None, Interval]:
    """(body-side interval or None when provably zero-trip, exit-side)."""
    start = eval_interval(s.start, env, model)
    end = eval_interval(s.end, env, model)
    step = (eval_interval(s.step, env, model) if s.step is not None
            else Interval(1, 1))
    if step.lo > 0:
        body = Interval(start.lo, end.hi)
        post = start.hull(_add(end, step))
    elif step.hi < 0:
        body = Interval(end.lo, start.hi)
        post = start.hull(_add(end, step))
    else:
        return TOP, TOP
    if body.is_empty:
        return None, post
    return body, post


def range_transfer(block, env: Env | None, model: UnitModel,
                   summaries) -> Env | None:
    """Shared by the fixpoint and the replaying bounds checker."""
    from ...fortranlib.ast import FAssign

    if env is None:
        return None
    s: Env = dict(env)
    for atom in block.atoms:
        out = apply_atom(atom, s, model, summaries)
        if out is None:
            return None
        s = out
    return s


def apply_atom(atom, env: Env, model: UnitModel, summaries) -> Env | None:
    """Apply one atom to the environment (None = path proven dead)."""
    from ...fortranlib.ast import FAssign

    kind, node = atom.kind, atom.node
    if kind == "stmt":
        if isinstance(node, FAssign) and isinstance(node.target, FVar):
            n = node.target.name.lower()
            if n in model.int_scalars or n in {p for p in model.params}:
                iv = eval_interval(node.value, env, model)
                env = dict(env)
                if iv == TOP:
                    env.pop(n, None)
                else:
                    env[n] = iv
                return env
        # Calls (and unknown-callee function refs) may clobber actuals.
        clobbered = [ev.name for ev in atom_events(atom, model, summaries)
                     if ev.op == "def" and ev.name in env]
        if clobbered:
            env = dict(env)
            for n in clobbered:
                env.pop(n, None)
        return env
    if kind == "do-bind":
        body, _ = _do_intervals(node, env, model)
        if body is None:
            return None
        env = dict(env)
        env[node.var.lower()] = body
        return env
    if kind == "do-post":
        _, post = _do_intervals(node, env, model)
        env = dict(env)
        env[node.var.lower()] = post
        return env
    if kind == "assume":
        return _refine(node, env, model, negate=False)
    if kind == "assume-not":
        return _refine(node, env, model, negate=True)
    return env


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
_NEG = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def _refine(cond: FExpr, env: Env, model: UnitModel, *,
            negate: bool) -> Env | None:
    """Narrow ``env`` under ``cond`` (or its negation); None = dead path."""
    if isinstance(cond, FBin) and cond.op == "and" and not negate:
        env1 = _refine(cond.left, env, model, negate=False)
        if env1 is None:
            return None
        return _refine(cond.right, env1, model, negate=False)
    if isinstance(cond, FBin) and cond.op == "or" and negate:
        env1 = _refine(cond.left, env, model, negate=True)
        if env1 is None:
            return None
        return _refine(cond.right, env1, model, negate=True)
    if not isinstance(cond, FBin) or cond.op not in _NEG:
        return env
    op = _NEG[cond.op] if negate else cond.op
    out = env
    if isinstance(cond.left, FVar):
        out = _narrow(cond.left.name.lower(), op,
                      eval_interval(cond.right, env, model), out, model)
        if out is None:
            return None
    if isinstance(cond.right, FVar):
        out = _narrow(cond.right.name.lower(), _FLIP[op],
                      eval_interval(cond.left, env, model), out, model)
    return out


def _narrow(name: str, op: str, bound: Interval, env: Env,
            model: UnitModel) -> Env | None:
    if name not in model.int_scalars and name not in model.params:
        return env
    cur = env.get(name, TOP)
    if op == "<":
        new = Interval(cur.lo, min(cur.hi, bound.hi - 1))
    elif op == "<=":
        new = Interval(cur.lo, min(cur.hi, bound.hi))
    elif op == ">":
        new = Interval(max(cur.lo, bound.lo + 1), cur.hi)
    elif op == ">=":
        new = Interval(max(cur.lo, bound.lo), cur.hi)
    elif op == "==":
        new = Interval(max(cur.lo, bound.lo), min(cur.hi, bound.hi))
    else:                       # != refines nothing interval-wise
        return env
    if new.is_empty:
        return None
    if new == TOP:
        return env
    env = dict(env)
    env[name] = new
    return env


# ----------------------------------------------------------------------
# the fixpoint
# ----------------------------------------------------------------------

def _join(a: Env, b: Env) -> Env:
    out: Env = {}
    for n in a.keys() & b.keys():
        h = a[n].hull(b[n])
        if h != TOP:
            out[n] = h
    return out


def _widen(old: Env, new: Env) -> Env:
    out: Env = {}
    for n in old.keys() & new.keys():
        w = old[n].widen(new[n])
        if w != TOP:
            out[n] = w
    return out


def solve_ranges(cfg: CFG, model: UnitModel, summaries
                 ) -> dict[int, Env | None]:
    """Interval environment at the start of every block."""
    boundary: Env = {}
    for n, v in model.const_values.items():
        boundary[n] = Interval(v, v)

    joined, _ = solve(cfg, Problem(
        forward=True, boundary=boundary,
        transfer=lambda block, env: range_transfer(
            block, env, model, summaries),
        join=_join, widen=_widen))
    return joined
