"""May-uninitialized forward analysis: use-before-def and INTENT checks.

A name carries the UNINIT pseudo-definition at unit entry when nothing
defines it before execution starts: local scalars without initializers,
scalar INTENT(OUT) dummies, and the function result.  The forward
fixpoint tracks the set of names UNINIT *may* still reach (union join —
a definition on only one path does not clear the other), and the
reporting pass flags the first read of each such name.

The same pass performs the INTENT checks: a write to a declared
INTENT(IN) dummy, a read of a declared INTENT(OUT) scalar dummy while it
may still be unwritten, and a call site passing a non-variable actual to
a declared INTENT(OUT) dummy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...fortranlib.ast import FCall, FIndexed, FVar
from .cfg import CFG
from .engine import Problem, solve
from .intent import UnitSummary
from .model import UnitModel, atom_events

__all__ = ["UninitUse", "IntentIssue", "analyze_uninit"]


@dataclass(frozen=True)
class UninitUse:
    """A read that the UNINIT pseudo-definition may reach."""

    name: str
    line: int
    kind: str        # 'local' | 'result'


@dataclass(frozen=True)
class IntentIssue:
    """A declared-INTENT contract violation."""

    name: str
    line: int
    kind: str        # 'write-to-in' | 'read-out-uninit' | 'expr-to-out'
    detail: str


def analyze_uninit(cfg: CFG, model: UnitModel,
                   summaries: dict[str, UnitSummary]
                   ) -> tuple[list[UninitUse], list[IntentIssue]]:
    seed = model.uninit_on_entry()
    out_dummies = {p for p in model.params
                   if model.intents.get(p) == "out"}

    def transfer(block, state):
        s = set(state)
        for atom in block.atoms:
            for ev in atom_events(atom, model, summaries):
                if ev.op == "def" and ev.strong:
                    s.discard(ev.name)
        return frozenset(s)

    joined, _ = solve(cfg, Problem(
        forward=True, boundary=seed, transfer=transfer,
        join=lambda a, b: a | b))

    uses: list[UninitUse] = []
    issues: list[IntentIssue] = []
    seen_uninit: set[str] = set()
    seen_intent: set[tuple[str, str]] = set()

    for bid in sorted(cfg.reachable()):
        state = joined[bid]
        if state is None:
            continue
        live = set(state)
        for atom in cfg.blocks[bid].atoms:
            _check_call_actuals(atom, model, summaries, issues, seen_intent)
            for ev in atom_events(atom, model, summaries):
                if ev.op == "use" and ev.name in live:
                    if ev.name in out_dummies:
                        if ("read-out-uninit", ev.name) not in seen_intent:
                            seen_intent.add(("read-out-uninit", ev.name))
                            issues.append(IntentIssue(
                                ev.name, ev.line, "read-out-uninit",
                                f"INTENT(OUT) dummy {ev.name!r} is read "
                                "before this unit assigns it"))
                    elif ev.name not in seen_uninit:
                        seen_uninit.add(ev.name)
                        kind = ("result" if model.result == ev.name
                                else "local")
                        uses.append(UninitUse(ev.name, ev.line, kind))
                elif ev.op == "def":
                    if (not ev.assumed and ev.name in model.params
                            and model.intents.get(ev.name) == "in"
                            and ("write-to-in", ev.name) not in seen_intent):
                        seen_intent.add(("write-to-in", ev.name))
                        issues.append(IntentIssue(
                            ev.name, ev.line, "write-to-in",
                            f"INTENT(IN) dummy {ev.name!r} is written"))
                    if ev.strong:
                        live.discard(ev.name)
    return uses, issues


def _check_call_actuals(atom, model: UnitModel,
                        summaries: dict[str, UnitSummary],
                        issues: list[IntentIssue],
                        seen: set[tuple[str, str]]) -> None:
    """Caller-side check: a literal or expression actual bound to a
    declared INTENT(OUT) dummy can never receive the output."""
    node = atom.node
    if atom.kind != "stmt" or not isinstance(node, FCall):
        return
    summary = summaries.get(node.name.lower())
    if summary is None or len(summary.params) != len(node.args):
        return
    for actual, dummy in zip(node.args, summary.params):
        if summary.declared.get(dummy) != "out":
            continue
        if isinstance(actual, (FVar, FIndexed)):
            continue
        key = ("expr-to-out", f"{node.name.lower()}:{dummy}")
        if key in seen:
            continue
        seen.add(key)
        issues.append(IntentIssue(
            dummy, node.line, "expr-to-out",
            f"call to {node.name!r} passes a non-variable actual to "
            f"INTENT(OUT) dummy {dummy!r}"))
