"""Per-unit symbol model and def/use event extraction.

The analyses need to know, for every name in a unit: which sharing
channel it lives in (the linter's :mod:`repro.lint.symbols` channels are
passed in verbatim), whether it is an array (and with what constant
extents, when they are knowable), whether it is an integer scalar worth
range-tracking, and — for dummies — the declared INTENT.

:func:`atom_events` linearizes one CFG atom into ordered ``use`` / ``def``
events.  Defs are *strong* (they kill) only for plain scalar targets;
array, field and unknown-callee writes are weak, which keeps the
may-uninitialized analysis sound in the presence of partial updates.
A name parsed as ``base(args)`` counts as an array reference only when
``base`` is declared (or allocated) as an array — otherwise it is a
function reference: its arguments are used and, for known callees, the
:mod:`.intent` summary decides which actuals are also defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...fortranlib.ast import (
    FAllocate,
    FAssign,
    FBin,
    FCall,
    FCallExpr,
    FDecl,
    FDeallocate,
    FDo,
    FExpr,
    FFieldRef,
    FIndexed,
    FNum,
    FPrint,
    FProgramUnit,
    FSubprogram,
    FUn,
    FVar,
)
from .cfg import Atom

__all__ = ["Event", "UnitModel", "build_model", "atom_events",
           "expr_subscript_sites", "sym_affine", "PURE_INTRINSICS"]

# Intrinsics are pure: their arguments are read, never written.  Any
# other unresolvable callee conservatively counts as writing every plain
# variable actual (suppressing findings rather than inventing them).
PURE_INTRINSICS = frozenset({
    "abs", "acos", "asin", "atan", "atan2", "ceiling", "cos", "cosh",
    "dble", "dot_product", "epsilon", "exp", "floor", "huge", "iabs",
    "int", "log", "log10", "matmul", "max", "maxval", "min", "minval",
    "mod", "nint", "present", "real", "sign", "sin", "sinh", "size",
    "sqrt", "sum", "tan", "tanh", "tiny", "transpose", "allocated",
})


@dataclass(frozen=True)
class Event:
    """One ordered def/use event produced by an atom."""

    op: str                  # 'use' | 'def'
    name: str                # lowercase
    strong: bool = True      # defs only: does it kill?
    line: int = 0
    store: bool = False      # def came from an explicit assignment
    array: bool = False      # the referenced object is an array
    assumed: bool = False    # def assumed for an unknown callee: kills
                             # UNINIT soundly but is no write *evidence*


@dataclass
class UnitModel:
    """Everything the analyses need to know about one unit's names."""

    name: str
    unit: FSubprogram | FProgramUnit
    channels: dict[str, str]
    params: tuple[str, ...] = ()
    result: str | None = None
    intents: dict[str, str] = field(default_factory=dict)   # declared only
    arrays: set[str] = field(default_factory=set)
    array_extents: dict[str, tuple[int | None, ...]] = field(
        default_factory=dict)
    # Per-dimension symbolic extents: (symbol, offset) meaning the
    # declared extent is ``symbol + offset``, for dims whose extent is
    # not a constant.  Parallel to array_extents.
    array_sym_extents: dict[str, tuple[tuple[str, int] | None, ...]] = field(
        default_factory=dict)
    int_scalars: set[str] = field(default_factory=set)
    initialized: set[str] = field(default_factory=set)
    saved: set[str] = field(default_factory=set)     # SAVE: escapes the call
    const_values: dict[str, int] = field(default_factory=dict)  # PARAMETERs

    def channel(self, name: str) -> str:
        return self.channels.get(name, "")

    def is_local(self, name: str) -> bool:
        return self.channels.get(name) == "local"

    def is_array(self, name: str) -> bool:
        return name in self.arrays

    def uninit_on_entry(self) -> frozenset[str]:
        """Names carrying the UNINIT pseudo-definition at unit entry:
        local scalars without an initializer, scalar INTENT(OUT)
        dummies, and the function result."""
        out = {n for n in self.channels
               if self.is_local(n) and n not in self.arrays
               and n not in self.initialized}
        for p in self.params:
            if self.intents.get(p) == "out" and p not in self.arrays:
                out.add(p)
        if self.result:
            r = self.result.lower()
            if r not in self.arrays:
                out.add(r)
        return frozenset(out)


def _const_int(e: FExpr) -> int | None:
    if isinstance(e, FNum) and isinstance(e.value, int):
        return e.value
    if isinstance(e, FUn) and e.op == "neg":
        v = _const_int(e.operand)
        return -v if v is not None else None
    if isinstance(e, FBin):
        lv, rv = _const_int(e.left), _const_int(e.right)
        if lv is None or rv is None:
            return None
        if e.op == "+":
            return lv + rv
        if e.op == "-":
            return lv - rv
        if e.op == "*":
            return lv * rv
    return None


def sym_affine(e: FExpr) -> tuple[str, int] | None:
    """Decompose ``e`` as ``variable + constant`` → ``(name, offset)``.

    The one-symbol affine form shared by the symbolic bounds proof: a
    bare variable is ``(name, 0)``; ``v + 2`` / ``v - 1`` / ``2 + v``
    carry their literal offset.  Anything else returns None.
    """
    if isinstance(e, FVar):
        return e.name.lower(), 0
    if isinstance(e, FBin) and e.op in ("+", "-"):
        if isinstance(e.left, FVar):
            c = _const_int(e.right)
            if c is not None:
                return e.left.name.lower(), c if e.op == "+" else -c
        if e.op == "+" and isinstance(e.right, FVar):
            c = _const_int(e.left)
            if c is not None:
                return e.right.name.lower(), c
    return None


def build_model(unit: FSubprogram | FProgramUnit, channels: dict[str, str],
                *, extra_extents: dict[str, tuple[int | None, ...]]
                | None = None) -> UnitModel:
    """Build the model from the unit's declarations plus the channel map
    (and optional module-level extents resolved by the caller)."""
    model = UnitModel(name=unit.name, unit=unit, channels=dict(channels))
    if isinstance(unit, FSubprogram):
        model.params = tuple(p.lower() for p in unit.params)
        if unit.kind == "function":
            model.result = (unit.result or unit.name).lower()

    for name, extents in (extra_extents or {}).items():
        model.arrays.add(name)
        model.array_extents[name] = extents

    for d in unit.decls:
        if not isinstance(d, FDecl):
            continue
        for ent in d.entities:
            n = ent.name.lower()
            is_array = bool(ent.dims) or ent.deferred_rank > 0
            if is_array:
                model.arrays.add(n)
                if ent.dims:
                    model.array_extents[n] = tuple(
                        _const_int(dim) for dim in ent.dims)
                    model.array_sym_extents[n] = tuple(
                        sym_affine(dim) if _const_int(dim) is None
                        else None
                        for dim in ent.dims)
            elif d.spec.base == "integer":
                model.int_scalars.add(n)
            if d.intent and n in model.params:
                model.intents[n] = d.intent.lower()
            if ent.init is not None or "save" in d.attrs:
                model.initialized.add(n)
            if "save" in d.attrs:
                model.saved.add(n)
            if "parameter" in d.attrs and ent.init is not None:
                v = _const_int(ent.init)
                model.initialized.add(n)
                if v is not None and not is_array:
                    model.const_values[n] = v

    # Constant ALLOCATE extents refine deferred-shape locals (first
    # allocation wins; conflicting re-allocations drop to unknown).
    _scan_allocates(unit.body, model)
    return model


def _scan_allocates(stmts: list, model: UnitModel) -> None:
    from ...fortranlib.ast import FDoWhile, FIf

    for s in stmts:
        if isinstance(s, FAllocate):
            for ref, dims in s.items:
                if not isinstance(ref, FVar):
                    continue
                n = ref.name.lower()
                extents = tuple(_const_int(d) for d in dims)
                syms = tuple(sym_affine(d) if _const_int(d) is None
                             else None
                             for d in dims)
                model.arrays.add(n)
                if n in model.array_extents and model.array_extents[n] != extents:
                    model.array_extents[n] = tuple(None for _ in extents)
                else:
                    model.array_extents[n] = extents
                if (n in model.array_sym_extents
                        and model.array_sym_extents[n] != syms):
                    model.array_sym_extents[n] = tuple(None for _ in syms)
                else:
                    model.array_sym_extents[n] = syms
        elif isinstance(s, FDo):
            _scan_allocates(s.body, model)
        elif isinstance(s, FDoWhile):
            _scan_allocates(s.body, model)
        elif isinstance(s, FIf):
            for _, body in s.branches:
                _scan_allocates(body, model)


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------

def _root_var(e: FExpr) -> str | None:
    while isinstance(e, FFieldRef):
        e = e.base
    return e.name.lower() if isinstance(e, FVar) else None


def _call_effect(name: str, args: tuple, model: UnitModel, summaries,
                 line: int, out: list[Event]) -> None:
    """Events for a function/subroutine reference with these actuals."""
    summary = summaries.get(name) if summaries else None
    if summary is not None and len(summary.params) == len(args):
        for actual, dummy in zip(args, summary.params):
            intent = summary.effective(dummy)
            if intent in ("in", "inout"):
                _expr_uses(actual, model, summaries, line, out)
            else:                       # out: subscripts still evaluated
                if isinstance(actual, FIndexed):
                    for a in actual.args:
                        _expr_uses(a, model, summaries, line, out)
            if intent in ("out", "inout"):
                if isinstance(actual, FVar):
                    n = actual.name.lower()
                    out.append(Event("def", n, strong=not model.is_array(n),
                                     line=line, array=model.is_array(n)))
                elif isinstance(actual, FIndexed):
                    base = _root_var(actual.base)
                    if base is not None:
                        out.append(Event("def", base, strong=False,
                                         line=line, array=True))
        return
    if name in PURE_INTRINSICS:
        for a in args:
            _expr_uses(a, model, summaries, line, out)
        return
    # Unknown callee: every plain-variable actual is read and (assumed)
    # written — the assumption that suppresses false findings.
    for a in args:
        _expr_uses(a, model, summaries, line, out)
        if isinstance(a, FVar):
            n = a.name.lower()
            out.append(Event("def", n, strong=not model.is_array(n),
                             line=line, array=model.is_array(n),
                             assumed=True))


def _expr_uses(e: FExpr, model: UnitModel, summaries, line: int,
               out: list[Event]) -> None:
    if isinstance(e, FVar):
        out.append(Event("use", e.name.lower(), line=line,
                         array=model.is_array(e.name.lower())))
    elif isinstance(e, FIndexed):
        base = e.base
        if isinstance(base, FVar) and not model.is_array(base.name.lower()):
            _call_effect(base.name.lower(), e.args, model, summaries,
                         line, out)
            return
        root = _root_var(base)
        if root is not None:
            out.append(Event("use", root, line=line, array=True))
        for a in e.args:
            _expr_uses(a, model, summaries, line, out)
    elif isinstance(e, FFieldRef):
        root = _root_var(e)
        if root is not None:
            out.append(Event("use", root, line=line))
    elif isinstance(e, FBin):
        _expr_uses(e.left, model, summaries, line, out)
        _expr_uses(e.right, model, summaries, line, out)
    elif isinstance(e, FUn):
        _expr_uses(e.operand, model, summaries, line, out)
    elif isinstance(e, FCallExpr):
        _call_effect(e.name.lower(), e.args, model, summaries, line, out)


def atom_events(atom: Atom, model: UnitModel, summaries=None) -> list[Event]:
    """Ordered def/use events for one atom (uses precede the final def)."""
    out: list[Event] = []
    kind, node, line = atom.kind, atom.node, atom.line
    if kind == "stmt":
        if isinstance(node, FAssign):
            _expr_uses(node.value, model, summaries, line, out)
            tgt = node.target
            if isinstance(tgt, FVar):
                n = tgt.name.lower()
                out.append(Event("def", n, strong=not model.is_array(n),
                                 line=line, store=True,
                                 array=model.is_array(n)))
            elif isinstance(tgt, FIndexed):
                for a in tgt.args:
                    _expr_uses(a, model, summaries, line, out)
                base = _root_var(tgt.base)
                if base is not None:
                    out.append(Event("def", base, strong=False, line=line,
                                     store=True, array=True))
            elif isinstance(tgt, FFieldRef):
                base = _root_var(tgt)
                if base is not None:
                    out.append(Event("def", base, strong=False, line=line,
                                     store=True))
        elif isinstance(node, FCall):
            _call_effect(node.name.lower(), node.args, model, summaries,
                         line, out)
        elif isinstance(node, FPrint):
            for a in node.args:
                _expr_uses(a, model, summaries, line, out)
        elif isinstance(node, FAllocate):
            for _, dims in node.items:
                for d in dims:
                    _expr_uses(d, model, summaries, line, out)
        elif isinstance(node, FDeallocate):
            pass
    elif kind == "do":
        assert isinstance(node, FDo)
        for b in (node.start, node.end, node.step):
            if b is not None:
                _expr_uses(b, model, summaries, line, out)
    elif kind in ("do-bind", "do-post"):
        assert isinstance(node, FDo)
        out.append(Event("def", node.var.lower(), strong=True, line=line))
    elif kind in ("while", "cond"):
        _expr_uses(node, model, summaries, line, out)
    elif kind == "exit-use":
        out.append(Event("use", node.name, line=line))
    # 'assume'/'assume-not' atoms exist only for the interval analysis.
    return out


def expr_subscript_sites(e: FExpr, model: UnitModel,
                         out: list[tuple[str, tuple[FExpr, ...]]]) -> None:
    """Collect every true array-subscript site ``(array, args)`` in ``e``
    (function references recurse into their arguments only)."""
    if isinstance(e, FIndexed):
        if isinstance(e.base, FVar) and model.is_array(e.base.name.lower()):
            out.append((e.base.name.lower(), e.args))
        for a in e.args:
            expr_subscript_sites(a, model, out)
    elif isinstance(e, FBin):
        expr_subscript_sites(e.left, model, out)
        expr_subscript_sites(e.right, model, out)
    elif isinstance(e, FUn):
        expr_subscript_sites(e.operand, model, out)
    elif isinstance(e, FCallExpr):
        for a in e.args:
            expr_subscript_sites(a, model, out)
    elif isinstance(e, FFieldRef):
        expr_subscript_sites(e.base, model, out)
