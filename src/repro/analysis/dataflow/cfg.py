"""Per-unit control-flow graphs for the dataflow engine.

Two builders share the same block/atom vocabulary:

* :func:`build_unit_cfg` — over a parsed FORTRAN subprogram or PROGRAM
  body, with DO back/zero-trip edges, IF/ELSE-IF chains, and EXIT /
  CYCLE / RETURN / STOP jump edges;
* :func:`build_step_cfg` — over one GLAF step (its implicit loop nest
  plus the statement list, with IfStmt branches and ExitLoop / Return
  edges).

Blocks hold *atoms* rather than raw statements: loop headers are split
into a bounds-evaluation atom (``do``), a body-side binding atom
(``do-bind``) and an exit-side binding atom (``do-post``) so a forward
analysis can give the induction variable a different value on the body
edge (within the iteration range) than on the exit edge (one stride
past it) — without per-edge states in the engine.  Branch entries get
``assume`` atoms carrying the branch condition (positive or negated)
for the interval analysis to refine against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...fortranlib.ast import (
    FAllocate,
    FAssign,
    FCall,
    FCycle,
    FDeallocate,
    FDo,
    FDoWhile,
    FExit,
    FIf,
    FOmpDirective,
    FPrint,
    FProgramUnit,
    FReturn,
    FStop,
    FSubprogram,
    FVar,
)

__all__ = ["Atom", "Block", "CFG", "build_unit_cfg", "build_step_cfg"]


@dataclass(frozen=True)
class Atom:
    """One analysis-relevant event inside a basic block.

    ``kind`` ∈ {'stmt', 'do', 'do-bind', 'do-post', 'while', 'cond',
    'assume', 'assume-not', 'exit-use', 'step-range', 'step-cond',
    'step-stmt'}; ``node`` is the owning statement or expression.
    """

    kind: str
    node: object
    line: int = 0
    guards_parallel: bool = False   # 'cond' atoms: branch holds an OMP loop


@dataclass
class Block:
    id: int
    atoms: list[Atom] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class CFG:
    blocks: list[Block]
    entry: int
    exit: int

    def reachable(self) -> set[int]:
        """Block ids reachable from the entry (code after RETURN/EXIT in
        the same branch is statically dead and excluded from findings)."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            b = stack.pop()
            for s in self.blocks[b].succs:
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []

    def new(self) -> Block:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b

    def edge(self, src: Block, dst: Block) -> None:
        if dst.id not in src.succs:
            src.succs.append(dst.id)
            dst.preds.append(src.id)


def _contains_parallel(stmts: list) -> bool:
    """Does this statement list (recursively) hold an OMP-parallel loop?"""
    for s in stmts:
        if isinstance(s, FOmpDirective) and s.kind == "parallel_do":
            return True
        if isinstance(s, FDo):
            if s.omp is not None and s.omp.kind == "parallel_do":
                return True
            if _contains_parallel(s.body):
                return True
        elif isinstance(s, FDoWhile):
            if _contains_parallel(s.body):
                return True
        elif isinstance(s, FIf):
            for _, body in s.branches:
                if _contains_parallel(body):
                    return True
    return False


def build_unit_cfg(unit: FSubprogram | FProgramUnit) -> CFG:
    """CFG over one FORTRAN unit's executable body."""
    bld = _Builder()
    entry = bld.new()
    exit_ = bld.new()
    first = bld.new()
    bld.edge(entry, first)
    last = _seq(bld, unit.body, first, exit_, [])
    bld.edge(last, exit_)
    if isinstance(unit, FSubprogram) and unit.kind == "function":
        result = (unit.result or unit.name).lower()
        exit_.atoms.append(Atom("exit-use", FVar(result)))
    return CFG(bld.blocks, entry.id, exit_.id)


def _seq(bld: _Builder, stmts: list, cur: Block, exit_: Block,
         loops: list[tuple[Block, Block]]) -> Block:
    """Thread ``stmts`` from ``cur``; returns the fall-through block."""
    for s in stmts:
        if isinstance(s, (FAssign, FCall, FPrint, FAllocate, FDeallocate)):
            cur.atoms.append(Atom("stmt", s, s.line))
        elif isinstance(s, FIf):
            cur = _branch(bld, s, cur, exit_, loops)
        elif isinstance(s, FDo):
            cur = _do_loop(bld, s, cur, exit_, loops)
        elif isinstance(s, FDoWhile):
            head = bld.new()
            bld.edge(cur, head)
            head.atoms.append(Atom("while", s.cond, s.line))
            after = bld.new()
            body = bld.new()
            bld.edge(head, body)
            loops.append((head, after))
            end = _seq(bld, s.body, body, exit_, loops)
            loops.pop()
            bld.edge(end, head)
            bld.edge(head, after)
            cur = after
        elif isinstance(s, FExit):
            bld.edge(cur, loops[-1][1] if loops else exit_)
            cur = bld.new()
        elif isinstance(s, FCycle):
            bld.edge(cur, loops[-1][0] if loops else exit_)
            cur = bld.new()
        elif isinstance(s, (FReturn, FStop)):
            bld.edge(cur, exit_)
            cur = bld.new()
        # Everything else (OMP sentinels, CONTINUE, stray decls) carries
        # no dataflow events.
    return cur


def _branch(bld: _Builder, s: FIf, cur: Block, exit_: Block,
            loops: list[tuple[Block, Block]]) -> Block:
    join = bld.new()
    chain: Block | None = cur
    for cond, body in s.branches:
        if cond is not None:
            chain.atoms.append(Atom("cond", cond, s.line,
                                    guards_parallel=_contains_parallel(body)))
        b = bld.new()
        bld.edge(chain, b)
        if cond is not None:
            b.atoms.append(Atom("assume", cond, s.line))
        end = _seq(bld, body, b, exit_, loops)
        bld.edge(end, join)
        if cond is None:         # ELSE: no fall-through remains
            chain = None
            break
        nxt = bld.new()
        bld.edge(chain, nxt)
        nxt.atoms.append(Atom("assume-not", cond, s.line))
        chain = nxt
    if chain is not None:
        bld.edge(chain, join)
    return join


def _do_loop(bld: _Builder, s: FDo, cur: Block, exit_: Block,
             loops: list[tuple[Block, Block]]) -> Block:
    head = bld.new()
    bld.edge(cur, head)
    head.atoms.append(Atom("do", s, s.line))
    bind = bld.new()
    bld.edge(head, bind)
    bind.atoms.append(Atom("do-bind", s, s.line))
    post = bld.new()
    bld.edge(head, post)
    post.atoms.append(Atom("do-post", s, s.line))
    after = bld.new()
    bld.edge(post, after)
    loops.append((head, after))
    end = _seq(bld, s.body, bind, exit_, loops)
    loops.pop()
    bld.edge(end, head)
    return after


# ----------------------------------------------------------------------
# GLAF step bodies
# ----------------------------------------------------------------------

def build_step_cfg(step) -> CFG:
    """CFG over one GLAF step: the (single, perfect) loop nest is one
    header with a back edge; the statement list forms the body with
    IfStmt branches and ExitLoop / Return jump edges."""
    from ...core.step import Assign, CallStmt, ExitLoop, IfStmt, Return

    bld = _Builder()
    entry = bld.new()
    exit_ = bld.new()

    if not step.ranges:
        body = bld.new()
        bld.edge(entry, body)
        end = _step_seq(bld, step, step.stmts, body, exit_, None)
        bld.edge(end, exit_)
        return CFG(bld.blocks, entry.id, exit_.id)

    head = bld.new()
    bld.edge(entry, head)
    for r in step.ranges:
        head.atoms.append(Atom("step-range", r))
    after = bld.new()
    bld.edge(head, after)           # zero-trip / normal exit
    body = bld.new()
    bld.edge(head, body)
    if step.condition is not None:
        body.atoms.append(Atom("step-cond", step.condition))
    end = _step_seq(bld, step, step.stmts, body, exit_, after)
    bld.edge(end, head)             # back edge
    bld.edge(after, exit_)
    return CFG(bld.blocks, entry.id, exit_.id)


def _step_seq(bld: _Builder, step, stmts, cur: Block, exit_: Block,
              after: Block | None) -> Block:
    from ...core.step import Assign, CallStmt, ExitLoop, IfStmt, Return

    for s in stmts:
        if isinstance(s, (Assign, CallStmt)):
            cur.atoms.append(Atom("step-stmt", s))
        elif isinstance(s, IfStmt):
            cur.atoms.append(Atom("step-cond", s.cond))
            join = bld.new()
            then = bld.new()
            bld.edge(cur, then)
            end = _step_seq(bld, step, s.then, then, exit_, after)
            bld.edge(end, join)
            orelse = bld.new()
            bld.edge(cur, orelse)
            end = _step_seq(bld, step, s.orelse, orelse, exit_, after)
            bld.edge(end, join)
            cur = join
        elif isinstance(s, Return):
            cur.atoms.append(Atom("step-stmt", s))
            bld.edge(cur, exit_)
            cur = bld.new()
        elif isinstance(s, ExitLoop):
            bld.edge(cur, after if after is not None else exit_)
            cur = bld.new()
    return cur
