"""Reusable dataflow analyses over per-unit control-flow graphs.

The package builds basic-block CFGs from two IRs — parsed FORTRAN
subprograms (:mod:`repro.fortranlib.ast`) and GLAF step bodies
(:mod:`repro.core.step`) — and runs lattice fixpoints over them with one
generic worklist engine (:mod:`.engine`):

* :mod:`.reaching` — may-uninitialized forward analysis (reaching of the
  UNINIT pseudo-definition) → use-before-def and INTENT violations,
  interprocedural across CALL sites via :mod:`.intent` summaries;
* :mod:`.liveness` — backward liveness → dead stores, never-read local
  arrays, and the grid-liveness proof the vectorized executor uses to
  skip rollback snapshots;
* :mod:`.ranges` — forward interval propagation on integer scalars with
  widening at loop joins;
* :mod:`.bounds` — affine subscript classification (proven-in-bounds /
  possible-OOB / unknown) on top of the interval facts, plus detection
  of constant-false conditionals guarding parallel regions.

The analyses return neutral record types; :mod:`repro.lint.dataflow`
maps them onto lint rules and findings.
"""

from .bounds import BoundsIssue, GuardIssue, RangeSummary, check_bounds
from .cfg import CFG, Atom, Block, build_step_cfg, build_unit_cfg
from .engine import Problem, solve
from .intent import UnitSummary, infer_summaries
from .liveness import DeadStore, dead_stores, step_live_on_entry
from .model import UnitModel, build_model
from .ranges import Interval, TOP, solve_ranges
from .reaching import IntentIssue, UninitUse, analyze_uninit

__all__ = [
    "CFG", "Atom", "Block", "build_unit_cfg", "build_step_cfg",
    "Problem", "solve",
    "UnitModel", "build_model",
    "UnitSummary", "infer_summaries",
    "UninitUse", "IntentIssue", "analyze_uninit",
    "DeadStore", "dead_stores", "step_live_on_entry",
    "Interval", "TOP", "solve_ranges",
    "BoundsIssue", "GuardIssue", "RangeSummary", "check_bounds",
]
