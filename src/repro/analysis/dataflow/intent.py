"""INTENT summaries for interprocedural reaching definitions.

Legacy FORTRAN rarely declares INTENT, so the reaching analysis cannot
rely on declarations alone at CALL sites.  :func:`infer_summaries`
computes, for every unit in a parsed batch, the *effective* intent of
each dummy argument:

* declared INTENT wins when present;
* otherwise a dummy that may be **read before any write** on some path
  (decided by the same may-uninitialized fixpoint the use-before-def
  rule runs, seeded with only the dummies) has an ``in`` component, and
  a dummy that is written anywhere has an ``out`` component;
* a dummy with neither defaults to ``in`` (harmless: the caller keeps
  treating the actual as read).

Summaries are one level deep — while inferring a unit, calls *it* makes
are treated with declared intents when available and conservatively
(read + written) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import CFG
from .engine import Problem, solve
from .model import UnitModel, atom_events

__all__ = ["UnitSummary", "infer_summaries"]


@dataclass(frozen=True)
class UnitSummary:
    """Effective per-dummy intents of one callee."""

    name: str
    params: tuple[str, ...]
    declared: dict[str, str] = field(default_factory=dict)
    inferred: dict[str, str] = field(default_factory=dict)

    def effective(self, dummy: str) -> str:
        return self.declared.get(dummy) or self.inferred.get(dummy, "inout")


def _declared_only(models: dict[str, tuple[UnitModel, CFG]]
                   ) -> dict[str, UnitSummary]:
    out = {}
    for name, (model, _) in models.items():
        out[name] = UnitSummary(
            name=name, params=model.params,
            declared=dict(model.intents),
            inferred={p: "inout" for p in model.params})
    return out


def _infer_one(model: UnitModel, cfg: CFG,
               callees: dict[str, UnitSummary]) -> UnitSummary:
    seed = frozenset(model.params)

    def transfer(block, state):
        s = set(state)
        for atom in block.atoms:
            for ev in atom_events(atom, model, callees):
                if ev.op == "def" and ev.strong:
                    s.discard(ev.name)
        return frozenset(s)

    joined, _ = solve(cfg, Problem(
        forward=True, boundary=seed, transfer=transfer,
        join=lambda a, b: a | b))

    reads_first: set[str] = set()
    writes: set[str] = set()
    reachable = cfg.reachable()
    for bid in reachable:
        state = joined[bid]
        if state is None:
            continue
        live = set(state)
        for atom in cfg.blocks[bid].atoms:
            for ev in atom_events(atom, model, callees):
                if ev.op == "use" and ev.name in model.params:
                    # Array dummies take only weak defs, so "still
                    # maybe-unwritten" would be always true; for them a
                    # plain read marks the in-component instead.
                    if ev.name in model.arrays or ev.name in live:
                        reads_first.add(ev.name)
                elif ev.op == "def":
                    if ev.name in model.params:
                        writes.add(ev.name)
                    if ev.strong:
                        live.discard(ev.name)

    inferred: dict[str, str] = {}
    for p in model.params:
        if p in reads_first and p in writes:
            inferred[p] = "inout"
        elif p in writes:
            inferred[p] = "out"
        else:
            inferred[p] = "in"
    return UnitSummary(name=model.name.lower(), params=model.params,
                       declared=dict(model.intents), inferred=inferred)


def infer_summaries(models: dict[str, tuple[UnitModel, CFG]]
                    ) -> dict[str, UnitSummary]:
    """Summaries for every unit in the batch, keyed by lowercase name."""
    declared = _declared_only(models)
    return {name: _infer_one(model, cfg, declared)
            for name, (model, cfg) in models.items()}
