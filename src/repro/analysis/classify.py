"""Loop classification for the directive-pruning study (paper Table 2).

The paper's Figure 5 experiment removes OpenMP directives from parallelizable
loops in three increments, each targeting a syntactic class of loop for which
the compiler's own optimization (memset, SIMD, unrolling) beats thread-level
parallelism:

* **v1** removes directives from (a) initializations of grids to zero and
  (b) initializations with a single value loaded from another array;
* **v2** additionally removes them from all remaining *simple single loops*
  (one to a few assignment formulas, incl. recognized reductions);
* **v3** additionally removes them from *simple double loops* — double-nested
  loops with one or a few statements and **no control structure**.

Everything else is **complex**; in the SARB case study the two large loops of
``longwave_entropy_model`` stay OpenMP-annotated in v3 and provide the final
1.41x speed-up.
"""

from __future__ import annotations

import enum

from ..core.expr import Const, GridRef, IndexVar, UnOp, index_vars_used, walk
from ..core.step import Assign, CallStmt, IfStmt, Step, walk_stmts

__all__ = ["LoopClass", "classify_step", "SIMPLE_BODY_MAX_STMTS"]

# "few lines (two to four) of similar assignments" — paper §4.1.2.
SIMPLE_BODY_MAX_STMTS = 4


class LoopClass(enum.Enum):
    NOT_A_LOOP = "not-a-loop"
    ZERO_INIT = "zero-init"             # a(i,...) = 0
    BROADCAST_INIT = "broadcast-init"   # a(i) = scalar or loop-invariant load
    SIMPLE_SINGLE = "simple-single"     # 1-level nest, few assignments, no ctrl
    SIMPLE_DOUBLE = "simple-double"     # 2-level nest, few stmts, no ctrl flow
    COMPLEX = "complex"


def _is_zero_const(e) -> bool:
    if isinstance(e, Const):
        return e.value == 0
    if isinstance(e, UnOp) and e.op == "neg":
        return _is_zero_const(e.operand)
    return False


def _loop_invariant(e, loop_vars: set[str]) -> bool:
    return not (index_vars_used(e) & loop_vars)


def classify_step(step: Step) -> LoopClass:
    """Syntactic class of a step's loop, mirroring the paper's categories."""
    if not step.is_loop:
        return LoopClass.NOT_A_LOOP

    stmts = list(walk_stmts(step.stmts))
    has_ctrl = step.has_control_flow() or step.condition is not None
    has_calls = any(isinstance(s, CallStmt) for s in stmts)
    assigns = [s for s in stmts if isinstance(s, Assign)]
    loop_vars = set(step.index_names())

    if has_calls:
        return LoopClass.COMPLEX

    # --- initialization classes (v1 targets) ---------------------------
    if not has_ctrl and len(assigns) == len(stmts) and assigns:
        if all(_is_zero_const(s.expr) for s in assigns):
            return LoopClass.ZERO_INIT
        if all(_broadcast_like(s.expr, loop_vars) for s in assigns):
            return LoopClass.BROADCAST_INIT

    # --- simple loops (v2/v3 targets) ----------------------------------
    simple_body = (
        not has_ctrl
        and len(stmts) <= SIMPLE_BODY_MAX_STMTS
        and all(isinstance(s, Assign) for s in stmts)
    )
    if simple_body and step.depth == 1:
        return LoopClass.SIMPLE_SINGLE
    if simple_body and step.depth == 2:
        return LoopClass.SIMPLE_DOUBLE
    return LoopClass.COMPLEX


def _broadcast_like(e, loop_vars: set[str]) -> bool:
    """A loop-invariant scalar value: a constant, a scalar grid, or a single
    array element with loop-invariant subscripts ("a single value loaded from
    another array", paper §4.1.2)."""
    if isinstance(e, Const):
        return True
    if isinstance(e, GridRef):
        return all(_loop_invariant(i, loop_vars) for i in e.indices)
    return False
