"""Access extraction and affine index analysis.

The auto-parallelization back-end works from the set of grid *accesses* each
step makes: which grid, read or write, and the index expression per
dimension.  Index expressions that are affine in the step's index variables
(``c0 + c1*i + c2*j ...`` with integer-constant coefficients) admit exact
dependence tests; anything else (e.g. an index loaded from another grid, as
in FUN3D's ``ioff`` offsets) is *indirect* and handled conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.expr import (
    BinOp,
    Const,
    Expr,
    FuncCall,
    GridRef,
    IndexVar,
    LibCall,
    UnOp,
    walk,
)
from ..core.step import Assign, CallStmt, IfStmt, Return, Step, Stmt, walk_stmts

__all__ = ["AffineForm", "Access", "affine_form", "step_accesses", "collect_reads"]


@dataclass(frozen=True)
class AffineForm:
    """``const + sum(coeffs[v] * v)`` over index variables."""

    const: int
    coeffs: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Drop zero coefficients so equal forms compare equal.
        object.__setattr__(
            self, "coeffs", {v: c for v, c in self.coeffs.items() if c != 0}
        )

    def uses(self, var: str) -> bool:
        return var in self.coeffs

    def vars(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AffineForm)
            and self.const == other.const
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.const, tuple(sorted(self.coeffs.items()))))

    def minus(self, other: "AffineForm") -> "AffineForm":
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) - c
        return AffineForm(self.const - other.const, coeffs)


def affine_form(e: Expr, index_vars: set[str]) -> AffineForm | None:
    """Affine decomposition of ``e`` over ``index_vars``; ``None`` if not affine.

    Grid references (even to loop-invariant scalars) make an index
    *symbolically* affine at best; for dependence testing we only accept
    pure constants and index variables, treating everything else as
    non-affine.  Loop-invariant scalar offsets could be supported with a
    symbolic constant term; GLAF's dependence tests take the same
    conservative view.
    """
    if isinstance(e, Const):
        if isinstance(e.value, bool) or not isinstance(e.value, int):
            return None
        return AffineForm(e.value)
    if isinstance(e, IndexVar):
        if e.name in index_vars:
            return AffineForm(0, {e.name: 1})
        return None
    if isinstance(e, UnOp) and e.op == "neg":
        inner = affine_form(e.operand, index_vars)
        if inner is None:
            return None
        return AffineForm(-inner.const, {v: -c for v, c in inner.coeffs.items()})
    if isinstance(e, BinOp):
        if e.op == "+":
            left, right = affine_form(e.left, index_vars), affine_form(e.right, index_vars)
            if left is None or right is None:
                return None
            coeffs = dict(left.coeffs)
            for v, c in right.coeffs.items():
                coeffs[v] = coeffs.get(v, 0) + c
            return AffineForm(left.const + right.const, coeffs)
        if e.op == "-":
            left, right = affine_form(e.left, index_vars), affine_form(e.right, index_vars)
            if left is None or right is None:
                return None
            return left.minus(right)
        if e.op == "*":
            left, right = affine_form(e.left, index_vars), affine_form(e.right, index_vars)
            if left is None or right is None:
                return None
            if not left.coeffs:  # constant * affine
                k = left.const
                return AffineForm(k * right.const, {v: k * c for v, c in right.coeffs.items()})
            if not right.coeffs:
                k = right.const
                return AffineForm(k * left.const, {v: k * c for v, c in left.coeffs.items()})
            return None
    return None


@dataclass(frozen=True)
class Access:
    """One read or write of a grid inside a step body."""

    grid: str
    indices: tuple[Expr, ...]
    is_write: bool
    stmt_pos: int                       # position in flattened statement order
    affine: tuple[AffineForm | None, ...]  # per-dimension affine form or None
    conditional: bool = False           # under an IfStmt or step condition

    @property
    def fully_affine(self) -> bool:
        return all(a is not None for a in self.affine)

    def vars_used(self) -> frozenset[str]:
        out: set[str] = set()
        for a in self.affine:
            if a is not None:
                out |= a.vars()
        return frozenset(out)


def collect_reads(e: Expr) -> list[GridRef]:
    """All grid references appearing in an expression (reads)."""
    return [n for n in walk(e) if isinstance(n, GridRef)]


def step_accesses(step: Step) -> list[Access]:
    """Flattened read/write accesses of a step body, in statement order.

    Call arguments are treated as reads of the argument expressions; the
    callee's own effects are summarized separately (see
    :mod:`repro.analysis.parallelize`).
    """
    from ..observe import get_metrics

    index_vars = set(step.index_names())
    accesses: list[Access] = []
    pos = 0

    def mk(refnode: GridRef, is_write: bool, conditional: bool) -> Access:
        aff = tuple(affine_form(i, index_vars) for i in refnode.indices)
        return Access(
            grid=refnode.grid,
            indices=refnode.indices,
            is_write=is_write,
            stmt_pos=pos,
            affine=aff,
            conditional=conditional,
        )

    def visit(stmts: list[Stmt] | tuple[Stmt, ...], conditional: bool) -> None:
        nonlocal pos
        for s in stmts:
            if isinstance(s, Assign):
                # Reads from index expressions of the target happen too.
                for idx in s.target.indices:
                    for r in collect_reads(idx):
                        accesses.append(mk(r, False, conditional))
                for r in collect_reads(s.expr):
                    accesses.append(mk(r, False, conditional))
                accesses.append(mk(s.target, True, conditional))
                pos += 1
            elif isinstance(s, CallStmt):
                for a in s.args:
                    for r in collect_reads(a):
                        accesses.append(mk(r, False, conditional))
                pos += 1
            elif isinstance(s, IfStmt):
                for r in collect_reads(s.cond):
                    accesses.append(mk(r, False, conditional))
                pos += 1
                visit(s.then, True)
                visit(s.orelse, True)
            elif isinstance(s, Return):
                if s.value is not None:
                    for r in collect_reads(s.value):
                        accesses.append(mk(r, False, conditional))
                pos += 1
            else:  # ExitLoop
                pos += 1

    cond = step.condition is not None
    if cond:
        for r in collect_reads(step.condition):
            accesses.append(mk(r, False, False))
    visit(step.stmts, cond)
    m = get_metrics()
    if m.enabled:
        m.counter("analysis.accesses.collected").inc(len(accesses))
        m.counter("analysis.accesses.steps").inc()
    return accesses
