"""The auto-parallelization back-end.

For every step of every function this module decides whether the step's loop
nest can be executed in parallel, and with which OpenMP clauses.  The result
(a :class:`StepParallelism` per step, collected into a
:class:`ParallelPlan`) drives code generation: GLAF-parallel v0 annotates
**every** parallelizable loop (paper Table 2), and the optimization
back-end's pruning pipeline then removes directives class by class.

Decision procedure per step:

1. No loop nest → not a parallelization candidate.
2. Early loop exit / return inside the nest → not parallel (unless the
   CRITICAL early-return protocol is explicitly enabled — the FUN3D
   ``ioff_search`` manual tweak, §4.2.1).
3. Recognize reductions (``REDUCTION(op:var)`` clauses).
4. Classify remaining written grids: private temporaries → ``PRIVATE``;
   injectively-indexed outputs → shared; scalar or colliding writes that are
   not reductions → **serial**.
5. Writes through indirect subscripts (``a(ioff) = a(ioff) + x``) are
   allowed only as atomic updates (``!$OMP ATOMIC``), matching the paper's
   "atomic update clauses added to parallel updates" tweak.
6. Loop-carried dependences at constant distance → serial.
7. Calls to other GLAF functions: the callee's transitive write effects on
   global/module/COMMON grids are treated as shared writes; they do not
   serialize the loop but are recorded so code generation can apply the
   private/copyprivate handling the paper describes (§4.2.1).
8. A multi-dimensional nest gets ``COLLAPSE(depth)`` (the paper's SARB
   kernels show ``COLLAPSE(2)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.expr import GridRef, walk
from ..core.function import GlafFunction, GlafProgram
from ..core.step import Assign, CallStmt, ExitLoop, Return, Step, walk_stmts
from ..observe import get_decisions, get_metrics, get_tracer
from ..robust import inject
from .accesses import step_accesses
from .dependence import DepKind, may_alias, test_alias_pair, test_pair, write_is_injective
from .privatization import classify_privates
from .reductions import find_reductions

__all__ = ["StepParallelism", "ParallelPlan", "analyze_step", "analyze_program",
           "callee_write_effects"]


@dataclass
class StepParallelism:
    """Parallelization verdict and clause set for one step."""

    function: str
    step_index: int
    step_name: str
    parallel: bool
    reasons: list[str] = field(default_factory=list)
    private: list[str] = field(default_factory=list)
    firstprivate: list[str] = field(default_factory=list)
    reductions: dict[str, str] = field(default_factory=dict)   # grid -> omp op
    atomic: list[str] = field(default_factory=list)            # grids needing ATOMIC
    critical_early_exit: bool = False                          # ioff_search protocol
    collapse: int = 1
    callee_shared_writes: list[str] = field(default_factory=list)
    depth: int = 0

    @property
    def key(self) -> tuple[str, int]:
        return (self.function, self.step_index)


@dataclass
class ParallelPlan:
    """Program-wide parallelization analysis."""

    program_name: str
    steps: dict[tuple[str, int], StepParallelism] = field(default_factory=dict)

    def for_function(self, name: str) -> list[StepParallelism]:
        return [sp for (f, _), sp in sorted(self.steps.items()) if f == name]

    def get(self, function: str, step_index: int) -> StepParallelism:
        return self.steps[(function, step_index)]

    def parallel_steps(self) -> list[StepParallelism]:
        return [sp for sp in self.steps.values() if sp.parallel]


def callee_write_effects(
    program: GlafProgram, fname: str, _seen: frozenset[str] = frozenset()
) -> set[str]:
    """Global-scope grids written (transitively) by calling ``fname``.

    Dummy-argument writes are the caller's concern (the argument grids show
    up in the caller's own access set); what a caller cannot see locally is
    the callee touching module-scope / COMMON / imported grids.
    """
    if fname in _seen:
        return set()
    try:
        fn = program.find_function(fname)
    except KeyError:
        return set()
    written: set[str] = set()
    for step in fn.steps:
        for s in walk_stmts(step.stmts):
            if isinstance(s, Assign):
                g = s.target.grid
                if g not in fn.grids and g in program.global_grids:
                    written.add(g)
            elif isinstance(s, CallStmt):
                written |= callee_write_effects(
                    program, s.name, _seen | {fname}
                )
    return written


def analyze_step(
    program: GlafProgram,
    fn: GlafFunction,
    step_index: int,
    *,
    allow_critical_early_exit: bool = False,
) -> StepParallelism:
    with get_tracer().span("analysis.step", function=fn.name, step=step_index):
        sp = _analyze_step(
            program, fn, step_index,
            allow_critical_early_exit=allow_critical_early_exit,
        )
    sp = inject("analysis.parallelize.verdict", sp,
                function=fn.name, step=step_index) or sp
    decisions = get_decisions()
    if decisions.enabled:
        from .classify import classify_step

        attrs: dict[str, object] = {}
        if sp.collapse > 1:
            attrs["collapse"] = sp.collapse
        if sp.reductions:
            attrs["reductions"] = ",".join(sorted(sp.reductions))
        if sp.atomic:
            attrs["atomic"] = ",".join(sp.atomic)
        decisions.record(
            "parallelize", fn.name, step_index, sp.step_name,
            "parallel" if sp.parallel else "serial",
            loop_class=classify_step(fn.steps[step_index]).value,
            reasons=sp.reasons,
            **attrs,
        )
    return sp


def _analyze_step(
    program: GlafProgram,
    fn: GlafFunction,
    step_index: int,
    *,
    allow_critical_early_exit: bool = False,
) -> StepParallelism:
    step = fn.steps[step_index]
    sp = StepParallelism(
        function=fn.name,
        step_index=step_index,
        step_name=step.name,
        parallel=False,
        depth=step.depth,
    )
    if not step.is_loop:
        sp.reasons.append("no loop nest")
        return sp

    loop_vars = step.index_names()

    # --- early exit control flow -------------------------------------
    has_exit = any(isinstance(s, (ExitLoop, Return)) for s in walk_stmts(step.stmts))
    if has_exit:
        if allow_critical_early_exit:
            sp.critical_early_exit = True
            sp.reasons.append(
                "early exit guarded by OMP CRITICAL early-return protocol"
            )
        else:
            sp.reasons.append("early loop exit / return inside nest")
            return sp

    reductions = find_reductions(step)
    # An update whose subscripts already map iterations to distinct elements
    # (e.g. ``flux(i) = flux(i) * c`` in an i-loop) needs no REDUCTION
    # clause — it is an ordinary independent write.
    from .accesses import affine_form

    for g in list(reductions):
        r = reductions[g]
        idx_forms = tuple(affine_form(ix, set(loop_vars)) for ix in r.indices)
        if idx_forms and any(f is None for f in idx_forms):
            # Indirect subscripts (e.g. ``jac(ioff, k) += x``) cannot become
            # REDUCTION clauses; they take the ATOMIC-update path instead
            # (the paper's §4.2.1 atomic tweak).
            del reductions[g]
            continue
        if idx_forms and all(f is not None for f in idx_forms):
            from .accesses import Access

            probe = Access(grid=g, indices=r.indices, is_write=True, stmt_pos=0,
                           affine=idx_forms)
            if write_is_injective(probe, loop_vars):
                del reductions[g]
    priv = classify_privates(program, fn, step)

    accesses = step_accesses(step)
    writes = [a for a in accesses if a.is_write]
    serial_reasons: list[str] = []
    atomic: set[str] = set()

    for w in writes:
        g = w.grid
        if g in reductions:
            continue
        if g in priv.private or g in priv.firstprivate:
            continue
        if not w.fully_affine:
            # Indirect subscript. An update of the form g(idx) = g(idx) + e
            # can be made safe with an atomic clause; anything else is a
            # potential write-write race we cannot order.
            if _is_self_update(step, w.grid, w.indices):
                atomic.add(g)
                continue
            serial_reasons.append(f"indirect write to {g} is not an atomic-able update")
            continue
        if not write_is_injective(w, loop_vars):
            serial_reasons.append(
                f"write to {g}{_fmt_idx(w)} collides across iterations "
                "(not a recognized reduction or private temporary)"
            )
            continue
        # Injective write: check distances against every other access —
        # including accesses to *different-named* grids that may share
        # storage through a COMMON block or a derived-TYPE overlay (§3.2,
        # §3.5), which affine comparison cannot reason about.
        for other in accesses:
            if other is w:
                continue
            if other.grid != g:
                if not _grids_may_alias(program, fn, g, other.grid):
                    continue
                dep = test_alias_pair(w, other, loop_vars)
            else:
                dep = test_pair(w, other, loop_vars)
            if dep.kind in (DepKind.LOOP_CARRIED, DepKind.UNKNOWN):
                serial_reasons.append(
                    f"dependence on {g}: {dep.detail or dep.kind.value}"
                )
                break

    # --- callee effects ------------------------------------------------
    from ..core.expr import FuncCall

    callee_writes: set[str] = set()
    for s in walk_stmts(step.stmts):
        if isinstance(s, CallStmt):
            callee_writes |= callee_write_effects(program, s.name)
    for e in step.all_exprs():
        for node in walk(e):
            if isinstance(node, FuncCall):
                callee_writes |= callee_write_effects(program, node.name)
    sp.callee_shared_writes = sorted(callee_writes)

    sp.reductions = {g: r.op for g, r in reductions.items()}
    # Reduction variables get their own clause; inner loop indices are
    # always private in an OpenMP DO nest.
    sp.private = sorted((priv.private - set(reductions)) | set(loop_vars[1:]))
    sp.firstprivate = sorted(priv.firstprivate - set(reductions))
    sp.atomic = sorted(atomic)

    if serial_reasons:
        sp.reasons.extend(serial_reasons)
        sp.parallel = False
        return sp

    sp.parallel = True
    sp.collapse = step.depth if step.depth > 1 and not _inner_vars_in_bounds(step) else 1
    if sp.collapse > 1:
        sp.reasons.append(f"perfect nest collapsed with COLLAPSE({sp.collapse})")
    if not sp.reasons:
        sp.reasons.append("no loop-carried dependences detected")
    return sp


def _grids_may_alias(
    program: GlafProgram, fn: GlafFunction, a: str, b: str
) -> bool:
    """Alias test by name, tolerant of unresolvable (builtin/implicit) refs."""
    try:
        ga = program.resolve_grid(fn, a)
        gb = program.resolve_grid(fn, b)
    except KeyError:
        return False
    return may_alias(ga, gb)


def _inner_vars_in_bounds(step: Step) -> bool:
    """True if an inner range bound depends on an outer index variable
    (a triangular nest), which forbids COLLAPSE."""
    from ..core.expr import index_vars_used

    outer: set[str] = set()
    for r in step.ranges:
        for e in (r.start, r.end, r.step):
            if index_vars_used(e) & outer:
                return True
        outer.add(r.var)
    return False


def _is_self_update(step: Step, grid: str, indices: tuple) -> bool:
    """Every write of ``grid`` in the step is ``g(i...) = g(i...) op e``."""
    from .reductions import _match_update

    for s in walk_stmts(step.stmts):
        if isinstance(s, Assign) and s.target.grid == grid:
            if _match_update(s) is None:
                return False
    return True


def _fmt_idx(a) -> str:
    if not a.indices:
        return ""
    return "(" + ", ".join(repr(i) for i in a.indices) + ")"


def analyze_program(
    program: GlafProgram,
    *,
    critical_early_exit_functions: frozenset[str] | set[str] = frozenset(),
) -> ParallelPlan:
    """Analyze every step of every function."""
    with get_tracer().span("analysis.parallelize", program=program.name) as tsp:
        plan = ParallelPlan(program_name=program.name)
        for fn in program.functions():
            allow = fn.name in critical_early_exit_functions
            for i in range(len(fn.steps)):
                sp = analyze_step(program, fn, i, allow_critical_early_exit=allow)
                plan.steps[sp.key] = sp
        n_par = sum(1 for sp in plan.steps.values() if sp.parallel)
        tsp.set(steps=len(plan.steps), parallel=n_par)
        m = get_metrics()
        m.counter("analysis.steps").inc(len(plan.steps))
        m.counter("analysis.steps.parallel").inc(n_par)
    return plan
