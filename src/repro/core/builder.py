"""Programmatic GPI: the builder API.

The GLAF front-end is a point-and-click graphical programming interface
(paper Figure 2).  Since the GUI is only an input method over the grid/step
internal representation, this reproduction exposes the same actions as a
fluent Python API.  Each builder method corresponds to a GPI screen or
widget:

===========================================  =======================================
GPI action (paper figure)                     Builder call
===========================================  =======================================
create module                                 ``GlafBuilder.module(name)``
create grid in Global Scope (Fig. 3)          ``GlafBuilder.global_grid(...)``
"exists in existing module" checkbox (§3.1)   ``global_grid(..., exists_in_module=)``
"belongs in COMMON block" checkbox (§3.2)     ``global_grid(..., common_block=)``
module-scope variable (§3.3)                  ``global_grid(..., module_scope=True)``
TYPE element of existing variable (§3.5)      ``global_grid(..., type_parent=, type_name=)``
header step return type = void (Fig. 4, §3.4) ``ModuleBuilder.function(..., return_type=T_VOID)``
add step / index range / condition / formula  ``StepBuilder.foreach/condition/formula``
add function call box                         ``StepBuilder.call(...)``
===========================================  =======================================
"""

from __future__ import annotations

from typing import Sequence

from ..errors import BuilderError
from .expr import Expr, GridRef, E
from .function import GLOBAL_SCOPE, GlafFunction, GlafModule, GlafProgram
from .grid import DimSize, Grid
from .step import Assign, CallStmt, ExitLoop, IfStmt, Range, Return, Step, Stmt
from .types import DerivedType, GlafType

__all__ = ["GlafBuilder", "ModuleBuilder", "FunctionBuilder", "StepBuilder"]


class GlafBuilder:
    """Top-level builder for a whole GLAF program."""

    def __init__(self, name: str):
        self.program = GlafProgram(name=name)

    def module(self, name: str, comment: str = "") -> "ModuleBuilder":
        if name == GLOBAL_SCOPE:
            raise BuilderError("use global_grid() for the Global Scope module")
        mod = self.program.add_module(GlafModule(name=name, comment=comment))
        return ModuleBuilder(self, mod)

    def derived_type(
        self,
        name: str,
        fields: dict[str, tuple[GlafType, int]],
        defined_in_module: str | None = None,
    ) -> DerivedType:
        """Register the shape of an existing FORTRAN derived TYPE (§3.5)."""
        return self.program.add_derived_type(
            DerivedType(name=name, fields=fields, defined_in_module=defined_in_module)
        )

    def global_grid(
        self,
        name: str,
        ty: GlafType,
        dims: Sequence[DimSize] = (),
        *,
        comment: str = "",
        exists_in_module: str | None = None,
        common_block: str | None = None,
        module_scope: bool = False,
        type_parent: str | None = None,
        type_name: str | None = None,
        init_data: object = None,
        is_parameter: bool = False,
        save: bool = False,
    ) -> Grid:
        """Create a grid in Global Scope — the Figure 3 configuration screen."""
        if type_parent is not None and type_name is None:
            raise BuilderError(
                f"grid {name!r}: a TYPE element needs the TYPE name "
                "(the GPI prompts for it after the module name, §3.5)"
            )
        if type_name is not None and type_name not in self.program.derived_types:
            raise BuilderError(
                f"grid {name!r}: derived type {type_name!r} is not registered; "
                "call derived_type() first"
            )
        if type_name is not None:
            dt = self.program.derived_types[type_name]
            if not dt.has_field(name):
                raise BuilderError(
                    f"grid {name!r}: TYPE {type_name} has no element of that name"
                )
        grid = Grid(
            name=name,
            ty=ty,
            dims=tuple(dims),
            comment=comment,
            exists_in_module=exists_in_module,
            common_block=common_block,
            module_scope=module_scope,
            type_parent=type_parent,
            type_name=type_name,
            init_data=init_data,
            is_parameter=is_parameter,
            save=save,
        )
        return self.program.add_global_grid(grid)

    def build(self) -> GlafProgram:
        """Validate and return the finished program."""
        from .validate import validate_program

        validate_program(self.program)
        return self.program


class ModuleBuilder:
    def __init__(self, parent: GlafBuilder, module: GlafModule):
        self._parent = parent
        self.module = module

    def function(
        self,
        name: str,
        return_type: GlafType = GlafType.T_VOID,
        comment: str = "",
    ) -> "FunctionBuilder":
        """Create a function; ``return_type=T_VOID`` selects SUBROUTINE form
        on the header screen (Figure 4, §3.4)."""
        fn = self.module.add_function(
            GlafFunction(name=name, return_type=return_type, comment=comment)
        )
        return FunctionBuilder(self._parent, fn)


class FunctionBuilder:
    def __init__(self, parent: GlafBuilder, fn: GlafFunction):
        self._parent = parent
        self.fn = fn

    def param(
        self,
        name: str,
        ty: GlafType,
        dims: Sequence[DimSize] = (),
        *,
        intent: str | None = None,
        comment: str = "",
    ) -> Grid:
        """Add a dummy-argument grid (a numbered "Parameter N" box in Fig. 2)."""
        grid = Grid(name=name, ty=ty, dims=tuple(dims), intent=intent, comment=comment)
        return self.fn.add_grid(grid, param=True)

    def local(
        self,
        name: str,
        ty: GlafType,
        dims: Sequence[DimSize] = (),
        *,
        comment: str = "",
        init_data: object = None,
        save: bool = False,
        allocatable: bool = False,
        is_parameter: bool = False,
    ) -> Grid:
        """Add a function-local grid."""
        grid = Grid(
            name=name,
            ty=ty,
            dims=tuple(dims),
            comment=comment,
            init_data=init_data,
            save=save,
            allocatable=allocatable,
            is_parameter=is_parameter,
        )
        return self.fn.add_grid(grid)

    def step(self, name: str | None = None, comment: str = "") -> "StepBuilder":
        name = name or f"Step{len(self.fn.steps) + 1}"
        step = Step(name=name, comment=comment)
        self.fn.steps.append(step)
        return StepBuilder(self, step)

    def returns(self, value: object) -> None:
        """Append a trailing return step (value-returning functions)."""
        if self.fn.is_subroutine:
            raise BuilderError(f"{self.fn.name}: subroutines return no value")
        step = Step(name=f"Return{len(self.fn.steps) + 1}")
        step.stmts.append(Return(E(value)))
        self.fn.steps.append(step)


class StepBuilder:
    """Builds one step: index range, condition, formulas, calls."""

    def __init__(self, parent: FunctionBuilder, step: Step):
        self._parent = parent
        self.step = step

    def foreach(self, **ranges: tuple[object, object] | tuple[object, object, object]) -> "StepBuilder":
        """Set the step's index range, e.g. ``foreach(row=(0, "end0"))``.

        Bounds are inclusive, like the GPI's foreach and FORTRAN DO.
        Keyword order defines loop-nest order, outermost first.
        """
        if self.step.ranges:
            raise BuilderError(
                f"step {self.step.name!r}: index range already set — GLAF "
                "models interior nested loops as separate functions"
            )
        for var, bounds in ranges.items():
            if len(bounds) == 2:
                start, end = bounds
                step_ = 1
            elif len(bounds) == 3:
                start, end, step_ = bounds
            else:
                raise BuilderError(f"range for {var!r} must be (start, end[, step])")
            self.step.ranges.append(Range(var=var, start=E(start), end=E(end), step=E(step_)))
        # Re-run duplicate checking from Step.__post_init__.
        seen: set[str] = set()
        for r in self.step.ranges:
            if r.var in seen:
                raise BuilderError(f"duplicate index variable {r.var!r}")
            seen.add(r.var)
        return self

    def condition(self, cond: object) -> "StepBuilder":
        if self.step.condition is not None:
            raise BuilderError(f"step {self.step.name!r}: condition already set")
        self.step.condition = E(cond)
        return self

    def formula(self, target: GridRef, expr: object) -> "StepBuilder":
        """Add a formula (an ``Add Formula`` box in Figure 2)."""
        self.step.stmts.append(Assign(target=target, expr=E(expr)))
        return self

    def call(self, name: str, args: Sequence[object] = ()) -> "StepBuilder":
        """Add a call to another GLAF function (interior loop nests, §3.3)."""
        self.step.stmts.append(CallStmt(name=name, args=tuple(E(a) for a in args)))
        return self

    def if_(
        self,
        cond: object,
        then: Sequence[Stmt],
        orelse: Sequence[Stmt] = (),
    ) -> "StepBuilder":
        for branch, label in ((then, "then"), (orelse, "orelse")):
            for s in branch:
                if not isinstance(s, Stmt):
                    raise BuilderError(
                        f"if_ {label} branch needs statements; got "
                        f"{type(s).__name__} — use StepBuilder.assign/ret/"
                        "exit_stmt/call_stmt to build them"
                    )
        self.step.stmts.append(IfStmt(cond=E(cond), then=tuple(then), orelse=tuple(orelse)))
        return self

    def return_(self, value: object | None = None) -> "StepBuilder":
        self.step.stmts.append(Return(E(value) if value is not None else None))
        return self

    def exit_loop(self) -> "StepBuilder":
        self.step.stmts.append(ExitLoop())
        return self

    # Statement constructors usable inside if_(...) bodies.
    @staticmethod
    def assign(target: GridRef, expr: object) -> Assign:
        return Assign(target=target, expr=E(expr))

    @staticmethod
    def call_stmt(name: str, args: Sequence[object] = ()) -> CallStmt:
        return CallStmt(name=name, args=tuple(E(a) for a in args))

    @staticmethod
    def ret(value: object | None = None) -> Return:
        return Return(E(value) if value is not None else None)

    @staticmethod
    def exit_stmt() -> ExitLoop:
        return ExitLoop()

    @staticmethod
    def if_stmt(cond: object, then: Sequence[Stmt], orelse: Sequence[Stmt] = ()) -> IfStmt:
        return IfStmt(cond=E(cond), then=tuple(then), orelse=tuple(orelse))
