"""Structural validation of GLAF programs.

The GPI prevents most invalid states interactively; since our builder is
programmatic, this validator enforces the same rules before any back-end
runs:

* every grid referenced by a formula resolves in function or global scope;
* every index variable used is bound by the enclosing step's index range;
* called functions exist, and argument counts match;
* subroutines (void return) contain no value-returning ``Return``; functions
  return a value on every trailing path (checked shallowly);
* steps contain at most one loop nest (GLAF's nesting rule — interior loops
  must be separate functions, paper §3.3);
* TYPE-element grids name a registered derived type that has the field;
* COMMON-block grids and existing-module grids live in Global Scope only.

By default the first violation raises :class:`ValidationError`.  With
``collect=True`` the walk continues past each error — mirroring the
recovering parser — and every violation is raised together as one
:class:`~repro.errors.DiagnosticBundle`, which is what ``repro lint`` and
the CLI program loader use to report all problems in one pass.
"""

from __future__ import annotations

from ..errors import DiagnosticBundle, ValidationError
from .expr import Expr, FuncCall, GridRef, LibCall, walk
from .function import GlafFunction, GlafProgram
from .libfuncs import REGISTRY
from .step import Assign, CallStmt, Return, Step, walk_stmts
from .types import GlafType

__all__ = ["validate_program", "validate_function"]


class _Sink:
    """Error channel: raise immediately, or collect for one bundle."""

    def __init__(self, collect: bool):
        self.collect = collect
        self.errors: list[ValidationError] = []
        self._seen: set[str] = set()

    def error(self, message: str) -> None:
        err = ValidationError(message)
        if not self.collect:
            raise err
        # The walks overlap (an assignment target is also visited as an
        # expression), which strict mode never notices — it raises on the
        # first hit.  Collected bundles dedup exact repeats.
        if message not in self._seen:
            self._seen.add(message)
            self.errors.append(err)

    def finish(self) -> None:
        if self.errors:
            raise DiagnosticBundle(self.errors)


def validate_program(program: GlafProgram, *, collect: bool = False) -> None:
    from ..observe import get_tracer

    with get_tracer().span("project.validate", program=program.name):
        sink = _Sink(collect)
        _validate_program(program, sink)
        sink.finish()


def _validate_program(program: GlafProgram, sink: _Sink) -> None:
    names = [fn.name for fn in program.functions()]
    if len(names) != len(set(names)):
        dupes = sorted({n for n in names if names.count(n) > 1})
        sink.error(f"function names must be program-unique: {dupes}")

    for g in program.global_grids.values():
        if g.type_name is not None:
            if g.type_name not in program.derived_types:
                sink.error(
                    f"global grid {g.name!r}: unknown derived type {g.type_name!r}"
                )
                continue
            dt = program.derived_types[g.type_name]
            if not dt.has_field(g.name):
                sink.error(
                    f"global grid {g.name!r}: TYPE {g.type_name} has no such element"
                )

    for fn in program.functions():
        validate_function(program, fn, sink=sink)


def validate_function(
    program: GlafProgram, fn: GlafFunction, *, sink: _Sink | None = None
) -> None:
    sink = sink or _Sink(collect=False)
    for g in fn.grids.values():
        if g.is_external:
            sink.error(
                f"{fn.name}: grid {g.name!r} uses legacy-integration attributes "
                "but is function-local; create it in Global Scope (paper §3.1/3.2)"
            )
        if g.module_scope:
            sink.error(
                f"{fn.name}: module-scope grid {g.name!r} must live in Global Scope"
            )

    for step in fn.steps:
        _validate_step(program, fn, step, sink)

    if fn.is_subroutine:
        for step in fn.steps:
            for s in walk_stmts(step.stmts):
                if isinstance(s, Return) and s.value is not None:
                    sink.error(
                        f"{fn.name}: subroutine cannot return a value (paper §3.4)"
                    )


def _validate_step(
    program: GlafProgram, fn: GlafFunction, step: Step, sink: _Sink
) -> None:
    where = f"{fn.name}/{step.name}"

    free = step.free_index_vars()
    if free:
        sink.error(f"{where}: unbound index variables {sorted(free)}")

    for e in step.all_exprs():
        _validate_expr(program, fn, e, where, sink)

    for s in walk_stmts(step.stmts):
        if isinstance(s, Assign):
            grid = _resolve(program, fn, s.target.grid, where, sink)
            if grid is None:
                continue
            if s.target.indices and len(s.target.indices) != grid.rank:
                sink.error(
                    f"{where}: target {grid.name!r} has rank {grid.rank} but "
                    f"{len(s.target.indices)} indices were given"
                )
            if not s.target.indices and grid.rank != 0:
                sink.error(
                    f"{where}: cannot assign to whole array {grid.name!r}; "
                    "index it or use an initialization step"
                )
            if grid.is_parameter:
                sink.error(f"{where}: cannot assign to PARAMETER {grid.name!r}")
        elif isinstance(s, CallStmt):
            _validate_call(program, s.name, len(s.args), where,
                           subroutine_only=True, sink=sink)


def _validate_expr(
    program: GlafProgram, fn: GlafFunction, e: Expr, where: str, sink: _Sink
) -> None:
    for node in walk(e):
        if isinstance(node, GridRef):
            grid = _resolve(program, fn, node.grid, where, sink)
            if grid is None:
                continue
            if node.indices and len(node.indices) != grid.rank:
                sink.error(
                    f"{where}: grid {grid.name!r} has rank {grid.rank} but is "
                    f"indexed with {len(node.indices)} indices"
                )
        elif isinstance(node, LibCall):
            if node.name not in REGISTRY:
                sink.error(f"{where}: unknown library function {node.name!r}")
                continue
            try:
                REGISTRY[node.name].check_arity(len(node.args))
            except ValidationError as err:
                sink.error(str(err))
        elif isinstance(node, FuncCall):
            _validate_call(program, node.name, len(node.args), where,
                           subroutine_only=False, sink=sink)


def _validate_call(
    program: GlafProgram, name: str, nargs: int, where: str,
    subroutine_only: bool, sink: _Sink,
) -> None:
    try:
        callee = program.find_function(name)
    except KeyError:
        sink.error(f"{where}: call to unknown function {name!r}")
        return
    if nargs != len(callee.params):
        sink.error(
            f"{where}: {name} takes {len(callee.params)} argument(s), got {nargs}"
        )
    if subroutine_only and not callee.is_subroutine:
        sink.error(
            f"{where}: {name} returns a value; use it inside a formula, "
            "not as a CALL statement"
        )
    if not subroutine_only and callee.is_subroutine:
        sink.error(
            f"{where}: {name} is a subroutine and yields no value (paper §3.4)"
        )


def _resolve(
    program: GlafProgram, fn: GlafFunction, name: str, where: str, sink: _Sink
):
    try:
        return program.resolve_grid(fn, name)
    except KeyError:
        sink.error(f"{where}: reference to unknown grid {name!r}")
        return None