"""Steps and statements.

The GPI organizes each function as a sequence of *steps*.  A step owns an
optional loop nest (the "Index Range: foreach row, col" box in Figure 2), an
optional condition, and an ordered list of formulas / calls.

GLAF's structural rule (paper §3.3/§4.1.2): a step carries at most **one**
perfect loop nest — any interior nested loop must be modelled as a call to a
separate GLAF function.  This rule is what creates the function-call overhead
discussed in the paper's performance evaluation, and it is enforced by
:mod:`repro.core.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import ValidationError
from .expr import Expr, GridRef, E, index_vars_used, grids_read, walk

__all__ = [
    "Range",
    "Stmt",
    "Assign",
    "CallStmt",
    "IfStmt",
    "Return",
    "ExitLoop",
    "Step",
    "walk_stmts",
    "stmt_exprs",
]


@dataclass(frozen=True)
class Range:
    """One loop dimension of a step's index range.

    Bounds are inclusive on both ends, matching FORTRAN ``DO var = start, end``
    (and the GPI's "foreach" ranges).  ``step`` must be a positive constant
    expression for parallelization analysis to treat the loop as countable.
    """

    var: str
    start: Expr
    end: Expr
    step: Expr = field(default_factory=lambda: E(1))

    def __post_init__(self) -> None:
        if not self.var.isidentifier():
            raise ValidationError(f"bad index variable name {self.var!r}")
        object.__setattr__(self, "start", E(self.start))
        object.__setattr__(self, "end", E(self.end))
        object.__setattr__(self, "step", E(self.step))


class Stmt:
    """Base class for statements inside a step."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """A formula: ``target = expr``."""

    target: GridRef
    expr: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.target, GridRef):
            raise ValidationError("formula target must be a grid reference")
        object.__setattr__(self, "expr", E(self.expr))


@dataclass(frozen=True)
class CallStmt(Stmt):
    """A call to another GLAF function or subroutine.

    When the callee is a subroutine (void return), code generation emits
    ``CALL name(args)`` (paper §3.4).  When it is a value-returning function
    called for effect on its arguments, FORTRAN still allows a function
    reference statement; GLAF instead assigns into a scratch target, so the
    builder only produces CallStmt for subroutines.
    """

    name: str
    args: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(E(a) for a in self.args))


@dataclass(frozen=True)
class IfStmt(Stmt):
    """A structured conditional (no nested loops allowed inside)."""

    cond: Expr
    then: tuple[Stmt, ...] = ()
    orelse: tuple[Stmt, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "cond", E(self.cond))
        object.__setattr__(self, "then", tuple(self.then))
        object.__setattr__(self, "orelse", tuple(self.orelse))


@dataclass(frozen=True)
class Return(Stmt):
    """Return from the enclosing function (with a value unless subroutine)."""

    value: Expr | None = None

    def __post_init__(self) -> None:
        if self.value is not None:
            object.__setattr__(self, "value", E(self.value))


@dataclass(frozen=True)
class ExitLoop(Stmt):
    """Early exit from the step's loop nest (FORTRAN ``EXIT``).

    Used by the FUN3D ``ioff_search`` kernel; a step containing ExitLoop is
    never parallelizable without an OMP CRITICAL early-return protocol
    (paper §4.2.1, last manual tweak).
    """


@dataclass
class Step:
    """One GPI step: loop nest + condition + ordered statements."""

    name: str
    ranges: list[Range] = field(default_factory=list)
    condition: Expr | None = None
    stmts: list[Stmt] = field(default_factory=list)
    comment: str = ""

    def __post_init__(self) -> None:
        if self.condition is not None:
            self.condition = E(self.condition)
        seen: set[str] = set()
        for r in self.ranges:
            if r.var in seen:
                raise ValidationError(
                    f"step {self.name!r}: duplicate index variable {r.var!r}"
                )
            seen.add(r.var)

    # -- structure queries -------------------------------------------------
    @property
    def is_loop(self) -> bool:
        return bool(self.ranges)

    @property
    def depth(self) -> int:
        return len(self.ranges)

    def index_names(self) -> tuple[str, ...]:
        return tuple(r.var for r in self.ranges)

    def has_control_flow(self) -> bool:
        """True if the body contains if/else, early return or loop exit."""
        return any(
            isinstance(s, (IfStmt, Return, ExitLoop)) for s in walk_stmts(self.stmts)
        )

    def has_calls(self) -> bool:
        return any(isinstance(s, CallStmt) for s in walk_stmts(self.stmts))

    def called_functions(self) -> set[str]:
        names = {
            s.name for s in walk_stmts(self.stmts) if isinstance(s, CallStmt)
        }
        from .expr import FuncCall

        for e in self.all_exprs():
            for node in walk(e):
                if isinstance(node, FuncCall):
                    names.add(node.name)
        return names

    def all_exprs(self) -> Iterator[Expr]:
        """Every expression appearing anywhere in the step."""
        for r in self.ranges:
            yield r.start
            yield r.end
            yield r.step
        if self.condition is not None:
            yield self.condition
        for s in walk_stmts(self.stmts):
            yield from stmt_exprs(s)

    def grids_referenced(self) -> set[str]:
        out: set[str] = set()
        for e in self.all_exprs():
            out |= grids_read(e)
        for s in walk_stmts(self.stmts):
            if isinstance(s, Assign):
                out.add(s.target.grid)
        return out

    def free_index_vars(self) -> set[str]:
        """Index variables used in the body but not bound by the ranges."""
        bound = set(self.index_names())
        used: set[str] = set()
        for e in self.all_exprs():
            used |= index_vars_used(e)
        return used - bound


def walk_stmts(stmts: Sequence[Stmt]) -> Iterator[Stmt]:
    """Flatten statements, descending into IfStmt branches."""
    for s in stmts:
        yield s
        if isinstance(s, IfStmt):
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.orelse)


def stmt_exprs(s: Stmt) -> Iterator[Expr]:
    """Expressions directly owned by one statement (not recursing into ifs)."""
    if isinstance(s, Assign):
        yield s.target
        yield s.expr
    elif isinstance(s, CallStmt):
        yield from s.args
    elif isinstance(s, IfStmt):
        yield s.cond
    elif isinstance(s, Return) and s.value is not None:
        yield s.value
