"""Expression AST for GLAF formulas.

Formulas entered in the GPI's formula boxes are stored internally as small
expression trees over grid references, loop index variables, constants,
arithmetic/logical operators, and library-function calls.  The trees are
immutable; every back-end (auto-parallelization, optimization, code
generation, execution) walks the same nodes.

Operator overloading is provided so that the programmatic builder reads
naturally::

    s.formula(ref("out", I("row")), ref("a", I("row")) * 2.0 + lib("ABS", ref("b")))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Expr",
    "Const",
    "IndexVar",
    "GridRef",
    "BinOp",
    "UnOp",
    "LibCall",
    "FuncCall",
    "E",
    "I",
    "ref",
    "lib",
    "walk",
    "index_vars_used",
    "grids_read",
    "ARITH_OPS",
    "COMPARE_OPS",
    "LOGICAL_OPS",
]

ARITH_OPS = ("+", "-", "*", "/", "**", "//", "%")
COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL_OPS = ("and", "or")


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    # -- operator sugar -------------------------------------------------
    def __add__(self, other: object) -> "BinOp":
        return BinOp("+", self, E(other))

    def __radd__(self, other: object) -> "BinOp":
        return BinOp("+", E(other), self)

    def __sub__(self, other: object) -> "BinOp":
        return BinOp("-", self, E(other))

    def __rsub__(self, other: object) -> "BinOp":
        return BinOp("-", E(other), self)

    def __mul__(self, other: object) -> "BinOp":
        return BinOp("*", self, E(other))

    def __rmul__(self, other: object) -> "BinOp":
        return BinOp("*", E(other), self)

    def __truediv__(self, other: object) -> "BinOp":
        return BinOp("/", self, E(other))

    def __rtruediv__(self, other: object) -> "BinOp":
        return BinOp("/", E(other), self)

    def __pow__(self, other: object) -> "BinOp":
        return BinOp("**", self, E(other))

    def __floordiv__(self, other: object) -> "BinOp":
        return BinOp("//", self, E(other))

    def __mod__(self, other: object) -> "BinOp":
        return BinOp("%", self, E(other))

    def __neg__(self) -> "UnOp":
        return UnOp("neg", self)

    # Comparisons intentionally return expression nodes, so Expr objects
    # must never be used in Python boolean contexts (e.g. as dict keys).
    def eq(self, other: object) -> "BinOp":
        return BinOp("==", self, E(other))

    def ne(self, other: object) -> "BinOp":
        return BinOp("!=", self, E(other))

    def lt(self, other: object) -> "BinOp":
        return BinOp("<", self, E(other))

    def le(self, other: object) -> "BinOp":
        return BinOp("<=", self, E(other))

    def gt(self, other: object) -> "BinOp":
        return BinOp(">", self, E(other))

    def ge(self, other: object) -> "BinOp":
        return BinOp(">=", self, E(other))

    def and_(self, other: object) -> "BinOp":
        return BinOp("and", self, E(other))

    def or_(self, other: object) -> "BinOp":
        return BinOp("or", self, E(other))

    def not_(self) -> "UnOp":
        return UnOp("not", self)

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (int, float or bool)."""

    value: object

    def __post_init__(self) -> None:
        if not isinstance(self.value, (int, float, bool, str)):
            raise TypeError(f"Const holds int/float/bool/str, got {type(self.value)!r}")

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class IndexVar(Expr):
    """A reference to a step index variable (e.g. ``row``)."""

    name: str

    def __repr__(self) -> str:
        return f"I({self.name!r})"


@dataclass(frozen=True)
class GridRef(Expr):
    """A reference to a grid, possibly indexed.

    A scalar grid is referenced with no indices.  An *unindexed* reference to
    an array grid denotes the whole array (legal only as an argument to
    whole-array library functions such as ``SUM`` or as a call argument).
    """

    grid: str
    indices: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(E(i) for i in self.indices))

    def children(self) -> tuple[Expr, ...]:
        return self.indices

    def __repr__(self) -> str:
        if not self.indices:
            return f"ref({self.grid!r})"
        return f"ref({self.grid!r}, {', '.join(map(repr, self.indices))})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS + COMPARE_OPS + LOGICAL_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation: ``neg`` or ``not``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("neg", "not"):
            raise ValueError(f"unknown unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True)
class LibCall(Expr):
    """A call to a GLAF library function (paper §3.6): ``ABS``, ``ALOG``...

    Library functions map to language intrinsics during code generation and
    to NumPy implementations during execution.
    """

    name: str
    args: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.upper())
        object.__setattr__(self, "args", tuple(E(a) for a in self.args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"lib({self.name!r}, {', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A call to a user-defined GLAF function that returns a value."""

    name: str
    args: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(E(a) for a in self.args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"FuncCall({self.name!r}, {', '.join(map(repr, self.args))})"


# ---------------------------------------------------------------------------
# Constructors and traversal helpers
# ---------------------------------------------------------------------------

def E(value: object) -> Expr:
    """Lift a Python scalar to a :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, bool)):
        return Const(value)
    if isinstance(value, str):
        # A bare string is taken as a scalar grid reference, which makes
        # range bounds such as ``(1, "n_atoms")`` read like the GPI.
        return GridRef(value)
    raise TypeError(f"cannot lift {type(value)!r} to an expression")


def I(name: str) -> IndexVar:
    """Shorthand for an index-variable reference."""
    return IndexVar(name)


def ref(grid: str, *indices: object) -> GridRef:
    """Shorthand for a grid reference."""
    return GridRef(grid, tuple(E(i) for i in indices))


def lib(name: str, *args: object) -> LibCall:
    """Shorthand for a library-function call."""
    return LibCall(name, tuple(E(a) for a in args))


def walk(e: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield e
    for c in e.children():
        yield from walk(c)


def index_vars_used(e: Expr) -> set[str]:
    """Names of all index variables appearing in ``e``."""
    return {n.name for n in walk(e) if isinstance(n, IndexVar)}


def grids_read(e: Expr) -> set[str]:
    """Names of all grids referenced anywhere in ``e``."""
    return {n.grid for n in walk(e) if isinstance(n, GridRef)}
