"""GLAF data types.

GLAF's internal representation tags every grid (and every grid dimension, for
struct-like grids) with a data type drawn from a small fixed set.  This module
defines that set and the mappings to NumPy dtypes and to FORTRAN / C / OpenCL
type declarations used by the code-generation back-ends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GlafType",
    "T_INT",
    "T_REAL",
    "T_REAL8",
    "T_LOGICAL",
    "T_CHAR",
    "T_VOID",
    "numpy_dtype",
    "fortran_decl",
    "c_decl",
    "opencl_decl",
    "promote",
    "is_numeric",
    "DerivedType",
]


class GlafType(enum.Enum):
    """The GLAF scalar element types.

    ``T_VOID`` is only legal as a subprogram return type; selecting it in the
    header step makes the code generators emit a FORTRAN ``SUBROUTINE``
    (paper §3.4) rather than a ``FUNCTION``.
    """

    T_INT = "integer"
    T_REAL = "real"
    T_REAL8 = "real8"
    T_LOGICAL = "logical"
    T_CHAR = "char"
    T_VOID = "void"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlafType.{self.name}"


# Convenience aliases so user code reads like the paper's figures.
T_INT = GlafType.T_INT
T_REAL = GlafType.T_REAL
T_REAL8 = GlafType.T_REAL8
T_LOGICAL = GlafType.T_LOGICAL
T_CHAR = GlafType.T_CHAR
T_VOID = GlafType.T_VOID


_NUMPY = {
    GlafType.T_INT: np.dtype(np.int64),
    GlafType.T_REAL: np.dtype(np.float32),
    GlafType.T_REAL8: np.dtype(np.float64),
    GlafType.T_LOGICAL: np.dtype(np.bool_),
    GlafType.T_CHAR: np.dtype("U64"),
}

_FORTRAN = {
    GlafType.T_INT: "INTEGER",
    GlafType.T_REAL: "REAL",
    GlafType.T_REAL8: "REAL(KIND=8)",
    GlafType.T_LOGICAL: "LOGICAL",
    GlafType.T_CHAR: "CHARACTER(LEN=64)",
}

_C = {
    GlafType.T_INT: "long",
    GlafType.T_REAL: "float",
    GlafType.T_REAL8: "double",
    GlafType.T_LOGICAL: "int",
    GlafType.T_CHAR: "char*",
    GlafType.T_VOID: "void",
}

_OPENCL = {
    GlafType.T_INT: "long",
    GlafType.T_REAL: "float",
    GlafType.T_REAL8: "double",
    GlafType.T_LOGICAL: "int",
    GlafType.T_CHAR: "char*",
    GlafType.T_VOID: "void",
}


def numpy_dtype(ty: GlafType) -> np.dtype:
    """NumPy dtype backing a grid of GLAF type ``ty``."""
    if ty is GlafType.T_VOID:
        raise ValueError("T_VOID has no storage dtype")
    return _NUMPY[ty]


def fortran_decl(ty: GlafType) -> str:
    """FORTRAN type-spec for ``ty`` (e.g. ``REAL(KIND=8)``)."""
    if ty is GlafType.T_VOID:
        raise ValueError("T_VOID has no FORTRAN declaration; it selects SUBROUTINE form")
    return _FORTRAN[ty]


def c_decl(ty: GlafType) -> str:
    """C type for ``ty``."""
    return _C[ty]


def opencl_decl(ty: GlafType) -> str:
    """OpenCL C type for ``ty``."""
    return _OPENCL[ty]


_RANK = {
    GlafType.T_LOGICAL: 0,
    GlafType.T_INT: 1,
    GlafType.T_REAL: 2,
    GlafType.T_REAL8: 3,
}


def is_numeric(ty: GlafType) -> bool:
    """True for types valid in arithmetic expressions."""
    return ty in (GlafType.T_INT, GlafType.T_REAL, GlafType.T_REAL8)


def promote(a: GlafType, b: GlafType) -> GlafType:
    """FORTRAN-style numeric promotion of two operand types."""
    if a not in _RANK or b not in _RANK:
        raise ValueError(f"cannot promote {a} and {b}")
    return a if _RANK[a] >= _RANK[b] else b


@dataclass(frozen=True)
class DerivedType:
    """A FORTRAN derived TYPE definition (paper §3.5).

    GLAF only needs the *shape* of existing TYPEs to generate correct
    ``var%element`` accesses and to validate that a grid marked as a TYPE
    element names a field that actually exists.

    ``fields`` maps element name to ``(GlafType, rank)``.
    """

    name: str
    fields: dict[str, tuple[GlafType, int]]
    defined_in_module: str | None = None

    def __post_init__(self) -> None:
        for fname, (fty, rank) in self.fields.items():
            if fty is GlafType.T_VOID:
                raise ValueError(f"TYPE {self.name}%{fname}: fields cannot be void")
            if rank < 0:
                raise ValueError(f"TYPE {self.name}%{fname}: negative rank")

    def has_field(self, name: str) -> bool:
        return name.lower() in {f.lower() for f in self.fields}

    def field(self, name: str) -> tuple[GlafType, int]:
        for f, spec in self.fields.items():
            if f.lower() == name.lower():
                return spec
        raise KeyError(f"TYPE {self.name} has no field {name}")
