"""GLAF core: internal representation and programmatic front-end.

The public surface mirrors the paper's §2.1 description of GLAF — grids,
modules/functions/steps, the library-function registry, and the builder API
standing in for the graphical programming interface.
"""

from .builder import FunctionBuilder, GlafBuilder, ModuleBuilder, StepBuilder
from .expr import (
    BinOp,
    Const,
    E,
    Expr,
    FuncCall,
    GridRef,
    I,
    IndexVar,
    LibCall,
    UnOp,
    lib,
    ref,
)
from .function import GLOBAL_SCOPE, GlafFunction, GlafModule, GlafProgram
from .grid import Grid, array, scalar
from .libfuncs import REGISTRY as LIBFUNC_REGISTRY
from .project import load_project, program_from_dict, program_to_dict, save_project
from .step import Assign, CallStmt, ExitLoop, IfStmt, Range, Return, Step
from .types import (
    DerivedType,
    GlafType,
    T_CHAR,
    T_INT,
    T_LOGICAL,
    T_REAL,
    T_REAL8,
    T_VOID,
)
from .validate import validate_function, validate_program

__all__ = [
    "GlafBuilder", "ModuleBuilder", "FunctionBuilder", "StepBuilder",
    "Expr", "Const", "IndexVar", "GridRef", "BinOp", "UnOp", "LibCall",
    "FuncCall", "E", "I", "ref", "lib",
    "GlafProgram", "GlafModule", "GlafFunction", "GLOBAL_SCOPE",
    "Grid", "scalar", "array",
    "Step", "Range", "Assign", "CallStmt", "IfStmt", "Return", "ExitLoop",
    "GlafType", "T_INT", "T_REAL", "T_REAL8", "T_LOGICAL", "T_CHAR", "T_VOID",
    "DerivedType", "LIBFUNC_REGISTRY",
    "validate_program", "validate_function",
    "program_to_dict", "program_from_dict", "save_project", "load_project",
]
