"""The grid abstraction (paper §2.1, Figure 1) plus integration attributes (§3).

Every variable in GLAF — scalar, array, or element of a derived TYPE — is a
*grid*.  The internal representation carries the number of dimensions, the
element data type, per-dimension sizes, a caption (the variable name) and a
comment; the paper's Figure 1 shows exactly these fields.

This reproduction extends the grid record with the legacy-integration
attributes introduced in §3 of the paper:

* ``exists_in_module`` — the grid is declared in an existing FORTRAN MODULE;
  code generation must emit ``USE <module>`` instead of a declaration (§3.1).
* ``common_block``     — the grid lives in a named COMMON block; code
  generation groups and declares all grids of the block and emits
  ``COMMON /<name>/ v1, v2, ...`` (§3.2).
* ``module_scope``     — the grid is a module-scope variable of the
  *generated* module; it is declared (and optionally initialized) at the top
  of the generated MODULE (§3.3).
* ``type_parent`` / ``type_name`` — the grid is an element of an existing
  derived-TYPE variable; accesses are generated as ``parent%element`` (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

import numpy as np

from ..errors import ValidationError
from .expr import Const, Expr, GridRef, E
from .types import GlafType, numpy_dtype

__all__ = ["Grid", "DimSize", "Intent", "scalar", "array"]

# A dimension size is either a compile-time integer or the name of a scalar
# integer grid (typically a parameter passed into the function).
DimSize = int | str


@dataclass(frozen=True)
class Grid:
    """One GLAF grid.

    Parameters
    ----------
    name:
        The caption shown in the GPI; also the generated variable name.
    ty:
        Element type.
    dims:
        Per-dimension sizes, outermost first.  Empty tuple = scalar.
    comment:
        Free-text comment; emitted above the declaration (Figure 1 shows the
        comment becoming a source comment).
    """

    name: str
    ty: GlafType
    dims: tuple[DimSize, ...] = ()
    comment: str = ""
    # --- integration attributes (paper §3) ---
    exists_in_module: str | None = None
    common_block: str | None = None
    module_scope: bool = False
    type_parent: str | None = None
    type_name: str | None = None
    # --- declaration attributes ---
    is_parameter: bool = False          # FORTRAN PARAMETER (compile-time const)
    intent: str | None = None           # 'in' | 'out' | 'inout' for dummy args
    save: bool = False                  # FORTRAN SAVE (FUN3D no-realloc tweak)
    allocatable: bool = False           # heap temporary, ALLOCATE'd on entry
    init_data: Any = None               # manual initial data (Figure 3 checkbox)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValidationError(f"invalid grid name {self.name!r}")
        if self.name[0].isdigit():
            raise ValidationError(f"grid name {self.name!r} cannot start with a digit")
        if self.ty is GlafType.T_VOID:
            raise ValidationError(f"grid {self.name!r}: T_VOID is not a storage type")
        for d in self.dims:
            if isinstance(d, int) and d <= 0:
                raise ValidationError(f"grid {self.name!r}: non-positive dimension {d}")
            if isinstance(d, str) and not d:
                raise ValidationError(f"grid {self.name!r}: empty symbolic dimension")
        if self.common_block is not None and self.exists_in_module is not None:
            raise ValidationError(
                f"grid {self.name!r}: cannot belong to both a COMMON block and an "
                "existing module (the GPI configuration screen makes these exclusive)"
            )
        if self.type_parent is not None and self.exists_in_module is None:
            raise ValidationError(
                f"grid {self.name!r}: TYPE elements must come from an existing module "
                "(paper §3.5: a sub-case of using existing variables from imported modules)"
            )
        if self.intent not in (None, "in", "out", "inout"):
            raise ValidationError(f"grid {self.name!r}: bad intent {self.intent!r}")
        if self.is_parameter and self.init_data is None:
            raise ValidationError(f"grid {self.name!r}: PARAMETER requires init_data")

    # -- classification helpers -----------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def is_scalar(self) -> bool:
        return self.rank == 0

    @property
    def is_external(self) -> bool:
        """True if the grid's storage is owned by pre-existing legacy code.

        External grids are *used*, never declared, by generated subprograms
        (module import or COMMON reference instead).
        """
        return self.exists_in_module is not None or self.common_block is not None

    @property
    def is_type_element(self) -> bool:
        return self.type_parent is not None

    @property
    def needs_declaration(self) -> bool:
        """Whether generated code must declare this grid locally."""
        return not self.is_external

    # -- value helpers ----------------------------------------------------
    def shape(self, sizes: dict[str, int] | None = None) -> tuple[int, ...]:
        """Concrete shape, resolving symbolic dimensions via ``sizes``."""
        out: list[int] = []
        for d in self.dims:
            if isinstance(d, int):
                out.append(d)
            else:
                if sizes is None or d not in sizes:
                    raise ValidationError(
                        f"grid {self.name!r}: symbolic dimension {d!r} unresolved"
                    )
                out.append(int(sizes[d]))
        return tuple(out)

    def allocate(self, sizes: dict[str, int] | None = None) -> np.ndarray | Any:
        """Fresh zero-initialized storage for this grid (NumPy semantics)."""
        dtype = numpy_dtype(self.ty)
        if self.is_scalar:
            if self.init_data is not None:
                return dtype.type(self.init_data)
            return dtype.type(0)
        arr = np.zeros(self.shape(sizes), dtype=dtype)
        if self.init_data is not None:
            arr[...] = self.init_data
        return arr

    def ref(self, *indices: object) -> GridRef:
        """An expression node referring to this grid."""
        return GridRef(self.name, tuple(E(i) for i in indices))

    def with_(self, **changes: Any) -> "Grid":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def symbolic_dims(self) -> set[str]:
        return {d for d in self.dims if isinstance(d, str)}


def scalar(name: str, ty: GlafType, **kw: Any) -> Grid:
    """Convenience constructor for a scalar grid."""
    return Grid(name=name, ty=ty, dims=(), **kw)


def array(name: str, ty: GlafType, dims: Sequence[DimSize], **kw: Any) -> Grid:
    """Convenience constructor for an array grid."""
    return Grid(name=name, ty=ty, dims=tuple(dims), **kw)
