"""Functions, modules and programs.

The GPI organizes a program as *modules* containing *functions* composed of
*steps* (paper §2.1).  A special module, ``Global Scope``, holds grids visible
across the whole program; that is where legacy-integration grids (existing
MODULE variables, COMMON-block members, TYPE elements — paper §3) are created.

A function whose header step selects the ``void`` return type is generated as
a FORTRAN SUBROUTINE (paper §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ValidationError
from .grid import Grid
from .step import Step
from .types import DerivedType, GlafType

__all__ = ["GlafFunction", "GlafModule", "GlafProgram", "GLOBAL_SCOPE"]

GLOBAL_SCOPE = "Global Scope"


@dataclass
class GlafFunction:
    """One GLAF function (or subroutine).

    ``params`` lists, in call order, the names of grids in ``grids`` that are
    dummy arguments.  All other grids in ``grids`` are function-local.
    """

    name: str
    return_type: GlafType = GlafType.T_VOID
    params: list[str] = field(default_factory=list)
    grids: dict[str, Grid] = field(default_factory=dict)
    steps: list[Step] = field(default_factory=list)
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValidationError(f"bad function name {self.name!r}")
        for p in self.params:
            if p not in self.grids:
                raise ValidationError(f"{self.name}: parameter {p!r} has no grid")

    @property
    def is_subroutine(self) -> bool:
        """Paper §3.4: void return type selects the SUBROUTINE form."""
        return self.return_type is GlafType.T_VOID

    @property
    def return_grid_name(self) -> str:
        """Name of the implicit grid holding the return value."""
        return f"{self.name}_return"

    def local_grids(self) -> dict[str, Grid]:
        return {n: g for n, g in self.grids.items() if n not in self.params}

    def param_grids(self) -> list[Grid]:
        return [self.grids[p] for p in self.params]

    def add_grid(self, grid: Grid, param: bool = False) -> Grid:
        if grid.name in self.grids:
            raise ValidationError(f"{self.name}: duplicate grid {grid.name!r}")
        self.grids[grid.name] = grid
        if param:
            self.params.append(grid.name)
        return grid

    def called_functions(self) -> set[str]:
        out: set[str] = set()
        for s in self.steps:
            out |= s.called_functions()
        return out

    def grids_referenced(self) -> set[str]:
        out: set[str] = set()
        for s in self.steps:
            out |= s.grids_referenced()
        return out


@dataclass
class GlafModule:
    """A GPI module: a named collection of functions."""

    name: str
    functions: dict[str, GlafFunction] = field(default_factory=dict)
    comment: str = ""

    def add_function(self, fn: GlafFunction) -> GlafFunction:
        if fn.name in self.functions:
            raise ValidationError(f"module {self.name}: duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn


@dataclass
class GlafProgram:
    """A whole GLAF program: modules + the Global Scope grids.

    ``derived_types`` registers the shapes of existing FORTRAN TYPEs so that
    grids marked as TYPE elements can be checked and generated (paper §3.5).
    """

    name: str
    modules: dict[str, GlafModule] = field(default_factory=dict)
    global_grids: dict[str, Grid] = field(default_factory=dict)
    derived_types: dict[str, DerivedType] = field(default_factory=dict)

    def add_module(self, mod: GlafModule) -> GlafModule:
        if mod.name in self.modules:
            raise ValidationError(f"duplicate module {mod.name!r}")
        self.modules[mod.name] = mod
        return mod

    def add_global_grid(self, grid: Grid) -> Grid:
        if grid.name in self.global_grids:
            raise ValidationError(f"duplicate global grid {grid.name!r}")
        self.global_grids[grid.name] = grid
        return grid

    def add_derived_type(self, dt: DerivedType) -> DerivedType:
        if dt.name in self.derived_types:
            raise ValidationError(f"duplicate derived type {dt.name!r}")
        self.derived_types[dt.name] = dt
        return dt

    # -- lookup ----------------------------------------------------------
    def functions(self) -> Iterator[GlafFunction]:
        for mod in self.modules.values():
            yield from mod.functions.values()

    def find_function(self, name: str) -> GlafFunction:
        for mod in self.modules.values():
            if name in mod.functions:
                return mod.functions[name]
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        try:
            self.find_function(name)
            return True
        except KeyError:
            return False

    def resolve_grid(self, fn: GlafFunction | None, name: str) -> Grid:
        """Resolve ``name`` in function scope, falling back to Global Scope."""
        if fn is not None and name in fn.grids:
            return fn.grids[name]
        if name in self.global_grids:
            return self.global_grids[name]
        where = f"function {fn.name!r}" if fn is not None else "global scope"
        raise KeyError(f"grid {name!r} not found in {where}")

    def scope_of(self, fn: GlafFunction | None, name: str) -> str:
        """``'local'``, ``'param'`` or ``'global'`` for a resolvable grid."""
        if fn is not None and name in fn.grids:
            return "param" if name in fn.params else "local"
        if name in self.global_grids:
            return "global"
        raise KeyError(name)

    def common_blocks(self) -> dict[str, list[Grid]]:
        """Global grids grouped by COMMON block, in creation order (§3.2)."""
        out: dict[str, list[Grid]] = {}
        for g in self.global_grids.values():
            if g.common_block is not None:
                out.setdefault(g.common_block, []).append(g)
        return out

    def imported_modules(self) -> dict[str, list[Grid]]:
        """Global grids grouped by the existing module they come from (§3.1)."""
        out: dict[str, list[Grid]] = {}
        for g in self.global_grids.values():
            if g.exists_in_module is not None:
                out.setdefault(g.exists_in_module, []).append(g)
        return out

    def module_scope_grids(self) -> list[Grid]:
        """Grids to declare at generated-module scope (§3.3).

        Global grids with no legacy-integration flags are owned by the
        generated module, so they are module-scope implicitly.
        """
        return [
            g
            for g in self.global_grids.values()
            if g.module_scope or not g.is_external
        ]
