"""GLAF library functions (paper §3.6).

GLAF ships an extensible registry of library functions that map to language
intrinsics during code generation.  The paper's case study required adding
``ABS()``, ``ALOG()``, ``SUM()`` "and other functions used in FORTRAN that
were missing in the previous versions of GLAF" — all of those, plus the
pre-existing C/FORTRAN math set, are registered here.

Each entry records:

* the NumPy implementation used by the GLAF IR interpreter,
* the FORTRAN, C, and OpenCL spellings used by the code generators,
* the arity (``-1`` = variadic, as for ``MIN``/``MAX``),
* whether the function reduces a whole array to a scalar (``SUM``...),
* an approximate cost in scalar FLOPs used by the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import CodegenError

__all__ = ["LibFunc", "REGISTRY", "get", "register", "is_reduction_func"]


@dataclass(frozen=True)
class LibFunc:
    name: str
    arity: int                       # -1 = variadic (>= 2)
    impl: Callable[..., object]
    fortran: str
    c: str
    opencl: str
    reduces_array: bool = False      # whole-array -> scalar
    flop_cost: float = 1.0

    def check_arity(self, n: int) -> None:
        if self.arity == -1:
            if n < 2:
                raise CodegenError(f"{self.name} needs at least 2 arguments, got {n}")
        elif n != self.arity:
            raise CodegenError(f"{self.name} needs {self.arity} argument(s), got {n}")


REGISTRY: dict[str, LibFunc] = {}


def register(fn: LibFunc) -> LibFunc:
    """Add a library function; the registry is extensible (paper §3.6)."""
    REGISTRY[fn.name.upper()] = fn
    return fn


def get(name: str) -> LibFunc:
    try:
        return REGISTRY[name.upper()]
    except KeyError:
        raise CodegenError(f"unknown library function {name!r}") from None


def is_reduction_func(name: str) -> bool:
    f = REGISTRY.get(name.upper())
    return f is not None and f.reduces_array


def _sign(a, b):
    return np.abs(a) * np.where(np.asarray(b) >= 0, 1.0, -1.0)


def _variadic_min(*xs):
    out = xs[0]
    for x in xs[1:]:
        out = np.minimum(out, x)
    return out


def _variadic_max(*xs):
    out = xs[0]
    for x in xs[1:]:
        out = np.maximum(out, x)
    return out


def _cast(dtype):
    """Array-aware dtype conversion: scalars stay NumPy scalars (so the
    interpreter's integer-division detection keeps working), arrays convert
    elementwise (the vectorized executor feeds whole grids through these)."""
    def conv(x):
        if np.ndim(x) == 0:
            return dtype(x)
        return np.asarray(x).astype(dtype)
    return conv


def _to_int(x):
    if np.ndim(x) == 0:
        return np.int64(np.trunc(x))
    return np.trunc(x).astype(np.int64)


# --- the standard math set -------------------------------------------------
register(LibFunc("ABS", 1, np.abs, "ABS", "fabs", "fabs"))
register(LibFunc("SQRT", 1, np.sqrt, "SQRT", "sqrt", "sqrt", flop_cost=8.0))
register(LibFunc("EXP", 1, np.exp, "EXP", "exp", "exp", flop_cost=40.0))
register(LibFunc("LOG", 1, np.log, "LOG", "log", "log", flop_cost=40.0))
# ALOG is the FORTRAN-77 single-precision natural log the paper names (§3.6).
register(LibFunc("ALOG", 1, np.log, "ALOG", "logf", "log", flop_cost=40.0))
register(LibFunc("ALOG10", 1, np.log10, "ALOG10", "log10f", "log10", flop_cost=16.0))
register(LibFunc("LOG10", 1, np.log10, "LOG10", "log10", "log10", flop_cost=16.0))
register(LibFunc("SIN", 1, np.sin, "SIN", "sin", "sin", flop_cost=12.0))
register(LibFunc("COS", 1, np.cos, "COS", "cos", "cos", flop_cost=12.0))
register(LibFunc("TAN", 1, np.tan, "TAN", "tan", "tan", flop_cost=14.0))
register(LibFunc("ASIN", 1, np.arcsin, "ASIN", "asin", "asin", flop_cost=14.0))
register(LibFunc("ACOS", 1, np.arccos, "ACOS", "acos", "acos", flop_cost=14.0))
register(LibFunc("ATAN", 1, np.arctan, "ATAN", "atan", "atan", flop_cost=14.0))
register(LibFunc("ATAN2", 2, np.arctan2, "ATAN2", "atan2", "atan2", flop_cost=18.0))
register(LibFunc("SINH", 1, np.sinh, "SINH", "sinh", "sinh", flop_cost=16.0))
register(LibFunc("COSH", 1, np.cosh, "COSH", "cosh", "cosh", flop_cost=16.0))
register(LibFunc("TANH", 1, np.tanh, "TANH", "tanh", "tanh", flop_cost=16.0))
register(LibFunc("MOD", 2, np.mod, "MOD", "fmod", "fmod", flop_cost=4.0))
register(LibFunc("SIGN", 2, _sign, "SIGN", "copysign", "copysign", flop_cost=2.0))
register(LibFunc("MIN", -1, _variadic_min, "MIN", "fmin", "fmin"))
register(LibFunc("MAX", -1, _variadic_max, "MAX", "fmax", "fmax"))
register(LibFunc("INT", 1, _to_int, "INT", "(long)", "(long)"))
register(LibFunc("REAL", 1, _cast(np.float32), "REAL", "(float)", "(float)"))
register(LibFunc("DBLE", 1, _cast(np.float64), "DBLE", "(double)", "(double)"))
register(LibFunc("FLOOR", 1, np.floor, "FLOOR", "floor", "floor"))
register(LibFunc("CEILING", 1, np.ceil, "CEILING", "ceil", "ceil"))

# --- whole-array reductions (added for the SARB case study, §3.6) ----------
register(LibFunc("SUM", 1, lambda a: np.sum(a), "SUM", "glaf_sum", "glaf_sum",
                 reduces_array=True))
register(LibFunc("MINVAL", 1, lambda a: np.min(a), "MINVAL", "glaf_minval",
                 "glaf_minval", reduces_array=True))
register(LibFunc("MAXVAL", 1, lambda a: np.max(a), "MAXVAL", "glaf_maxval",
                 "glaf_maxval", reduces_array=True))
register(LibFunc("PRODUCT", 1, lambda a: np.prod(a), "PRODUCT", "glaf_product",
                 "glaf_product", reduces_array=True))
register(LibFunc("SIZE", 1, lambda a: np.int64(np.size(a)), "SIZE", "glaf_size",
                 "glaf_size", reduces_array=True, flop_cost=0.0))
