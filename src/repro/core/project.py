"""GLAF project persistence.

The browser-based GPI saves a project as a JSON document describing grids,
modules, functions and steps.  This module implements the equivalent
serialization for the reproduction's internal representation so programs can
be saved, versioned and re-loaded without re-running builder code.

The format is self-describing: every node carries a ``"kind"`` tag.  A
``save``/``load`` round trip reproduces an equal program (tested property-
style in ``tests/property/test_project_roundtrip.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ValidationError
from .expr import BinOp, Const, Expr, FuncCall, GridRef, IndexVar, LibCall, UnOp
from .function import GlafFunction, GlafModule, GlafProgram
from .grid import Grid
from .step import Assign, CallStmt, ExitLoop, IfStmt, Range, Return, Step, Stmt
from .types import DerivedType, GlafType

__all__ = ["program_to_dict", "program_from_dict", "save_project", "load_project"]

FORMAT_VERSION = 2


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

def expr_to_dict(e: Expr) -> dict[str, Any]:
    if isinstance(e, Const):
        return {"kind": "const", "value": e.value}
    if isinstance(e, IndexVar):
        return {"kind": "index", "name": e.name}
    if isinstance(e, GridRef):
        return {"kind": "grid", "grid": e.grid,
                "indices": [expr_to_dict(i) for i in e.indices]}
    if isinstance(e, BinOp):
        return {"kind": "binop", "op": e.op,
                "left": expr_to_dict(e.left), "right": expr_to_dict(e.right)}
    if isinstance(e, UnOp):
        return {"kind": "unop", "op": e.op, "operand": expr_to_dict(e.operand)}
    if isinstance(e, LibCall):
        return {"kind": "lib", "name": e.name,
                "args": [expr_to_dict(a) for a in e.args]}
    if isinstance(e, FuncCall):
        return {"kind": "call", "name": e.name,
                "args": [expr_to_dict(a) for a in e.args]}
    raise ValidationError(f"unserializable expression node {type(e).__name__}")


def expr_from_dict(d: dict[str, Any]) -> Expr:
    kind = d["kind"]
    if kind == "const":
        return Const(d["value"])
    if kind == "index":
        return IndexVar(d["name"])
    if kind == "grid":
        return GridRef(d["grid"], tuple(expr_from_dict(i) for i in d["indices"]))
    if kind == "binop":
        return BinOp(d["op"], expr_from_dict(d["left"]), expr_from_dict(d["right"]))
    if kind == "unop":
        return UnOp(d["op"], expr_from_dict(d["operand"]))
    if kind == "lib":
        return LibCall(d["name"], tuple(expr_from_dict(a) for a in d["args"]))
    if kind == "call":
        return FuncCall(d["name"], tuple(expr_from_dict(a) for a in d["args"]))
    raise ValidationError(f"unknown expression kind {kind!r}")


# --------------------------------------------------------------------------
# statements / steps
# --------------------------------------------------------------------------

def stmt_to_dict(s: Stmt) -> dict[str, Any]:
    if isinstance(s, Assign):
        return {"kind": "assign", "target": expr_to_dict(s.target),
                "expr": expr_to_dict(s.expr)}
    if isinstance(s, CallStmt):
        return {"kind": "callstmt", "name": s.name,
                "args": [expr_to_dict(a) for a in s.args]}
    if isinstance(s, IfStmt):
        return {"kind": "if", "cond": expr_to_dict(s.cond),
                "then": [stmt_to_dict(x) for x in s.then],
                "orelse": [stmt_to_dict(x) for x in s.orelse]}
    if isinstance(s, Return):
        return {"kind": "return",
                "value": expr_to_dict(s.value) if s.value is not None else None}
    if isinstance(s, ExitLoop):
        return {"kind": "exit"}
    raise ValidationError(f"unserializable statement {type(s).__name__}")


def stmt_from_dict(d: dict[str, Any]) -> Stmt:
    kind = d["kind"]
    if kind == "assign":
        target = expr_from_dict(d["target"])
        assert isinstance(target, GridRef)
        return Assign(target=target, expr=expr_from_dict(d["expr"]))
    if kind == "callstmt":
        return CallStmt(d["name"], tuple(expr_from_dict(a) for a in d["args"]))
    if kind == "if":
        return IfStmt(
            cond=expr_from_dict(d["cond"]),
            then=tuple(stmt_from_dict(x) for x in d["then"]),
            orelse=tuple(stmt_from_dict(x) for x in d["orelse"]),
        )
    if kind == "return":
        return Return(expr_from_dict(d["value"]) if d["value"] is not None else None)
    if kind == "exit":
        return ExitLoop()
    raise ValidationError(f"unknown statement kind {kind!r}")


def step_to_dict(step: Step) -> dict[str, Any]:
    return {
        "name": step.name,
        "comment": step.comment,
        "ranges": [
            {"var": r.var, "start": expr_to_dict(r.start),
             "end": expr_to_dict(r.end), "step": expr_to_dict(r.step)}
            for r in step.ranges
        ],
        "condition": expr_to_dict(step.condition) if step.condition is not None else None,
        "stmts": [stmt_to_dict(s) for s in step.stmts],
    }


def step_from_dict(d: dict[str, Any]) -> Step:
    return Step(
        name=d["name"],
        comment=d.get("comment", ""),
        ranges=[
            Range(var=r["var"], start=expr_from_dict(r["start"]),
                  end=expr_from_dict(r["end"]), step=expr_from_dict(r["step"]))
            for r in d["ranges"]
        ],
        condition=expr_from_dict(d["condition"]) if d["condition"] is not None else None,
        stmts=[stmt_from_dict(s) for s in d["stmts"]],
    )


# --------------------------------------------------------------------------
# grids / functions / program
# --------------------------------------------------------------------------

def grid_to_dict(g: Grid) -> dict[str, Any]:
    return {
        "name": g.name,
        "type": g.ty.name,
        "dims": list(g.dims),
        "comment": g.comment,
        "exists_in_module": g.exists_in_module,
        "common_block": g.common_block,
        "module_scope": g.module_scope,
        "type_parent": g.type_parent,
        "type_name": g.type_name,
        "is_parameter": g.is_parameter,
        "intent": g.intent,
        "save": g.save,
        "allocatable": g.allocatable,
        "init_data": g.init_data,
    }


def grid_from_dict(d: dict[str, Any]) -> Grid:
    return Grid(
        name=d["name"],
        ty=GlafType[d["type"]],
        dims=tuple(d["dims"]),
        comment=d.get("comment", ""),
        exists_in_module=d.get("exists_in_module"),
        common_block=d.get("common_block"),
        module_scope=d.get("module_scope", False),
        type_parent=d.get("type_parent"),
        type_name=d.get("type_name"),
        is_parameter=d.get("is_parameter", False),
        intent=d.get("intent"),
        save=d.get("save", False),
        allocatable=d.get("allocatable", False),
        init_data=d.get("init_data"),
    )


def function_to_dict(fn: GlafFunction) -> dict[str, Any]:
    return {
        "name": fn.name,
        "return_type": fn.return_type.name,
        "comment": fn.comment,
        "params": list(fn.params),
        "grids": [grid_to_dict(g) for g in fn.grids.values()],
        "steps": [step_to_dict(s) for s in fn.steps],
    }


def function_from_dict(d: dict[str, Any]) -> GlafFunction:
    fn = GlafFunction(
        name=d["name"],
        return_type=GlafType[d["return_type"]],
        comment=d.get("comment", ""),
    )
    for gd in d["grids"]:
        fn.grids[gd["name"]] = grid_from_dict(gd)
    fn.params = list(d["params"])
    fn.steps = [step_from_dict(s) for s in d["steps"]]
    return fn


def program_to_dict(program: GlafProgram) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "name": program.name,
        "derived_types": [
            {"name": dt.name, "defined_in_module": dt.defined_in_module,
             "fields": {k: [v[0].name, v[1]] for k, v in dt.fields.items()}}
            for dt in program.derived_types.values()
        ],
        "global_grids": [grid_to_dict(g) for g in program.global_grids.values()],
        "modules": [
            {"name": m.name, "comment": m.comment,
             "functions": [function_to_dict(f) for f in m.functions.values()]}
            for m in program.modules.values()
        ],
    }


def program_from_dict(d: dict[str, Any]) -> GlafProgram:
    if d.get("format_version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported project format {d.get('format_version')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    program = GlafProgram(name=d["name"])
    for td in d["derived_types"]:
        program.add_derived_type(DerivedType(
            name=td["name"],
            defined_in_module=td.get("defined_in_module"),
            fields={k: (GlafType[v[0]], int(v[1])) for k, v in td["fields"].items()},
        ))
    for gd in d["global_grids"]:
        program.add_global_grid(grid_from_dict(gd))
    for md in d["modules"]:
        mod = GlafModule(name=md["name"], comment=md.get("comment", ""))
        for fd in md["functions"]:
            mod.add_function(function_from_dict(fd))
        program.add_module(mod)
    return program


def save_project(program: GlafProgram, path: str | Path) -> None:
    Path(path).write_text(json.dumps(program_to_dict(program), indent=2))


def load_project(path: str | Path) -> GlafProgram:
    from ..observe import get_tracer

    with get_tracer().span("project.load", path=str(path)) as _sp:
        try:
            doc = json.loads(Path(path).read_text())
        except json.JSONDecodeError as e:
            raise ValidationError(
                f"project file {path} is not valid JSON: {e}") from e
        program = program_from_dict(doc)
        _sp.set(program=program.name,
                functions=len(list(program.functions())))
        return program
