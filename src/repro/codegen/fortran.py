"""FORTRAN code generation with legacy-integration support (paper §3).

The generator turns a GLAF program plus an :class:`OptimizationPlan` into a
free-form FORTRAN MODULE whose subprograms can be spliced into an existing
legacy code.  Every §3 extension is implemented:

* §3.1 — grids marked ``exists_in_module`` are **not** declared; the
  subprogram gets ``USE <module>, ONLY: <names>``.
* §3.2 — grids marked ``common_block`` are declared (type + shape) and
  grouped into ``COMMON /<name>/ v1, v2, ...`` statements.
* §3.3 — module-scope grids are declared once at the top of the generated
  MODULE and never re-declared in subprograms.
* §3.4 — functions with void return type are emitted as ``SUBROUTINE``;
  call sites use ``CALL``.
* §3.5 — grids that are elements of an existing TYPE variable are accessed
  as ``parent%element``; the USE imports the parent variable.
* §3.6 — library functions render through the registry's FORTRAN spellings.

Parallel steps are annotated with ``!$OMP PARALLEL DO`` directives whose
clause sets come from the auto-parallelization analysis, filtered by the
plan's pruning variant (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expr import BinOp, Const, Expr, FuncCall, GridRef, LibCall, UnOp
from ..core.function import GlafFunction, GlafProgram
from ..core.grid import Grid
from ..core.libfuncs import get as get_libfunc
from ..core.step import (
    Assign,
    CallStmt,
    ExitLoop,
    IfStmt,
    Return,
    Step,
    Stmt,
    walk_stmts,
)
from ..core.types import GlafType, fortran_decl
from ..errors import CodegenError
from ..optimize.plan import OptimizationPlan
from ..robust import inject
from .base import Emitter, ExprRenderer, PRECEDENCE
from .omp import OmpDirective, render_fortran, render_fortran_end

__all__ = ["FortranGenerator", "generate_fortran_module",
           "FortranExprRenderer", "directive_for_step"]

_BINOP_SPELL = {"!=": "/=", "and": ".AND.", "or": ".OR."}


class FortranExprRenderer(ExprRenderer):
    """Renders GLAF expressions as FORTRAN source."""

    def __init__(self, program: GlafProgram, fn: GlafFunction | None):
        self.program = program
        self.fn = fn

    def render_const(self, e: Const) -> str:
        v = e.value
        if isinstance(v, bool):
            return ".TRUE." if v else ".FALSE."
        if isinstance(v, int):
            return str(v)
        if isinstance(v, float):
            # Double-precision literals so generated code matches the
            # REAL(KIND=8) reference semantics bit-for-bit.
            text = repr(v)
            if "e" in text or "E" in text:
                mant, _, exp = text.partition("e")
                if "." not in mant:
                    mant += ".0"
                return f"{mant}D{exp}"
            if "." not in text:
                text += ".0"
            return f"{text}D0"
        if isinstance(v, str):
            escaped = v.replace("'", "''")
            return f"'{escaped}'"
        raise CodegenError(f"cannot render constant {v!r}")

    def grid_spelling(self, name: str) -> str:
        """Resolve a grid name to its FORTRAN spelling (TYPE prefixing)."""
        try:
            g = self.program.resolve_grid(self.fn, name)
        except KeyError:
            return name
        if g.is_type_element:
            return f"{g.type_parent}%{g.name}"
        return g.name

    def render_grid_ref(self, e: GridRef) -> str:
        base = self.grid_spelling(e.grid)
        if not e.indices:
            return base
        args = ", ".join(self.render(i) for i in e.indices)
        return f"{base}({args})"

    def render_lib_call(self, e: LibCall) -> str:
        f = get_libfunc(e.name)
        f.check_arity(len(e.args))
        args = ", ".join(self.render(a) for a in e.args)
        return f"{f.fortran}({args})"

    def render_func_call(self, e: FuncCall) -> str:
        args = ", ".join(self.render(a) for a in e.args)
        return f"{e.name}({args})"

    def binop_spelling(self, op: str) -> str:
        return _BINOP_SPELL.get(op, op)

    def render_binop(self, e: BinOp) -> str:
        if e.op == "%":
            return f"MOD({self.render(e.left)}, {self.render(e.right)})"
        if e.op == "//":
            # FORTRAN's integer '/' truncates, which is GLAF's '//'.
            inner = BinOp("/", e.left, e.right)
            return super().render_binop(inner)
        return super().render_binop(e)

    def render_not(self, e: UnOp) -> str:
        return f".NOT. {self.render(e.operand, PRECEDENCE['not'] + 1)}"


def _dim_spec(g: Grid, renderer: FortranExprRenderer) -> str:
    if g.rank == 0:
        return ""
    parts = []
    for d in g.dims:
        parts.append(str(d) if isinstance(d, int) else d)
    return "(" + ", ".join(parts) + ")"


def _decl_line(
    g: Grid,
    renderer: FortranExprRenderer,
    *,
    intent: bool = True,
    force_save: bool = False,
) -> str:
    attrs = [fortran_decl(g.ty)]
    if g.is_parameter:
        attrs.append("PARAMETER")
    if intent and g.intent:
        attrs.append(f"INTENT({g.intent.upper()})")
    if g.allocatable:
        attrs.append("ALLOCATABLE")
    if g.save or force_save:
        attrs.append("SAVE")
    if g.allocatable:
        dims = "(" + ", ".join(":" for _ in g.dims) + ")"
    else:
        dims = _dim_spec(g, renderer)
    init = ""
    if g.is_parameter:
        init = f" = {renderer.render_const(Const(g.init_data))}"
    elif g.init_data is not None and g.rank == 0 and not g.intent:
        init = f" = {renderer.render_const(Const(g.init_data))}"
    return f"{', '.join(attrs)} :: {g.name}{dims}{init}"


def directive_for_step(
    plan: OptimizationPlan,
    fn: GlafFunction,
    idx: int,
    renderer: FortranExprRenderer | None = None,
) -> OmpDirective | None:
    """The ``!$OMP PARALLEL DO`` directive codegen emits for step ``idx``
    of ``fn`` under ``plan`` — or ``None`` when the step carries none.

    This is the single source of truth for directive construction: both
    :meth:`FortranGenerator._emit_step` and the linter's plan-vs-text
    cross-check (:mod:`repro.lint.crosscheck`) call it, so the expected
    clause set can never drift from the emitted one.
    """
    step = fn.steps[idx]
    if not (step.is_loop and plan.step_is_parallel(fn.name, idx)):
        return None
    sp = plan.parallel_plan.steps.get((fn.name, idx))
    if sp is None:
        return None
    renderer = renderer or FortranExprRenderer(plan.program, fn)
    reds = sorted(sp.reductions.items())
    if not plan.tweaks.multi_var_reductions:
        reds = reds[:1]
    return OmpDirective(
        private=tuple(sp.private),
        firstprivate=tuple(sp.firstprivate),
        reductions=tuple((op, renderer.grid_spelling(g)) for g, op in reds),
        collapse=plan.collapse_for(fn.name, idx),
    )


@dataclass
class GeneratedUnit:
    """One generated subprogram plus bookkeeping for integration reports."""

    name: str
    kind: str                      # 'subroutine' | 'function'
    lines: list[str]
    used_modules: dict[str, list[str]]
    common_blocks: dict[str, list[str]]
    omp_steps: list[int]


class FortranGenerator:
    """Generates one FORTRAN MODULE for a GLAF program under a plan."""

    def __init__(
        self,
        plan: OptimizationPlan,
        module_name: str | None = None,
        *,
        globals_module: str | None = None,
    ):
        """``globals_module`` moves module-scope grids (§3.3) into their own
        MODULE which each subprogram imports with USE.  Generated units then
        carry all their context in their own USE lines, which is what lets
        :mod:`repro.integration.splice` transplant them verbatim into a
        legacy file."""
        self.plan = plan
        self.program = plan.program
        self.module_name = module_name or f"glaf_{self.program.name.lower()}_mod"
        self.globals_module = globals_module
        self.units: list[GeneratedUnit] = []

    # ------------------------------------------------------------------
    # module
    # ------------------------------------------------------------------
    def generate_module(self) -> str:
        em = Emitter()
        em.emit(f"! Auto-generated by GLAF for program {self.program.name}")
        em.emit(f"! Variant: {self.plan.variant.name}")
        renderer = FortranExprRenderer(self.program, None)
        mods = self.program.module_scope_grids()
        if self.globals_module is not None and mods:
            em.emit(f"MODULE {self.globals_module}")
            em.indent()
            em.emit("IMPLICIT NONE")
            em.emit("! Module-scope grids (paper section 3.3)")
            for g in mods:
                if g.comment:
                    em.emit(f"! {g.comment}")
                em.emit(_decl_line(g, renderer, intent=False))
            em.dedent()
            em.emit(f"END MODULE {self.globals_module}")
            em.blank()
        em.emit(f"MODULE {self.module_name}")
        em.indent()
        em.emit("IMPLICIT NONE")
        if mods and self.globals_module is None:
            em.blank()
            em.emit("! Module-scope grids (paper section 3.3)")
            for g in mods:
                if g.comment:
                    em.emit(f"! {g.comment}")
                decl = _decl_line(g, renderer, intent=False)
                if (self.plan.tweaks.copyprivate_pointers and g.rank > 0):
                    # §4.2.1: "module-scope arrays are replaced with pointers
                    # and copyprivate clauses when supporting nested
                    # parallelism"; the TARGET attribute is the association
                    # point for those pointers.
                    ty, _, rest = decl.partition(" :: ")
                    decl = f"{ty}, TARGET :: {rest}"
                em.emit(decl)
            self._emit_threadprivate(em, mods)
        em.blank()
        em.dedent()
        em.emit("CONTAINS")
        em.indent()
        self.units = []
        for fn in self.program.functions():
            em.blank()
            unit = self.generate_subprogram(fn)
            # Fault-injection hook: a seeded plan may corrupt one body
            # (the dataflow mutants 'repro lint --dataflow' must catch).
            mutated = inject("codegen.fortran.body", unit.lines,
                             function=fn.name)
            if mutated is not None:
                unit.lines = mutated
            self.units.append(unit)
            for line in unit.lines:
                if line.startswith("!$OMP") or not line.strip():
                    em.emit_raw(line)
                else:
                    em.emit(line)
        em.dedent()
        em.emit(f"END MODULE {self.module_name}")
        return em.text()

    def _emit_threadprivate(self, em: Emitter, mods) -> None:
        """§4.2.1: "Module-scope ... arrays are explicitly declared as
        private or threadprivate as appropriate"."""
        if not self.plan.tweaks.threadprivate_module_arrays:
            return
        names = [g.name for g in mods if g.rank > 0]
        if names:
            em.emit_raw(f"!$OMP THREADPRIVATE({', '.join(names)})")

    # ------------------------------------------------------------------
    # subprograms
    # ------------------------------------------------------------------
    def generate_subprogram(self, fn: GlafFunction) -> GeneratedUnit:
        em = Emitter()
        renderer = FortranExprRenderer(self.program, fn)
        args = ", ".join(fn.params)
        if fn.is_subroutine:
            em.emit(f"SUBROUTINE {fn.name}({args})")
            kind = "subroutine"
        else:
            em.emit(f"FUNCTION {fn.name}({args}) RESULT({fn.return_grid_name})")
            kind = "function"
        em.indent()
        if fn.comment:
            em.emit(f"! {fn.comment}")

        used_modules, common_blocks = self._external_groups(fn)

        # §3.1 / §3.5: imports from existing modules.
        for mod, names in sorted(used_modules.items()):
            em.emit(f"USE {mod}, ONLY: {', '.join(sorted(set(names)))}")
        # Split-globals layout: import the generated globals module too.
        if self.globals_module is not None:
            mod_names = sorted(
                g.name
                for g in self.program.module_scope_grids()
                if g.name in fn.grids_referenced() and g.name not in fn.grids
            )
            if mod_names:
                em.emit(f"USE {self.globals_module}, ONLY: {', '.join(mod_names)}")
                used_modules = dict(used_modules)
                used_modules[self.globals_module] = mod_names
        em.emit("IMPLICIT NONE")

        # Dummy arguments, in declaration order.
        for p in fn.params:
            g = fn.grids[p]
            if g.comment:
                em.emit(f"! {g.comment}")
            em.emit(_decl_line(g, renderer))

        # §3.2: COMMON block members are declared, then grouped.
        for block, grids in sorted(common_blocks.items()):
            for g in grids:
                em.emit(_decl_line(g, renderer, intent=False))
            em.emit(f"COMMON /{block}/ {', '.join(g.name for g in grids)}")

        # Locals.
        save_tweak = self.plan.tweaks.save_inner_arrays
        allocatable_saved: list[Grid] = []
        allocatable_plain: list[Grid] = []
        for g in fn.local_grids().values():
            force_save = save_tweak and g.allocatable and g.rank > 0
            em.emit(_decl_line(g, renderer, intent=False, force_save=force_save))
            if g.allocatable:
                (allocatable_saved if (force_save or g.save) else allocatable_plain).append(g)

        # Loop index variables.
        index_vars = sorted({r.var for s in fn.steps for r in s.ranges})
        if index_vars:
            em.emit(f"INTEGER :: {', '.join(index_vars)}")
        if not fn.is_subroutine:
            em.emit(f"{fortran_decl(fn.return_type)} :: {fn.return_grid_name}")

        em.blank()

        # ALLOCATE prologue.
        for g in allocatable_saved:
            dims = ", ".join(str(d) for d in g.dims)
            em.emit(f"IF (.NOT. ALLOCATED({g.name})) ALLOCATE({g.name}({dims}))")
        for g in allocatable_plain:
            dims = ", ".join(str(d) for d in g.dims)
            em.emit(f"ALLOCATE({g.name}({dims}))")

        omp_steps: list[int] = []
        for idx, step in enumerate(fn.steps):
            self._emit_step(em, renderer, fn, idx, step, omp_steps)

        for g in allocatable_plain:
            em.emit(f"DEALLOCATE({g.name})")

        em.dedent()
        if fn.is_subroutine:
            em.emit(f"END SUBROUTINE {fn.name}")
        else:
            em.emit(f"END FUNCTION {fn.name}")
        return GeneratedUnit(
            name=fn.name,
            kind=kind,
            lines=em.lines,
            used_modules=used_modules,
            common_blocks={b: [g.name for g in gs] for b, gs in common_blocks.items()},
            omp_steps=omp_steps,
        )

    def _external_groups(
        self, fn: GlafFunction
    ) -> tuple[dict[str, list[str]], dict[str, list[Grid]]]:
        """Group external global grids referenced by ``fn`` (§3.1/§3.2/§3.5)."""
        used_modules: dict[str, list[str]] = {}
        common_blocks: dict[str, list[Grid]] = {}
        referenced = fn.grids_referenced()
        for name in sorted(referenced):
            if name in fn.grids:
                continue
            g = self.program.global_grids.get(name)
            if g is None:
                continue
            if g.exists_in_module is not None:
                # For TYPE elements, the USE must import the parent variable.
                imported = g.type_parent if g.is_type_element else g.name
                used_modules.setdefault(g.exists_in_module, []).append(imported)
            elif g.common_block is not None:
                common_blocks.setdefault(g.common_block, []).append(g)
        return used_modules, common_blocks

    # ------------------------------------------------------------------
    # steps
    # ------------------------------------------------------------------
    def _emit_step(
        self,
        em: Emitter,
        renderer: FortranExprRenderer,
        fn: GlafFunction,
        idx: int,
        step: Step,
        omp_steps: list[int],
    ) -> None:
        em.blank()
        label = step.comment or step.name
        em.emit(f"! {label}")
        sp = self.plan.parallel_plan.steps.get((fn.name, idx))
        parallel = self.plan.step_is_parallel(fn.name, idx) and step.is_loop

        if not step.is_loop:
            if step.condition is not None:
                em.emit(f"IF ({renderer.render(step.condition)}) THEN")
                em.indent()
            self._emit_stmts(em, renderer, fn, step.stmts, sp, parallel=False)
            if step.condition is not None:
                em.dedent()
                em.emit("END IF")
            return

        simd = self.plan.step_is_simd(fn.name, idx) and step.is_loop
        if simd:
            assert sp is not None
            reds = ", ".join(
                f"{op}:{renderer.grid_spelling(g)}"
                for g, op in sorted(sp.reductions.items())
            )
            clause = f" REDUCTION({reds})" if reds else ""
            em.emit_raw(f"!$OMP SIMD{clause}")
        directive = (directive_for_step(self.plan, fn, idx, renderer)
                     if parallel else None)
        # Fault-injection hook: a seeded plan may corrupt the directive
        # (drop a clause, widen COLLAPSE, suppress it) or conjure one onto
        # a serial loop — the mutants `repro lint --selftest` must catch.
        mutated = inject("codegen.fortran.omp", directive,
                         function=fn.name, step=idx, parallel=parallel)
        if mutated is not None:
            directive = mutated
        emit_omp = directive is not None and not directive.suppressed
        if emit_omp:
            em.emit_raw(render_fortran(directive))
            omp_steps.append(idx)

        for r in step.ranges:
            start = renderer.render(r.start)
            end = renderer.render(r.end)
            stride = renderer.render(r.step)
            suffix = "" if stride == "1" else f", {stride}"
            em.emit(f"DO {r.var} = {start}, {end}{suffix}")
            em.indent()

        if step.condition is not None:
            em.emit(f"IF ({renderer.render(step.condition)}) THEN")
            em.indent()

        self._emit_stmts(em, renderer, fn, step.stmts, sp, parallel=parallel)

        if step.condition is not None:
            em.dedent()
            em.emit("END IF")

        for _ in step.ranges:
            em.dedent()
            em.emit("END DO")
        if emit_omp:
            em.emit_raw(render_fortran_end())
        if simd:
            em.emit_raw("!$OMP END SIMD")

    def _emit_stmts(
        self,
        em: Emitter,
        renderer: FortranExprRenderer,
        fn: GlafFunction,
        stmts,
        sp,
        *,
        parallel: bool,
    ) -> None:
        for s in stmts:
            self._emit_stmt(em, renderer, fn, s, sp, parallel=parallel)

    def _emit_stmt(
        self,
        em: Emitter,
        renderer: FortranExprRenderer,
        fn: GlafFunction,
        s: Stmt,
        sp,
        *,
        parallel: bool,
    ) -> None:
        if isinstance(s, Assign):
            needs_atomic = (
                parallel
                and sp is not None
                and s.target.grid in sp.atomic
                and self.plan.tweaks.atomic_updates
            )
            if needs_atomic:
                em.emit_raw("!$OMP ATOMIC")
            target = renderer.render(s.target)
            em.emit(f"{target} = {renderer.render(s.expr)}")
        elif isinstance(s, CallStmt):
            args = ", ".join(renderer.render(a) for a in s.args)
            em.emit(f"CALL {s.name}({args})")
        elif isinstance(s, IfStmt):
            critical = (
                parallel
                and sp is not None
                and sp.critical_early_exit
                and any(isinstance(x, (Return, ExitLoop)) for x in walk_stmts(s.then))
            )
            if critical:
                em.emit_raw("!$OMP CRITICAL")
            em.emit(f"IF ({renderer.render(s.cond)}) THEN")
            em.indent()
            self._emit_stmts(em, renderer, fn, s.then, sp, parallel=parallel)
            em.dedent()
            if s.orelse:
                em.emit("ELSE")
                em.indent()
                self._emit_stmts(em, renderer, fn, s.orelse, sp, parallel=parallel)
                em.dedent()
            em.emit("END IF")
            if critical:
                em.emit_raw("!$OMP END CRITICAL")
        elif isinstance(s, Return):
            if s.value is not None:
                em.emit(f"{fn.return_grid_name} = {renderer.render(s.value)}")
            em.emit("RETURN")
        elif isinstance(s, ExitLoop):
            em.emit("EXIT")
        else:
            raise CodegenError(f"cannot emit statement {type(s).__name__}")


def generate_fortran_module(plan: OptimizationPlan, module_name: str | None = None) -> str:
    """Convenience wrapper: one call, one generated MODULE."""
    from ..observe import get_metrics, get_tracer

    with get_tracer().span("codegen.fortran", variant=plan.variant.name) as _sp:
        src = FortranGenerator(plan, module_name).generate_module()
        _sp.set(lines=src.count("\n"))
        get_metrics().counter("codegen.fortran.lines").inc(src.count("\n"))
        return src
