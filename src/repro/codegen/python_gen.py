"""Executable-Python code generation.

GLAF generates "human-readable, compatible code for the selected language";
this back-end targets NumPy Python, which doubles as the reproduction's
self-check path: every kernel can be executed both through the GLAF IR
interpreter and through its generated Python, and the two must agree
bit-for-bit.

Semantics mapping:

* GLAF/FORTRAN 1-based inclusive ranges -> ``range(start, end + 1, step)``
  with ``-1`` shifts on every subscript;
* global-scope grids (module-scope, COMMON, imported) live on a ``Globals``
  object ``g`` passed as the first argument to every generated function —
  the Python analogue of FORTRAN linkage;
* scalar dummy arguments with intent ``out``/``inout`` are passed as 0-d
  NumPy arrays and accessed as ``name[()]`` so mutation is visible to the
  caller (FORTRAN passes everything by reference);
* SAVE'd locals persist in a module-level ``_save_store`` keyed by
  ``(function, variable)`` — exactly the FUN3D no-reallocation behavior;
* integer division and MOD follow FORTRAN truncation semantics via helper
  functions emitted into the generated module.
"""

from __future__ import annotations

from ..core.expr import BinOp, Const, Expr, FuncCall, GridRef, LibCall, UnOp
from ..core.function import GlafFunction, GlafProgram
from ..core.grid import Grid
from ..core.libfuncs import get as get_libfunc
from ..core.step import Assign, CallStmt, ExitLoop, IfStmt, Return, Step, Stmt
from ..core.types import GlafType
from ..errors import CodegenError
from ..optimize.plan import OptimizationPlan
from ..robust import inject
from .base import Emitter, ExprRenderer, PRECEDENCE

__all__ = ["PythonGenerator", "generate_python_source"]

_DTYPE = {
    GlafType.T_INT: "np.int64",
    GlafType.T_REAL: "np.float32",
    GlafType.T_REAL8: "np.float64",
    GlafType.T_LOGICAL: "np.bool_",
}

_PREAMBLE = '''\
import numpy as np

_save_store = {}


def _idiv(a, b):
    """FORTRAN integer division: truncation toward zero."""
    q = a / b
    return np.int64(np.trunc(q))


def _fmod(a, b):
    """FORTRAN MOD: sign follows the dividend."""
    r = np.abs(a) % np.abs(b)
    return np.where(np.asarray(a) < 0, -r, r)[()]


def reset_save_store():
    _save_store.clear()


class Globals:
    """Storage for module-scope, COMMON and imported grids."""

    def __init__(self, **arrays):
        for k, v in arrays.items():
            setattr(self, k, v)
'''


class PyExprRenderer(ExprRenderer):
    def __init__(self, program: GlafProgram, fn: GlafFunction | None):
        self.program = program
        self.fn = fn

    # -- type inference (only what '/'-semantics needs) -------------------
    def is_int(self, e: Expr) -> bool:
        if isinstance(e, Const):
            return isinstance(e.value, int) and not isinstance(e.value, bool)
        if isinstance(e, GridRef):
            try:
                return self.program.resolve_grid(self.fn, e.grid).ty is GlafType.T_INT
            except KeyError:
                return False
        if isinstance(e, UnOp):
            return e.op == "neg" and self.is_int(e.operand)
        if isinstance(e, BinOp):
            if e.op in ("+", "-", "*", "//", "%"):
                return self.is_int(e.left) and self.is_int(e.right)
            return False
        if isinstance(e, LibCall):
            return e.name in ("INT", "SIZE", "MOD") and all(self.is_int(a) for a in e.args)
        if isinstance(e, FuncCall):
            try:
                return self.program.find_function(e.name).return_type is GlafType.T_INT
            except KeyError:
                return False
        if hasattr(e, "name"):  # IndexVar
            return True
        return False

    def render_const(self, e: Const) -> str:
        v = e.value
        if isinstance(v, bool):
            return "True" if v else "False"
        if isinstance(v, (int, float)):
            return repr(v)
        return repr(v)

    def _spelling(self, name: str) -> str:
        try:
            scope = self.program.scope_of(self.fn, name)
        except KeyError:
            return name
        return f"g.{name}" if scope == "global" else name

    def _scalar_by_ref(self, g: Grid, name: str) -> bool:
        return (
            self.fn is not None
            and name in self.fn.params
            and g.rank == 0
            and g.intent in ("out", "inout")
        )

    def render_grid_ref(self, e: GridRef) -> str:
        try:
            g = self.program.resolve_grid(self.fn, e.grid)
        except KeyError:
            raise CodegenError(f"unknown grid {e.grid!r}")
        base = self._spelling(e.grid)
        if not e.indices:
            if self._scalar_by_ref(g, e.grid):
                return f"{base}[()]"
            return base
        subs = ", ".join(f"{self.render(i)} - 1" for i in e.indices)
        return f"{base}[{subs}]"

    def render_lib_call(self, e: LibCall) -> str:
        f = get_libfunc(e.name)
        f.check_arity(len(e.args))
        args = ", ".join(self.render(a) for a in e.args)
        mapping = {
            "ABS": "np.abs", "SQRT": "np.sqrt", "EXP": "np.exp",
            "LOG": "np.log", "ALOG": "np.log", "ALOG10": "np.log10",
            "LOG10": "np.log10", "SIN": "np.sin", "COS": "np.cos",
            "TAN": "np.tan", "ASIN": "np.arcsin", "ACOS": "np.arccos",
            "ATAN": "np.arctan", "ATAN2": "np.arctan2", "SINH": "np.sinh",
            "COSH": "np.cosh", "TANH": "np.tanh", "MOD": "_fmod",
            "SIGN": "lambda_sign", "MIN": "np.minimum", "MAX": "np.maximum",
            "INT": "np.int64", "REAL": "np.float32", "DBLE": "np.float64",
            "FLOOR": "np.floor", "CEILING": "np.ceil",
            "SUM": "np.sum", "MINVAL": "np.min", "MAXVAL": "np.max",
            "PRODUCT": "np.prod", "SIZE": "np.size",
        }
        if e.name == "SIGN":
            a, b = [self.render(x) for x in e.args]
            return f"(np.abs({a}) * np.where(np.asarray({b}) >= 0, 1.0, -1.0))"
        if e.name in ("MIN", "MAX") and len(e.args) > 2:
            fn = mapping[e.name]
            out = self.render(e.args[0])
            for a in e.args[1:]:
                out = f"{fn}({out}, {self.render(a)})"
            return out
        if e.name == "INT":
            return f"np.int64(np.trunc({args}))"
        return f"{mapping[e.name]}({args})"

    def render_func_call(self, e: FuncCall) -> str:
        args = ", ".join(self.render(a) for a in e.args)
        sep = ", " if args else ""
        return f"{e.name}(g{sep}{args})"

    def binop_spelling(self, op: str) -> str:
        return op

    def render_binop(self, e: BinOp) -> str:
        if e.op == "/" and self.is_int(e.left) and self.is_int(e.right):
            return f"_idiv({self.render(e.left)}, {self.render(e.right)})"
        if e.op == "//":
            return f"_idiv({self.render(e.left)}, {self.render(e.right)})"
        if e.op == "%":
            return f"_fmod({self.render(e.left)}, {self.render(e.right)})"
        return super().render_binop(e)

    def render_not(self, e: UnOp) -> str:
        return f"not ({self.render(e.operand)})"


class PythonGenerator:
    def __init__(self, plan: OptimizationPlan):
        self.plan = plan
        self.program = plan.program

    def generate_source(self) -> str:
        em = Emitter("    ")
        em.emit(f'"""GLAF-generated Python for program {self.program.name}.')
        em.emit(f"Variant: {self.plan.variant.name}")
        em.emit('"""')
        for line in _PREAMBLE.splitlines():
            em.emit_raw(line)
        em.blank()
        for fn in self.program.functions():
            self._emit_function(em, fn)
            em.blank()
        return em.text()

    def _emit_function(self, em: Emitter, fn: GlafFunction) -> None:
        renderer = PyExprRenderer(self.program, fn)
        params = ", ".join(fn.params)
        sep = ", " if params else ""
        em.emit(f"def {fn.name}(g{sep}{params}):")
        em.indent()
        doc = fn.comment or f"GLAF {'subroutine' if fn.is_subroutine else 'function'} {fn.name}."
        em.emit(f'"""{doc}"""')

        for g in fn.local_grids().values():
            self._emit_local(em, renderer, fn, g)
        if not fn.is_subroutine:
            em.emit(f"{fn.return_grid_name} = {_DTYPE[fn.return_type]}(0)")

        body_emitted = False
        for idx, step in enumerate(fn.steps):
            self._emit_step(em, renderer, fn, idx, step)
            body_emitted = True
        if not body_emitted:
            em.emit("pass")
        if not fn.is_subroutine:
            em.emit(f"return {fn.return_grid_name}")
        em.dedent()

    def _emit_local(self, em: Emitter, renderer: PyExprRenderer,
                    fn: GlafFunction, g: Grid) -> None:
        saved = g.save or (self.plan.tweaks.save_inner_arrays and g.allocatable)
        if g.rank == 0:
            init = g.init_data if g.init_data is not None else 0
            em.emit(f"{g.name} = {_DTYPE[g.ty]}({init!r})")
            return
        shape = ", ".join(str(d) if isinstance(d, int) else d for d in g.dims)
        alloc = f"np.zeros(({shape},), dtype={_DTYPE[g.ty]})"
        if saved:
            key = f"({fn.name!r}, {g.name!r})"
            em.emit(f"{g.name} = _save_store.get({key})")
            em.emit(f"if {g.name} is None:")
            em.indent()
            em.emit(f"{g.name} = {alloc}")
            em.emit(f"_save_store[{key}] = {g.name}")
            em.dedent()
        else:
            em.emit(f"{g.name} = {alloc}")
        if g.init_data is not None:
            em.emit(f"{g.name}[...] = {g.init_data!r}")

    def _emit_step(self, em: Emitter, renderer: PyExprRenderer,
                   fn: GlafFunction, idx: int, step: Step) -> None:
        em.emit(f"# {step.comment or step.name}"
                + ("  [parallel]" if self.plan.step_is_parallel(fn.name, idx) else ""))
        depth_before = em.depth
        for r in step.ranges:
            start = renderer.render(r.start)
            end = renderer.render(r.end)
            stride = renderer.render(r.step)
            em.emit(f"for {r.var} in range(int({start}), int({end}) + 1, int({stride})):")
            em.indent()
        if step.condition is not None:
            em.emit(f"if {renderer.render(step.condition)}:")
            em.indent()
        stmts = step.stmts
        if not stmts:
            em.emit("pass")
        for s in stmts:
            self._emit_stmt(em, renderer, fn, s)
        while em.depth > depth_before:
            em.dedent()

    def _emit_stmt(self, em: Emitter, renderer: PyExprRenderer,
                   fn: GlafFunction, s: Stmt) -> None:
        if isinstance(s, Assign):
            target = renderer.render(s.target)
            g = self.program.resolve_grid(fn, s.target.grid)
            value = renderer.render(s.expr)
            value = inject("codegen.python.assign", value,
                           function=fn.name) or value
            if g.rank == 0 and not target.endswith("[()]") and not target.startswith("g."):
                # Plain local scalar: keep the dtype stable across assignment.
                em.emit(f"{target} = {_DTYPE[g.ty]}({value})")
            elif g.rank == 0 and target.startswith("g."):
                em.emit(f"{target} = {_DTYPE[g.ty]}({value})")
            else:
                em.emit(f"{target} = {value}")
        elif isinstance(s, CallStmt):
            args = ", ".join(renderer.render(a) for a in s.args)
            sep = ", " if args else ""
            em.emit(f"{s.name}(g{sep}{args})")
        elif isinstance(s, IfStmt):
            em.emit(f"if {renderer.render(s.cond)}:")
            em.indent()
            for x in s.then or ():
                self._emit_stmt(em, renderer, fn, x)
            if not s.then:
                em.emit("pass")
            em.dedent()
            if s.orelse:
                em.emit("else:")
                em.indent()
                for x in s.orelse:
                    self._emit_stmt(em, renderer, fn, x)
                em.dedent()
        elif isinstance(s, Return):
            if fn.is_subroutine:
                em.emit("return")
            elif s.value is not None:
                em.emit(f"return {_DTYPE[fn.return_type]}({renderer.render(s.value)})")
            else:
                em.emit(f"return {fn.return_grid_name}")
        elif isinstance(s, ExitLoop):
            em.emit("break")
        else:
            raise CodegenError(f"cannot emit statement {type(s).__name__}")


def generate_python_source(plan: OptimizationPlan) -> str:
    from ..observe import get_metrics, get_tracer

    with get_tracer().span("codegen.python", variant=plan.variant.name) as _sp:
        src = PythonGenerator(plan).generate_source()
        _sp.set(lines=src.count("\n"))
        get_metrics().counter("codegen.python.lines").inc(src.count("\n"))
        return src
