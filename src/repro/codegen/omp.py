"""OpenMP directive rendering for FORTRAN (`!$OMP`) and C (`#pragma omp`).

The clause set mirrors what the paper reports GLAF emitting: ``PARALLEL DO``
with ``PRIVATE``, ``FIRSTPRIVATE``, ``REDUCTION`` (possibly multi-variable),
``COLLAPSE(n)``, plus statement-level ``ATOMIC`` and block-level
``CRITICAL`` for the FUN3D adaptations (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OmpDirective", "render_fortran", "render_fortran_end",
           "render_c", "FORTRAN_SENTINEL"]

FORTRAN_SENTINEL = "!$OMP"


@dataclass(frozen=True)
class OmpDirective:
    """One parallel-loop directive."""

    private: tuple[str, ...] = ()
    firstprivate: tuple[str, ...] = ()
    reductions: tuple[tuple[str, str], ...] = ()   # (omp_op, var)
    collapse: int = 1
    schedule: str | None = None                    # e.g. "STATIC"
    num_threads: int | None = None
    # Set only by the 'drop-directive' fault transform: codegen skips the
    # directive (and its END) entirely, leaving the loop unannotated.
    suppressed: bool = False

    def clauses(self, *, upper: bool = True) -> list[str]:
        def case(s: str) -> str:
            return s.upper() if upper else s.lower()

        out: list[str] = []
        if self.private:
            out.append(f"{case('private')}({', '.join(self.private)})")
        if self.firstprivate:
            out.append(f"{case('firstprivate')}({', '.join(self.firstprivate)})")
        # Group reduction variables by operator so a loop with several
        # outputs gets one clause per operator listing all its variables —
        # the multi-variable reduction form the paper calls out.
        by_op: dict[str, list[str]] = {}
        for op, var in self.reductions:
            by_op.setdefault(op, []).append(var)
        for op, vars_ in sorted(by_op.items()):
            spelled = case(op) if op in ("MIN", "MAX") else op
            out.append(f"{case('reduction')}({spelled}:{', '.join(vars_)})")
        if self.collapse > 1:
            out.append(f"{case('collapse')}({self.collapse})")
        if self.schedule:
            out.append(f"{case('schedule')}({case(self.schedule)})")
        if self.num_threads is not None:
            out.append(f"{case('num_threads')}({self.num_threads})")
        return out


def render_fortran(d: OmpDirective) -> str:
    parts = [FORTRAN_SENTINEL, "PARALLEL DO"] + d.clauses(upper=True)
    return " ".join(parts)


def render_fortran_end() -> str:
    return f"{FORTRAN_SENTINEL} END PARALLEL DO"


def render_c(d: OmpDirective) -> str:
    parts = ["#pragma omp parallel for"] + d.clauses(upper=False)
    return " ".join(parts)
