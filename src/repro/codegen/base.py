"""Shared code-emission infrastructure.

All generators (FORTRAN, C, OpenCL, Python) build text through an
:class:`Emitter` that tracks indentation, and render expressions through a
precedence-aware walker so parentheses are minimal but always sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.expr import BinOp, Const, Expr, FuncCall, GridRef, IndexVar, LibCall, UnOp
from ..errors import CodegenError

__all__ = ["Emitter", "ExprRenderer", "PRECEDENCE"]

# Operator precedence, loosest binds first.
PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "==": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "//": 6, "%": 6,
    "neg": 7,
    "**": 8,
}
_ATOM = 9


class Emitter:
    """An indentation-tracking line buffer."""

    def __init__(self, indent_unit: str = "  "):
        self.lines: list[str] = []
        self._depth = 0
        self._unit = indent_unit

    def emit(self, line: str = "") -> None:
        if line:
            self.lines.append(self._unit * self._depth + line)
        else:
            self.lines.append("")

    def emit_raw(self, line: str) -> None:
        """Emit without indentation (OpenMP sentinels, preprocessor...)."""
        self.lines.append(line)

    def indent(self) -> None:
        self._depth += 1

    def dedent(self) -> None:
        if self._depth == 0:
            raise CodegenError("unbalanced dedent")
        self._depth -= 1

    @property
    def depth(self) -> int:
        return self._depth

    def blank(self) -> None:
        if self.lines and self.lines[-1] != "":
            self.lines.append("")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class ExprRenderer:
    """Precedence-aware expression rendering.

    Subclasses override the ``render_*`` hooks per target language; the
    dispatcher and parenthesization logic live here.
    """

    def render(self, e: Expr, parent_prec: int = 0) -> str:
        text, prec = self._render(e)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _render(self, e: Expr) -> tuple[str, int]:
        if isinstance(e, Const):
            return self.render_const(e), _ATOM
        if isinstance(e, IndexVar):
            return self.render_index_var(e), _ATOM
        if isinstance(e, GridRef):
            return self.render_grid_ref(e), _ATOM
        if isinstance(e, BinOp):
            return self.render_binop(e), PRECEDENCE[e.op]
        if isinstance(e, UnOp):
            return self.render_unop(e), PRECEDENCE["neg" if e.op == "neg" else "not"]
        if isinstance(e, LibCall):
            return self.render_lib_call(e), _ATOM
        if isinstance(e, FuncCall):
            return self.render_func_call(e), _ATOM
        raise CodegenError(f"cannot render expression node {type(e).__name__}")

    # --- hooks ----------------------------------------------------------
    def render_const(self, e: Const) -> str:
        raise NotImplementedError

    def render_index_var(self, e: IndexVar) -> str:
        return e.name

    def render_grid_ref(self, e: GridRef) -> str:
        raise NotImplementedError

    def render_lib_call(self, e: LibCall) -> str:
        raise NotImplementedError

    def render_func_call(self, e: FuncCall) -> str:
        raise NotImplementedError

    def binop_spelling(self, op: str) -> str:
        return op

    def render_binop(self, e: BinOp) -> str:
        prec = PRECEDENCE[e.op]
        # '**' is right-associative; everything else left-associative.  The
        # right operand of '-' '/' needs a strictly higher precedence to
        # avoid re-association (a - (b - c) must keep its parentheses).
        if e.op == "**":
            left = self.render(e.left, prec + 1)
            right = self.render(e.right, prec)
        elif e.op in ("-", "/", "//", "%"):
            left = self.render(e.left, prec)
            right = self.render(e.right, prec + 1)
        else:
            left = self.render(e.left, prec)
            right = self.render(e.right, prec)
        return f"{left} {self.binop_spelling(e.op)} {right}"

    def render_unop(self, e: UnOp) -> str:
        if e.op == "neg":
            return f"-{self.render(e.operand, PRECEDENCE['neg'] + 1)}"
        return self.render_not(e)

    def render_not(self, e: UnOp) -> str:
        raise NotImplementedError
