"""GLAF automatic code generation back-end (FORTRAN, C, OpenCL, Python)."""

from .c import CGenerator, generate_c_source
from .fortran import FortranGenerator, generate_fortran_module
from .omp import OmpDirective, render_c, render_fortran, render_fortran_end
from .opencl import KernelLaunch, OpenCLGenerator, generate_opencl
from .python_gen import PythonGenerator, generate_python_source
from .sloc import count_sloc, module_unit_slocs, unit_sloc

__all__ = [
    "CGenerator", "generate_c_source",
    "FortranGenerator", "generate_fortran_module",
    "OmpDirective", "render_c", "render_fortran", "render_fortran_end",
    "KernelLaunch", "OpenCLGenerator", "generate_opencl",
    "PythonGenerator", "generate_python_source",
    "count_sloc", "module_unit_slocs", "unit_sloc",
]
