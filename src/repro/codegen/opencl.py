"""OpenCL code generation (GLAF's offload target, paper §2.1 / [14]).

For every parallel step the generator emits one ``__kernel`` whose global
work size covers the step's (collapsed) iteration space, plus a host-side
launch plan describing buffers to create and kernels to enqueue.  Serial
steps remain host-side and are listed in the launch plan as host sections.

This back-end exists because the paper positions GLAF as generating code
for "many languages" and cites the OpenCL extension; the case studies
themselves only exercise the FORTRAN path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.expr import Const
from ..core.function import GlafFunction
from ..core.step import Assign, CallStmt, ExitLoop, IfStmt, Return, Step, Stmt
from ..core.types import opencl_decl
from ..errors import CodegenError
from ..optimize.plan import OptimizationPlan
from .base import Emitter
from .c import CExprRenderer

__all__ = ["OpenCLGenerator", "generate_opencl", "KernelLaunch"]


@dataclass(frozen=True)
class KernelLaunch:
    """One entry of the host launch plan."""

    kind: str                 # 'kernel' | 'host'
    name: str
    function: str
    step_index: int
    work_dims: int = 0
    buffers: tuple[str, ...] = ()


@dataclass
class OpenCLOutput:
    kernels_source: str
    launch_plan: list[KernelLaunch] = field(default_factory=list)


class OpenCLGenerator:
    def __init__(self, plan: OptimizationPlan):
        self.plan = plan
        self.program = plan.program

    def generate(self) -> OpenCLOutput:
        em = Emitter("    ")
        em.emit(f"/* GLAF OpenCL kernels for program {self.program.name} */")
        em.emit("#pragma OPENCL EXTENSION cl_khr_fp64 : enable")
        em.blank()
        launches: list[KernelLaunch] = []
        for fn in self.program.functions():
            for idx, step in enumerate(fn.steps):
                if self.plan.step_is_parallel(fn.name, idx) and step.is_loop \
                        and not step.has_calls():
                    kname = f"{fn.name}_step{idx}"
                    buffers = tuple(sorted(step.grids_referenced()))
                    self._emit_kernel(em, fn, idx, step, kname)
                    em.blank()
                    launches.append(KernelLaunch(
                        kind="kernel", name=kname, function=fn.name,
                        step_index=idx, work_dims=step.depth, buffers=buffers,
                    ))
                else:
                    launches.append(KernelLaunch(
                        kind="host", name=f"{fn.name}_step{idx}_host",
                        function=fn.name, step_index=idx,
                    ))
        return OpenCLOutput(kernels_source=em.text(), launch_plan=launches)

    def _emit_kernel(self, em: Emitter, fn: GlafFunction, idx: int,
                     step: Step, kname: str) -> None:
        renderer = CExprRenderer(self.program, fn)
        params: list[str] = []
        seen: set[str] = set()
        for gname in sorted(step.grids_referenced()):
            if gname in seen:
                continue
            seen.add(gname)
            try:
                g = self.program.resolve_grid(fn, gname)
            except KeyError:
                continue
            base = opencl_decl(g.ty)
            if g.rank == 0:
                params.append(f"const {base} {g.name}")
            else:
                params.append(f"__global {base} *{g.name}")
        em.emit(f"__kernel void {kname}({', '.join(params)})")
        em.emit("{")
        em.indent()
        # Map each nest dimension to a global id; bounds are enforced by the
        # host's NDRange, with a guard for partial workgroups.
        guards: list[str] = []
        for dim, r in enumerate(step.ranges):
            start = renderer.render(r.start)
            end = renderer.render(r.end)
            em.emit(f"long {r.var} = get_global_id({dim}) + ({start});")
            guards.append(f"{r.var} <= ({end})")
        if guards:
            em.emit(f"if (!({' && '.join(guards)})) return;")
        if step.condition is not None:
            em.emit(f"if (!({renderer.render(step.condition)})) return;")
        for s in step.stmts:
            self._emit_stmt(em, renderer, s)
        em.dedent()
        em.emit("}")

    def _emit_stmt(self, em: Emitter, renderer: CExprRenderer, s: Stmt) -> None:
        if isinstance(s, Assign):
            em.emit(f"{renderer.render(s.target)} = {renderer.render(s.expr)};")
        elif isinstance(s, IfStmt):
            em.emit(f"if ({renderer.render(s.cond)}) {{")
            em.indent()
            for x in s.then:
                self._emit_stmt(em, renderer, x)
            em.dedent()
            if s.orelse:
                em.emit("} else {")
                em.indent()
                for x in s.orelse:
                    self._emit_stmt(em, renderer, x)
                em.dedent()
            em.emit("}")
        elif isinstance(s, Return):
            em.emit("return;")
        elif isinstance(s, ExitLoop):
            em.emit("return;  /* early exit maps to thread retirement */")
        elif isinstance(s, CallStmt):
            raise CodegenError("kernels with GLAF calls stay host-side")
        else:
            raise CodegenError(f"cannot emit statement {type(s).__name__}")


def generate_opencl(plan: OptimizationPlan) -> OpenCLOutput:
    from ..observe import get_metrics, get_tracer

    with get_tracer().span("codegen.opencl", variant=plan.variant.name) as _sp:
        out = OpenCLGenerator(plan).generate()
        _sp.set(kernels=len(out.launch_plan))
        get_metrics().counter("codegen.opencl.kernels").inc(len(out.launch_plan))
        return out
