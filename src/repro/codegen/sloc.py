"""Source-lines-of-code accounting (paper Table 1).

The paper reports per-subroutine SLOC for the six SARB kernels, explicitly
excluding "lines of code that correspond to data types and variables from
imported modules".  We count the same way: non-blank, non-comment lines,
with ``USE`` lines excluded when ``count_imports=False``.
"""

from __future__ import annotations

import re

__all__ = ["count_sloc", "unit_sloc", "module_unit_slocs"]

_COMMENT = re.compile(r"^\s*!(?!\$OMP)")
_OMP = re.compile(r"^\s*!\$OMP")
_USE = re.compile(r"^\s*USE\b", re.IGNORECASE)
_UNIT_START = re.compile(
    r"^\s*(SUBROUTINE|FUNCTION)\s+(\w+)", re.IGNORECASE
)
_UNIT_END = re.compile(r"^\s*END\s+(SUBROUTINE|FUNCTION)\b", re.IGNORECASE)


def count_sloc(
    source: str,
    *,
    count_imports: bool = False,
    count_omp: bool = True,
) -> int:
    """Count source lines of code in FORTRAN text."""
    n = 0
    for line in source.splitlines():
        if not line.strip():
            continue
        if _COMMENT.match(line):
            continue
        if _OMP.match(line) and not count_omp:
            continue
        if _USE.match(line) and not count_imports:
            continue
        n += 1
    return n


def unit_sloc(source: str, unit_name: str, **kw) -> int:
    """SLOC of a single subprogram within a module's source text."""
    lines = source.splitlines()
    start = end = None
    for i, line in enumerate(lines):
        m = _UNIT_START.match(line)
        if m and m.group(2).lower() == unit_name.lower():
            start = i
        elif start is not None and _UNIT_END.match(line):
            end = i
            break
    if start is None or end is None:
        raise ValueError(f"subprogram {unit_name!r} not found")
    return count_sloc("\n".join(lines[start : end + 1]), **kw)


def module_unit_slocs(source: str, **kw) -> dict[str, int]:
    """SLOC per subprogram in a generated module (Table 1 rows)."""
    out: dict[str, int] = {}
    lines = source.splitlines()
    current: str | None = None
    buf: list[str] = []
    for line in lines:
        m = _UNIT_START.match(line)
        if m and current is None:
            current = m.group(2)
            buf = [line]
        elif current is not None:
            buf.append(line)
            if _UNIT_END.match(line):
                out[current] = count_sloc("\n".join(buf), **kw)
                current = None
    return out
