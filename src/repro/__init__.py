"""GLAF reproduction: grid-based auto-parallelization and code generation
with legacy-FORTRAN integration.

Reproduction of Krommydas, Sathre, Sasanka, Feng — "A Framework for
Auto-Parallelization and Code Generation: An Integrative Case Study with
Legacy FORTRAN Codes" (ICPP 2018).

Quick start::

    from repro import GlafBuilder, T_REAL8, T_INT, T_VOID, ref, lib, I
    from repro.optimize import make_plan
    from repro.codegen import generate_fortran_module

    b = GlafBuilder("demo")
    m = b.module("Module1")
    f = m.function("scale", return_type=T_VOID)
    f.param("n", T_INT, intent="in")
    f.param("a", T_REAL8, dims=("n",), intent="inout")
    s = f.step()
    s.foreach(i=(1, "n"))
    s.formula(ref("a", I("i")), ref("a", I("i")) * 2.0)
    program = b.build()
    print(generate_fortran_module(make_plan(program, "GLAF-parallel v0")))

Package map (see DESIGN.md):

* :mod:`repro.core`        — grid/step/function internal representation + builder
* :mod:`repro.analysis`    — auto-parallelization back-end
* :mod:`repro.optimize`    — optimization back-end (layout, loops, pruning)
* :mod:`repro.codegen`     — FORTRAN / C / OpenCL / Python generators
* :mod:`repro.fortranlib`  — FORTRAN-subset parser + interpreter substrate
* :mod:`repro.integration` — legacy-code model, interface checks, splicing
* :mod:`repro.glafexec`    — IR interpreter (reference execution)
* :mod:`repro.perf`        — machine/compiler/OpenMP models + simulator
* :mod:`repro.sarb`        — Synoptic SARB case study
* :mod:`repro.fun3d`       — FUN3D Jacobian-reconstruction case study
* :mod:`repro.bench`       — experiment registry (tables/figures)
* :mod:`repro.observe`     — tracing / metrics / decision logging
  (no-op by default; see docs/OBSERVABILITY.md)
"""

from .core import (
    GLOBAL_SCOPE,
    E,
    GlafBuilder,
    GlafFunction,
    GlafModule,
    GlafProgram,
    Grid,
    GlafType,
    I,
    T_CHAR,
    T_INT,
    T_LOGICAL,
    T_REAL,
    T_REAL8,
    T_VOID,
    lib,
    ref,
    validate_program,
)

__version__ = "1.0.0"

__all__ = [
    "GlafBuilder", "GlafProgram", "GlafModule", "GlafFunction", "Grid",
    "GlafType", "GLOBAL_SCOPE",
    "T_INT", "T_REAL", "T_REAL8", "T_LOGICAL", "T_CHAR", "T_VOID",
    "E", "I", "ref", "lib",
    "validate_program",
    "__version__",
]
