"""The optimization plan: everything codegen needs beyond the raw IR.

An :class:`OptimizationPlan` bundles the parallelization analysis, the
pruning variant, loop-option decisions and the per-function tweak switches
(the paper's §4.2.1 manual-tweak list) into one object that both the code
generators and the performance simulator consume, so the code that is
*generated* and the code that is *modeled* always agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.parallelize import ParallelPlan, analyze_program
from ..core.function import GlafProgram
from .loops import decide_collapse
from .pruning import DirectiveSet, Variant, directives_for_variant, variant_by_name

__all__ = ["Tweaks", "OptimizationPlan", "make_plan"]


@dataclass(frozen=True)
class Tweaks:
    """The FUN3D manual adaptations (paper §4.2.1), as switches.

    Each switch corresponds to one bullet of the paper's tweak list; code
    generation honors them, and tests assert each changes the emitted code.
    """

    save_inner_arrays: bool = False        # SAVE on function-scope temporaries
    threadprivate_module_arrays: bool = False
    copyprivate_pointers: bool = False     # nested-parallelism sharing
    multi_var_reductions: bool = True      # multiple vars in one REDUCTION list
    atomic_updates: bool = True            # ATOMIC on indirect shared updates
    critical_early_exit: frozenset[str] = frozenset()  # functions with the protocol


@dataclass
class OptimizationPlan:
    """Everything needed to generate one code variant."""

    program: GlafProgram
    parallel_plan: ParallelPlan
    variant: Variant
    directives: DirectiveSet
    tweaks: Tweaks = field(default_factory=Tweaks)
    threads: int = 4
    enable_collapse: bool = True
    # Steps whose directive is force-disabled regardless of variant (used by
    # the FUN3D option lattice: parallelize only selected functions).
    force_serial: frozenset[tuple[str, int]] = frozenset()
    # Steps whose directive is force-enabled (critical-early-exit loops the
    # pruning variant would not have annotated).
    force_parallel: frozenset[tuple[str, int]] = frozenset()
    # Steps annotated with `!$OMP SIMD` instead of PARALLEL DO (the paper's
    # future-work option: "selecting SIMD directives, instead of OpenMP");
    # only meaningful for steps that are not parallel under this plan.
    force_simd: frozenset[tuple[str, int]] = frozenset()

    def step_is_parallel(self, function: str, step_index: int) -> bool:
        key = (function, step_index)
        if key in self.force_serial:
            return False
        if key in self.force_parallel:
            sp = self.parallel_plan.steps.get(key)
            return bool(sp and sp.parallel)
        return bool(self.directives.keep.get(key, False))

    def step_is_simd(self, function: str, step_index: int) -> bool:
        key = (function, step_index)
        if self.step_is_parallel(function, step_index):
            return False
        sp = self.parallel_plan.steps.get(key)
        return key in self.force_simd and bool(sp and sp.parallel)

    def with_force_serial(self, keys) -> "OptimizationPlan":
        """A copy of this plan with ``keys`` added to ``force_serial`` —
        how the divergence guard exports its demotions back to codegen."""
        from dataclasses import replace

        return replace(self, force_serial=self.force_serial | frozenset(keys))

    def collapse_for(self, function: str, step_index: int) -> int:
        fn = self.program.find_function(function)
        return decide_collapse(fn.steps[step_index], enable=self.enable_collapse).depth


def make_plan(
    program: GlafProgram,
    variant: str | Variant = "GLAF-parallel v0",
    *,
    tweaks: Tweaks | None = None,
    threads: int = 4,
    enable_collapse: bool = True,
    force_serial: frozenset[tuple[str, int]] = frozenset(),
    force_parallel: frozenset[tuple[str, int]] = frozenset(),
    force_simd: frozenset[tuple[str, int]] = frozenset(),
) -> OptimizationPlan:
    """Analyze ``program`` and build the plan for one variant."""
    from ..observe import get_metrics, get_tracer

    if isinstance(variant, str):
        variant = variant_by_name(variant)
    tweaks = tweaks or Tweaks()
    with get_tracer().span("optimize.plan", program=program.name,
                           variant=variant.name, threads=threads) as _sp:
        pplan = analyze_program(
            program, critical_early_exit_functions=tweaks.critical_early_exit
        )
        directives = directives_for_variant(program, pplan, variant)
        _sp.set(directives=directives.n_directives())
        get_metrics().gauge("optimize.plan.directives").set(
            directives.n_directives()
        )
    return OptimizationPlan(
        program=program,
        parallel_plan=pplan,
        variant=variant,
        directives=directives,
        tweaks=tweaks,
        threads=threads,
        enable_collapse=enable_collapse,
        force_serial=force_serial,
        force_parallel=force_parallel,
        force_simd=force_simd,
    )
