"""Data-layout option: array-of-structures vs structure-of-arrays (§2.1).

GLAF's grids are naturally structure-of-arrays (every field its own grid).
The AoS option groups a set of same-shaped grids into a derived TYPE whose
single array variable holds one record per element; code generation then
emits ``recs(i)%field`` accesses instead of ``field(i)``.

The transformation is a pure IR rewrite and is reversible; the performance
model charges AoS accesses a strided-access penalty, which is how the
trade-off the paper mentions becomes measurable in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expr import BinOp, Const, Expr, FuncCall, GridRef, IndexVar, LibCall, UnOp
from ..core.function import GlafFunction, GlafProgram
from ..core.grid import Grid
from ..core.step import Assign, CallStmt, ExitLoop, IfStmt, Range, Return, Step, Stmt
from ..core.types import DerivedType, GlafType
from ..errors import AnalysisError

__all__ = ["LayoutGroup", "to_aos", "aos_field_name"]


@dataclass(frozen=True)
class LayoutGroup:
    """A set of same-shape grids eligible for AoS packing."""

    type_name: str
    variable: str           # name of the record-array variable
    fields: tuple[str, ...]  # grid names


def aos_field_name(variable: str, field: str) -> str:
    """Mangled grid name representing ``variable%field`` after AoS packing."""
    return f"{variable}__{field}"


def _check_group(program: GlafProgram, fn: GlafFunction, group: LayoutGroup) -> tuple:
    dims = None
    ty_fields: dict[str, tuple[GlafType, int]] = {}
    for name in group.fields:
        try:
            g = program.resolve_grid(fn, name)
        except KeyError:
            raise AnalysisError(f"AoS group references unknown grid {name!r}") from None
        if g.rank == 0:
            raise AnalysisError(f"AoS group member {name!r} is scalar")
        if dims is None:
            dims = g.dims
        elif g.dims != dims:
            raise AnalysisError(
                f"AoS group members disagree on shape: {name!r} has {g.dims}, "
                f"expected {dims}"
            )
        ty_fields[name] = (g.ty, 0)
    assert dims is not None
    return dims, ty_fields


def to_aos(program: GlafProgram, fn_name: str, group: LayoutGroup) -> GlafProgram:
    """Rewrite ``fn_name`` (in a deep-copied program) to use AoS layout.

    Each member grid ``f`` of the group is replaced by a TYPE-element grid
    named ``<variable>__<f>`` marked with ``type_parent=variable`` so the
    FORTRAN generator emits ``variable(i)%f``.
    """
    from ..core.project import program_from_dict, program_to_dict

    prog = program_from_dict(program_to_dict(program))
    fn = prog.find_function(fn_name)
    dims, ty_fields = _check_group(prog, fn, group)

    dt = DerivedType(name=group.type_name, fields=ty_fields)
    if group.type_name not in prog.derived_types:
        prog.add_derived_type(dt)

    mapping: dict[str, str] = {}
    for fname in group.fields:
        new_name = aos_field_name(group.variable, fname)
        mapping[fname] = new_name
        old = prog.resolve_grid(fn, fname)
        new_grid = Grid(
            name=new_name,
            ty=old.ty,
            dims=old.dims,
            comment=f"AoS element {group.variable}%{fname}",
            exists_in_module=old.exists_in_module or "glaf_aos_layout",
            type_parent=group.variable,
            type_name=group.type_name,
        )
        # AoS members become global TYPE elements regardless of prior scope.
        if fname in fn.grids:
            was_param = fname in fn.params
            del fn.grids[fname]
            if was_param:
                fn.params.remove(fname)
        else:
            del prog.global_grids[fname]
        if new_name not in prog.global_grids:
            prog.add_global_grid(new_grid)

    fn.steps = [_rewrite_step(s, mapping) for s in fn.steps]
    return prog


# --------------------------------------------------------------------------
# IR rewriting
# --------------------------------------------------------------------------

def _rewrite_expr(e: Expr, mapping: dict[str, str]) -> Expr:
    if isinstance(e, GridRef):
        name = mapping.get(e.grid, e.grid)
        return GridRef(name, tuple(_rewrite_expr(i, mapping) for i in e.indices))
    if isinstance(e, BinOp):
        return BinOp(e.op, _rewrite_expr(e.left, mapping), _rewrite_expr(e.right, mapping))
    if isinstance(e, UnOp):
        return UnOp(e.op, _rewrite_expr(e.operand, mapping))
    if isinstance(e, LibCall):
        return LibCall(e.name, tuple(_rewrite_expr(a, mapping) for a in e.args))
    if isinstance(e, FuncCall):
        return FuncCall(e.name, tuple(_rewrite_expr(a, mapping) for a in e.args))
    return e


def _rewrite_stmt(s: Stmt, mapping: dict[str, str]) -> Stmt:
    if isinstance(s, Assign):
        target = _rewrite_expr(s.target, mapping)
        assert isinstance(target, GridRef)
        return Assign(target=target, expr=_rewrite_expr(s.expr, mapping))
    if isinstance(s, CallStmt):
        return CallStmt(s.name, tuple(_rewrite_expr(a, mapping) for a in s.args))
    if isinstance(s, IfStmt):
        return IfStmt(
            cond=_rewrite_expr(s.cond, mapping),
            then=tuple(_rewrite_stmt(x, mapping) for x in s.then),
            orelse=tuple(_rewrite_stmt(x, mapping) for x in s.orelse),
        )
    if isinstance(s, Return) and s.value is not None:
        return Return(_rewrite_expr(s.value, mapping))
    return s


def _rewrite_step(step: Step, mapping: dict[str, str]) -> Step:
    return Step(
        name=step.name,
        ranges=[
            Range(
                var=r.var,
                start=_rewrite_expr(r.start, mapping),
                end=_rewrite_expr(r.end, mapping),
                step=_rewrite_expr(r.step, mapping),
            )
            for r in step.ranges
        ],
        condition=_rewrite_expr(step.condition, mapping) if step.condition is not None else None,
        stmts=[_rewrite_stmt(s, mapping) for s in step.stmts],
        comment=step.comment,
    )
