"""Model-guided directive selection — the paper's proposed future work.

§4.1.2: "As future work, we suggest the incorporation of a performance
prediction/modeling back-end that will guide the automatic code generation
in a more intelligent way (e.g., selecting SIMD directives, instead of
OpenMP, or neither)."  §4.2.2 adds: "an option to GLAF could be added to
limit such excessive reallocation automatically."

This module implements both:

* :func:`advise` evaluates, per parallelizable step, the predicted run time
  with and without its OpenMP directive (everything else held fixed) and
  keeps the directive only where the model says threading wins.  The
  result is an ``OptimizationPlan`` with a synthetic ``GLAF-parallel auto``
  variant whose directive set is chosen by measurement rather than by the
  paper's manual v0->v3 class pruning.
* :func:`auto_no_reallocation` detects allocatable temporaries in functions
  reached from inside (potential) parallel loops and returns the tweak set
  that SAVEs them — the automated version of the FUN3D manual adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.classify import LoopClass
from ..core.function import GlafProgram
from ..core.step import CallStmt, walk_stmts
from .plan import OptimizationPlan, Tweaks, make_plan
from .pruning import DirectiveSet, Variant

__all__ = ["AdvisorDecision", "AdvisorReport", "advise", "auto_no_reallocation"]


@dataclass(frozen=True)
class AdvisorDecision:
    """One loop's three-way verdict: OpenMP, SIMD directive, or neither —
    the exact choice set the paper's future-work paragraph names."""

    function: str
    step_index: int
    step_name: str
    loop_class: str
    cycles_with_omp: float
    cycles_without_omp: float
    cycles_with_simd: float
    choice: str                        # 'omp' | 'simd' | 'none'

    @property
    def keep_directive(self) -> bool:
        return self.choice == "omp"

    @property
    def benefit(self) -> float:
        """Predicted cycles saved vs the worst option (>= 0)."""
        worst = max(self.cycles_with_omp, self.cycles_without_omp,
                    self.cycles_with_simd)
        best = min(self.cycles_with_omp, self.cycles_without_omp,
                   self.cycles_with_simd)
        return worst - best


@dataclass
class AdvisorReport:
    decisions: list[AdvisorDecision] = field(default_factory=list)

    def kept(self) -> list[AdvisorDecision]:
        return [d for d in self.decisions if d.keep_directive]

    def dropped(self) -> list[AdvisorDecision]:
        return [d for d in self.decisions if not d.keep_directive]

    def simd(self) -> list[AdvisorDecision]:
        return [d for d in self.decisions if d.choice == "simd"]

    def to_text(self) -> str:
        lines = ["Model-guided directive selection (omp / simd / none):"]
        for d in self.decisions:
            lines.append(
                f"  [{d.choice:4s}] {d.function}/{d.step_name} "
                f"({d.loop_class}): omp={d.cycles_with_omp:.0f}cy "
                f"simd={d.cycles_with_simd:.0f}cy "
                f"none={d.cycles_without_omp:.0f}cy"
            )
        return "\n".join(lines)


def advise(
    program: GlafProgram,
    machine,
    workload,
    *,
    threads: int = 4,
    tweaks: Tweaks | None = None,
) -> tuple[OptimizationPlan, AdvisorReport]:
    """Choose the directive set by per-step what-if simulation.

    Starting from the all-directives plan (v0), each parallelizable step is
    toggled serial in isolation; the model-predicted total decides whether
    the directive stays.  Greedy per-step toggling is exact here because
    the simulator's step costs are additive.
    """
    from ..observe import get_decisions, get_tracer

    with get_tracer().span("optimize.advisor", program=program.name,
                           threads=threads) as _sp:
        auto_plan, report = _advise(program, machine, workload,
                                    threads=threads, tweaks=tweaks)
        _sp.set(kept=len(report.kept()), simd=len(report.simd()),
                dropped=len(report.dropped()))
    decisions = get_decisions()
    if decisions.enabled:
        for d in report.decisions:
            decisions.record(
                "advisor", d.function, d.step_index, d.step_name, d.choice,
                loop_class=d.loop_class,
                reasons=(
                    f"model cycles: omp={d.cycles_with_omp:.0f} "
                    f"simd={d.cycles_with_simd:.0f} "
                    f"none={d.cycles_without_omp:.0f}",
                ),
            )
    return auto_plan, report


def _advise(
    program: GlafProgram,
    machine,
    workload,
    *,
    threads: int = 4,
    tweaks: Tweaks | None = None,
) -> tuple[OptimizationPlan, AdvisorReport]:
    from ..perf.simulate import SimOptions, Simulator
    from ..analysis.classify import classify_step

    base_plan = make_plan(program, "GLAF-parallel v0", threads=threads,
                          tweaks=tweaks or Tweaks())
    options = SimOptions(threads=threads)

    def total(plan: OptimizationPlan) -> float:
        return Simulator(plan, machine, workload, options).run().total_cycles

    report = AdvisorReport()
    candidates = [sp for sp in base_plan.parallel_plan.steps.values() if sp.parallel]
    choice: dict[tuple[str, int], str] = {
        (sp.function, sp.step_index): "omp" for sp in candidates
    }

    def plan_for(choices: dict[tuple[str, int], str]) -> OptimizationPlan:
        serial = frozenset(k for k, v in choices.items() if v != "omp")
        simd = frozenset(k for k, v in choices.items() if v == "simd")
        return replace_plan_force(base_plan, serial=serial, simd=simd)

    # Coordinate descent: directives interact (a parallel caller amortizes
    # an expensive callee; nested regions multiply), so a single greedy
    # pass over the all-OMP plan can mis-rank options.  Re-evaluating each
    # loop against the *current* choices of all the others converges here
    # in two or three passes (the objective decreases monotonically).
    trio_cycles: dict[tuple[str, int], dict[str, float]] = {}
    for _pass in range(5):
        changed = False
        for sp in candidates:
            key = (sp.function, sp.step_index)
            cycles = {}
            for option in ("none", "simd", "omp"):
                trial = dict(choice)
                trial[key] = option
                cycles[option] = total(plan_for(trial))
            trio_cycles[key] = cycles
            best = min(("none", "simd", "omp"), key=lambda o: cycles[o])
            if best != choice[key]:
                choice[key] = best
                changed = True
        if not changed:
            break

    for sp in candidates:
        key = (sp.function, sp.step_index)
        fn = program.find_function(sp.function)
        cycles = trio_cycles[key]
        report.decisions.append(AdvisorDecision(
            function=sp.function,
            step_index=sp.step_index,
            step_name=sp.step_name,
            loop_class=classify_step(fn.steps[sp.step_index]).value,
            cycles_with_omp=cycles["omp"],
            cycles_without_omp=cycles["none"],
            cycles_with_simd=cycles["simd"],
            choice=choice[key],
        ))

    dropped = frozenset(k for k, v in choice.items() if v != "omp")
    simd_set = frozenset(k for k, v in choice.items() if v == "simd")
    variant = Variant(
        name="GLAF-parallel auto",
        description="Directive set selected by the performance-model advisor "
                    "(the paper's proposed future work)",
        glaf_generated=True,
        parallel=True,
    )
    ds = DirectiveSet(variant=variant)
    for key, sp in base_plan.parallel_plan.steps.items():
        ds.keep[key] = bool(sp.parallel) and key not in dropped
        ds.loop_class[key] = base_plan.directives.loop_class[key]
    auto_plan = OptimizationPlan(
        program=program,
        parallel_plan=base_plan.parallel_plan,
        variant=variant,
        directives=ds,
        tweaks=base_plan.tweaks,
        threads=threads,
        force_simd=simd_set,
    )
    return auto_plan, report


def replace_plan_force(plan: OptimizationPlan, serial: frozenset,
                       simd: frozenset = frozenset()) -> OptimizationPlan:
    """A copy of ``plan`` with extra force-serial / force-simd keys."""
    return OptimizationPlan(
        program=plan.program,
        parallel_plan=plan.parallel_plan,
        variant=plan.variant,
        directives=plan.directives,
        tweaks=plan.tweaks,
        threads=plan.threads,
        enable_collapse=plan.enable_collapse,
        force_serial=plan.force_serial | serial,
        force_parallel=plan.force_parallel,
        force_simd=plan.force_simd | simd,
    )


def auto_no_reallocation(program: GlafProgram, plan: OptimizationPlan) -> tuple[Tweaks, list[str]]:
    """Detect functions whose allocatable temporaries would be re-allocated
    inside a parallel region, and return tweaks that SAVE them.

    A function qualifies when (a) it owns allocatable local arrays and
    (b) it is reachable from a call statement inside a step the plan
    parallelizes (directly or transitively) — the automated form of the
    paper's "option to GLAF ... to limit such excessive reallocation".
    """
    # Functions called (transitively) from parallel steps.
    called_from_parallel: set[str] = set()

    def visit(fname: str) -> None:
        if fname in called_from_parallel:
            return
        called_from_parallel.add(fname)
        try:
            fn = program.find_function(fname)
        except KeyError:
            return
        for callee in fn.called_functions():
            visit(callee)

    for (fname, idx) in plan.directives.keep:
        if not plan.step_is_parallel(fname, idx):
            continue
        fn = program.find_function(fname)
        step = fn.steps[idx]
        for s in walk_stmts(step.stmts):
            if isinstance(s, CallStmt):
                visit(s.name)

    offenders = sorted(
        fn.name
        for fn in program.functions()
        if fn.name in called_from_parallel
        and any(g.allocatable and g.rank > 0 for g in fn.local_grids().values())
    )
    tweaks = replace(plan.tweaks, save_inner_arrays=bool(offenders))
    return tweaks, offenders
