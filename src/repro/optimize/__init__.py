"""GLAF code-optimization back-end: data layout, loop options, pruning,
and the model-guided advisor (the paper's proposed future work)."""

from .advisor import AdvisorDecision, AdvisorReport, advise, auto_no_reallocation
from .layout import LayoutGroup, aos_field_name, to_aos
from .loops import (
    CollapseDecision,
    collapse_legal,
    decide_collapse,
    interchange,
    interchange_legal,
)
from .plan import OptimizationPlan, Tweaks, make_plan
from .pruning import (
    VARIANTS,
    DirectiveSet,
    Variant,
    describe_variants,
    directives_for_variant,
    variant_by_name,
)

__all__ = [
    "AdvisorDecision", "AdvisorReport", "advise", "auto_no_reallocation",
    "LayoutGroup", "aos_field_name", "to_aos",
    "CollapseDecision", "collapse_legal", "decide_collapse",
    "interchange", "interchange_legal",
    "OptimizationPlan", "Tweaks", "make_plan",
    "VARIANTS", "DirectiveSet", "Variant", "describe_variants",
    "directives_for_variant", "variant_by_name",
]
