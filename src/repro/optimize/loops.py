"""Loop transformation options: collapse and interchange (paper §2.1).

The code-optimization back-end offers *loop collapsing* and *loop
interchange* as code-generation options.  Both are implemented here with
legality checks derived from the dependence analysis:

* **collapse** is legal for a rectangular perfect nest (no inner bound
  depends on an outer index variable).
* **interchange** of two adjacent loops is legal when the nest is
  rectangular in those variables and no dependence has a direction vector
  that interchange would turn from (<, >) into (>, <).  With the constant
  distance vectors our tests produce, that means: no dependence with
  distance (+, -) across the swapped pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.accesses import step_accesses
from ..analysis.dependence import DepKind, test_pair
from ..core.expr import index_vars_used
from ..core.function import GlafFunction
from ..core.step import Range, Step

__all__ = [
    "collapse_legal",
    "interchange_legal",
    "interchange",
    "CollapseDecision",
    "decide_collapse",
]


def _rectangular(step: Step, upto: int | None = None) -> bool:
    outer: set[str] = set()
    ranges = step.ranges if upto is None else step.ranges[:upto]
    for r in ranges:
        for e in (r.start, r.end, r.step):
            if index_vars_used(e) & outer:
                return False
        outer.add(r.var)
    return True


def collapse_legal(step: Step) -> bool:
    """COLLAPSE(n) needs a rectangular perfect nest of depth >= 2."""
    return step.depth >= 2 and _rectangular(step)


@dataclass(frozen=True)
class CollapseDecision:
    depth: int          # number of collapsed loops (1 = no collapse)
    reason: str


def decide_collapse(step: Step, *, enable: bool = True) -> CollapseDecision:
    if not enable:
        return CollapseDecision(1, "collapse disabled by optimization plan")
    if step.depth < 2:
        return CollapseDecision(1, "single loop")
    if not _rectangular(step):
        return CollapseDecision(1, "triangular nest: inner bound uses outer index")
    return CollapseDecision(step.depth, f"rectangular nest of depth {step.depth}")


def _distance_vectors(step: Step) -> list[tuple[int | None, ...]]:
    """Known constant distance vectors of loop-carried dependences."""
    loop_vars = step.index_names()
    accesses = step_accesses(step)
    out: list[tuple[int | None, ...]] = []
    writes = [a for a in accesses if a.is_write]
    for w in writes:
        for other in accesses:
            if other is w or other.grid != w.grid:
                continue
            dep = test_pair(w, other, loop_vars)
            if dep.kind is DepKind.LOOP_CARRIED and dep.distance:
                out.append(dep.distance)
    return out


def interchange_legal(step: Step, i: int, j: int) -> bool:
    """Whether swapping loops at nest positions ``i`` and ``j`` is legal."""
    if not (0 <= i < step.depth and 0 <= j < step.depth) or i == j:
        return False
    if not _rectangular(step):
        return False
    for dist in _distance_vectors(step):
        if len(dist) != step.depth:
            # Distance per subscript dimension need not align with nest
            # depth; be conservative.
            return False
        di, dj = dist[i], dist[j]
        if di is None or dj is None:
            return False
        # Lexicographic positivity must be preserved after swapping.
        vec = list(dist)
        vec[i], vec[j] = vec[j], vec[i]
        for d in vec:
            if d is None:
                return False
            if d > 0:
                break
            if d < 0:
                return False
    return True


def interchange(step: Step, i: int, j: int) -> Step:
    """A copy of ``step`` with loops ``i`` and ``j`` swapped."""
    if not interchange_legal(step, i, j):
        from ..errors import AnalysisError

        raise AnalysisError(
            f"step {step.name!r}: interchange of loops {i} and {j} is not legal"
        )
    ranges: list[Range] = list(step.ranges)
    ranges[i], ranges[j] = ranges[j], ranges[i]
    return Step(
        name=step.name,
        ranges=ranges,
        condition=step.condition,
        stmts=list(step.stmts),
        comment=step.comment,
    )
