"""Artifact integrity: atomic writes and canonical content digests.

A crashed ``repro bench record`` used to leave a truncated
``BENCH_<n>.json`` behind, and nothing downstream could tell a truncated
artifact from a complete one whose numbers happened to parse.  Two
primitives fix both halves:

* :func:`atomic_write_text` / :func:`atomic_write_json` — write to a
  temporary file in the destination directory, ``fsync``, then
  ``os.replace`` onto the target, so readers only ever see the old
  content or the complete new content, never a partial write;
* :func:`content_digest` — sha256 over the :func:`canonical_json`
  serialization (sorted keys, no whitespace), stamped into artifacts and
  verified on load so silent corruption or hand-editing surfaces as a
  typed :class:`repro.errors.BenchArtifactError` instead of being
  ingested.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = [
    "atomic_write_json", "atomic_write_text", "canonical_json",
    "content_digest",
]


def canonical_json(doc: object) -> str:
    """Deterministic JSON serialization (sorted keys, minimal separators)
    — the byte stream :func:`content_digest` hashes, independent of the
    pretty-printing used on disk."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def content_digest(doc: object) -> str:
    """sha256 hex digest of ``doc``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():            # a failure before the replace
            tmp.unlink(missing_ok=True)
    return path


def atomic_write_json(path: str | Path, doc: object, *,
                      indent: int | None = 2) -> Path:
    """Serialize ``doc`` and write it atomically; returns ``path``."""
    return atomic_write_text(path, json.dumps(doc, indent=indent) + "\n")
