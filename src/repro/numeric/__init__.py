"""Numerical-integrity layer: sentinels, tolerance policies, checkpoints.

The paper's correctness methodology is entirely differential — SARB is
validated by wrapper-driven side-by-side comparison against the legacy
subroutines, FUN3D by RMS agreement at 1e-7 on the reference dataset
(§4.1.1, §4.2.1).  This package hardens the numerics around those
comparisons (see ``docs/NUMERICS.md``):

* :mod:`repro.numeric.sentinel` — configurable NaN/Inf/overflow/denormal
  **sentinels** hooked into both interpreters via the same cheap
  module-global pattern the fault-injection hooks use; a trip raises the
  typed :class:`repro.errors.NumericIntegrityError` naming the offending
  step/cell and records a ``numeric:<kind>`` DecisionLog event;
* :mod:`repro.numeric.tolerance` — the **tolerance-policy engine**
  (``abs`` / ``rel`` / ``ulp`` / ``rms``) with explicit NaN/Inf semantics
  that replaces the pipeline's ad-hoc comparisons: NaN never compares
  equal, mismatched infinities fail loudly, and empty arrays raise
  instead of vacuously passing;
* :mod:`repro.numeric.integrity` — atomic ``os.replace`` writes and
  canonical-JSON sha256 content digests for every persisted artifact;
* :mod:`repro.numeric.checkpoint` — the :class:`CheckpointStore` behind
  ``repro bench record --resume`` / ``repro experiments --resume``:
  per-repeat/per-case checkpoints that survive a crash and are verified
  by digest before being ingested;
* :mod:`repro.numeric.retry` — seeded, deterministic retry-with-backoff
  for transiently-failing stages, budget-aware via the
  :class:`repro.robust.ResourceLimits` wall-clock budget.

This ``__init__`` must stay dependency-light (errors + numpy only): the
interpreters (``glafexec``, ``fortranlib``) import it at module load, so
:mod:`repro.observe` is only imported lazily at event-record time.
"""

from .checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from .integrity import (
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    content_digest,
)
from .retry import RetryPolicy, retry_call
from .sentinel import (
    SENTINEL_KINDS,
    SentinelConfig,
    check_value,
    sentinel_config,
    sentinels,
    set_sentinel_config,
)
from .tolerance import (
    POLICIES,
    AbsolutePolicy,
    ComparisonResult,
    RelativePolicy,
    RmsPolicy,
    TolerancePolicy,
    UlpPolicy,
    compare_arrays,
    get_policy,
    max_abs_error,
    snapshot_max_abs_error,
    ulp_distance,
)

__all__ = [
    # sentinels
    "SENTINEL_KINDS", "SentinelConfig", "check_value",
    "sentinel_config", "sentinels", "set_sentinel_config",
    # tolerance policies
    "POLICIES", "TolerancePolicy", "AbsolutePolicy", "RelativePolicy",
    "UlpPolicy", "RmsPolicy", "ComparisonResult", "compare_arrays",
    "get_policy", "max_abs_error", "snapshot_max_abs_error", "ulp_distance",
    # integrity
    "atomic_write_json", "atomic_write_text", "canonical_json",
    "content_digest",
    # checkpoints
    "CHECKPOINT_SCHEMA", "CheckpointStore",
    # retry
    "RetryPolicy", "retry_call",
]
