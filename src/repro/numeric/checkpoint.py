"""Per-repeat / per-case checkpoints behind ``--resume``.

A :class:`CheckpointStore` is a directory of small schema-versioned JSON
files, one per completed unit of work (a benchmark repeat, an experiment
case).  Each checkpoint is written atomically and carries a sha256
digest over its own payload, so a resumed run can tell the difference
between "this repeat finished" and "the process died mid-write":

* ``repro bench record --resume`` consults the store before each repeat
  and skips the ones with valid checkpoints — a killed recording resumes
  where it stopped and produces an artifact with the same stats schema
  as an uninterrupted run;
* ``repro experiments --resume`` does the same per experiment case.

Corrupt or truncated checkpoints are never ingested: :meth:`load` raises
a typed :class:`repro.errors.BenchArtifactError`, or — under
``discard_corrupt=True``, the resume paths' policy — deletes the bad
file, counts it in :attr:`corrupt_discarded`, and reports the work unit
as not done so it is simply re-run.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from ..errors import BenchArtifactError
from .integrity import atomic_write_json, content_digest

__all__ = ["CHECKPOINT_SCHEMA", "CheckpointStore"]

CHECKPOINT_SCHEMA = "repro.checkpoint/v1"

_KEY_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class CheckpointStore:
    """A directory of digest-verified checkpoints, keyed by work unit."""

    def __init__(self, directory: str | Path):
        self.dir = Path(directory)
        self.corrupt_discarded = 0

    def path_for(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise BenchArtifactError(
                f"bad checkpoint key {key!r}: keys must be filename-safe "
                "([A-Za-z0-9._-])")
        return self.dir / f"{key}.ckpt.json"

    def save(self, key: str, payload: dict) -> Path:
        """Persist one completed unit of work atomically."""
        doc = {"schema": CHECKPOINT_SCHEMA, "key": key, "payload": payload}
        doc["sha256"] = content_digest(
            {"schema": doc["schema"], "key": key, "payload": payload})
        self.dir.mkdir(parents=True, exist_ok=True)
        return atomic_write_json(self.path_for(key), doc)

    def load(self, key: str, *, discard_corrupt: bool = False) -> dict | None:
        """The payload saved for ``key``; ``None`` when absent.

        A present-but-invalid checkpoint (truncated JSON, wrong schema,
        digest mismatch) raises :class:`BenchArtifactError` — or, with
        ``discard_corrupt=True``, is deleted and treated as absent so the
        resume path re-runs the work instead of ingesting garbage.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return self._validate(path, key)
        except BenchArtifactError:
            if not discard_corrupt:
                raise
            path.unlink(missing_ok=True)
            self.corrupt_discarded += 1
            return None

    def _validate(self, path: Path, key: str) -> dict:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            raise BenchArtifactError(
                f"{path}: corrupt/truncated checkpoint ({e})") from e
        if not isinstance(doc, dict) or doc.get("schema") != CHECKPOINT_SCHEMA:
            raise BenchArtifactError(
                f"{path}: expected checkpoint schema {CHECKPOINT_SCHEMA!r}, "
                f"found {doc.get('schema') if isinstance(doc, dict) else doc!r}")
        if doc.get("key") != key:
            raise BenchArtifactError(
                f"{path}: checkpoint key mismatch "
                f"({doc.get('key')!r} != {key!r})")
        expected = content_digest({"schema": doc["schema"], "key": doc["key"],
                                   "payload": doc.get("payload")})
        if doc.get("sha256") != expected:
            raise BenchArtifactError(
                f"{path}: checkpoint digest mismatch — file corrupted "
                "or hand-edited")
        return doc["payload"]

    def keys(self) -> list[str]:
        """Keys of every checkpoint file currently in the store."""
        if not self.dir.is_dir():
            return []
        return sorted(p.name[: -len(".ckpt.json")]
                      for p in self.dir.glob("*.ckpt.json"))

    def clear(self) -> None:
        """Delete every checkpoint (and the directory, when it empties)."""
        if not self.dir.is_dir():
            return
        for p in self.dir.glob("*.ckpt.json"):
            p.unlink(missing_ok=True)
        # Also sweep temp files a killed atomic write may have left.
        for p in self.dir.glob(".*.tmp.*"):
            p.unlink(missing_ok=True)
        try:
            self.dir.rmdir()
        except OSError:
            pass                      # non-checkpoint files present: keep it
