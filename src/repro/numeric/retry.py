"""Seeded, deterministic retry-with-backoff for transiently-failing stages.

One preempted repeat or transient :class:`repro.errors.ExecutionError`
used to abort a whole benchmark sweep.  :func:`retry_call` re-runs the
stage under an exponential-backoff schedule that is *deterministic* — the
jitter comes from a seeded generator, so two runs with the same
:class:`RetryPolicy` retry at exactly the same offsets — and
*budget-aware*: handed a :class:`repro.robust.ResourceLimits`, the total
time spent (attempts + sleeps) may not exceed ``max_wall_seconds``, after
which the last error propagates.

Two error classes are deliberately never retried:

* :class:`repro.errors.ResourceLimitError` — the stage already exhausted
  a budget; re-running digs deeper (same contract as the divergence
  guard);
* :class:`repro.errors.NumericIntegrityError` — a sentinel trip is
  deterministic; the NaN will be there on every attempt.

Each give-up or retry records a ``retry`` DecisionLog event, so profiled
runs show the flakiness alongside the stage that exhibited it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError, NumericIntegrityError, ResourceLimitError

__all__ = ["RetryPolicy", "retry_call"]

#: Exceptions retrying can never fix (checked before ``retryable``).
_NEVER_RETRY = (ResourceLimitError, NumericIntegrityError)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for :func:`retry_call`.

    ``retries`` counts re-attempts (0 disables retrying); the delay
    before re-attempt *k* is ``base_delay * multiplier**k``, scaled by a
    seeded jitter factor in ``[1 - jitter, 1 + jitter]``.
    """

    retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.base_delay < 0 or self.multiplier < 1.0:
            raise ValueError("base_delay must be >= 0 and multiplier >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> list[float]:
        """The full deterministic backoff schedule, one entry per retry."""
        rng = np.random.default_rng(self.seed)
        return [
            self.base_delay * self.multiplier ** k
            * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))
            for k in range(self.retries)
        ]


def retry_call(
    fn: Callable[[], Any],
    *,
    policy: RetryPolicy,
    what: str = "stage",
    retryable: tuple[type[BaseException], ...] = (ExecutionError,),
    limits=None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Call ``fn`` under ``policy``; return its result.

    Exceptions outside ``retryable`` (and the never-retry classes)
    propagate immediately.  ``limits.max_wall_seconds``, when given,
    bounds the *total* retry budget: once the deadline passes — or the
    next backoff sleep would pass it — the last error propagates.
    ``sleep``/``clock`` are injectable so tests run without waiting.
    """
    from ..observe import get_decisions

    deadline = None
    if limits is not None and limits.max_wall_seconds is not None:
        deadline = clock() + limits.max_wall_seconds
    schedule = policy.delays()

    def note(verdict: str, attempt: int, reason: str) -> None:
        dl = get_decisions()
        if dl.enabled:
            dl.record("retry", what, attempt, "", verdict, reasons=(reason,))

    for attempt in range(policy.retries + 1):
        try:
            return fn()
        except _NEVER_RETRY:
            raise
        except retryable as e:
            if attempt >= policy.retries:
                note("gave-up", attempt,
                     f"{type(e).__name__} after {attempt + 1} attempt(s): {e}")
                raise
            delay = schedule[attempt]
            if deadline is not None and clock() + delay > deadline:
                note("gave-up", attempt,
                     f"retry budget exhausted ({limits.max_wall_seconds}s); "
                     f"last error: {type(e).__name__}: {e}")
                raise
            note("retried", attempt,
                 f"{type(e).__name__}: {e}; backing off {delay:.3f}s")
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
