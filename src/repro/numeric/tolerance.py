"""The tolerance-policy engine: how two numeric results may differ.

The paper's gates are tolerance checks — max-abs agreement at 1e-9 for
SARB's side-by-side comparison, RMS agreement at 1e-7 absolute for FUN3D
(§4.1.1, §4.2.1) — but naive float math makes those checks lie: ``nan >
tol`` is ``False`` (a NaN on both sides "passes"), ``inf - inf`` is NaN,
and a zero-length array has a vacuous maximum.  Every comparison in the
pipeline now routes through one of four named policies with explicit
special-value semantics:

==========  ==========================================================
``abs``     elementwise ``|got - ref| <= tol``
``rel``     elementwise ``|got - ref| <= tol * max(|got|, |ref|)``
``ulp``     elementwise units-in-the-last-place distance ``<= tol``
``rms``     whole-array ``|rms(got) - rms(ref)| <= tol`` (the paper gate)
==========  ==========================================================

Shared semantics, applied before any policy math:

* a NaN anywhere in either side **fails** the comparison — even NaN vs
  NaN, because agreement-of-garbage is not agreement;
* an infinity compares equal only to an infinity of the same sign at the
  same position; any other pairing fails with an infinite error;
* empty (zero-length) arrays and shape mismatches **raise**
  :class:`repro.errors.NumericIntegrityError` instead of returning a
  vacuous 0.0;
* signed zeros compare equal under every policy (``-0.0 == +0.0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import NumericIntegrityError

__all__ = [
    "POLICIES", "TolerancePolicy", "AbsolutePolicy", "RelativePolicy",
    "UlpPolicy", "RmsPolicy", "ComparisonResult", "compare_arrays",
    "get_policy", "max_abs_error", "snapshot_max_abs_error", "ulp_distance",
]


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of one policy comparison; truthy iff the arrays agree."""

    ok: bool
    policy: str
    tolerance: float
    max_error: float                    # worst metric value observed
    detail: str = ""
    first_bad: tuple[int, ...] | None = None   # 0-based index, when located

    def __bool__(self) -> bool:
        return self.ok


def _as_f64(arr: object, label: str) -> np.ndarray:
    a = np.asarray(arr, dtype=np.float64)
    if a.size == 0:
        raise NumericIntegrityError(
            f"cannot compare empty array ({label}): a zero-length "
            "comparison would pass vacuously")
    return a


def _check_shapes(got: np.ndarray, ref: np.ndarray) -> None:
    if got.shape != ref.shape:
        raise NumericIntegrityError(
            f"cannot compare arrays of different shapes "
            f"{got.shape} vs {ref.shape}")


def _special_values(
    got: np.ndarray, ref: np.ndarray
) -> tuple[np.ndarray, ComparisonResult | None]:
    """Apply the shared NaN/Inf semantics.

    Returns ``(finite_mask, failure)``: ``failure`` is a ready-made failed
    result when a special value sinks the comparison, else ``None``, and
    ``finite_mask`` selects the positions the policy math may compare
    (matching same-sign infinities are excluded — they already agree).
    """
    for label, arr in (("got", got), ("ref", ref)):
        nan = np.isnan(arr)
        if nan.any():
            idx = _first_index(nan, arr.shape)
            return nan, ComparisonResult(
                ok=False, policy="", tolerance=0.0, max_error=float("inf"),
                detail=f"NaN in {label} at index {idx} (NaN never compares "
                       "equal)", first_bad=idx)
    got_inf, ref_inf = np.isinf(got), np.isinf(ref)
    if got_inf.any() or ref_inf.any():
        # Same-sign infinities at the same position agree; anything else
        # (inf vs finite, +inf vs -inf) is an infinite error.
        mismatch = (got_inf != ref_inf) | (got_inf & ref_inf
                                           & (np.sign(got) != np.sign(ref)))
        if mismatch.any():
            idx = _first_index(mismatch, got.shape)
            return mismatch, ComparisonResult(
                ok=False, policy="", tolerance=0.0, max_error=float("inf"),
                detail=f"infinity mismatch at index {idx}: "
                       f"got {got[idx]!r}, ref {ref[idx]!r}", first_bad=idx)
    return ~(got_inf & ref_inf), None


def _first_index(mask: np.ndarray, shape: tuple) -> tuple[int, ...]:
    flat = int(np.argmax(mask))
    return tuple(int(i) for i in np.unravel_index(flat, shape))


@dataclass(frozen=True)
class TolerancePolicy:
    """Base policy: subclasses define ``name`` and the finite-value metric."""

    tolerance: float
    name = "abs"

    def compare(self, got: object, ref: object) -> ComparisonResult:
        g = _as_f64(got, "got")
        r = _as_f64(ref, "ref")
        _check_shapes(g, r)
        finite, failure = _special_values(g, r)
        if failure is not None:
            return ComparisonResult(
                ok=False, policy=self.name, tolerance=self.tolerance,
                max_error=failure.max_error, detail=failure.detail,
                first_bad=failure.first_bad)
        return self._compare_finite(g, r, finite)

    # -- elementwise default; RmsPolicy overrides with a whole-array metric
    def _compare_finite(self, got: np.ndarray, ref: np.ndarray,
                        finite: np.ndarray) -> ComparisonResult:
        err = np.zeros(got.shape, dtype=np.float64)
        err[finite] = self._metric(got[finite], ref[finite])
        worst_idx = _first_index(err == err.max(), err.shape) if err.size else None
        worst = float(err.max()) if err.size else 0.0
        ok = worst <= self.tolerance
        return ComparisonResult(
            ok=ok, policy=self.name, tolerance=self.tolerance,
            max_error=worst,
            detail="" if ok else (
                f"max {self.name} error {worst:.6g} > tolerance "
                f"{self.tolerance:.6g} at index {worst_idx}"),
            first_bad=None if ok else worst_idx)

    def _metric(self, got: np.ndarray, ref: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class AbsolutePolicy(TolerancePolicy):
    """``|got - ref| <= tol`` elementwise."""

    name = "abs"

    def _metric(self, got: np.ndarray, ref: np.ndarray) -> np.ndarray:
        return np.abs(got - ref)


class RelativePolicy(TolerancePolicy):
    """``|got - ref| <= tol * max(|got|, |ref|)`` elementwise.

    The scale-free form: both values exactly zero (including signed
    zeros) yield zero relative error, so 0 vs 0 always agrees.
    """

    name = "rel"

    def _metric(self, got: np.ndarray, ref: np.ndarray) -> np.ndarray:
        scale = np.maximum(np.abs(got), np.abs(ref))
        diff = np.abs(got - ref)
        with np.errstate(invalid="ignore", divide="ignore"):
            rel = np.where(scale > 0.0, diff / np.maximum(scale, 1e-300), 0.0)
        return rel


def ulp_distance(got: object, ref: object) -> np.ndarray:
    """Units-in-the-last-place distance between two float64 arrays.

    Uses the signed-magnitude integer mapping (the IEEE-754 "adjacent
    floats have adjacent integers" trick), so ``+0.0`` and ``-0.0`` are 0
    ULPs apart.  The subtraction runs in exact (object) integer
    arithmetic — int64 would overflow for sign-crossing pairs — and the
    result is returned as float64 (``inf`` when the exact distance
    exceeds the float range).  Inputs must be finite.
    """
    g = np.ascontiguousarray(np.asarray(got, dtype=np.float64))
    r = np.ascontiguousarray(np.asarray(ref, dtype=np.float64))
    gi = g.view(np.int64)
    ri = r.view(np.int64)
    lo = np.int64(-(2 ** 63))
    gm = np.where(gi < 0, lo - gi, gi).astype(object)
    rm = np.where(ri < 0, lo - ri, ri).astype(object)
    dist = np.abs(gm - rm)
    return np.array([float(min(d, 2 ** 63)) for d in dist.ravel()],
                    dtype=np.float64).reshape(g.shape)


class UlpPolicy(TolerancePolicy):
    """ULP distance ``<= tol`` elementwise (``tol`` counts representable
    floats between the values; 0 means bit-identical up to signed zero)."""

    name = "ulp"

    def _metric(self, got: np.ndarray, ref: np.ndarray) -> np.ndarray:
        return ulp_distance(got, ref)


class RmsPolicy(TolerancePolicy):
    """``|rms(got) - rms(ref)| <= tol`` — the paper's FUN3D gate (§4.2.1).

    A whole-array policy: special values fail it outright (a NaN anywhere
    makes the RMS meaningless), and there is no per-element index.
    """

    name = "rms"

    def _compare_finite(self, got: np.ndarray, ref: np.ndarray,
                        finite: np.ndarray) -> ComparisonResult:
        if not finite.all():
            # Matching infinities elementwise still poison an RMS.
            idx = _first_index(~finite, got.shape)
            return ComparisonResult(
                ok=False, policy=self.name, tolerance=self.tolerance,
                max_error=float("inf"),
                detail=f"infinity at index {idx} makes the RMS undefined",
                first_bad=idx)
        rms_g = float(np.sqrt(np.mean(got * got)))
        rms_r = float(np.sqrt(np.mean(ref * ref)))
        err = abs(rms_g - rms_r)
        ok = err <= self.tolerance
        return ComparisonResult(
            ok=ok, policy=self.name, tolerance=self.tolerance, max_error=err,
            detail="" if ok else (
                f"|rms(got)={rms_g:.9g} - rms(ref)={rms_r:.9g}| = {err:.6g} "
                f"> tolerance {self.tolerance:.6g}"))


#: Registry of the named policies (``docs/NUMERICS.md`` documents each).
POLICIES: dict[str, type[TolerancePolicy]] = {
    "abs": AbsolutePolicy,
    "rel": RelativePolicy,
    "ulp": UlpPolicy,
    "rms": RmsPolicy,
}


def get_policy(name: str, tolerance: float) -> TolerancePolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise NumericIntegrityError(
            f"unknown tolerance policy {name!r}; "
            f"registered: {', '.join(sorted(POLICIES))}") from None
    return cls(tolerance)


def compare_arrays(got: object, ref: object,
                   policy: TolerancePolicy) -> ComparisonResult:
    """Compare two arrays under ``policy`` (function-call convenience)."""
    return policy.compare(got, ref)


def max_abs_error(got: object, ref: object) -> float:
    """NaN/Inf-aware worst absolute error between two arrays.

    Returns ``inf`` when a special value sinks the comparison (so
    ``max_abs_error(...) > tol`` fails loudly where the naive
    ``np.max(np.abs(a - b))`` would yield a NaN that fails *open*);
    raises on empty arrays or shape mismatches.
    """
    g = _as_f64(got, "got")
    r = _as_f64(ref, "ref")
    _check_shapes(g, r)
    finite, failure = _special_values(g, r)
    if failure is not None:
        return float("inf")
    if not finite.any():
        return 0.0          # every position was a matching infinity
    return float(np.max(np.abs(g[finite] - r[finite])))


def snapshot_max_abs_error(
    got: Mapping[str, object], ref: Mapping[str, object]
) -> float:
    """Worst :func:`max_abs_error` across a context snapshot.

    The divergence guard and faultcheck compare dictionaries of grids;
    zero-size grids are skipped here (legitimately empty storage, not a
    vacuous comparison — single-array callers still get the raise), and a
    grid present in ``ref`` but missing from ``got`` counts as an
    infinite error.
    """
    worst = 0.0
    for name, ref_arr in ref.items():
        r = np.asarray(ref_arr)
        if r.size == 0:
            continue
        if name not in got:
            return float("inf")
        worst = max(worst, max_abs_error(got[name], r))
        if worst == float("inf"):
            return worst
    return worst
