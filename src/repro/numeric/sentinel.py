"""Numeric sentinels: catch NaN/Inf/overflow/denormal at assignment time.

The differential validation gates can be silently satisfied by broken
numerics — ``nan > tol`` is ``False``, so a NaN that appears on *both*
sides of a comparison looks like agreement.  Sentinels close that hole at
the source: while a :class:`SentinelConfig` is active (the ``--sentinels``
CLI flag, or the :func:`sentinels` context manager), every value assigned
in the GLAF IR interpreter and the FORTRAN-subset runtime is screened,
and the first non-finite / out-of-range value raises a typed
:class:`repro.errors.NumericIntegrityError` naming the offending
function, step, grid, and cell — plus a ``numeric:<kind>`` DecisionLog
event so a profiled run shows the trip in context.

The hook follows the same pattern as :mod:`repro.robust.faults`: the
interpreters test the module-global ``_ACTIVE`` (one attribute load per
assignment when sentinels are off) and only call :func:`check_value` when
a config is installed, so un-sentineled runs pay nothing measurable.

This module must stay dependency-light (errors + numpy only):
:mod:`repro.observe` is imported lazily at trip time.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..errors import NumericIntegrityError

__all__ = [
    "SENTINEL_KINDS", "SentinelConfig", "check_value",
    "sentinel_config", "sentinels", "set_sentinel_config",
]

#: Every condition a sentinel can trip on, in detection-priority order.
SENTINEL_KINDS = ("nan", "inf", "overflow", "denormal")

_TINY = float(np.finfo(np.float64).tiny)


@dataclass(frozen=True)
class SentinelConfig:
    """Which numeric conditions trip a sentinel.

    ``overflow_threshold`` flags finite values whose magnitude exceeds it
    (about to overflow in downstream arithmetic); ``None`` disables the
    check.  ``denormal`` is off by default because gradual underflow is
    legitimate in well-conditioned code — enable it when chasing
    vanishing-magnitude bugs.
    """

    nan: bool = True
    inf: bool = True
    overflow_threshold: float | None = 1e300
    denormal: bool = False

    def classify(self, v: float) -> str | None:
        """The sentinel kind ``v`` trips, or ``None`` if it is clean."""
        if math.isnan(v):
            return "nan" if self.nan else None
        if math.isinf(v):
            return "inf" if self.inf else None
        a = abs(v)
        if (self.overflow_threshold is not None
                and a > self.overflow_threshold):
            return "overflow"
        if self.denormal and 0.0 < a < _TINY:
            return "denormal"
        return None


# ----------------------------------------------------------------------
# the process-wide hook (mirrors repro.robust.faults._ACTIVE)
# ----------------------------------------------------------------------
_ACTIVE: SentinelConfig | None = None


def sentinel_config() -> SentinelConfig | None:
    """The currently-installed config (``None`` almost always)."""
    return _ACTIVE


def set_sentinel_config(config: SentinelConfig | None) -> SentinelConfig | None:
    """Install ``config`` (``None`` disables); returns the previous one."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = config
    return prev


@contextmanager
def sentinels(config: SentinelConfig | None = None) -> Iterator[SentinelConfig]:
    """Enable sentinels for the block (default config when none given)."""
    cfg = config if config is not None else SentinelConfig()
    prev = set_sentinel_config(cfg)
    try:
        yield cfg
    finally:
        set_sentinel_config(prev)


# ----------------------------------------------------------------------
# the check itself
# ----------------------------------------------------------------------
def _first_bad(arr: np.ndarray, cfg: SentinelConfig) -> tuple[str, tuple[int, ...]] | None:
    """(kind, index) of the first offending element, or ``None``."""
    # One vectorized mask per enabled kind, in priority order, so the scan
    # is O(n) numpy work rather than a Python loop per element.
    checks: list[tuple[str, np.ndarray]] = []
    if cfg.nan:
        checks.append(("nan", np.isnan(arr)))
    if cfg.inf:
        checks.append(("inf", np.isinf(arr)))
    if cfg.overflow_threshold is not None:
        with np.errstate(invalid="ignore"):
            checks.append(("overflow",
                           np.isfinite(arr)
                           & (np.abs(arr) > cfg.overflow_threshold)))
    if cfg.denormal:
        with np.errstate(invalid="ignore"):
            a = np.abs(arr)
            checks.append(("denormal", (a > 0.0) & (a < _TINY)))
    for kind, mask in checks:
        if mask.any():
            flat = int(np.argmax(mask))
            return kind, tuple(int(i) for i in np.unravel_index(flat, arr.shape))
    return None


def check_value(
    value: Any,
    *,
    function: str = "",
    step_index: int = -1,
    step_name: str = "",
    grid: str = "",
    cell: tuple[int, ...] | None = None,
    config: SentinelConfig | None = None,
) -> None:
    """Screen one assigned value (scalar or array) against the sentinels.

    ``cell`` is the 1-based destination index when the caller assigned a
    single element; for whole-array values the offending element's own
    index is reported instead.  Non-floating values pass untouched.
    Raises :class:`NumericIntegrityError` and records a
    ``numeric:<kind>`` DecisionLog event on the first trip.
    """
    cfg = config if config is not None else _ACTIVE
    if cfg is None:
        return
    arr = np.asarray(value)
    if not np.issubdtype(arr.dtype, np.floating):
        return
    if arr.ndim == 0:
        kind = cfg.classify(float(arr))
        if kind is None:
            return
        bad_cell, bad_value = cell, float(arr)
    else:
        hit = _first_bad(arr, cfg)
        if hit is None:
            return
        kind, idx0 = hit
        # Report FORTRAN-style 1-based cell indices, like the bounds checks.
        bad_cell = tuple(i + 1 for i in idx0)
        bad_value = float(arr[idx0])
    _trip(kind, bad_value, function=function, step_index=step_index,
          step_name=step_name, grid=grid, cell=bad_cell)


def _trip(kind: str, value: float, *, function: str, step_index: int,
          step_name: str, grid: str, cell: tuple[int, ...] | None) -> None:
    where = []
    if function:
        where.append(function)
    if step_index >= 0:
        where.append(f"step {step_index}"
                     + (f" ({step_name})" if step_name else ""))
    if grid:
        where.append(f"grid {grid!r}")
    if cell is not None:
        where.append(f"cell {tuple(cell)}")
    loc = " in " + ", ".join(where) if where else ""
    detail = f"numeric sentinel: {kind} detected{loc} (value {value!r})"

    from ..observe import get_decisions, get_metrics

    m = get_metrics()
    if m.enabled:
        m.counter(f"numeric.sentinel.{kind}").inc()
    dl = get_decisions()
    if dl.enabled:
        dl.record(
            f"numeric:{kind}", function, step_index, step_name, "detected",
            reasons=(detail,), grid=grid,
            cell=list(cell) if cell is not None else None, value=value,
        )
    raise NumericIntegrityError(
        detail, kind=kind, function=function, step_index=step_index,
        grid=grid, cell=cell,
    )
