"""Failure triage: signatures, buckets, and quarantined reproducers.

Every failure the differential runner observes is reduced to a
:class:`FailureSignature` — ``stage × exception type × rule`` — and
bucketed by its deduplicated key.  The first time a signature appears in
a campaign it is quarantined: a digest-named reproducer bundle (spec +
seed + profile + generated source + diagnostics + the delta-debug
minimized spec/source) is written atomically via
:mod:`repro.numeric.integrity`, so a killed campaign never leaves a
truncated bundle and re-runs converge on byte-identical files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..codegen import count_sloc
from ..numeric import atomic_write_json, content_digest
from .generate import CodebaseSpec
from .profile import FuzzProfile

__all__ = ["FailureSignature", "ItemFailure", "Triage", "BUNDLE_SCHEMA"]

BUNDLE_SCHEMA = "repro.fuzz.reproducer/v1"


@dataclass(frozen=True)
class FailureSignature:
    """The deduplication key of one pipeline failure."""

    stage: str          # generate|analyze|codegen|parse|lint|execute|oracle
    exc_type: str       # exception class, or LintFinding/OracleDivergence
    rule: str = ""      # lint rule id / tolerance policy / refusal class

    @property
    def key(self) -> str:
        return (f"{self.stage}:{self.exc_type}:{self.rule}"
                if self.rule else f"{self.stage}:{self.exc_type}")

    def to_json(self) -> dict[str, str]:
        return {"stage": self.stage, "exc_type": self.exc_type,
                "rule": self.rule}

    @classmethod
    def from_json(cls, doc: dict) -> "FailureSignature":
        return cls(stage=doc["stage"], exc_type=doc["exc_type"],
                   rule=doc.get("rule", ""))


@dataclass(frozen=True)
class ItemFailure:
    """One observed failure, with enough context to reproduce it."""

    signature: FailureSignature
    detail: str
    unit: str = ""                       # kernel the failure surfaced in
    diagnostics: tuple[str, ...] = ()    # rendered DiagnosticBundle lines

    def to_json(self) -> dict[str, object]:
        return {"signature": self.signature.to_json(), "detail": self.detail,
                "unit": self.unit, "diagnostics": list(self.diagnostics)}

    @classmethod
    def from_json(cls, doc: dict) -> "ItemFailure":
        return cls(signature=FailureSignature.from_json(doc["signature"]),
                   detail=doc["detail"], unit=doc.get("unit", ""),
                   diagnostics=tuple(doc.get("diagnostics", ())))


@dataclass
class Triage:
    """Campaign-wide signature buckets plus the quarantine directory."""

    quarantine_dir: Path
    buckets: dict[str, int] = field(default_factory=dict)
    bundles: dict[str, str] = field(default_factory=dict)  # key -> filename

    def __post_init__(self) -> None:
        self.quarantine_dir = Path(self.quarantine_dir)

    def bucket(self, sig: FailureSignature) -> bool:
        """Count ``sig``; True the first time its key is seen."""
        new = sig.key not in self.buckets
        self.buckets[sig.key] = self.buckets.get(sig.key, 0) + 1
        from ..observe import get_decisions

        dl = get_decisions()
        if dl.enabled:
            dl.record("fuzz:signature", "campaign", 0, sig.key,
                      "new" if new else "duplicate")
        return new

    def bundle_name(self, sig: FailureSignature, spec: CodebaseSpec,
                    faults: tuple[str, ...] = ()) -> str:
        """Deterministic bundle filename for this (signature, reproducer).

        The digest covers the signature, the *original* failing spec, and
        any injected fault plan — everything that identifies the
        reproduction — so interrupted and resumed campaigns converge on
        the same file name before any shrinking has run.
        """
        digest = content_digest({
            "schema": BUNDLE_SCHEMA,
            "signature": sig.to_json(),
            "spec": spec.to_json(),
            "faults": list(faults),
        })
        return f"fuzz-{digest[:12]}.json"

    def quarantine(
        self,
        sig: FailureSignature,
        failure: ItemFailure,
        spec: CodebaseSpec,
        profile: FuzzProfile,
        source: str,
        *,
        faults: tuple[str, ...] = (),
        minimized_spec: CodebaseSpec | None = None,
        minimized_source: str = "",
        shrink_probes: int = 0,
    ) -> Path:
        """Write the reproducer bundle atomically; returns its path."""
        name = self.bundle_name(sig, spec, faults)
        path = self.quarantine_dir / name
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        min_spec = minimized_spec or spec
        min_source = minimized_source or source
        doc = {
            "schema": BUNDLE_SCHEMA,
            "signature": sig.to_json(),
            "seed": spec.seed,
            "index": spec.index,
            "profile": profile.to_json(),
            "faults": list(faults),
            "failure": failure.to_json(),
            "spec": spec.to_json(),
            "source": source,
            "minimized": {
                "spec": min_spec.to_json(),
                "source": min_source,
                # Paper Table-1 convention: blanks and comments excluded,
                # !$OMP directives counted (codegen.count_sloc).
                "lines": count_sloc(min_source),
                "total_lines": len(min_source.splitlines()),
                "shrink_probes": shrink_probes,
            },
        }
        atomic_write_json(path, doc)
        self.bundles[sig.key] = name
        from ..observe import get_decisions, get_metrics

        m = get_metrics()
        if m.enabled:
            m.counter("fuzz.quarantined").inc()
        dl = get_decisions()
        if dl.enabled:
            dl.record("fuzz:quarantine", "campaign", spec.index, sig.key,
                      "written", reasons=(failure.detail,), bundle=name)
        return path
