"""Shared mutation vocabulary for source-level fuzzing.

The parser property tests (``tests/unit/test_parser_fuzz.py``) and the
codebase generator draw from the same construct vocabulary so the two
cannot drift: what we mutate is what we generate.  The pure pieces live
here — the corpus loader, the noise alphabet, the mutation kinds, and
:func:`apply_mutation`, which performs one mutation as a plain function
of its arguments.  :func:`mutated_source` wraps them into a hypothesis
strategy; hypothesis itself is imported lazily so this module (and the
``repro fuzz`` pipeline built on it) works on an interpreter without the
package installed.
"""

from __future__ import annotations

__all__ = [
    "NOISE_ALPHABET", "MUTATION_KINDS", "parser_corpus",
    "apply_mutation", "mutated_source",
]

#: Characters the mutator splices in: operators the grammar knows, ones
#: it does not, digits, names, and whitespace — enough to hit lexer
#: errors, parser errors, and accidental re-parses alike.
NOISE_ALPHABET = "()*/+-=<>,:%;.!&?@#$[]{}'\"_x0 19\n\t"

#: The source-level damage operators.
MUTATION_KINDS = ("replace", "insert", "delete", "drop_line", "dup_line",
                  "truncate")


def parser_corpus() -> list[str]:
    """The two case studies' legacy sources — the seed texts to mutate."""
    from ..fun3d import full_legacy_source as fun3d_source
    from ..fun3d.mesh import make_mesh
    from ..sarb import full_legacy_source as sarb_source

    sources = list(sarb_source().values())
    sources += list(fun3d_source(make_mesh(n_points=12, seed=3)).values())
    return sources


def apply_mutation(src: str, kind: str, pos: int, *, payload: str = "",
                   span: int = 1) -> str:
    """Apply one mutation of ``kind`` to ``src`` at ``pos``.

    ``pos`` indexes characters (or lines, for the line-level kinds) and
    is clamped into range, so any non-negative position is valid;
    ``payload`` is the spliced-in noise for replace/insert and ``span``
    the width of a delete.  Pure: same arguments, same mutant.
    """
    if kind not in MUTATION_KINDS:
        raise ValueError(f"unknown mutation kind {kind!r}; "
                         f"known: {', '.join(MUTATION_KINDS)}")
    if not src:
        return src
    if kind in ("drop_line", "dup_line"):
        lines = src.splitlines(keepends=True)
        i = min(pos, len(lines) - 1)
        if kind == "drop_line":
            del lines[i]
        else:
            lines.insert(i, lines[i])
        return "".join(lines)
    pos = min(pos, len(src) - 1)
    if kind == "replace":
        return src[:pos] + payload + src[pos + 1:]
    if kind == "insert":
        return src[:pos] + payload + src[pos:]
    if kind == "delete":
        return src[:pos] + src[pos + min(span, 40):]
    return src[:pos]            # truncate


def mutated_source():
    """Hypothesis strategy: a corpus source with 1–4 seeded mutations.

    Built on :data:`MUTATION_KINDS` / :data:`NOISE_ALPHABET` /
    :func:`apply_mutation` so the property tests and the generator share
    one vocabulary.  Requires hypothesis (imported here, not at module
    scope).
    """
    from hypothesis import strategies as st

    corpus = parser_corpus()
    noise = st.text(alphabet=NOISE_ALPHABET, min_size=1, max_size=12)

    @st.composite
    def _strategy(draw) -> str:
        src = draw(st.sampled_from(corpus))
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            if not src:
                break
            kind = draw(st.sampled_from(MUTATION_KINDS))
            if kind in ("drop_line", "dup_line"):
                pos = draw(st.integers(
                    min_value=0,
                    max_value=max(0, len(src.splitlines()) - 1)))
                src = apply_mutation(src, kind, pos)
                continue
            pos = draw(st.integers(min_value=0, max_value=len(src) - 1))
            src = apply_mutation(
                src, kind, pos,
                payload=(draw(noise) if kind in ("replace", "insert")
                         else ""),
                span=(draw(st.integers(1, 40)) if kind == "delete" else 1))
        return src

    return _strategy()
