"""Crash-resilient differential runner and campaign driver.

:func:`run_item` drives one generated codebase through the whole
pipeline — build → analyze/optimize → codegen → parse round-trip → lint
→ differential execution — and converts every failure into a bucketable
:class:`~repro.fuzz.triage.ItemFailure` instead of crashing.  Isolation
comes from per-item budgets (:class:`repro.robust.watchdog.ResourceLimits`
bounds loop iterations and wall clock inside both executors), seeded
:func:`repro.numeric.retry_call` re-attempts on transient
``ExecutionError``\\ s, and NaN/Inf screening via the numeric sentinels.

The **differential oracle**: every kernel runs under the reference
interpreter and the vectorized array executor on independent, identically
seeded inputs; the inout grids and every context grid must agree under
the profile's :mod:`repro.numeric.tolerance` policy, and the emitted
``!$OMP`` text must lint clean.  Divergence, lint findings, typed
pipeline errors, and budget trips all become failure signatures.

:func:`run_campaign` runs N seeded items with checkpointed resume
(:class:`repro.numeric.CheckpointStore`), bucketing failures through
:class:`~repro.fuzz.triage.Triage`, delta-debug minimizing the first
instance of each new signature, and recording ``fuzz:*`` decisions and
metrics for profiled runs (docs/FUZZING.md).
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    DiagnosticBundle,
    ExecutionError,
    GlafError,
    NumericIntegrityError,
    ResourceLimitError,
)
from ..numeric import (
    CheckpointStore,
    RetryPolicy,
    content_digest,
    get_policy,
    retry_call,
    sentinels,
)
from ..robust import FaultPlan, FaultSpec, fault_injection
from ..robust.watchdog import ResourceLimits
from .generate import CodebaseSpec, build_program, generate_spec, item_rng
from .profile import FuzzProfile, get_profile
from .shrink import shrink_spec
from .triage import FailureSignature, ItemFailure, Triage

__all__ = [
    "ItemResult", "CampaignSummary", "run_item", "run_campaign",
    "SUMMARY_SCHEMA", "DEFAULT_CHECKPOINT_DIR", "DEFAULT_QUARANTINE_DIR",
]

SUMMARY_SCHEMA = "repro.fuzz.campaign/v1"
DEFAULT_CHECKPOINT_DIR = ".repro_fuzz.ckpt"
DEFAULT_QUARANTINE_DIR = "fuzz_quarantine"


@dataclass
class ItemResult:
    """Outcome of one generated codebase's end-to-end run."""

    index: int
    spec: CodebaseSpec
    failures: list[ItemFailure] = field(default_factory=list)
    source: str = ""                 # generated FORTRAN (when codegen ran)
    units_run: int = 0
    fallbacks: int = 0               # vectorized-executor demotions seen
    # static-vs-runtime crosscheck tallies (crosscheck runs only):
    # units whose every subscript the bounds checker proved in-bounds,
    # and how many of those claims the runtime contradicted.
    claims_proven: int = 0
    claims_refuted: int = 0

    @property
    def status(self) -> str:
        return "failed" if self.failures else "clean"

    def to_json(self) -> dict[str, object]:
        return {
            "index": self.index,
            "spec": self.spec.to_json(),
            "status": self.status,
            "failures": [f.to_json() for f in self.failures],
            "source": self.source,
            "units_run": self.units_run,
            "fallbacks": self.fallbacks,
            "claims_proven": self.claims_proven,
            "claims_refuted": self.claims_refuted,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ItemResult":
        return cls(
            index=doc["index"],
            spec=CodebaseSpec.from_json(doc["spec"]),
            failures=[ItemFailure.from_json(f) for f in doc["failures"]],
            source=doc.get("source", ""),
            units_run=doc.get("units_run", 0),
            fallbacks=doc.get("fallbacks", 0),
            claims_proven=doc.get("claims_proven", 0),
            claims_refuted=doc.get("claims_refuted", 0),
        )


def _unit_args(spec: CodebaseSpec, unit) -> list:
    """Seeded inputs for one kernel: same (seed, index, unit) ⇒ same data.

    The unit's ordinal comes from its name (``k3`` → 3), so inputs are
    stable while the shrinker drops sibling units around it.
    """
    ordinal = int(unit.name.lstrip("k") or 0)
    rng = np.random.default_rng(
        np.random.SeedSequence((spec.seed, spec.index, ordinal)))
    n = spec.extent
    args = [n, rng.standard_normal(n), np.zeros(n)]
    if unit.needs_idx:
        args.append(rng.permutation(n).astype(np.int64) + 1)
    return args


def _execute_unit(program, spec: CodebaseSpec, unit,
                  profile: FuzzProfile) -> tuple[list[ItemFailure], int]:
    """Differentially execute one kernel; returns (failures, fallbacks)."""
    from ..glafexec import get_executor

    limits = ResourceLimits(
        max_loop_iterations=profile.max_loop_iterations,
        max_wall_seconds=profile.max_wall_seconds)
    policy = RetryPolicy(retries=profile.retries,
                         seed=spec.seed * 1000 + spec.index)
    sizes = {"n": spec.extent}
    runs = {}
    for engine in ("interpreter", "vectorized"):
        args = _unit_args(spec, unit)

        def attempt(engine=engine, args=args):
            # Fresh output storage per attempt, so a retried run never
            # accumulates on top of a half-written previous one.
            retry_args = [a.copy() if isinstance(a, np.ndarray) else a
                          for a in args]
            run = get_executor(engine, limits=limits).run(
                program, unit.name, retry_args, sizes=sizes)
            return run, retry_args

        try:
            runs[engine] = retry_call(
                attempt, policy=policy, limits=limits,
                what=f"fuzz:{unit.name}:{engine}")
        except (ResourceLimitError, NumericIntegrityError, GlafError) as e:
            return [ItemFailure(
                signature=FailureSignature("execute", type(e).__name__,
                                           rule=engine),
                detail=f"{unit.name} under {engine}: {e}",
                unit=unit.name)], 0

    (ref_run, ref_args) = runs["interpreter"]
    (vec_run, vec_args) = runs["vectorized"]
    failures: list[ItemFailure] = []
    tol = get_policy(profile.policy, profile.tolerance)
    pairs = [("y", ref_args[2], vec_args[2])]
    ref_snap = ref_run.context.snapshot()
    for name in sorted(ref_snap):
        got = vec_run.context.get(name)
        if got.size == 0 and ref_snap[name].size == 0:
            continue
        pairs.append((name, got, ref_snap[name]))
    for name, got, want in pairs:
        cmp = tol.compare(got, want)
        if not cmp.ok:
            failures.append(ItemFailure(
                signature=FailureSignature("oracle", "OracleDivergence",
                                           rule=profile.policy),
                detail=(f"{unit.name}: grid {name!r} diverges between "
                        f"interpreter and vectorized ({cmp.detail})"),
                unit=unit.name))
    return failures, len(vec_run.fallbacks)


def _static_bounds_claims(source: str) -> dict[str, object]:
    """Per-unit range summaries of the generated source (lowercase keys).

    A unit whose every subscript is *proven* in-bounds (``possible == 0``
    and ``unknown == 0`` with at least one classified subscript) carries a
    refutable static claim: any runtime out-of-bounds trip in that unit
    means the bounds proof was unsound.
    """
    from ..fortranlib.parser import parse_source
    from ..lint.dataflow import analyze_batch_ranges

    parsed = {"<fuzz>": parse_source(source)}
    return {ur.unit.lower(): ur.summary
            for ur in analyze_batch_ranges(parsed)}


def run_item(spec: CodebaseSpec, profile: FuzzProfile | str, *,
             faults: tuple[FaultSpec, ...] = (),
             fault_seed: int = 0, crosscheck: bool = False) -> ItemResult:
    """Drive one spec end-to-end; never raises for pipeline failures.

    Typed :class:`GlafError`\\ s, lint findings, oracle divergence, and
    budget/sentinel trips become :class:`ItemFailure`\\ s; only raw
    non-framework exceptions (genuine harness bugs) still propagate.
    ``faults`` enters a fresh seeded fault-injection plan for just this
    item, so one-shot faults fire identically on every reproduction.
    With ``crosscheck``, the static bounds checker's proven-in-bounds
    claims are compared against runtime out-of-bounds trips — the fuzzer
    acting as a soundness oracle for the analyzer.
    """
    prof = get_profile(profile) if isinstance(profile, str) else profile
    res = ItemResult(index=spec.index, spec=spec)

    with ExitStack() as stack:
        if faults:
            stack.enter_context(
                fault_injection(FaultPlan(list(faults), seed=fault_seed)))
        stack.enter_context(sentinels())

        try:
            program = build_program(spec)
        except GlafError as e:
            res.failures.append(ItemFailure(
                FailureSignature("generate", type(e).__name__),
                detail=str(e)))
            return res
        try:
            from ..optimize import make_plan

            plan = make_plan(program, prof.variant)
        except GlafError as e:
            res.failures.append(ItemFailure(
                FailureSignature("analyze", type(e).__name__),
                detail=str(e)))
            return res
        try:
            from ..codegen import generate_fortran_module

            res.source = generate_fortran_module(plan)
        except GlafError as e:
            res.failures.append(ItemFailure(
                FailureSignature("codegen", type(e).__name__),
                detail=str(e)))
            return res
        try:
            from ..fortranlib.parser import parse_source

            parse_source(res.source, recover=True)
        except DiagnosticBundle as e:
            res.failures.append(ItemFailure(
                FailureSignature("parse", type(e).__name__),
                detail=str(e),
                diagnostics=tuple(str(d) for d in e.diagnostics)))
        except GlafError as e:
            res.failures.append(ItemFailure(
                FailureSignature("parse", type(e).__name__),
                detail=str(e)))
        try:
            from ..lint import lint_text

            report = lint_text(res.source, plan=plan,
                               label=f"fuzz item {spec.index}")
            for finding in report.findings:
                res.failures.append(ItemFailure(
                    FailureSignature("lint", "LintFinding",
                                     rule=finding.rule),
                    detail=f"{finding.unit}:{finding.line}: "
                           f"{finding.message}",
                    unit=finding.unit))
        except GlafError as e:
            res.failures.append(ItemFailure(
                FailureSignature("lint", type(e).__name__),
                detail=str(e)))
        claims: dict[str, object] = {}
        if crosscheck and res.source:
            try:
                claims = _static_bounds_claims(res.source)
            except GlafError as e:
                res.failures.append(ItemFailure(
                    FailureSignature("crosscheck", type(e).__name__),
                    detail=str(e)))
        for unit in spec.units:
            failures, fallbacks = _execute_unit(program, spec, unit, prof)
            res.failures.extend(failures)
            res.fallbacks += fallbacks
            res.units_run += 1
            claim = claims.get(unit.name.lower())
            if (claim is not None and claim.possible == 0
                    and claim.unknown == 0 and claim.proven > 0):
                res.claims_proven += 1
                for f in failures:
                    if (f.signature.stage == "execute"
                            and "out of bounds" in f.detail):
                        res.claims_refuted += 1
                        res.failures.append(ItemFailure(
                            FailureSignature("crosscheck",
                                             "UnsoundBoundsProof",
                                             rule="bounds"),
                            detail=(f"{unit.name}: every subscript was "
                                    "statically proven in-bounds, yet the "
                                    f"runtime tripped: {f.detail}"),
                            unit=unit.name))
    return res


@dataclass
class CampaignSummary:
    """Machine-readable outcome of one fuzz campaign."""

    seed: int
    count: int
    profile: FuzzProfile
    items: list[ItemResult] = field(default_factory=list)
    resumed: int = 0
    quarantined: list[dict] = field(default_factory=list)
    buckets: dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> int:
        return sum(1 for it in self.items if it.failures)

    @property
    def clean(self) -> int:
        return len(self.items) - self.failed

    def to_json(self) -> dict[str, object]:
        """Summary document — deliberately timing-free, so two runs of
        the same campaign are byte-identical and resume is digest-equal."""
        doc = {
            "schema": SUMMARY_SCHEMA,
            "seed": self.seed,
            "count": self.count,
            "profile": self.profile.to_json(),
            "stats": {
                "clean": self.clean,
                "failed": self.failed,
                "units_run": sum(it.units_run for it in self.items),
                "fallbacks": sum(it.fallbacks for it in self.items),
                "signatures": len(self.buckets),
                "claims_proven": sum(it.claims_proven for it in self.items),
                "claims_refuted": sum(it.claims_refuted
                                      for it in self.items),
            },
            "buckets": {k: self.buckets[k] for k in sorted(self.buckets)},
            "quarantined": self.quarantined,
            "items": [
                {"index": it.index, "status": it.status,
                 "failures": [f.signature.key for f in it.failures]}
                for it in self.items
            ],
        }
        doc["content_sha256"] = content_digest(doc)
        return doc


def run_campaign(
    seed: int,
    count: int,
    profile: FuzzProfile | str = "small",
    *,
    resume: bool = False,
    checkpoint_dir: str | None = None,
    quarantine_dir: str | None = None,
    faults: tuple[FaultSpec, ...] = (),
    fault_seed: int = 0,
    crosscheck: bool = False,
) -> CampaignSummary:
    """Run ``count`` seeded items with checkpointed resume and triage."""
    from ..observe import get_decisions, get_metrics, get_tracer

    prof = get_profile(profile) if isinstance(profile, str) else profile
    store = CheckpointStore(checkpoint_dir or DEFAULT_CHECKPOINT_DIR)
    if not resume:
        store.clear()          # stale checkpoints must not skip fresh work
    triage = Triage(quarantine_dir or DEFAULT_QUARANTINE_DIR)
    fault_keys = tuple(f"{f.site}:{f.kind}" for f in faults)
    summary = CampaignSummary(seed=seed, count=count, profile=prof)
    dl, m = get_decisions(), get_metrics()
    tracer = get_tracer()

    for index in range(count):
        key = f"item-{index:05d}"
        loaded = (store.load(key, discard_corrupt=True) if resume else None)
        if loaded is not None:
            item = ItemResult.from_json(loaded["item"])
            summary.resumed += 1
        else:
            spec = generate_spec(seed, prof, index)
            with tracer.span("fuzz.item", index=index):
                item = run_item(spec, prof, faults=faults,
                                fault_seed=fault_seed,
                                crosscheck=crosscheck)
            store.save(key, {"item": item.to_json()})
        summary.items.append(item)
        if m.enabled:
            m.counter("fuzz.items").inc()
            if item.failures:
                m.counter("fuzz.items.failed").inc()
        if dl.enabled:
            dl.record("fuzz:item", "campaign", index, key, item.status,
                      reasons=tuple(f.signature.key for f in item.failures))
        for failure in item.failures:
            sig = failure.signature
            if not triage.bucket(sig):
                continue
            bundle = triage.quarantine_dir / triage.bundle_name(
                sig, item.spec, fault_keys)
            if not bundle.exists():
                # First sighting of this signature: minimize and bundle.
                def reproduces(cand: CodebaseSpec,
                               _k: str = sig.key) -> bool:
                    rerun = run_item(cand, prof, faults=faults,
                                     fault_seed=fault_seed,
                                     crosscheck=crosscheck)
                    return any(f.signature.key == _k
                               for f in rerun.failures)

                with tracer.span("fuzz.shrink", signature=sig.key):
                    shrunk = shrink_spec(item.spec, reproduces)
                    min_run = run_item(shrunk.spec, prof, faults=faults,
                                       fault_seed=fault_seed,
                                       crosscheck=crosscheck)
                triage.quarantine(
                    sig, failure, item.spec, prof, item.source,
                    faults=fault_keys,
                    minimized_spec=shrunk.spec,
                    minimized_source=min_run.source,
                    shrink_probes=shrunk.probes)
            else:
                triage.bundles[sig.key] = bundle.name
        if m.enabled:
            m.counter("fuzz.units").inc(item.units_run)

    summary.buckets = dict(triage.buckets)
    summary.quarantined = [
        {"signature": k, "bundle": triage.bundles[k]}
        for k in sorted(triage.bundles)
    ]
    if dl.enabled:
        dl.record("fuzz:campaign", "campaign", count, f"seed-{seed}",
                  "failed" if summary.failed else "clean",
                  items=count, failed=summary.failed,
                  signatures=len(summary.buckets))
    store.clear()              # full campaign done: checkpoints are spent
    return summary
