"""Campaign profiles: how big and how adventurous one fuzz item is.

A :class:`FuzzProfile` bounds everything the generator and the runner
draw from a seed — number of kernel units, steps per unit, the runtime
extent bound to the symbolic size ``n``, which construct kinds may be
drawn, and the per-item resource budgets the differential runner
enforces.  Two profiles are registered: ``small`` keeps a CI leg under a
minute; ``full`` is the nightly setting that exercises every construct
the pipeline claims to handle (docs/FUZZING.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError

__all__ = ["FuzzProfile", "PROFILES", "get_profile",
           "STEP_KINDS", "STRUCTURE_KINDS"]

#: Loop/step construct kinds the generator knows how to emit.  Each one
#: maps to a loop class the parallelizer and the vectorized lifter rule
#: on (docs/FUZZING.md has the rendered shape of every kind).
STEP_KINDS = (
    "pointwise",            # y(i) = a*x(i) + c                 (liftable)
    "stencil",              # y(i) = x(i) - x(i-1), i from 2    (liftable)
    "masked",               # IF/ELSE writing y(i) per lane     (liftable)
    "reduction-sum",        # y(1) = y(1) + x(i)**2             (liftable)
    "reduction-max",        # y(1) = MAX(y(1), x(i))            (liftable)
    "masked-multi-acc",     # IF branches feeding two accumulators
    "loop-carried",         # y(i) = f(y(i-1))                  (fallback)
    "indirect-write",       # y(idx(i)) = x(i)                  (fallback)
    "triangular",           # j-bound depends on i              (fallback)
    "early-exit",           # EXIT inside the nest              (fallback)
    "early-return",         # RETURN inside the nest            (fallback)
    "call-helper",          # y(i) = helper(x(i))               (fallback)
)

#: Storage/structure kinds a generated codebase may mix in: where grids
#: live, and whether a unit drives a helper SUBROUTINE through CALL.
STRUCTURE_KINDS = (
    "common-block",         # grids grouped in COMMON /blk/ (§3.2)
    "module-scope",         # module-level state (§3.3)
    "derived-type",         # parent%element access (§3.5)
    "call-subroutine",      # CALL scale_y(n, y) trailer step (§3.4)
)


@dataclass(frozen=True)
class FuzzProfile:
    """Bounds for one generated codebase and its differential run."""

    name: str
    units: tuple[int, int] = (2, 4)         # kernel subprograms per codebase
    steps: tuple[int, int] = (1, 3)         # loop steps per kernel
    extent: tuple[int, int] = (8, 24)       # runtime size bound to 'n'
    step_kinds: tuple[str, ...] = STEP_KINDS
    structure_kinds: tuple[str, ...] = STRUCTURE_KINDS
    max_loop_iterations: int = 2_000_000    # per-run interpreter budget
    max_wall_seconds: float = 30.0          # per-run wall-clock budget
    retries: int = 1                        # seeded numeric.retry re-attempts
    tolerance: float = 1e-9                 # differential-oracle threshold
    policy: str = "abs"                     # numeric.tolerance policy name
    variant: str = "GLAF-parallel v0"       # pruning variant to plan/lint

    def __post_init__(self) -> None:
        for lo, hi, what in ((*self.units, "units"), (*self.steps, "steps"),
                             (*self.extent, "extent")):
            if not (1 <= lo <= hi):
                raise ValidationError(
                    f"profile {self.name!r}: bad {what} range ({lo}, {hi})")
        unknown = set(self.step_kinds) - set(STEP_KINDS)
        unknown |= set(self.structure_kinds) - set(STRUCTURE_KINDS)
        if unknown:
            raise ValidationError(
                f"profile {self.name!r}: unknown construct kind(s) "
                f"{', '.join(sorted(unknown))}")

    def to_json(self) -> dict[str, object]:
        return {
            "name": self.name,
            "units": list(self.units),
            "steps": list(self.steps),
            "extent": list(self.extent),
            "step_kinds": list(self.step_kinds),
            "structure_kinds": list(self.structure_kinds),
            "max_loop_iterations": self.max_loop_iterations,
            "max_wall_seconds": self.max_wall_seconds,
            "retries": self.retries,
            "tolerance": self.tolerance,
            "policy": self.policy,
            "variant": self.variant,
        }


PROFILES: dict[str, FuzzProfile] = {
    "small": FuzzProfile(
        name="small",
        units=(1, 3),
        steps=(1, 2),
        extent=(6, 16),
        max_wall_seconds=20.0,
    ),
    "full": FuzzProfile(
        name="full",
        units=(2, 6),
        steps=(1, 4),
        extent=(16, 64),
        max_loop_iterations=20_000_000,
        max_wall_seconds=120.0,
        retries=2,
    ),
}


def get_profile(name: str) -> FuzzProfile:
    """Look up a registered profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValidationError(
            f"unknown fuzz profile {name!r}; "
            f"registered: {', '.join(sorted(PROFILES))}") from None
