"""Seeded legacy-codebase generator.

:func:`generate_codebase` draws a :class:`CodebaseSpec` from a seeded rng
and renders it into a validated :class:`~repro.core.GlafProgram` through
the same :class:`~repro.core.GlafBuilder` API the case studies use.  The
split matters for triage: the *spec* is a small JSON-serializable value
object, :func:`build_program` is a pure function of it, and the shrinker
(:mod:`repro.fuzz.shrink`) minimizes failing specs — never programs —
so every shrink candidate re-renders through the exact production path.

Generated codebases mix the constructs the pipeline claims to handle:
kernels covering every loop class the parallelizer rules on (pointwise,
stencils, masked lanes, sum/MAX reductions, masked multi-accumulator
reductions, loop-carried chains, indirect writes, triangular bounds,
EXIT/RETURN control flow, interior function calls), plus the §3 legacy
integration surfaces (COMMON blocks, module-scope state, derived-TYPE
elements, SUBROUTINE call sites).  Same seed + same profile ⇒ the same
spec, program, and FORTRAN text, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import GlafBuilder, GlafProgram, I, T_INT, T_REAL8, T_VOID, lib, ref
from ..core.builder import StepBuilder as SB
from ..core.expr import FuncCall
from .profile import FuzzProfile, get_profile

__all__ = [
    "StepSpec", "UnitSpec", "CodebaseSpec", "FuzzCodebase",
    "generate_spec", "build_program", "generate_codebase", "item_rng",
]

#: Module that "hosts" the legacy state generated codebases integrate
#: with (§3.1/§3.5 surfaces: USE-imported grids, TYPE parent variables).
HOST_MODULE = "fuzz_host"


def item_rng(seed: int, index: int) -> np.random.Generator:
    """The campaign's per-item generator: one stream per (seed, item)."""
    return np.random.default_rng(np.random.SeedSequence((seed, index)))


@dataclass(frozen=True)
class StepSpec:
    """One loop step: a construct kind plus its drawn constants."""

    kind: str
    coeff: float = 1.0          # multiplicative constant in the formula
    threshold: float = 0.0      # mask / EXIT / RETURN threshold

    def to_json(self) -> dict[str, object]:
        return {"kind": self.kind, "coeff": self.coeff,
                "threshold": self.threshold}

    @classmethod
    def from_json(cls, doc: dict) -> "StepSpec":
        return cls(kind=doc["kind"], coeff=doc["coeff"],
                   threshold=doc["threshold"])


@dataclass(frozen=True)
class UnitSpec:
    """One kernel SUBROUTINE (plus any helper subprograms it drives)."""

    name: str
    steps: tuple[StepSpec, ...]
    structures: tuple[str, ...] = ()

    @property
    def needs_idx(self) -> bool:
        return any(s.kind == "indirect-write" for s in self.steps)

    def to_json(self) -> dict[str, object]:
        return {"name": self.name,
                "steps": [s.to_json() for s in self.steps],
                "structures": list(self.structures)}

    @classmethod
    def from_json(cls, doc: dict) -> "UnitSpec":
        return cls(name=doc["name"],
                   steps=tuple(StepSpec.from_json(s) for s in doc["steps"]),
                   structures=tuple(doc["structures"]))


@dataclass(frozen=True)
class CodebaseSpec:
    """Everything needed to re-render one generated codebase."""

    seed: int
    index: int                  # campaign item index (second rng word)
    profile: str
    extent: int                 # runtime size bound to the symbolic 'n'
    units: tuple[UnitSpec, ...]

    def to_json(self) -> dict[str, object]:
        return {"seed": self.seed, "index": self.index,
                "profile": self.profile, "extent": self.extent,
                "units": [u.to_json() for u in self.units]}

    @classmethod
    def from_json(cls, doc: dict) -> "CodebaseSpec":
        return cls(seed=doc["seed"], index=doc["index"],
                   profile=doc["profile"], extent=doc["extent"],
                   units=tuple(UnitSpec.from_json(u) for u in doc["units"]))


@dataclass(frozen=True)
class FuzzCodebase:
    """A rendered spec: the program plus its runtime size binding."""

    spec: CodebaseSpec
    program: GlafProgram

    @property
    def sizes(self) -> dict[str, int]:
        return {"n": self.spec.extent}

    @property
    def entries(self) -> tuple[UnitSpec, ...]:
        return self.spec.units


# ----------------------------------------------------------------------
# drawing a spec
# ----------------------------------------------------------------------
def generate_spec(seed: int, profile: FuzzProfile | str,
                  index: int = 0) -> CodebaseSpec:
    """Draw one codebase spec from the (seed, index) stream."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    rng = item_rng(seed, index)
    extent = int(rng.integers(prof.extent[0], prof.extent[1] + 1))
    n_units = int(rng.integers(prof.units[0], prof.units[1] + 1))
    units = []
    for u in range(n_units):
        n_steps = int(rng.integers(prof.steps[0], prof.steps[1] + 1))
        steps = tuple(
            StepSpec(
                kind=str(rng.choice(prof.step_kinds)),
                coeff=round(float(rng.uniform(0.25, 2.0)), 6),
                threshold=round(float(rng.uniform(-0.5, 1.0)), 6),
            )
            for _ in range(n_steps)
        )
        structures = tuple(
            kind for kind in prof.structure_kinds if rng.random() < 0.35)
        units.append(UnitSpec(name=f"k{u + 1}", steps=steps,
                              structures=structures))
    return CodebaseSpec(seed=seed, index=index, profile=prof.name,
                        extent=extent, units=tuple(units))


# ----------------------------------------------------------------------
# rendering a spec into a program
# ----------------------------------------------------------------------
def _emit_step(f, unit: UnitSpec, sp: StepSpec, seq: int) -> None:
    i = I("i")
    c, t = sp.coeff, sp.threshold
    s = f.step(f"{sp.kind.replace('-', '_')}_{seq}")
    if sp.kind == "pointwise":
        s.foreach(i=(1, "n"))
        s.formula(ref("y", i), ref("x", i) * c + t)
    elif sp.kind == "stencil":
        s.foreach(i=(2, "n"))
        s.formula(ref("y", i), ref("x", i) - ref("x", i - 1) * c)
    elif sp.kind == "masked":
        s.foreach(i=(1, "n"))
        s.if_(ref("x", i).gt(t),
              [SB.assign(ref("y", i), ref("x", i) * c)],
              [SB.assign(ref("y", i), 0.0 - ref("x", i))])
    elif sp.kind == "reduction-sum":
        s.foreach(i=(1, "n"))
        s.formula(ref("y", 1), ref("y", 1) + ref("x", i) * ref("x", i))
    elif sp.kind == "reduction-max":
        s.foreach(i=(1, "n"))
        s.formula(ref("y", 1), lib("MAX", ref("y", 1), ref("x", i)))
    elif sp.kind == "masked-multi-acc":
        # The SARB thick_thin shape: both branches accumulate, but into
        # *different* cells — a masked multi-accumulator reduction.
        s.foreach(i=(1, "n"))
        s.if_(ref("x", i).gt(t),
              [SB.assign(ref("y", 1), ref("y", 1) + ref("x", i))],
              [SB.assign(ref("y", 2), ref("y", 2) + c)])
    elif sp.kind == "loop-carried":
        s.foreach(i=(2, "n"))
        s.formula(ref("y", i), ref("y", i - 1) * c + ref("x", i))
    elif sp.kind == "indirect-write":
        s.foreach(i=(1, "n"))
        s.formula(ref("y", ref("idx", i)), ref("x", i) * c)
    elif sp.kind == "triangular":
        s.foreach(i=(1, "n"), j=(1, i))
        s.formula(ref("y", i), ref("y", i) + ref("x", I("j")))
    elif sp.kind == "early-exit":
        s.foreach(i=(1, "n"))
        s.if_(ref("x", i).gt(t), [SB.exit_stmt()])
        s.formula(ref("y", i), ref("x", i) * c)
    elif sp.kind == "early-return":
        s.foreach(i=(1, "n"))
        s.if_(ref("x", i).gt(t), [SB.ret()])
        s.formula(ref("y", i), ref("x", i) * c)
    elif sp.kind == "call-helper":
        s.foreach(i=(1, "n"))
        s.formula(ref("y", i), FuncCall(f"{unit.name}_fn", (ref("x", i),)))
    else:  # pragma: no cover - profiles validate kinds up front
        raise ValueError(f"unknown step kind {sp.kind!r}")


def _emit_structures(b: GlafBuilder, m, f, unit: UnitSpec) -> None:
    i = I("i")
    if "common-block" in unit.structures:
        s = f.step(f"{unit.name}_common")
        s.foreach(i=(1, "n"))
        s.formula(ref("cbuf", i), ref("cbuf", i) + ref("y", i))
    if "module-scope" in unit.structures:
        s = f.step(f"{unit.name}_module")
        s.foreach(i=(1, "n"))
        s.formula(ref("mstate", i), ref("mstate", i) + ref("x", i))
    if "derived-type" in unit.structures:
        s = f.step(f"{unit.name}_typed")
        s.foreach(i=(1, "n"))
        s.formula(ref("y", i), ref("y", i) + ref("gain"))
    if "call-subroutine" in unit.structures:
        # Helper SUBROUTINE + a non-loop CALL step (§3.4 call sites).
        h = m.function(f"{unit.name}_scale", return_type=T_VOID)
        h.param("n", T_INT, intent="in")
        h.param("y", T_REAL8, dims=("n",), intent="inout")
        hs = h.step("halve")
        hs.foreach(i=(1, "n"))
        hs.formula(ref("y", i), ref("y", i) * 0.5)
        s = f.step(f"{unit.name}_call")
        s.call(f"{unit.name}_scale", [ref("n"), ref("y")])


def build_program(spec: CodebaseSpec) -> GlafProgram:
    """Render ``spec`` into a validated program (pure; no rng)."""
    b = GlafBuilder(f"fuzz_{spec.seed}_{spec.index}")
    structures = {k for u in spec.units for k in u.structures}
    if "common-block" in structures:
        b.global_grid("cbuf", T_REAL8, dims=(spec.extent,),
                      common_block="fzc",
                      comment="legacy COMMON-block state (§3.2)")
    if "derived-type" in structures:
        b.derived_type("fz_cfg", {"gain": (T_REAL8, 0)},
                       defined_in_module=HOST_MODULE)
        b.global_grid("gain", T_REAL8, exists_in_module=HOST_MODULE,
                      type_parent="cfgv", type_name="fz_cfg",
                      comment="element of the legacy TYPE(fz_cfg) cfgv (§3.5)")
    m = b.module("fuzz_kernels")
    if "module-scope" in structures:
        b.global_grid("mstate", T_REAL8, dims=(spec.extent,),
                      module_scope=True,
                      comment="module-scope accumulator state (§3.3)")
    for unit in spec.units:
        if any(s.kind == "call-helper" for s in unit.steps):
            g = m.function(f"{unit.name}_fn", return_type=T_REAL8)
            g.param("v", T_REAL8, intent="in")
            g.returns(ref("v") * 2.0 + 1.0)
        f = m.function(unit.name, return_type=T_VOID)
        f.param("n", T_INT, intent="in")
        f.param("x", T_REAL8, dims=("n",), intent="in")
        f.param("y", T_REAL8, dims=("n",), intent="inout")
        if unit.needs_idx:
            f.param("idx", T_INT, dims=("n",), intent="in")
        for seq, sp in enumerate(unit.steps, start=1):
            _emit_step(f, unit, sp, seq)
        _emit_structures(b, m, f, unit)
    return b.build()


def generate_codebase(seed: int, profile: FuzzProfile | str = "small",
                      index: int = 0) -> FuzzCodebase:
    """Draw and render one codebase; deterministic in (seed, profile, index)."""
    spec = generate_spec(seed, profile, index)
    return FuzzCodebase(spec=spec, program=build_program(spec))
