"""Delta-debug minimization of failing codebase specs.

Classic ddmin would bisect source text; here the unit of shrinking is
the :class:`~repro.fuzz.generate.CodebaseSpec`, so every candidate
re-renders through the production builder and the minimized reproducer
is always a *well-formed* codebase — never a syntactically lucky text
fragment.  Three passes run to a fixpoint, cheapest first:

1. **drop units** — remove whole kernel subprograms;
2. **drop statements** — remove individual steps and structure
   surfaces inside the surviving units;
3. **shrink bounds** — lower the runtime extent bound to ``n``.

A candidate counts only if the *same failure signature* reproduces; a
candidate that fails differently (or crashes the pipeline outright) is
rejected, so the invariant "the bundle's minimized spec reproduces the
bundle's signature" holds by construction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from .generate import CodebaseSpec, UnitSpec

__all__ = ["ShrinkResult", "shrink_spec"]

#: Extents tried by the bound-shrinking pass, smallest first.  2 is the
#: floor: accumulator cells y(1)/y(2) and the i-1 stencils need it.
_EXTENTS = (2, 3, 4, 6, 8, 12, 16)


class ShrinkResult:
    """The minimized spec plus how much probing it took."""

    def __init__(self, spec: CodebaseSpec, probes: int):
        self.spec = spec
        self.probes = probes


def shrink_spec(
    spec: CodebaseSpec,
    reproduces: Callable[[CodebaseSpec], bool],
    *,
    max_probes: int = 150,
) -> ShrinkResult:
    """Minimize ``spec`` while ``reproduces`` stays true.

    ``reproduces`` must re-run the pipeline on the candidate and report
    whether the original failure signature recurs; it is expected not to
    raise (the runner catches everything into signatures), but a raising
    predicate just rejects the candidate.  ``max_probes`` bounds total
    pipeline re-runs so triage stays cheap even for stubborn failures.
    """
    probes = 0

    def attempt(cand: CodebaseSpec) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        try:
            return bool(reproduces(cand))
        except Exception:
            return False

    cur = spec

    # Pass 1: drop whole units (never below one).
    changed = True
    while changed and len(cur.units) > 1:
        changed = False
        for unit in list(cur.units):
            if len(cur.units) == 1:
                break
            cand = replace(
                cur, units=tuple(u for u in cur.units if u is not unit))
            if attempt(cand):
                cur = cand
                changed = True

    # Pass 2: drop steps and structure surfaces inside surviving units.
    changed = True
    while changed:
        changed = False
        for ui, unit in enumerate(cur.units):
            for step in list(unit.steps):
                slim = replace(
                    unit, steps=tuple(s for s in unit.steps if s is not step))
                cand = _swap_unit(cur, ui, slim)
                if attempt(cand):
                    cur = cand
                    unit = slim
                    changed = True
            for struct in list(unit.structures):
                slim = replace(
                    unit,
                    structures=tuple(s for s in unit.structures
                                     if s != struct))
                cand = _swap_unit(cur, ui, slim)
                if attempt(cand):
                    cur = cand
                    unit = slim
                    changed = True

    # Pass 3: shrink the runtime extent to the smallest reproducing value.
    for n in _EXTENTS:
        if n >= cur.extent:
            break
        cand = replace(cur, extent=n)
        if attempt(cand):
            cur = cand
            break

    from ..observe import get_decisions, get_metrics

    m = get_metrics()
    if m.enabled:
        m.counter("fuzz.shrink.probes").inc(probes)
    dl = get_decisions()
    if dl.enabled:
        dl.record("fuzz:shrink", "campaign", cur.index, "minimize",
                  "minimized",
                  units=len(cur.units),
                  steps=sum(len(u.steps) for u in cur.units),
                  extent=cur.extent, probes=probes)
    return ShrinkResult(cur, probes)


def _swap_unit(spec: CodebaseSpec, index: int,
               unit: UnitSpec) -> CodebaseSpec:
    units = list(spec.units)
    units[index] = unit
    return replace(spec, units=tuple(units))
