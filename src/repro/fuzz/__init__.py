"""Seeded corpus generation and differential fuzzing (docs/FUZZING.md).

Turns "works on two case studies" into "works on arbitrary legacy
FORTRAN": :func:`generate_codebase` renders seeded, reproducible GLAF
codebases mixing every construct the pipeline claims to handle;
:func:`run_campaign` drives them end-to-end under per-item budgets with
a differential interpreter-vs-vectorized oracle, bucketing failures by
signature, quarantining digest-named reproducer bundles, and delta-debug
minimizing each new failure (``repro fuzz`` on the command line).  The
:mod:`~repro.fuzz.vocab` module is the shared mutation vocabulary the
parser property tests draw from.
"""

from .generate import (
    CodebaseSpec,
    FuzzCodebase,
    StepSpec,
    UnitSpec,
    build_program,
    generate_codebase,
    generate_spec,
)
from .profile import (
    PROFILES,
    STEP_KINDS,
    STRUCTURE_KINDS,
    FuzzProfile,
    get_profile,
)
from .runner import (
    DEFAULT_CHECKPOINT_DIR,
    DEFAULT_QUARANTINE_DIR,
    SUMMARY_SCHEMA,
    CampaignSummary,
    ItemResult,
    run_campaign,
    run_item,
)
from .shrink import ShrinkResult, shrink_spec
from .triage import BUNDLE_SCHEMA, FailureSignature, ItemFailure, Triage
from .vocab import (
    MUTATION_KINDS,
    NOISE_ALPHABET,
    apply_mutation,
    mutated_source,
    parser_corpus,
)

__all__ = [
    # profile
    "FuzzProfile", "PROFILES", "get_profile", "STEP_KINDS",
    "STRUCTURE_KINDS",
    # generate
    "StepSpec", "UnitSpec", "CodebaseSpec", "FuzzCodebase",
    "generate_spec", "build_program", "generate_codebase",
    # runner
    "ItemResult", "CampaignSummary", "run_item", "run_campaign",
    "SUMMARY_SCHEMA", "DEFAULT_CHECKPOINT_DIR", "DEFAULT_QUARANTINE_DIR",
    # triage / shrink
    "FailureSignature", "ItemFailure", "Triage", "BUNDLE_SCHEMA",
    "ShrinkResult", "shrink_spec",
    # vocab
    "NOISE_ALPHABET", "MUTATION_KINDS", "parser_corpus", "apply_mutation",
    "mutated_source",
]
