"""Functional execution of GLAF IR (reference semantics + generated Python)."""

from .context import ExecutionContext, as_storage
from .interp import ExecStats, Interpreter
from .runner import GeneratedModule, run_generated_python, run_interpreted
from .shuffle import (
    ParallelValidation,
    ShuffledInterpreter,
    validate_parallel_semantics,
)

__all__ = [
    "ExecutionContext", "as_storage",
    "ExecStats", "Interpreter",
    "GeneratedModule", "run_generated_python", "run_interpreted",
    "ParallelValidation", "ShuffledInterpreter", "validate_parallel_semantics",
]
