"""Functional execution of GLAF IR (reference semantics + generated Python
+ the pluggable executor back ends)."""

from .context import ExecutionContext, as_storage
from .executor import (
    EXECUTOR_NAMES,
    Executor,
    ExecutorRun,
    GuardedExecutor,
    InterpreterExecutor,
    VectorizedExecutor,
    executor_mode,
    get_executor,
    set_executor_mode,
    using_executor,
)
from .guard import (
    GuardedInterpreter,
    GuardedRun,
    GuardedRunner,
    GuardEvent,
    PythonGuardResult,
    VectorizedGuardResult,
    guard_mode,
    guarded,
    guarded_python_run,
    guarded_vectorized_run,
    set_guard_mode,
)
from .interp import ExecStats, Interpreter
from .runner import GeneratedModule, run_generated_python, run_interpreted
from .shuffle import (
    ParallelValidation,
    ShuffledInterpreter,
    validate_parallel_semantics,
)
from .vectorize import (
    FallbackEvent,
    LiftedStep,
    LiftFailure,
    VectorizedInterpreter,
    compile_step,
    liftability_report,
)

__all__ = [
    "ExecutionContext", "as_storage",
    "ExecStats", "Interpreter",
    "GeneratedModule", "run_generated_python", "run_interpreted",
    "ParallelValidation", "ShuffledInterpreter", "validate_parallel_semantics",
    "GuardEvent", "GuardedInterpreter", "GuardedRun", "GuardedRunner",
    "PythonGuardResult", "VectorizedGuardResult", "guard_mode", "guarded",
    "guarded_python_run", "guarded_vectorized_run", "set_guard_mode",
    "EXECUTOR_NAMES", "Executor", "ExecutorRun", "GuardedExecutor",
    "InterpreterExecutor", "VectorizedExecutor", "executor_mode",
    "get_executor", "set_executor_mode", "using_executor",
    "FallbackEvent", "LiftFailure", "LiftedStep", "VectorizedInterpreter",
    "compile_step", "liftability_report",
]
