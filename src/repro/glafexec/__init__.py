"""Functional execution of GLAF IR (reference semantics + generated Python)."""

from .context import ExecutionContext, as_storage
from .guard import (
    GuardedInterpreter,
    GuardedRun,
    GuardedRunner,
    GuardEvent,
    PythonGuardResult,
    guard_mode,
    guarded,
    guarded_python_run,
    set_guard_mode,
)
from .interp import ExecStats, Interpreter
from .runner import GeneratedModule, run_generated_python, run_interpreted
from .shuffle import (
    ParallelValidation,
    ShuffledInterpreter,
    validate_parallel_semantics,
)

__all__ = [
    "ExecutionContext", "as_storage",
    "ExecStats", "Interpreter",
    "GeneratedModule", "run_generated_python", "run_interpreted",
    "ParallelValidation", "ShuffledInterpreter", "validate_parallel_semantics",
    "GuardEvent", "GuardedInterpreter", "GuardedRun", "GuardedRunner",
    "PythonGuardResult", "guard_mode", "guarded", "guarded_python_run",
    "set_guard_mode",
]
