"""Shuffled-order execution: a functional check of parallel correctness.

The paper validates its OpenMP directives by inspection ("we manually
verify the correctness of the OpenMP directives and associated clauses").
This module mechanizes the idea: a step annotated PARALLEL DO must produce
the same result under *any* iteration order.  The
:class:`ShuffledInterpreter` executes exactly the steps a plan marks
parallel in a seeded-random iteration order; comparing against the
sequential run exposes mis-annotated loops (a loop-carried dependence
wrongly marked parallel changes the output).

Floating-point reductions and ATOMIC updates commute only up to rounding,
so comparisons use a tight tolerance rather than exact equality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.function import GlafProgram
from ..core.step import ExitLoop, Return, Step, walk_stmts
from ..errors import ExecutionError
from ..optimize.plan import OptimizationPlan
from ..robust import faults as _faults
from .context import ExecutionContext
from .interp import Interpreter

__all__ = ["ShuffledInterpreter", "ParallelValidation", "validate_parallel_semantics"]


class ShuffledInterpreter(Interpreter):
    """Executes plan-parallel steps in randomized iteration order."""

    def __init__(self, program: GlafProgram, context: ExecutionContext,
                 plan: OptimizationPlan, *, seed: int = 0, **kw: Any):
        super().__init__(program, context, **kw)
        self.plan = plan
        self.rng = np.random.default_rng(seed)
        self.shuffled_steps: list[tuple[str, int]] = []

    def _exec_step(self, frame, idx: int, step: Step) -> None:
        parallel = self.plan.step_is_parallel(frame.fn.name, idx) and step.is_loop
        has_exit = any(isinstance(s, (Return, ExitLoop))
                       for s in walk_stmts(step.stmts))
        if not parallel or has_exit:
            # Early-exit loops keep their order even when parallel (the
            # CRITICAL protocol preserves a deterministic winner only with
            # extra machinery; GLAF serializes the decision).
            super()._exec_step(frame, idx, step)
            return

        tuples = self._enumerate_nest(frame, step)
        order = self.rng.permutation(len(tuples))
        self.shuffled_steps.append((frame.fn.name, idx))
        self.stats.note_iter(frame.fn.name, idx, len(tuples))
        names = step.index_names()
        for k in order:
            if self._budget is not None:
                self._budget.tick()
            if _faults._ACTIVE is not None:
                _faults.inject("exec.interp.iter", function=frame.fn.name,
                               step=idx)
            for var, value in zip(names, tuples[k]):
                frame.indices[var] = value
            if step.condition is not None and not self._truth(frame, step.condition):
                continue
            self._exec_stmts(frame, step.stmts)
        for var in names:
            frame.indices.pop(var, None)

    def _enumerate_nest(self, frame, step: Step) -> list[tuple[int, ...]]:
        """All index tuples of the nest (handles triangular bounds)."""
        out: list[tuple[int, ...]] = []

        def rec(level: int, prefix: tuple[int, ...]) -> None:
            if level == len(step.ranges):
                out.append(prefix)
                return
            r = step.ranges[level]
            for var, value in zip(step.index_names(), prefix):
                frame.indices[var] = value
            start = int(self._eval(frame, r.start))
            end = int(self._eval(frame, r.end))
            stride = int(self._eval(frame, r.step))
            if stride <= 0:
                raise ExecutionError("non-positive stride")
            for i in range(start, end + 1, stride):
                rec(level + 1, prefix + (i,))

        rec(0, ())
        for var in step.index_names():
            frame.indices.pop(var, None)
        return out


@dataclass
class ParallelValidation:
    """Outcome of a sequential-vs-shuffled comparison."""

    entry: str
    shuffled_steps: list[tuple[str, int]]
    max_abs_error: float
    tolerance: float
    compared_grids: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.max_abs_error <= self.tolerance


def validate_parallel_semantics(
    program: GlafProgram,
    plan: OptimizationPlan,
    entry: str,
    make_args,
    *,
    sizes: dict[str, int] | None = None,
    values: dict[str, Any] | None = None,
    seeds: tuple[int, ...] = (1, 2, 3),
    tolerance: float = 1e-9,
    compare: list[str] | None = None,
) -> ParallelValidation:
    """Run ``entry`` sequentially and under several shuffled orders; the
    global state after every run must agree within ``tolerance``.

    ``make_args()`` must return a fresh argument list each call (arrays are
    mutated in place).  ``compare`` restricts the comparison to the named
    global grids — use it to exclude module-scope *scratch* whose final
    value legitimately depends on which iteration ran last (e.g. FUN3D's
    per-cell ``grad``).
    """
    def fresh_context() -> ExecutionContext:
        return ExecutionContext(program, sizes=sizes, values=values)

    ctx_ref = fresh_context()
    Interpreter(program, ctx_ref).call(entry, make_args())
    ref = ctx_ref.snapshot(compare)

    worst = 0.0
    shuffled_steps: list[tuple[str, int]] = []
    for seed in seeds:
        ctx = fresh_context()
        interp = ShuffledInterpreter(program, ctx, plan, seed=seed)
        interp.call(entry, make_args())
        shuffled_steps = interp.shuffled_steps
        for name, arr in ctx.snapshot(compare).items():
            err = float(np.max(np.abs(np.asarray(arr, dtype=np.float64)
                                      - np.asarray(ref[name], dtype=np.float64))))
            worst = max(worst, err)
    return ParallelValidation(
        entry=entry,
        shuffled_steps=sorted(set(shuffled_steps)),
        max_abs_error=worst,
        tolerance=tolerance,
        compared_grids=sorted(ref),
    )
