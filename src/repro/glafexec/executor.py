"""Pluggable executors for GLAF programs.

Three interchangeable back ends run a program's entry point against an
:class:`~repro.glafexec.context.ExecutionContext`:

``interpreter``
    The reference tree-walking :class:`~repro.glafexec.interp.Interpreter`
    — authoritative FORTRAN semantics, one Python dispatch per cell.
``vectorized``
    :class:`~repro.glafexec.vectorize.VectorizedInterpreter` — liftable loop
    steps run as whole-grid NumPy array programs; everything else falls back
    to the interpreter per step (recorded as ``executor:fallback`` events).
``guarded``
    :func:`~repro.glafexec.guard.guarded_vectorized_run` — the vectorized
    path runs on a cloned context and is cross-checked against the
    interpreter under a tolerance policy; the interpreter's result is
    always the one kept.

Selection is either explicit (:func:`get_executor`) or through the
process-wide executor mode (the CLI's ``--executor`` flag, or the
``REPRO_EXECUTOR`` environment variable for whole-process runs such as the
CI vectorized leg), mirroring the guard-mode trio in
:mod:`repro.glafexec.guard`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.function import GlafProgram
from ..errors import ExecutionError
from ..robust import ResourceLimits
from .context import ExecutionContext
from .guard import DEFAULT_GUARD_TOLERANCE, VectorizedGuardResult, guarded_vectorized_run
from .interp import Interpreter
from .vectorize import FallbackEvent, VectorizedInterpreter

__all__ = [
    "EXECUTOR_NAMES", "Executor", "ExecutorRun",
    "GuardedExecutor", "InterpreterExecutor", "VectorizedExecutor",
    "executor_mode", "get_executor", "set_executor_mode", "using_executor",
]

#: Valid executor names, in guard-strictness order.
EXECUTOR_NAMES = ("interpreter", "vectorized", "guarded")


@dataclass
class ExecutorRun:
    """Outcome of one :meth:`Executor.run` invocation."""

    result: Any
    context: ExecutionContext
    executor: str
    fallbacks: tuple[FallbackEvent, ...] = ()
    guard: VectorizedGuardResult | None = None


class Executor:
    """Common construction + entry point for the pluggable back ends."""

    name = ""

    def __init__(self, *, save_inner_arrays: bool = False,
                 limits: ResourceLimits | None = None):
        self.save_inner_arrays = save_inner_arrays
        self.limits = limits

    def _context(self, program: GlafProgram,
                 sizes: dict[str, int] | None,
                 values: dict[str, Any] | None,
                 context: ExecutionContext | None) -> ExecutionContext:
        if context is not None:
            return context
        return ExecutionContext(program, sizes=sizes, values=values)

    def run(self, program: GlafProgram, entry: str,
            args: list[Any] | tuple = (), *,
            sizes: dict[str, int] | None = None,
            values: dict[str, Any] | None = None,
            context: ExecutionContext | None = None) -> ExecutorRun:
        raise NotImplementedError


class InterpreterExecutor(Executor):
    """Reference semantics: the tree-walking interpreter."""

    name = "interpreter"

    def run(self, program, entry, args=(), *, sizes=None, values=None,
            context=None) -> ExecutorRun:
        from ..observe import get_tracer

        ctx = self._context(program, sizes, values, context)
        interp = Interpreter(program, ctx,
                             save_inner_arrays=self.save_inner_arrays,
                             limits=self.limits)
        with get_tracer().span("exec.run.interp", entry=entry,
                               program=program.name):
            result = interp.call(entry, list(args))
        return ExecutorRun(result=result, context=ctx, executor=self.name)


class VectorizedExecutor(Executor):
    """Whole-grid array execution with per-step interpreter fallback."""

    name = "vectorized"

    def run(self, program, entry, args=(), *, sizes=None, values=None,
            context=None) -> ExecutorRun:
        from ..observe import get_tracer

        ctx = self._context(program, sizes, values, context)
        interp = VectorizedInterpreter(
            program, ctx, save_inner_arrays=self.save_inner_arrays,
            limits=self.limits)
        with get_tracer().span("exec.run.vectorized", entry=entry,
                               program=program.name):
            result = interp.call(entry, list(args))
        return ExecutorRun(result=result, context=ctx, executor=self.name,
                           fallbacks=tuple(interp.fallbacks))


class GuardedExecutor(Executor):
    """Vectorized execution cross-checked against the interpreter.

    The vectorized probe runs on a clone of the context; the interpreter
    then runs on the real one, so the kept state is always the reference
    result — divergence only decides whether a ``guard:serial-fallback``
    event is recorded (via the PR-5 tolerance policies).
    """

    name = "guarded"

    def __init__(self, *, tolerance: float = DEFAULT_GUARD_TOLERANCE,
                 policy: str = "abs", **kw: Any):
        super().__init__(**kw)
        self.tolerance = tolerance
        self.policy = policy

    def run(self, program, entry, args=(), *, sizes=None, values=None,
            context=None) -> ExecutorRun:
        ctx = self._context(program, sizes, values, context)
        res = guarded_vectorized_run(
            program, entry, args, context=ctx,
            tolerance=self.tolerance, policy=self.policy, limits=self.limits)
        return ExecutorRun(result=res.result, context=res.context,
                           executor=self.name, fallbacks=res.fallbacks,
                           guard=res)


_EXECUTORS: dict[str, type[Executor]] = {
    "interpreter": InterpreterExecutor,
    "vectorized": VectorizedExecutor,
    "guarded": GuardedExecutor,
}


def get_executor(name: str | None = None, **kw: Any) -> Executor:
    """Instantiate an executor by name (current mode when ``None``)."""
    if name is None:
        name = executor_mode()
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
        ) from None
    return cls(**kw)


# ----------------------------------------------------------------------
# process-wide executor mode (the CLI's --executor flag)
# ----------------------------------------------------------------------
def _initial_mode() -> str:
    env = os.environ.get("REPRO_EXECUTOR", "interpreter")
    return env if env in EXECUTOR_NAMES else "interpreter"


_EXECUTOR_MODE = _initial_mode()


def executor_mode() -> str:
    """The currently-selected executor name (default ``interpreter``)."""
    return _EXECUTOR_MODE


def set_executor_mode(name: str) -> str:
    """Select the process-wide executor; returns the previous name."""
    global _EXECUTOR_MODE
    if name not in EXECUTOR_NAMES:
        raise ExecutionError(
            f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}")
    prev = _EXECUTOR_MODE
    _EXECUTOR_MODE = name
    return prev


@contextmanager
def using_executor(name: str) -> Iterator[None]:
    """Select an executor for the block (validation paths that honor the
    mode route execution through :func:`get_executor`)."""
    prev = set_executor_mode(name)
    try:
        yield
    finally:
        set_executor_mode(prev)
