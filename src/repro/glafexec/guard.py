"""Guarded execution: divergence-checked parallel steps with serial fallback.

The paper validates auto-parallelized kernels offline, by side-by-side
comparison against the legacy output (§4, Table 1).  The
:class:`GuardedRunner` moves that check *into* the run: every step the
optimization plan marks parallel is first *probed* in a shuffled iteration
order (reusing :class:`ShuffledInterpreter` semantics) on a snapshot of the
affected state, then executed serially; if the probe diverges from the
serial result beyond tolerance — or raises an :class:`ExecutionError` —
the step is demoted to serial for the rest of the run and a structured
``guard:serial-fallback`` event is recorded in the PR-1 DecisionLog.

The serial result is **always** the one kept, so a guarded run is
bit-identical to a plain interpreted run; the probe only decides whether
the parallel annotation deserves trust.  :class:`ResourceLimitError` is
deliberately re-raised rather than recovered: a step that exhausted its
budget will not do better when re-executed.

:func:`guarded_python_run` applies the same policy to the generated-Python
path: run it against the interpreter reference and fall back to the
interpreter's result on divergence, :class:`CodegenError`, or
:class:`ExecutionError`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..core.function import GlafProgram
from ..core.step import Step
from ..errors import CodegenError, ExecutionError, ResourceLimitError
from ..numeric import snapshot_max_abs_error
from ..optimize.plan import OptimizationPlan, make_plan
from ..robust import ResourceLimits, inject
from .context import ExecutionContext
from .interp import Interpreter
from .shuffle import ShuffledInterpreter

__all__ = [
    "GuardEvent", "GuardedInterpreter", "GuardedRun", "GuardedRunner",
    "PythonGuardResult", "VectorizedGuardResult", "guarded_python_run",
    "guarded_vectorized_run", "guard_mode", "guarded", "set_guard_mode",
]

DEFAULT_GUARD_TOLERANCE = 1e-9


@dataclass(frozen=True)
class GuardEvent:
    """One serial-fallback demotion decided by the divergence guard."""

    function: str
    step_index: int
    step_name: str
    reason: str
    max_abs_error: float | None = None
    tolerance: float = DEFAULT_GUARD_TOLERANCE


class GuardedInterpreter(ShuffledInterpreter):
    """Interpreter that probes each plan-parallel step before trusting it.

    For every plan-parallel loop step (without early exits): snapshot the
    reachable state, execute the step once in a shuffled order (the probe),
    snapshot again, roll back, execute serially, and compare.  Divergence
    or an :class:`ExecutionError` inside the probe demotes the step —
    stickily, so later executions of the same step skip the probe.

    ``ExecStats`` iteration counts include the probe, so guarded runs
    roughly double-count loop iterations; the *results* are those of the
    serial execution, always.
    """

    def __init__(self, program: GlafProgram, context: ExecutionContext,
                 plan: OptimizationPlan, *, seed: int = 1,
                 tolerance: float = DEFAULT_GUARD_TOLERANCE, **kw: Any):
        super().__init__(program, context, plan, seed=seed, **kw)
        self.tolerance = tolerance
        self.events: list[GuardEvent] = []
        self.demoted: set[tuple[str, int]] = set()
        self._suspended = 0

    # ------------------------------------------------------------------
    def _exec_step(self, frame, idx: int, step: Step) -> None:
        key = (frame.fn.name, idx)
        if (
            self._suspended
            or key in self.demoted
            or not (self.plan.step_is_parallel(*key) and step.is_loop)
            or self._has_exit(step)
        ):
            Interpreter._exec_step(self, frame, idx, step)
            return

        before = self._snapshot(frame)
        probe_error: ExecutionError | None = None
        after_probe: dict | None = None
        self._suspended += 1
        try:
            inject("exec.interp.step", function=frame.fn.name, step=idx,
                   parallel=True)
            super()._exec_step(frame, idx, step)   # shuffled probe
            after_probe = self._snapshot(frame)
        except ResourceLimitError:
            raise                        # budget exhausted: never retry
        except ExecutionError as e:
            probe_error = e
        finally:
            self._suspended -= 1

        # Roll back and execute serially; the serial result is authoritative.
        self._restore(frame, before)
        self._suspended += 1
        try:
            Interpreter._exec_step(self, frame, idx, step)
        finally:
            self._suspended -= 1

        if probe_error is not None:
            self._demote(key, step,
                         f"ExecutionError in parallel step: {probe_error}",
                         None)
            return
        err = self._compare(after_probe, self._snapshot(frame))
        if err > self.tolerance:
            self._demote(
                key, step,
                f"shuffled-order divergence (max abs error {err:.3e} "
                f"> tolerance {self.tolerance:.1e})", err)

    @staticmethod
    def _has_exit(step: Step) -> bool:
        from ..core.step import ExitLoop, Return, walk_stmts
        return any(isinstance(s, (Return, ExitLoop))
                   for s in walk_stmts(step.stmts))

    # ------------------------------------------------------------------
    # snapshot / restore of everything a step can reach
    # ------------------------------------------------------------------
    def _snapshot(self, frame) -> dict[tuple, np.ndarray]:
        snap: dict[tuple, np.ndarray] = {}
        for name, arr in frame.storage.items():
            snap[("frame", name)] = arr.copy()
        for name, arr in self.context.globals.items():
            snap[("global", name)] = arr.copy()
        for key, arr in self._save_store.items():
            snap[("save",) + key] = arr.copy()
        return snap

    def _restore(self, frame, snap: dict[tuple, np.ndarray]) -> None:
        # In-place so aliases (by-reference arguments, SAVE'd storage held
        # elsewhere) stay associated.
        for name, arr in frame.storage.items():
            arr[...] = snap[("frame", name)]
        for name, arr in self.context.globals.items():
            arr[...] = snap[("global", name)]
        for key in list(self._save_store):
            skey = ("save",) + key
            if skey in snap:
                self._save_store[key][...] = snap[skey]
            else:
                # SAVE'd local first allocated inside the probe: discard it
                # so the serial execution allocates afresh.
                del self._save_store[key]

    def _compare(self, probe: dict, serial: dict) -> float:
        # NaN/Inf-aware: a NaN in either snapshot reports an infinite
        # error (and demotes) where the naive max-abs yielded a NaN that
        # compared False against the tolerance and passed silently.
        return snapshot_max_abs_error(probe, serial)

    # ------------------------------------------------------------------
    def _demote(self, key: tuple[str, int], step: Step, reason: str,
                err: float | None) -> None:
        self.demoted.add(key)
        self.events.append(GuardEvent(
            function=key[0], step_index=key[1], step_name=step.name,
            reason=reason, max_abs_error=err, tolerance=self.tolerance,
        ))
        from ..observe import get_decisions, get_metrics

        m = get_metrics()
        if m.enabled:
            m.counter("guard.serial_fallbacks").inc()
        dl = get_decisions()
        if dl.enabled:
            dl.record(
                "guard", key[0], key[1], step.name, "serial-fallback",
                reasons=(reason,),
                max_abs_error=err, tolerance=self.tolerance,
            )


@dataclass
class GuardedRun:
    """Result of one :class:`GuardedRunner.run` invocation."""

    result: Any
    context: ExecutionContext
    events: list[GuardEvent]
    demoted: frozenset[tuple[str, int]]
    interpreter: GuardedInterpreter
    plan: OptimizationPlan

    @property
    def fell_back(self) -> bool:
        return bool(self.events)

    def demoted_plan(self) -> OptimizationPlan:
        """The plan with every demoted step force-serialized — hand this to
        codegen to emit a variant that drops the untrusted directives."""
        return self.plan.with_force_serial(self.demoted)


class GuardedRunner:
    """Front door for guarded execution of a program's entry point."""

    def __init__(self, program: GlafProgram, plan: OptimizationPlan | None = None,
                 *, variant: str = "GLAF-parallel v0", seed: int = 1,
                 tolerance: float = DEFAULT_GUARD_TOLERANCE,
                 limits: ResourceLimits | None = None):
        self.program = program
        self.plan = plan if plan is not None else make_plan(program, variant)
        self.seed = seed
        self.tolerance = tolerance
        self.limits = limits

    def run(self, entry: str, args: list[Any] | tuple = (), *,
            sizes: dict[str, int] | None = None,
            values: dict[str, Any] | None = None,
            context: ExecutionContext | None = None) -> GuardedRun:
        from ..observe import get_tracer

        ctx = context if context is not None else ExecutionContext(
            self.program, sizes=sizes, values=values)
        interp = GuardedInterpreter(
            self.program, ctx, self.plan, seed=self.seed,
            tolerance=self.tolerance, limits=self.limits)
        with get_tracer().span("exec.run.guarded", entry=entry,
                               program=self.program.name):
            result = interp.call(entry, list(args))
        return GuardedRun(
            result=result, context=ctx, events=list(interp.events),
            demoted=frozenset(interp.demoted), interpreter=interp,
            plan=self.plan,
        )


# ----------------------------------------------------------------------
# guarded generated-Python execution
# ----------------------------------------------------------------------
@dataclass
class PythonGuardResult:
    """Outcome of :func:`guarded_python_run`."""

    result: Any
    context: ExecutionContext          # authoritative (interpreter on fallback)
    fell_back: bool
    reason: str = ""
    max_abs_error: float | None = None
    tolerance: float = DEFAULT_GUARD_TOLERANCE


def guarded_python_run(
    program: GlafProgram,
    entry: str,
    args: list[Any] | tuple = (),
    *,
    variant: str = "GLAF serial",
    sizes: dict[str, int] | None = None,
    values: dict[str, Any] | None = None,
    compare: list[str] | None = None,
    tolerance: float = DEFAULT_GUARD_TOLERANCE,
) -> PythonGuardResult:
    """Run the generated-Python path against the interpreter reference.

    On divergence beyond ``tolerance`` over the ``compare`` grids (all
    globals by default), or a :class:`CodegenError` / non-budget
    :class:`ExecutionError` in the generated path, falls back to the
    interpreter's result and records a ``guard:serial-fallback`` decision.
    """
    from ..observe import get_decisions
    from .runner import run_generated_python, run_interpreted

    ref_result, ref_ctx, _ = run_interpreted(
        program, entry, args, sizes=sizes, values=values)
    ref = ref_ctx.snapshot(compare)

    def fallback(reason: str, err: float | None = None) -> PythonGuardResult:
        dl = get_decisions()
        if dl.enabled:
            dl.record("guard", entry, -1, "generated-python",
                      "serial-fallback", reasons=(reason,),
                      max_abs_error=err, tolerance=tolerance)
        return PythonGuardResult(
            result=ref_result, context=ref_ctx, fell_back=True,
            reason=reason, max_abs_error=err, tolerance=tolerance)

    try:
        py_result, py_ctx = run_generated_python(
            program, entry, args, variant=variant, sizes=sizes, values=values)
    except ResourceLimitError:
        raise
    except (CodegenError, ExecutionError) as e:
        return fallback(f"{type(e).__name__} in generated Python: {e}")

    # NaN/Inf-aware comparison: a NaN on both sides is divergence (inf
    # error), never silent agreement.
    worst = snapshot_max_abs_error(py_ctx.snapshot(compare), ref)
    if worst > tolerance:
        return fallback(
            f"generated-Python divergence (max abs error {worst:.3e} "
            f"> tolerance {tolerance:.1e})", worst)
    return PythonGuardResult(
        result=py_result, context=py_ctx, fell_back=False,
        max_abs_error=worst, tolerance=tolerance)


# ----------------------------------------------------------------------
# guarded vectorized execution (the "guarded" executor)
# ----------------------------------------------------------------------
@dataclass
class VectorizedGuardResult:
    """Outcome of :func:`guarded_vectorized_run`."""

    result: Any
    context: ExecutionContext          # authoritative (always the interpreter's)
    fell_back: bool
    reason: str = ""
    max_error: float | None = None
    tolerance: float = DEFAULT_GUARD_TOLERANCE
    policy: str = "abs"
    #: per-step lift demotions recorded by the vectorized probe
    fallbacks: tuple = ()


def guarded_vectorized_run(
    program: GlafProgram,
    entry: str,
    args: list[Any] | tuple = (),
    *,
    sizes: dict[str, int] | None = None,
    values: dict[str, Any] | None = None,
    context: ExecutionContext | None = None,
    compare: list[str] | None = None,
    tolerance: float = DEFAULT_GUARD_TOLERANCE,
    policy: str = "abs",
    limits: ResourceLimits | None = None,
) -> VectorizedGuardResult:
    """Run the vectorized executor against the interpreter reference.

    The vectorized path executes on a **clone** of the context; the
    interpreter then executes on the real one, so the kept state is always
    the reference result (same contract as :class:`GuardedRunner`).  The
    two final global states are compared grid by grid under a named
    tolerance policy (:func:`repro.numeric.get_policy`); divergence — or an
    :class:`ExecutionError` in the vectorized probe — records a
    ``guard:serial-fallback`` decision naming the vectorized executor.
    """
    from ..numeric import get_policy
    from ..observe import get_decisions, get_metrics, get_tracer
    from .vectorize import VectorizedInterpreter

    ctx = context if context is not None else ExecutionContext(
        program, sizes=sizes, values=values)
    probe_ctx = ctx.clone()
    vec_error: str | None = None
    vec_snap: dict[str, np.ndarray] | None = None
    fallbacks: tuple = ()
    with get_tracer().span("exec.run.guarded-vectorized", entry=entry,
                           program=program.name):
        vec = VectorizedInterpreter(program, probe_ctx, limits=limits)
        # Array arguments are storage, exactly like context grids: the
        # probe gets copies, so neither its writes nor a mid-probe budget
        # trip can leak into the arrays the authoritative interpreter run
        # below reads and the caller keeps.
        probe_args = [a.copy() if isinstance(a, np.ndarray) else a
                      for a in args]
        try:
            vec.call(entry, probe_args)
            vec_snap = probe_ctx.snapshot(compare)
        except ResourceLimitError:
            raise                        # budget exhausted: never retry
        except ExecutionError as e:
            vec_error = f"{type(e).__name__} in vectorized execution: {e}"
        fallbacks = tuple(vec.fallbacks)
        ref_result = Interpreter(program, ctx, limits=limits).call(
            entry, list(args))

    def fell_back(reason: str, err: float | None = None) -> VectorizedGuardResult:
        m = get_metrics()
        if m.enabled:
            m.counter("guard.serial_fallbacks").inc()
        dl = get_decisions()
        if dl.enabled:
            dl.record("guard", entry, -1, "vectorized-executor",
                      "serial-fallback", reasons=(reason,),
                      max_abs_error=err, tolerance=tolerance)
        return VectorizedGuardResult(
            result=ref_result, context=ctx, fell_back=True, reason=reason,
            max_error=err, tolerance=tolerance, policy=policy,
            fallbacks=fallbacks)

    if vec_error is not None:
        return fell_back(vec_error)
    pol = get_policy(policy, tolerance)
    ref_snap = ctx.snapshot(compare)
    worst = 0.0
    for name in ref_snap:
        if ref_snap[name].size == 0:
            continue
        res = pol.compare(vec_snap[name], ref_snap[name])
        if not res.ok:
            return fell_back(
                f"vectorized divergence on grid {name!r}: {res.detail}",
                res.max_error)
        worst = max(worst, res.max_error)
    return VectorizedGuardResult(
        result=ref_result, context=ctx, fell_back=False, max_error=worst,
        tolerance=tolerance, policy=policy, fallbacks=fallbacks)


# ----------------------------------------------------------------------
# process-wide guard mode (the CLI's --guarded flag)
# ----------------------------------------------------------------------
_GUARD_MODE = False


def guard_mode() -> bool:
    """True while guarded execution is requested (``--guarded``)."""
    return _GUARD_MODE


def set_guard_mode(enabled: bool) -> bool:
    """Set the process-wide guard flag; returns the previous value."""
    global _GUARD_MODE
    prev = _GUARD_MODE
    _GUARD_MODE = bool(enabled)
    return prev


@contextmanager
def guarded(enabled: bool = True) -> Iterator[None]:
    """Enable guard mode for the block (validation paths that support it
    route execution through :class:`GuardedRunner`)."""
    prev = set_guard_mode(enabled)
    try:
        yield
    finally:
        set_guard_mode(prev)
