"""The GLAF IR interpreter: reference execution semantics.

Every kernel in the case studies runs through this tree-walking interpreter
(with NumPy storage) and through the generated Python / generated FORTRAN
paths; the outputs must agree.  Semantics follow FORTRAN:

* 1-based inclusive loop ranges (``DO i = start, end, step``);
* integer ``/`` truncates toward zero; ``MOD`` takes the dividend's sign;
* ``EXIT`` (:class:`ExitLoop`) leaves the innermost loop of the step's nest;
* arguments are passed by reference — array arguments alias caller storage,
  and scalar ``intent(out/inout)`` arguments must be 0-d arrays;
* SAVE'd locals persist across calls in the interpreter's save store, which
  is also how the FUN3D "no reallocation" option is executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.expr import (
    BinOp,
    Const,
    Expr,
    FuncCall,
    GridRef,
    IndexVar,
    LibCall,
    UnOp,
)
from ..core.function import GlafFunction, GlafProgram
from ..core.grid import Grid
from ..core.libfuncs import get as get_libfunc
from ..core.step import (
    Assign,
    CallStmt,
    ExitLoop,
    IfStmt,
    Range,
    Return,
    Step,
    Stmt,
)
from ..core.types import GlafType, numpy_dtype
from ..errors import ExecutionError
from ..numeric import sentinel as _sentinel
from ..robust import Budget, ResourceLimits
from ..robust import faults as _faults
from .context import ExecutionContext, as_storage

__all__ = ["Interpreter", "ExecStats"]


class _ReturnSignal(Exception):
    def __init__(self, value: Any = None):
        self.value = value


class _ExitSignal(Exception):
    pass


@dataclass
class ExecStats:
    """Dynamic counts gathered while interpreting (used to sanity-check the
    performance model's trip-count estimates)."""

    loop_iterations: dict[tuple[str, int], int] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    allocations: int = 0

    def note_iter(self, fn: str, step_idx: int, n: int = 1) -> None:
        key = (fn, step_idx)
        self.loop_iterations[key] = self.loop_iterations.get(key, 0) + n

    def note_call(self, fn: str) -> None:
        self.calls[fn] = self.calls.get(fn, 0) + 1


@dataclass
class _Frame:
    fn: GlafFunction
    storage: dict[str, np.ndarray]
    indices: dict[str, int] = field(default_factory=dict)
    # Set by _exec_step so assignment-time sentinels can name the step.
    current_step: int = -1
    current_step_name: str = ""


class Interpreter:
    """Executes GLAF functions against an :class:`ExecutionContext`."""

    def __init__(
        self,
        program: GlafProgram,
        context: ExecutionContext,
        *,
        save_inner_arrays: bool = False,
        max_call_depth: int = 200,
        limits: ResourceLimits | None = None,
    ):
        self.program = program
        self.context = context
        self.save_inner_arrays = save_inner_arrays
        self.max_call_depth = max_call_depth
        self.limits = limits
        self._budget = (
            Budget(limits, what=f"interp({program.name})")
            if limits is not None else None
        )
        self.stats = ExecStats()
        self._save_store: dict[tuple[str, str], np.ndarray] = {}
        self._depth = 0

    def reset_save_store(self) -> None:
        self._save_store.clear()

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call(self, name: str, args: list[Any] | tuple = ()) -> Any:
        """Call a GLAF function; returns its value (None for subroutines)."""
        from ..observe import get_metrics, get_tracer

        _m = get_metrics()
        if _m.enabled:
            _m.counter("exec.interp.calls").inc()
        if self._depth == 0:
            if self._budget is not None:
                self._budget.start()
            # Only the outermost call gets a span; nested calls would swamp
            # the trace and are already counted by ExecStats / the counter.
            with get_tracer().span("exec.interp", entry=name):
                return self._call(name, args)
        return self._call(name, args)

    def _call(self, name: str, args: list[Any] | tuple = ()) -> Any:
        fn = self.program.find_function(name)
        if len(args) != len(fn.params):
            raise ExecutionError(
                f"{name}: expected {len(fn.params)} argument(s), got {len(args)}"
            )
        if self._depth >= self.max_call_depth:
            raise ExecutionError(f"call depth exceeded at {name}")
        self.stats.note_call(name)

        frame = _Frame(fn=fn, storage={})
        # Bind dummies by reference where possible.
        for pname, value in zip(fn.params, args):
            g = fn.grids[pname]
            frame.storage[pname] = self._bind_argument(g, value)
        # Resolve symbolic local dims from already-bound scalars.
        sizes = self._frame_sizes(frame)
        for lname, g in fn.local_grids().items():
            frame.storage[lname] = self._allocate_local(fn, g, sizes)

        self._depth += 1
        try:
            for idx, step in enumerate(fn.steps):
                self._exec_step(frame, idx, step)
        except _ReturnSignal as r:
            return r.value
        finally:
            self._depth -= 1
        if not fn.is_subroutine:
            # Fell off the end without an explicit return: FORTRAN would
            # return the (zero-initialized) result variable.
            return numpy_dtype(fn.return_type).type(0)
        return None

    def _bind_argument(self, g: Grid, value: Any) -> np.ndarray:
        dtype = numpy_dtype(g.ty)
        if g.rank == 0:
            if isinstance(value, np.ndarray) and value.ndim == 0:
                return value  # by reference
            if g.intent in ("out", "inout"):
                raise ExecutionError(
                    f"argument {g.name!r} has intent({g.intent}); pass a 0-d array"
                )
            cell = np.zeros((), dtype=dtype)
            cell[()] = value
            return cell
        if not isinstance(value, np.ndarray):
            raise ExecutionError(f"argument {g.name!r}: expected an array")
        if value.dtype != dtype:
            raise ExecutionError(
                f"argument {g.name!r}: dtype {value.dtype} != expected {dtype}"
            )
        if value.ndim != g.rank:
            raise ExecutionError(
                f"argument {g.name!r}: rank {value.ndim} != declared {g.rank}"
            )
        return value  # by reference

    def _frame_sizes(self, frame: _Frame) -> dict[str, int]:
        sizes = dict(self.context.sizes)
        for name, store in frame.storage.items():
            if store.ndim == 0 and np.issubdtype(store.dtype, np.integer):
                sizes[name] = int(store[()])
        return sizes

    def _allocate_local(self, fn: GlafFunction, g: Grid, sizes: dict[str, int]) -> np.ndarray:
        saved = g.save or (self.save_inner_arrays and g.allocatable)
        key = (fn.name, g.name)
        if saved and key in self._save_store:
            return self._save_store[key]
        self.stats.allocations += 1
        store = as_storage(g, sizes=sizes)
        if saved:
            self._save_store[key] = store
        return store

    # ------------------------------------------------------------------
    # steps and statements
    # ------------------------------------------------------------------
    def _exec_step(self, frame: _Frame, idx: int, step: Step) -> None:
        frame.current_step = idx
        frame.current_step_name = step.name
        if _faults._ACTIVE is not None:
            _faults.inject("exec.interp.step", function=frame.fn.name,
                           step=idx, parallel=False)
        if not step.is_loop:
            if step.condition is not None and not self._truth(frame, step.condition):
                return
            self._exec_stmts(frame, step.stmts)
            return
        self._exec_nest(frame, idx, step, 0)

    def _exec_nest(self, frame: _Frame, idx: int, step: Step, level: int) -> None:
        if level == len(step.ranges):
            self.stats.note_iter(frame.fn.name, idx)
            if self._budget is not None:
                self._budget.tick()
            if _faults._ACTIVE is not None:
                _faults.inject("exec.interp.iter", function=frame.fn.name,
                               step=idx)
            if step.condition is not None and not self._truth(frame, step.condition):
                return
            self._exec_stmts(frame, step.stmts)
            return
        r = step.ranges[level]
        start = int(self._eval(frame, r.start))
        end = int(self._eval(frame, r.end))
        stride = int(self._eval(frame, r.step))
        if stride <= 0:
            raise ExecutionError(f"{frame.fn.name}/{step.name}: non-positive stride")
        var = r.var
        try:
            for i in range(start, end + 1, stride):
                frame.indices[var] = i
                self._exec_nest(frame, idx, step, level + 1)
        except _ExitSignal:
            # FORTRAN EXIT leaves the innermost enclosing DO.  Statements
            # live in the innermost body, so the innermost level catches.
            if level != len(step.ranges) - 1:
                raise
        finally:
            frame.indices.pop(var, None)

    def _exec_stmts(self, frame: _Frame, stmts) -> None:
        for s in stmts:
            self._exec_stmt(frame, s)

    def _exec_stmt(self, frame: _Frame, s: Stmt) -> None:
        if isinstance(s, Assign):
            self._assign(frame, s)
        elif isinstance(s, CallStmt):
            args = [self._eval_arg(frame, a) for a in s.args]
            self.call(s.name, args)
        elif isinstance(s, IfStmt):
            if self._truth(frame, s.cond):
                self._exec_stmts(frame, s.then)
            else:
                self._exec_stmts(frame, s.orelse)
        elif isinstance(s, Return):
            if s.value is not None:
                dtype = numpy_dtype(frame.fn.return_type)
                raise _ReturnSignal(dtype.type(self._eval(frame, s.value)))
            raise _ReturnSignal(None)
        elif isinstance(s, ExitLoop):
            raise _ExitSignal()
        else:
            raise ExecutionError(f"cannot execute statement {type(s).__name__}")

    def _assign(self, frame: _Frame, s: Assign) -> None:
        store = self._storage(frame, s.target.grid)
        value = self._eval(frame, s.expr)
        idx: tuple[int, ...] | None = None
        if s.target.indices:
            idx = tuple(int(self._eval(frame, i)) - 1 for i in s.target.indices)
            self._bounds_check(frame, s.target.grid, store, idx)
        elif store.ndim != 0:
            raise ExecutionError(
                f"cannot assign scalar to whole array {s.target.grid!r}"
            )
        if (_faults._ACTIVE is not None
                and np.issubdtype(store.dtype, np.floating)):
            poisoned = _faults.inject(
                "numeric.sentinel", value, function=frame.fn.name,
                step=frame.current_step, grid=s.target.grid)
            if poisoned is not None:
                value = poisoned
        if _sentinel._ACTIVE is not None:
            _sentinel.check_value(
                value, function=frame.fn.name,
                step_index=frame.current_step,
                step_name=frame.current_step_name, grid=s.target.grid,
                cell=None if idx is None else tuple(i + 1 for i in idx))
        if idx is not None:
            store[idx] = value
        else:
            store[()] = value

    def _bounds_check(self, frame, gname: str, store: np.ndarray, idx: tuple) -> None:
        for k, (i, n) in enumerate(zip(idx, store.shape)):
            if not (0 <= i < n):
                raise ExecutionError(
                    f"{frame.fn.name}: index {i + 1} out of bounds for dimension "
                    f"{k + 1} of grid {gname!r} (extent {n})"
                )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _storage(self, frame: _Frame, name: str) -> np.ndarray:
        if name in frame.storage:
            return frame.storage[name]
        return self.context.get(name)

    def _truth(self, frame: _Frame, e: Expr) -> bool:
        return bool(self._eval(frame, e))

    def _eval_arg(self, frame: _Frame, e: Expr) -> Any:
        """Arguments: whole-grid references pass storage by reference."""
        if isinstance(e, GridRef) and not e.indices:
            return self._storage(frame, e.grid)
        return self._eval(frame, e)

    def _eval(self, frame: _Frame, e: Expr) -> Any:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, IndexVar):
            try:
                return frame.indices[e.name]
            except KeyError:
                raise ExecutionError(f"unbound index variable {e.name!r}") from None
        if isinstance(e, GridRef):
            store = self._storage(frame, e.grid)
            if not e.indices:
                return store[()] if store.ndim == 0 else store
            idx = tuple(int(self._eval(frame, i)) - 1 for i in e.indices)
            self._bounds_check(frame, e.grid, store, idx)
            return store[idx]
        if isinstance(e, BinOp):
            return self._eval_binop(frame, e)
        if isinstance(e, UnOp):
            v = self._eval(frame, e.operand)
            return (not bool(v)) if e.op == "not" else -v
        if isinstance(e, LibCall):
            f = get_libfunc(e.name)
            f.check_arity(len(e.args))
            args = [self._eval_arg(frame, a) for a in e.args]
            return f.impl(*args)
        if isinstance(e, FuncCall):
            args = [self._eval_arg(frame, a) for a in e.args]
            return self.call(e.name, args)
        raise ExecutionError(f"cannot evaluate expression {type(e).__name__}")

    @staticmethod
    def _is_int(v: Any) -> bool:
        if isinstance(v, bool):
            return False
        return isinstance(v, int) or (
            isinstance(v, np.generic) and np.issubdtype(type(v), np.integer)
        )

    def _eval_binop(self, frame: _Frame, e: BinOp) -> Any:
        op = e.op
        if op == "and":
            return self._truth(frame, e.left) and self._truth(frame, e.right)
        if op == "or":
            return self._truth(frame, e.left) or self._truth(frame, e.right)
        lv = self._eval(frame, e.left)
        rv = self._eval(frame, e.right)
        if op == "+":
            return lv + rv
        if op == "-":
            return lv - rv
        if op == "*":
            return lv * rv
        if op == "/":
            if self._is_int(lv) and self._is_int(rv):
                return np.int64(np.trunc(lv / rv))  # FORTRAN integer division
            return lv / rv
        if op == "//":
            return np.int64(np.trunc(lv / rv))
        if op == "%":
            r = np.abs(lv) % np.abs(rv)
            return -r if lv < 0 else r
        if op == "**":
            return lv ** rv
        if op == "==":
            return lv == rv
        if op == "!=":
            return lv != rv
        if op == "<":
            return lv < rv
        if op == "<=":
            return lv <= rv
        if op == ">":
            return lv > rv
        if op == ">=":
            return lv >= rv
        raise ExecutionError(f"unknown operator {op!r}")
