"""Execution storage for GLAF programs.

The :class:`ExecutionContext` owns the storage of every global-scope grid —
module-scope grids of the generated module, COMMON-block members, grids
imported from existing modules, and TYPE elements (stored flat under the
element's grid name; the ``parent%name`` spelling is a code-generation
concern only).  Scalars are stored as 0-d NumPy arrays so that assignment
through any reference is visible everywhere, mirroring FORTRAN storage
association.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..core.function import GlafProgram
from ..core.grid import Grid
from ..core.types import numpy_dtype
from ..errors import ExecutionError

__all__ = ["ExecutionContext", "as_storage"]


def as_storage(grid: Grid, value: Any = None, sizes: dict[str, int] | None = None) -> np.ndarray:
    """Materialize storage for a grid, optionally from an initial value."""
    dtype = numpy_dtype(grid.ty)
    if grid.rank == 0:
        cell = np.zeros((), dtype=dtype)
        if value is not None:
            cell[()] = value
        elif grid.init_data is not None:
            cell[()] = grid.init_data
        return cell
    shape = grid.shape(sizes)
    if value is not None:
        arr = np.asarray(value, dtype=dtype)
        if arr.shape != shape:
            raise ExecutionError(
                f"grid {grid.name!r}: initial value shape {arr.shape} != {shape}"
            )
        return arr.copy()
    arr = np.zeros(shape, dtype=dtype)
    if grid.init_data is not None:
        arr[...] = grid.init_data
    return arr


class ExecutionContext:
    """Global storage plus resolution of symbolic dimensions.

    Parameters
    ----------
    program:
        The GLAF program whose global grids this context stores.
    sizes:
        Values for symbolic dimensions of global grids (e.g. ``{"nl": 60}``).
    values:
        Initial contents for selected global grids.  Grids not listed are
        zero-initialized (or use their ``init_data``).
    """

    def __init__(
        self,
        program: GlafProgram,
        sizes: dict[str, int] | None = None,
        values: dict[str, Any] | None = None,
    ):
        self.program = program
        self.sizes = dict(sizes or {})
        values = values or {}
        unknown = set(values) - set(program.global_grids)
        if unknown:
            raise ExecutionError(f"values given for unknown global grids {sorted(unknown)}")
        self.globals: dict[str, np.ndarray] = {}
        for name, grid in program.global_grids.items():
            self.globals[name] = as_storage(grid, values.get(name), self._grid_sizes(grid))

    def _grid_sizes(self, grid: Grid) -> dict[str, int]:
        out = {}
        for d in grid.symbolic_dims():
            if d in self.sizes:
                out[d] = self.sizes[d]
            elif d in self.globals and self.program.global_grids[d].rank == 0:
                out[d] = int(self.globals[d][()])
            else:
                raise ExecutionError(
                    f"global grid {grid.name!r}: cannot resolve dimension {d!r}; "
                    "pass it in sizes= or define the scalar grid first"
                )
        return out

    def clone(self) -> "ExecutionContext":
        """An independent deep copy of the global storage.

        Used by the guarded executor to run the vectorized probe without
        touching the authoritative state.  Aliasing is *not* preserved
        between the clone and the original — they are separate worlds.
        """
        c = object.__new__(ExecutionContext)
        c.program = self.program
        c.sizes = dict(self.sizes)
        c.globals = {n: arr.copy() for n, arr in self.globals.items()}
        return c

    # -- access ----------------------------------------------------------
    def get(self, name: str) -> np.ndarray:
        try:
            return self.globals[name]
        except KeyError:
            raise ExecutionError(f"no global grid {name!r}") from None

    def set(self, name: str, value: Any) -> None:
        store = self.get(name)
        if store.ndim == 0:
            store[()] = value
        else:
            store[...] = value

    def value(self, name: str) -> Any:
        """Python-native value of a scalar, array view otherwise."""
        store = self.get(name)
        return store[()] if store.ndim == 0 else store

    def snapshot(self, names: Iterable[str] | None = None) -> dict[str, np.ndarray]:
        """Deep copies, for before/after comparisons in tests."""
        names = list(names) if names is not None else list(self.globals)
        return {n: self.get(n).copy() for n in names}

    def common_block_view(self, block: str) -> dict[str, np.ndarray]:
        """Storage of one COMMON block, in declaration order (§3.2)."""
        grids = self.program.common_blocks().get(block)
        if grids is None:
            raise ExecutionError(f"no COMMON block {block!r}")
        return {g.name: self.globals[g.name] for g in grids}
