"""Vectorized execution of GLAF steps as whole-grid NumPy array programs.

The reference :class:`~repro.glafexec.interp.Interpreter` executes one loop
iteration at a time; for the paper's kernels (2x60-level SARB loops, FUN3D
edge sweeps) that costs a Python-level dispatch per cell.  This module lifts
each step's perfect loop nest into array operations over the full iteration
space — the loop->map transformation of DaCe's ``LoopToMap`` pass, restricted
to the patterns GLAF steps actually produce:

* **pointwise** formulas (the write covers every loop index) become a single
  array expression committed through a strided slice;
* **reductions** (the write covers a proper subset of the loop indices and
  the formula is ``acc = acc + term``, ``acc = acc - term`` or
  ``acc = MIN/MAX(acc, term)``) become ``sum``/``min``/``max`` over the
  missing axes;
* **conditionals** (``IfStmt`` bodies and step conditions) become boolean
  masks applied with ``np.where`` (pointwise) or reduction identities
  (masked reductions).

Everything else — loop-carried dependences, indirect/scatter writes,
subroutine calls or early exits in the body, triangular bounds — is *not*
lifted: the step runs through the inherited reference interpreter and the
demotion is recorded as an ``executor:fallback`` DecisionLog event, so a
vectorized run is never wrong, only selectively slower.  A lift that fails
at runtime (out-of-bounds gather, zero divisor in integer arithmetic) rolls
back the step's written grids and re-executes through the interpreter the
same way.

Sequencing statements as whole-grid operations is loop distribution; it is
legal here because :func:`compile_step` only accepts steps in which every
read of a grid written by the step uses exactly the write's index pattern
(so all cross-statement dependences are iteration-local) and conditions
never read written grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.expr import (
    BinOp,
    Const,
    Expr,
    FuncCall,
    GridRef,
    IndexVar,
    LibCall,
    UnOp,
    grids_read,
    index_vars_used,
    walk,
)
from ..core.libfuncs import get as get_libfunc
from ..core.step import Assign, CallStmt, ExitLoop, IfStmt, Return, Step
from ..errors import ExecutionError, NumericIntegrityError, ResourceLimitError
from ..numeric import sentinel as _sentinel
from ..robust import faults as _faults
from .interp import Interpreter

__all__ = [
    "FallbackEvent", "LiftFailure", "LiftedStep", "VectorizedInterpreter",
    "compile_step", "liftability_report",
]


# ----------------------------------------------------------------------
# compile-time analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LiftFailure:
    """Why a step cannot run as an array program (it will be interpreted)."""

    reason: str


@dataclass(frozen=True)
class _ArrayAssign:
    """One flattened, classified assignment of a lifted step."""

    target: GridRef
    kind: str              # "pointwise" | "reduce"
    op: str                # "" (pointwise) | "+" | "min" | "max"
    expr: Expr             # full RHS (pointwise) or the reduction term
    mask: Expr | None      # conjunction of enclosing IfStmt conditions


@dataclass(frozen=True)
class LiftedStep:
    """A step compiled to an executable whole-grid array program.

    ``snapshot_free`` lists written grids whose pre-step copy the runtime
    provably never needs: the grid is written pointwise with no mask and
    no step condition, and the step reads it nowhere (per the backward
    grid-liveness pass over the step CFG).  Re-executing such a step
    through the interpreter rewrites every cell of the written slice from
    inputs the failed lift never touched, so a torn partial write heals
    itself and the rollback snapshot is dead weight.
    """

    assigns: tuple[_ArrayAssign, ...]
    written: tuple[str, ...]
    snapshot_free: tuple[str, ...] = ()


class _Unliftable(Exception):
    pass


def _conj(mask: Expr | None, cond: Expr) -> Expr:
    return cond if mask is None else BinOp("and", mask, cond)


def _flatten(stmts, mask: Expr | None) -> list[tuple[Assign, Expr | None]]:
    """Flatten a loop body into (assignment, guard-mask) pairs."""
    out: list[tuple[Assign, Expr | None]] = []
    for s in stmts:
        if isinstance(s, Assign):
            out.append((s, mask))
        elif isinstance(s, IfStmt):
            out.extend(_flatten(s.then, _conj(mask, s.cond)))
            out.extend(_flatten(s.orelse, _conj(mask, UnOp("not", s.cond))))
        elif isinstance(s, CallStmt):
            raise _Unliftable(f"subroutine call {s.name!r} inside the loop body")
        elif isinstance(s, Return):
            raise _Unliftable("early return inside the loop body")
        elif isinstance(s, ExitLoop):
            raise _Unliftable("early loop exit (EXIT) inside the loop body")
        else:
            raise _Unliftable(f"unsupported statement {type(s).__name__}")
    return out


def _match_reduction(target: GridRef, expr: Expr) -> tuple[str, Expr] | None:
    """Match ``acc = acc + t`` / ``acc = acc - t`` / ``acc = MIN|MAX(acc, t)``."""
    if isinstance(expr, BinOp) and expr.op == "+":
        if expr.left == target:
            return "+", expr.right
        if expr.right == target:
            return "+", expr.left
    if isinstance(expr, BinOp) and expr.op == "-" and expr.left == target:
        return "+", UnOp("neg", expr.right)
    if (isinstance(expr, LibCall) and expr.name in ("MIN", "MAX")
            and len(expr.args) == 2):
        op = "min" if expr.name == "MIN" else "max"
        if expr.args[0] == target:
            return op, expr.args[1]
        if expr.args[1] == target:
            return op, expr.args[0]
    return None


def compile_step(step: Step) -> LiftedStep | LiftFailure:
    """Analyze one loop step; return an array program or the lift failure."""
    if not step.is_loop:
        return LiftFailure("not a loop step")
    free = step.free_index_vars()
    if free:
        return LiftFailure(f"unbound index variable(s) {sorted(free)}")
    for e in step.all_exprs():
        for node in walk(e):
            if isinstance(node, FuncCall):
                return LiftFailure(
                    f"user-function call {node.name!r} in an expression")
    for r in step.ranges:
        for b in (r.start, r.end, r.step):
            if index_vars_used(b):
                return LiftFailure(
                    f"loop bounds of {r.var!r} depend on another loop index "
                    "(triangular iteration space)")
    try:
        flat = _flatten(step.stmts, None)
    except _Unliftable as u:
        return LiftFailure(str(u))
    if not flat:
        return LiftFailure("empty loop body")

    loop_vars = step.index_names()
    all_vars = set(loop_vars)
    assigns: list[_ArrayAssign] = []
    write_pattern: dict[str, tuple[Expr, ...]] = {}
    write_kind: dict[str, str] = {}
    write_op: dict[str, str] = {}
    for s, mask in flat:
        tgt = s.target
        tvars: list[str] = []
        for ie in tgt.indices:
            if isinstance(ie, IndexVar) and ie.name in all_vars:
                if ie.name in tvars:
                    return LiftFailure(
                        f"index variable {ie.name!r} used twice in the write "
                        f"target {tgt.grid!r}")
                tvars.append(ie.name)
            elif isinstance(ie, Const) and isinstance(ie.value, int):
                continue
            else:
                return LiftFailure(
                    f"indirect or non-identity write index on grid "
                    f"{tgt.grid!r}")
        if set(tvars) == all_vars:
            kind, op, expr = "pointwise", "", s.expr
        else:
            m = _match_reduction(tgt, s.expr)
            if m is None:
                return LiftFailure(
                    f"write to {tgt.grid!r} covers only loop indices "
                    f"{tvars or '[]'} and is not a recognized reduction "
                    "(loop-carried dependence)")
            op, expr = m
            if tgt.grid in grids_read(expr):
                return LiftFailure(
                    f"reduction term reads its accumulator {tgt.grid!r}")
            kind = "reduce"
            # Several reductions into one accumulator are fine when they use
            # the same associative-commutative op (the terms never read the
            # accumulator, so the combined result is order-independent);
            # mixed ops (+ then MAX) are genuinely order-dependent.
            prev_op = write_op.get(tgt.grid)
            if prev_op is not None and prev_op != op:
                return LiftFailure(
                    f"grid {tgt.grid!r} updated by reductions with mixed "
                    f"operators ({prev_op!r} and {op!r})")
            write_op[tgt.grid] = op
        prev = write_pattern.get(tgt.grid)
        if prev is not None and prev != tgt.indices:
            return LiftFailure(
                f"grid {tgt.grid!r} written with two different index patterns")
        if write_kind.get(tgt.grid, kind) != kind:
            return LiftFailure(
                f"grid {tgt.grid!r} mixes pointwise and reduction writes")
        write_pattern[tgt.grid] = tgt.indices
        write_kind[tgt.grid] = kind
        assigns.append(_ArrayAssign(tgt, kind, op, expr, mask))

    written = set(write_pattern)
    reduce_grids = {g for g, k in write_kind.items() if k == "reduce"}
    # Reads of written grids: pointwise-written grids may only be read with
    # exactly the write's index pattern (iteration-local dependence);
    # reduction accumulators may not be read at all outside their update.
    for a in assigns:
        for node in walk(a.expr):
            if not isinstance(node, GridRef) or node.grid not in written:
                continue
            if node.grid in reduce_grids:
                return LiftFailure(
                    f"reduction accumulator {node.grid!r} read elsewhere "
                    "in the step")
            if node.indices != write_pattern[node.grid]:
                return LiftFailure(
                    f"loop-carried dependence: {node.grid!r} read with an "
                    "index pattern different from its write pattern")
    guard_exprs = [a.mask for a in assigns if a.mask is not None]
    if step.condition is not None:
        guard_exprs.append(step.condition)
    for e in guard_exprs:
        overlap = grids_read(e) & written
        if overlap:
            return LiftFailure(
                f"condition reads grid(s) {sorted(overlap)} written in the "
                "step")
    for r in step.ranges:
        for b in (r.start, r.end, r.step):
            overlap = grids_read(b) & written
            if overlap:
                return LiftFailure(
                    f"loop bounds read grid(s) {sorted(overlap)} written in "
                    "the step")

    # Liveness proof for snapshot elision: a grid written only pointwise,
    # unmasked and unconditioned, that the step never reads (live-on-entry
    # per the dataflow engine's backward pass) is self-healing under
    # re-execution — no rollback copy needed.
    from ..analysis.dataflow import step_live_on_entry

    live_in = step_live_on_entry(step)
    masked = {a.target.grid for a in assigns if a.mask is not None}
    snapshot_free = tuple(sorted(
        g for g in written
        if write_kind[g] == "pointwise"
        and g not in masked
        and step.condition is None
        and g not in live_in))
    return LiftedStep(assigns=tuple(assigns), written=tuple(sorted(written)),
                      snapshot_free=snapshot_free)


def liftability_report(program) -> dict[tuple[str, int], str]:
    """Map every loop step to its lift-failure reason ('' when liftable).

    Non-loop steps are omitted: they execute through the interpreter by
    design (no fallback is recorded for them).  Used by tests and by the
    EXECUTORS.md worked example.
    """
    out: dict[tuple[str, int], str] = {}
    for fn in sorted(program.functions(), key=lambda f: f.name):
        for idx, step in enumerate(fn.steps):
            if not step.is_loop:
                continue
            plan = compile_step(step)
            out[(fn.name, idx)] = (
                plan.reason if isinstance(plan, LiftFailure) else "")
    return out


# ----------------------------------------------------------------------
# runtime
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FallbackEvent:
    """One step demoted from the vectorized path to the interpreter."""

    function: str
    step_index: int
    step_name: str
    reason: str


_DIRECT = object()   # sentinel plan: non-loop step, interpret without demoting


def _int_like(v: Any) -> bool:
    if isinstance(v, bool):
        return False
    if isinstance(v, int):
        return True
    if isinstance(v, np.ndarray):
        return np.issubdtype(v.dtype, np.integer)
    return isinstance(v, np.generic) and np.issubdtype(type(v), np.integer)


def _identity(op: str, dtype: np.dtype):
    """Reduction identity in the term's own dtype (masked-out lanes)."""
    if op == "+":
        return np.zeros((), dtype=dtype)[()]
    if np.issubdtype(dtype, np.floating):
        return np.inf if op == "min" else -np.inf
    info = np.iinfo(dtype)
    return info.max if op == "min" else info.min


class VectorizedInterpreter(Interpreter):
    """Interpreter subclass that executes liftable loop steps as whole-grid
    array programs and transparently interprets everything else.

    Results match the reference interpreter exactly for pointwise steps and
    to floating-point reassociation error for reductions (NumPy sums pair
    elements in a different order than the serial loop).  Fault-injection
    runs (:mod:`repro.robust.faults`) disable lifting entirely so injected
    faults hit the same per-iteration sites as the reference.
    """

    def __init__(self, *args: Any, **kw: Any):
        super().__init__(*args, **kw)
        self.fallbacks: list[FallbackEvent] = []
        self._plans: dict[tuple[str, int], Any] = {}
        self._demoted: set[tuple[str, int]] = set()

    def call(self, name: str, args: list[Any] | tuple = ()) -> Any:
        from ..observe import get_metrics, get_tracer

        _m = get_metrics()
        if _m.enabled:
            _m.counter("exec.vectorized.calls").inc()
        if self._depth == 0:
            if self._budget is not None:
                self._budget.start()
            with get_tracer().span("exec.vectorized", entry=name):
                return self._call(name, args)
        return self._call(name, args)

    # ------------------------------------------------------------------
    def _exec_step(self, frame, idx: int, step: Step) -> None:
        if _faults._ACTIVE is not None:
            # Keep injection sites (exec.interp.step/iter, numeric.sentinel)
            # hitting per iteration, exactly as the reference does.
            Interpreter._exec_step(self, frame, idx, step)
            return
        key = (frame.fn.name, idx)
        if key in self._demoted:
            Interpreter._exec_step(self, frame, idx, step)
            return
        plan = self._plans.get(key)
        if plan is None:
            plan = _DIRECT if not step.is_loop else compile_step(step)
            self._plans[key] = plan
            if isinstance(plan, LiftFailure):
                self._note_fallback(frame, idx, step, plan.reason)
            elif isinstance(plan, LiftedStep) and plan.snapshot_free:
                self._note_snapshot_elide(frame, idx, step, plan)
        if plan is _DIRECT or isinstance(plan, LiftFailure):
            Interpreter._exec_step(self, frame, idx, step)
            return

        frame.current_step = idx
        frame.current_step_name = step.name
        elided = set(plan.snapshot_free)
        snap = {g: self._storage(frame, g).copy() for g in plan.written
                if g not in elided}
        try:
            self._exec_lifted(frame, idx, step, plan)
        except ResourceLimitError:
            # The budget is spent for *this* run — the error stays
            # terminal — but the step's partial writes must not survive:
            # a later call on this interpreter (fresh budget) or a guard
            # probing a clone must see pre-step storage, not a torn grid.
            # Sticky-demote so any re-run interprets the step instead of
            # re-tripping the lift.
            for g, saved in snap.items():
                self._storage(frame, g)[...] = saved
            self._demoted.add(key)
            self._note_fallback(frame, idx, step,
                                "resource budget exhausted mid-lift")
            raise
        except NumericIntegrityError:
            raise
        except ExecutionError as e:
            # Roll back the step's writes and let the reference interpreter
            # produce the authoritative result (or the canonical error).
            for g, saved in snap.items():
                self._storage(frame, g)[...] = saved
            self._demoted.add(key)
            self._note_fallback(frame, idx, step,
                                f"runtime lift failure: {e}")
            Interpreter._exec_step(self, frame, idx, step)
            return
        from ..observe import get_metrics

        m = get_metrics()
        if m.enabled:
            m.counter("exec.vectorized.steps").inc()

    def _note_snapshot_elide(self, frame, idx: int, step: Step,
                             plan: LiftedStep) -> None:
        """Record the liveness-proved rollback-snapshot elision (once per
        compiled step)."""
        from ..observe import get_decisions, get_metrics

        m = get_metrics()
        if m.enabled:
            m.counter("exec.vectorized.snapshot_elided").inc(
                len(plan.snapshot_free))
        dl = get_decisions()
        if dl.enabled:
            dl.record("executor:snapshot-elide", frame.fn.name, idx,
                      step.name, "no-rollback-copy",
                      reasons=tuple(
                          f"grid {g!r} written pointwise, unmasked, and "
                          "never read in the step (dead on step entry)"
                          for g in plan.snapshot_free))

    def _note_fallback(self, frame, idx: int, step: Step, reason: str) -> None:
        self.fallbacks.append(
            FallbackEvent(frame.fn.name, idx, step.name, reason))
        from ..observe import get_decisions, get_metrics

        m = get_metrics()
        if m.enabled:
            m.counter("exec.vectorized.fallbacks").inc()
        dl = get_decisions()
        if dl.enabled:
            dl.record("executor:fallback", frame.fn.name, idx, step.name,
                      "interpreter", reasons=(reason,))

    # ------------------------------------------------------------------
    def _exec_lifted(self, frame, idx: int, step: Step,
                     plan: LiftedStep) -> None:
        nranges = len(step.ranges)
        axes: dict[str, np.ndarray] = {}
        extents: dict[str, tuple[int, int, int, int]] = {}  # start,last,stride,n
        axis_of: dict[str, int] = {}
        shape_l: list[int] = []
        for k, r in enumerate(step.ranges):
            start = int(self._eval(frame, r.start))
            end = int(self._eval(frame, r.end))
            stride = int(self._eval(frame, r.step))
            if stride <= 0:
                raise ExecutionError(
                    f"{frame.fn.name}/{step.name}: non-positive stride")
            vals = np.arange(start, end + 1, stride, dtype=np.int64)
            shape_l.append(vals.size)
            axis_of[r.var] = k
            if vals.size:
                extents[r.var] = (start, int(vals[-1]), stride, vals.size)
            axes[r.var] = vals.reshape(
                (1,) * k + (vals.size,) + (1,) * (nranges - 1 - k))
        shape = tuple(shape_l)
        total = 1
        for n in shape:
            total *= n
        if total == 0:
            return
        self.stats.note_iter(frame.fn.name, idx, total)
        if self._budget is not None:
            self._budget.tick(total)

        base_mask = None
        if step.condition is not None:
            base_mask = self._veval(frame, step.condition, axes)

        for a in plan.assigns:
            store = self._storage(frame, a.target.grid)
            if not a.target.indices and store.ndim != 0:
                raise ExecutionError(
                    f"cannot assign scalar to whole array {a.target.grid!r}")
            sel: list[Any] = []
            out_axes: list[int] = []   # loop axis per IndexVar dim, in order
            for k, ie in enumerate(a.target.indices):
                if k >= store.ndim:
                    raise ExecutionError(
                        f"{frame.fn.name}: rank mismatch writing grid "
                        f"{a.target.grid!r}")
                extent = store.shape[k]
                if isinstance(ie, IndexVar):
                    start, last, stride, _n = extents[ie.name]
                    if start < 1 or last > extent:
                        bad = start if start < 1 else last
                        raise ExecutionError(
                            f"{frame.fn.name}: index {bad} out of bounds for "
                            f"dimension {k + 1} of grid {a.target.grid!r} "
                            f"(extent {extent})")
                    sel.append(slice(start - 1, last, stride))
                    out_axes.append(axis_of[ie.name])
                else:
                    c = int(ie.value)
                    if not (1 <= c <= extent):
                        raise ExecutionError(
                            f"{frame.fn.name}: index {c} out of bounds for "
                            f"dimension {k + 1} of grid {a.target.grid!r} "
                            f"(extent {extent})")
                    sel.append(c - 1)
            tsel = tuple(sel)

            mask = base_mask
            if a.mask is not None:
                mv = self._veval(frame, a.mask, axes)
                mask = mv if mask is None else np.logical_and(mask, mv)
            if mask is not None and np.ndim(mask) == 0:
                if not bool(mask):
                    continue       # uniformly false guard: no contribution
                mask = None        # uniformly true guard

            raw = np.asarray(self._veval(frame, a.expr, axes))
            if a.kind == "pointwise":
                value = np.broadcast_to(raw, shape)
                if out_axes != list(range(nranges)):
                    value = np.transpose(value, out_axes)
                if mask is not None:
                    mfull = np.broadcast_to(np.asarray(mask), shape)
                    if out_axes != list(range(nranges)):
                        mfull = np.transpose(mfull, out_axes)
                    value = np.where(mfull, value, store[tsel])
            else:
                tset = {v for v in
                        (ie.name for ie in a.target.indices
                         if isinstance(ie, IndexVar))}
                red_axes = tuple(k for k, r in enumerate(step.ranges)
                                 if r.var not in tset)
                term = np.broadcast_to(raw, shape)
                if mask is not None:
                    term = np.where(np.broadcast_to(np.asarray(mask), shape),
                                    term, _identity(a.op, term.dtype))
                if a.op == "+":
                    contrib = term.sum(axis=red_axes)
                elif a.op == "min":
                    contrib = term.min(axis=red_axes)
                else:
                    contrib = term.max(axis=red_axes)
                kept = [k for k in range(nranges) if k not in red_axes]
                perm = [kept.index(ax) for ax in out_axes]
                if perm != list(range(len(kept))):
                    contrib = np.transpose(contrib, perm)
                cur = store[tsel]
                if a.op == "+":
                    value = cur + contrib
                elif a.op == "min":
                    value = np.minimum(cur, contrib)
                else:
                    value = np.maximum(cur, contrib)
            if _sentinel._ACTIVE is not None:
                _sentinel.check_value(
                    value, function=frame.fn.name, step_index=idx,
                    step_name=step.name, grid=a.target.grid, cell=None)
            store[tsel] = value

    # ------------------------------------------------------------------
    # whole-grid expression evaluation
    # ------------------------------------------------------------------
    def _veval(self, frame, e: Expr, axes: dict[str, np.ndarray]) -> Any:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, IndexVar):
            try:
                return axes[e.name]
            except KeyError:
                raise ExecutionError(
                    f"unbound index variable {e.name!r}") from None
        if isinstance(e, GridRef):
            store = self._storage(frame, e.grid)
            if not e.indices:
                return store[()] if store.ndim == 0 else store
            sel = []
            for k, ie in enumerate(e.indices):
                ia = np.asarray(self._veval(frame, ie, axes),
                                dtype=np.int64) - 1
                if k >= store.ndim:
                    raise ExecutionError(
                        f"{frame.fn.name}: rank mismatch reading grid "
                        f"{e.grid!r}")
                n = store.shape[k]
                lo, hi = int(ia.min()), int(ia.max())
                if lo < 0 or hi >= n:
                    bad = lo if lo < 0 else hi
                    raise ExecutionError(
                        f"{frame.fn.name}: index {bad + 1} out of bounds for "
                        f"dimension {k + 1} of grid {e.grid!r} (extent {n})")
                sel.append(ia)
            return store[tuple(sel)]
        if isinstance(e, BinOp):
            return self._veval_binop(frame, e, axes)
        if isinstance(e, UnOp):
            v = self._veval(frame, e.operand, axes)
            return np.logical_not(v) if e.op == "not" else np.negative(v)
        if isinstance(e, LibCall):
            f = get_libfunc(e.name)
            f.check_arity(len(e.args))
            args = [self._storage(frame, a.grid)
                    if isinstance(a, GridRef) and not a.indices
                    else self._veval(frame, a, axes)
                    for a in e.args]
            return f.impl(*args)
        raise ExecutionError(
            f"cannot vectorize expression {type(e).__name__}")

    def _veval_binop(self, frame, e: BinOp,
                     axes: dict[str, np.ndarray]) -> Any:
        op = e.op
        # No short-circuit for and/or: operands are side-effect free, and a
        # bounds violation in an unreachable operand falls back cleanly.
        lv = self._veval(frame, e.left, axes)
        rv = self._veval(frame, e.right, axes)
        if op == "and":
            return np.logical_and(lv, rv)
        if op == "or":
            return np.logical_or(lv, rv)
        if op == "+":
            return lv + rv
        if op == "-":
            return lv - rv
        if op == "*":
            return lv * rv
        if op in ("/", "//"):
            if op == "/" and not (_int_like(lv) and _int_like(rv)):
                return lv / rv
            if np.any(np.asarray(rv) == 0):
                raise ExecutionError("integer division by zero")
            q = np.trunc(np.true_divide(lv, rv))  # FORTRAN integer division
            return (q.astype(np.int64) if isinstance(q, np.ndarray)
                    else np.int64(q))
        if op == "%":
            if np.any(np.asarray(rv) == 0):
                raise ExecutionError("modulo by zero")
            r = np.abs(lv) % np.abs(rv)
            return np.where(np.asarray(lv) < 0, -r, r)  # dividend's sign
        if op == "**":
            return lv ** rv
        if op == "==":
            return np.equal(lv, rv)
        if op == "!=":
            return np.not_equal(lv, rv)
        if op == "<":
            return np.less(lv, rv)
        if op == "<=":
            return np.less_equal(lv, rv)
        if op == ">":
            return np.greater(lv, rv)
        if op == ">=":
            return np.greater_equal(lv, rv)
        raise ExecutionError(f"unknown operator {op!r}")
