"""Convenience runners: execute kernels via the IR interpreter or via
GLAF-generated Python, from one call.

``run_generated_python`` compiles the Python source emitted by
:mod:`repro.codegen.python_gen` and executes the requested entry point with
a ``Globals`` object mirroring an :class:`ExecutionContext`, so the two
execution paths can be compared element-for-element in tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..codegen.python_gen import generate_python_source
from ..core.function import GlafProgram
from ..errors import CodegenError, ExecutionError
from ..optimize.plan import OptimizationPlan, make_plan
from ..robust import ResourceLimits, wall_clock_guard
from .context import ExecutionContext
from .interp import Interpreter

__all__ = ["run_interpreted", "run_generated_python", "GeneratedModule"]


def run_interpreted(
    program: GlafProgram,
    entry: str,
    args: list[Any] | tuple = (),
    *,
    sizes: dict[str, int] | None = None,
    values: dict[str, Any] | None = None,
    save_inner_arrays: bool = False,
    limits: ResourceLimits | None = None,
) -> tuple[Any, ExecutionContext, Interpreter]:
    """Run ``entry`` through the IR interpreter on a fresh context."""
    from ..observe import get_tracer

    with get_tracer().span("exec.run.interp", entry=entry, program=program.name):
        ctx = ExecutionContext(program, sizes=sizes, values=values)
        interp = Interpreter(program, ctx, save_inner_arrays=save_inner_arrays,
                             limits=limits)
        result = interp.call(entry, list(args))
        return result, ctx, interp


class GeneratedModule:
    """A compiled GLAF-generated Python module plus its globals object."""

    def __init__(self, plan: OptimizationPlan, context: ExecutionContext):
        self.source = generate_python_source(plan)
        self.module_name = f"<glaf:{plan.program.name}>"
        self.namespace: dict[str, Any] = {}
        try:
            exec(compile(self.source, self.module_name, "exec"), self.namespace)
        except SyntaxError as e:
            lines = self.source.splitlines()
            bad = (lines[e.lineno - 1].strip()
                   if e.lineno and 0 < e.lineno <= len(lines) else "?")
            raise CodegenError(
                f"generated Python for module {self.module_name} does not "
                f"compile: {e.msg} at line {e.lineno}: {bad!r}"
            ) from e
        self.globals_obj = self.namespace["Globals"](
            **{name: store for name, store in context.globals.items()}
        )

    def call(self, entry: str, args: list[Any] | tuple = (),
             *, limits: ResourceLimits | None = None) -> Any:
        fn = self.namespace.get(entry)
        if fn is None:
            raise ExecutionError(f"generated module has no function {entry!r}")
        with wall_clock_guard(limits, what=f"generated {self.module_name}"):
            return fn(self.globals_obj, *args)

    def reset_save_store(self) -> None:
        self.namespace["reset_save_store"]()


def run_generated_python(
    program: GlafProgram,
    entry: str,
    args: list[Any] | tuple = (),
    *,
    variant: str = "GLAF serial",
    sizes: dict[str, int] | None = None,
    values: dict[str, Any] | None = None,
    save_inner_arrays: bool = False,
) -> tuple[Any, ExecutionContext]:
    """Generate Python for ``program``, execute ``entry``, return result+context.

    The context's global storage is shared with the generated module's
    ``Globals`` object, so global effects are observable on the returned
    context exactly as with the interpreter path.
    """
    from ..observe import get_tracer
    from ..optimize.plan import Tweaks

    with get_tracer().span("exec.run.python", entry=entry, program=program.name):
        ctx = ExecutionContext(program, sizes=sizes, values=values)
        plan = make_plan(
            program, variant, tweaks=Tweaks(save_inner_arrays=save_inner_arrays)
        )
        mod = GeneratedModule(plan, ctx)
        result = mod.call(entry, list(args))
        return result, ctx
