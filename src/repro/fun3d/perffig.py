"""Figure-7 performance harness.

Produces the paper's Figure 7: 16-thread speed-up over the original serial
implementation for every combination of the parallelization options and
the no-reallocation option, plus the manually-parallelized original.

Calibration note (documented in EXPERIMENTS.md): FUN3D's hand-written
monolithic kernel performs roughly **half** the per-cell instructions of
the GLAF decomposition — the original keeps staged quantities in registers
across its fused loops instead of bouncing them through the 50 temporary
arrays — so these simulations use ``monolithic_fusion_factor = 0.51``.
That one constant reproduces the paper's observation that the manual
version outperforms the best GLAF version by ~2.3x; all orderings and
collapse factors then follow from the mechanistic model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.compilermodel import CompilerModel
from ..perf.machine import MachineSpec, xeon_e5_2637v4_node
from ..perf.simulate import SimOptions, SimResult, Simulator
from .kernels import build_fun3d_program, fun3d_workload
from .options import Fun3DOptions, all_combinations, make_fun3d_plan

__all__ = ["FUN3D_MONOLITHIC_FUSION", "Figure7Row", "simulate_option",
           "simulate_manual", "simulate_baseline", "figure7_rows",
           "PAPER_FIGURE7"]

FUN3D_MONOLITHIC_FUSION = 0.51

# The data points the paper reports explicitly for Figure 7.
PAPER_FIGURE7 = {
    "manual": 3.85,
    "best_glaf": 1.67,          # Parallel EdgeJP + no reallocation
    "worst_approx": 1.0 / 128.0,
}


@dataclass(frozen=True)
class Figure7Row:
    label: str
    options: Fun3DOptions | None     # None for the manual version
    speedup: float
    seconds: float


def _compiler(machine: MachineSpec) -> CompilerModel:
    return CompilerModel(machine, monolithic_fusion_factor=FUN3D_MONOLITHIC_FUSION)


def _simulate(plan, machine, workload, options) -> SimResult:
    return Simulator(plan, machine, workload, options,
                     compiler=_compiler(machine)).run()


def simulate_baseline(ncell: int = 1_000_000,
                      machine: MachineSpec = xeon_e5_2637v4_node) -> SimResult:
    """The original serial implementation (monolithic, temps hoisted)."""
    program = build_fun3d_program()
    wl = fun3d_workload(ncell)
    plan = make_fun3d_plan(program, Fun3DOptions(), threads=1)
    return _simulate(plan, machine, wl,
                     SimOptions(threads=1, monolithic=True, save_arrays=True))


def simulate_option(opts: Fun3DOptions, ncell: int = 1_000_000,
                    threads: int = 16,
                    machine: MachineSpec = xeon_e5_2637v4_node) -> SimResult:
    program = build_fun3d_program()
    wl = fun3d_workload(ncell)
    plan = make_fun3d_plan(program, opts, threads=threads)
    return _simulate(plan, machine, wl,
                     SimOptions(threads=threads, save_arrays=opts.no_reallocation))


def simulate_manual(ncell: int = 1_000_000, threads: int = 16,
                    machine: MachineSpec = xeon_e5_2637v4_node) -> SimResult:
    """The manually-parallelized original: outermost loop parallel, no GLAF
    structure, temporaries hoisted."""
    program = build_fun3d_program()
    wl = fun3d_workload(ncell)
    plan = make_fun3d_plan(program, Fun3DOptions(parallel_edgejp=True),
                           threads=threads)
    return _simulate(plan, machine, wl,
                     SimOptions(threads=threads, monolithic=True, save_arrays=True))


def figure7_rows(ncell: int = 1_000_000, threads: int = 16,
                 machine: MachineSpec = xeon_e5_2637v4_node) -> list[Figure7Row]:
    """All 32 option combinations plus the manual version, as Figure 7."""
    base = simulate_baseline(ncell, machine)
    rows: list[Figure7Row] = []
    for opts in all_combinations():
        r = simulate_option(opts, ncell, threads, machine)
        rows.append(Figure7Row(
            label=opts.label, options=opts,
            speedup=base.total_cycles / r.total_cycles,
            seconds=r.seconds,
        ))
    man = simulate_manual(ncell, threads, machine)
    rows.append(Figure7Row(
        label="manual parallel (original, outermost)",
        options=None,
        speedup=base.total_cycles / man.total_cycles,
        seconds=man.seconds,
    ))
    return rows
