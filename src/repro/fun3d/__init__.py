"""FUN3D Jacobian matrix reconstruction case study (synthetic mini-app)."""

from .jacobian import (
    ANGLE_THRESHOLD,
    EDGE_WEIGHT,
    GAMMA,
    RMS_TOLERANCE,
    jac_rms,
    ref_jacobian_recon,
)
from .kernels import (
    FUN3D_FUNCTIONS,
    N_EDGE_TEMPS,
    build_fun3d_program,
    context_values,
    fun3d_workload,
)
from .legacy_src import full_legacy_source
from .mesh import PAPER_SCALE, TetMesh, make_mesh
from .options import Fun3DOptions, all_combinations, make_fun3d_plan
from .validation import (
    build_legacy_codebase,
    mesh_sizes,
    rms_check,
    run_generated_fortran,
    run_generated_python,
    run_ir_interpreter,
    run_legacy_fortran,
    run_reference,
    run_spliced,
)

__all__ = [
    "ANGLE_THRESHOLD", "EDGE_WEIGHT", "GAMMA", "RMS_TOLERANCE",
    "jac_rms", "ref_jacobian_recon",
    "FUN3D_FUNCTIONS", "N_EDGE_TEMPS", "build_fun3d_program",
    "context_values", "fun3d_workload",
    "full_legacy_source",
    "PAPER_SCALE", "TetMesh", "make_mesh",
    "Fun3DOptions", "all_combinations", "make_fun3d_plan",
    "build_legacy_codebase", "mesh_sizes", "rms_check",
    "run_generated_fortran", "run_generated_python", "run_ir_interpreter",
    "run_legacy_fortran", "run_reference", "run_spliced",
]
