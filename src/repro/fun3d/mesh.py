"""Synthetic unstructured tetrahedral mesh for the FUN3D case study.

NASA's 1M-cell test dataset is not public; this generator builds
statistically comparable unstructured tet meshes at any size via a Delaunay
tetrahedralization of jittered points, and derives the connectivity the
Jacobian-reconstruction kernel consumes:

* ``cell_nodes (ncell, 4)`` — tet corner nodes;
* ``cell_edges (ncell, 6)`` / ``edge_nodes (nedge, 2)`` — unique edges;
* ``face_norm (ncell, 4, 3)`` — per-face area-weighted normals;
* ``face_angle (ncell, 4)`` — the cell-face angle metric ``angle_check``
  thresholds on;
* CSR sparsity (``row_ptr``, ``col_idx``) of the node-adjacency graph —
  the structure ``ioff_search`` scans to place each edge contribution.

All index arrays are **1-based** (FORTRAN convention), stored as int64.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import Delaunay

__all__ = ["TetMesh", "make_mesh", "PAPER_SCALE"]

# The paper's dataset: ~1M cells, ~10M edge-loop visits.
PAPER_SCALE = {"ncell": 1_000_000, "edge_visits_per_cell": 10.0,
               "temporaries_in_edge_loop": 50}


@dataclass
class TetMesh:
    node_xyz: np.ndarray        # (nnode, 3) float64
    cell_nodes: np.ndarray      # (ncell, 4) int64, 1-based
    cell_edges: np.ndarray      # (ncell, 6) int64, 1-based
    edge_nodes: np.ndarray      # (nedge, 2) int64, 1-based
    face_norm: np.ndarray       # (ncell, 4, 3) float64
    face_angle: np.ndarray      # (ncell, 4) float64 in [0, 1]
    row_ptr: np.ndarray         # (nnode + 1,) int64, 1-based offsets
    col_idx: np.ndarray         # (nnz,) int64, 1-based node columns
    q: np.ndarray               # (nnode, 5) float64 primitive variables

    @property
    def nnode(self) -> int:
        return self.node_xyz.shape[0]

    @property
    def ncell(self) -> int:
        return self.cell_nodes.shape[0]

    @property
    def nedge(self) -> int:
        return self.edge_nodes.shape[0]

    @property
    def nnz(self) -> int:
        return self.col_idx.shape[0]

    def csr_offset(self, row_1b: int, col_1b: int) -> int:
        """1-based CSR position of (row, col); the ground truth for
        ``ioff_search``."""
        lo = int(self.row_ptr[row_1b - 1]) - 1
        hi = int(self.row_ptr[row_1b]) - 1
        seg = self.col_idx[lo:hi]
        k = int(np.searchsorted(seg, col_1b))
        if k >= len(seg) or seg[k] != col_1b:
            raise KeyError(f"({row_1b}, {col_1b}) not in sparsity pattern")
        return lo + k + 1


# Node-pair lists per tet: the 6 edges and 4 faces of a tetrahedron.
_TET_EDGES = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
_TET_FACES = [(1, 2, 3), (0, 2, 3), (0, 1, 3), (0, 1, 2)]  # face k excludes node k


def make_mesh(n_points: int = 80, seed: int = 42) -> TetMesh:
    """Build a tet mesh from a jittered grid of ~``n_points`` points."""
    rng = np.random.default_rng(seed)
    # Jittered lattice gives well-shaped tets (pure random points create
    # slivers that distort the angle metric).
    side = max(2, round(n_points ** (1.0 / 3.0)))
    g = np.linspace(0.0, 1.0, side)
    pts = np.stack(np.meshgrid(g, g, g, indexing="ij"), axis=-1).reshape(-1, 3)
    pts = pts + rng.uniform(-0.25, 0.25, pts.shape) / side
    tri = Delaunay(pts)
    cells0 = tri.simplices.astype(np.int64)          # 0-based (ncell, 4)
    ncell = cells0.shape[0]
    nnode = pts.shape[0]

    # --- unique edges + per-cell edge ids --------------------------------
    pair_list = []
    for a, b in _TET_EDGES:
        pa, pb = cells0[:, a], cells0[:, b]
        lo, hi = np.minimum(pa, pb), np.maximum(pa, pb)
        pair_list.append(np.stack([lo, hi], axis=1))
    all_pairs = np.concatenate(pair_list, axis=0)    # (6*ncell, 2)
    uniq, inverse = np.unique(all_pairs, axis=0, return_inverse=True)
    nedge = uniq.shape[0]
    cell_edges0 = inverse.reshape(6, ncell).T        # (ncell, 6) 0-based

    # --- face normals and angle metric -----------------------------------
    face_norm = np.zeros((ncell, 4, 3))
    centroid = pts[cells0].mean(axis=1)
    for f, (i, j, k) in enumerate(_TET_FACES):
        a = pts[cells0[:, i]]
        b = pts[cells0[:, j]]
        c = pts[cells0[:, k]]
        n = 0.5 * np.cross(b - a, c - a)
        # Orient outward: flip where the normal points toward the centroid.
        mid = (a + b + c) / 3.0
        flip = (n * (centroid - mid)).sum(axis=1) > 0
        n[flip] *= -1.0
        face_norm[:, f, :] = n
    # Angle metric in [0, 1]: alignment of consecutive face normals.
    fa = np.zeros((ncell, 4))
    for f in range(4):
        n1 = face_norm[:, f, :]
        n2 = face_norm[:, (f + 1) % 4, :]
        denom = np.linalg.norm(n1, axis=1) * np.linalg.norm(n2, axis=1) + 1e-300
        fa[:, f] = 0.5 * (1.0 + (n1 * n2).sum(axis=1) / denom)
    face_angle = fa

    # --- CSR node adjacency (self + edge neighbours) ----------------------
    adj_rows = np.concatenate([
        np.arange(nnode, dtype=np.int64),            # diagonal
        uniq[:, 0], uniq[:, 1],
    ])
    adj_cols = np.concatenate([
        np.arange(nnode, dtype=np.int64),
        uniq[:, 1], uniq[:, 0],
    ])
    order = np.lexsort((adj_cols, adj_rows))
    adj_rows, adj_cols = adj_rows[order], adj_cols[order]
    row_counts = np.bincount(adj_rows, minlength=nnode)
    row_ptr = np.zeros(nnode + 1, dtype=np.int64)
    np.cumsum(row_counts, out=row_ptr[1:])

    # --- primitive variables ----------------------------------------------
    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    q = np.stack([
        1.0 + 0.1 * np.sin(2 * np.pi * x),
        0.5 * np.cos(2 * np.pi * y),
        0.3 * np.sin(2 * np.pi * z) * np.cos(np.pi * x),
        0.2 + 0.05 * x * y,
        1.0 / (1.4 * 1.0) + 0.02 * z,
    ], axis=1).astype(np.float64)

    return TetMesh(
        node_xyz=pts,
        cell_nodes=cells0 + 1,
        cell_edges=cell_edges0 + 1,
        edge_nodes=uniq + 1,
        face_norm=face_norm,
        face_angle=face_angle,
        row_ptr=row_ptr + 1,
        col_idx=adj_cols + 1,
        q=q,
    )
