"""The Figure-7 option lattice.

The paper evaluates "all combinations of parallelization and
non-reallocation options": four per-function parallelization toggles
(EdgeJP's cell sweep, cell_loop's node+face loops, edge_loop's edge loops,
ioff_search's search loop — results for the angle check were omitted as
negligible) crossed with the no-reallocation (SAVE) option, plus a manually
parallelized version of the original code at the same outermost scope.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.function import GlafProgram
from ..optimize.plan import OptimizationPlan, Tweaks, make_plan

__all__ = ["Fun3DOptions", "all_combinations", "make_fun3d_plan",
           "PARALLEL_STEP_NAMES"]

# Which (function, step-name) pairs each toggle controls.
PARALLEL_STEP_NAMES: dict[str, tuple[tuple[str, str], ...]] = {
    "parallel_edgejp": (("edgejp", "cell_sweep"),),
    "parallel_cell_loop": (("cell_loop", "node_loop"), ("cell_loop", "face_loop")),
    "parallel_edge_loop": (("edge_loop", "edge_offsets"), ("edge_loop", "edge_assembly")),
    "parallel_ioff_search": (("ioff_search", "search"),),
}


@dataclass(frozen=True)
class Fun3DOptions:
    parallel_edgejp: bool = False
    parallel_cell_loop: bool = False
    parallel_edge_loop: bool = False
    parallel_ioff_search: bool = False
    no_reallocation: bool = False

    @property
    def label(self) -> str:
        bits = []
        if self.parallel_edgejp:
            bits.append("EdgeJP")
        if self.parallel_cell_loop:
            bits.append("Cell_loop")
        if self.parallel_edge_loop:
            bits.append("Edge_loop")
        if self.parallel_ioff_search:
            bits.append("IOff_search")
        label = "+".join(bits) if bits else "serial"
        if self.no_reallocation:
            label += " | no-realloc"
        return label

    def enabled_toggles(self) -> list[str]:
        return [name for name in PARALLEL_STEP_NAMES
                if getattr(self, name)]


def all_combinations() -> list[Fun3DOptions]:
    """Every combination of the five options (Figure 7's x-axis)."""
    out = []
    for bits in itertools.product([False, True], repeat=5):
        out.append(Fun3DOptions(*bits))
    return out


def _step_keys(program: GlafProgram) -> dict[tuple[str, str], tuple[str, int]]:
    keys: dict[tuple[str, str], tuple[str, int]] = {}
    for fn in program.functions():
        for i, step in enumerate(fn.steps):
            keys[(fn.name, step.name)] = (fn.name, i)
    return keys


def make_fun3d_plan(
    program: GlafProgram,
    opts: Fun3DOptions,
    threads: int = 16,
) -> OptimizationPlan:
    """Build the code-generation/simulation plan for one option combo.

    Every loop the combo does not enable is forced serial; enabled loops
    get their directives (including the ATOMIC jac updates and, for
    ioff_search, the CRITICAL early-return protocol).
    """
    keys = _step_keys(program)
    enabled: set[tuple[str, int]] = set()
    for toggle in opts.enabled_toggles():
        for fname_sname in PARALLEL_STEP_NAMES[toggle]:
            enabled.add(keys[fname_sname])
    force_serial = frozenset(set(keys.values()) - enabled)
    tweaks = Tweaks(
        save_inner_arrays=opts.no_reallocation,
        critical_early_exit=(
            frozenset({"ioff_search"}) if opts.parallel_ioff_search else frozenset()
        ),
    )
    return make_plan(
        program,
        "GLAF-parallel v0",
        tweaks=tweaks,
        threads=threads,
        force_serial=force_serial,
        force_parallel=frozenset(enabled),
    )
