"""GLAF IR of the FUN3D Jacobian-reconstruction mini-app (paper §4.2).

The original monolithic kernel ("a single function with several levels of
loop nesting") is decomposed into the paper's five GLAF functions:

* ``edgejp``       — outermost scope: initializes module-wide constants,
  zeroes the Jacobian, loops over cells;
* ``cell_loop``    — per-cell computation; its node and face loops are
  parallelizable, the edge work calls out to ``edge_loop``;
* ``edge_loop``    — per-cell edge assembly; carries the paper's 50
  dynamically-allocated temporary arrays and updates the shared Jacobian
  through indirect CSR offsets (ATOMIC under parallel execution);
* ``angle_check``  — early-return check for an excessive cell-face angle;
* ``ioff_search``  — CSR offset search with an early return (the function
  needing the OMP CRITICAL early-return protocol when parallelized).
"""

from __future__ import annotations

from ..core import (
    GlafBuilder,
    GlafProgram,
    I,
    T_INT,
    T_REAL8,
    T_VOID,
    lib,
    ref,
)
from ..core.builder import StepBuilder as SB
from ..perf.simulate import Workload
from .jacobian import ANGLE_THRESHOLD, EDGE_WEIGHT, GAMMA
from .mesh import TetMesh

__all__ = ["build_fun3d_program", "fun3d_workload", "FUN3D_FUNCTIONS",
           "GRIDS_MODULE", "JAC_MODULE", "N_EDGE_TEMPS", "context_values"]

GRIDS_MODULE = "fun3d_grids_mod"
JAC_MODULE = "fun3d_jac_mod"
N_EDGE_TEMPS = 50   # the paper's "50 dynamically allocated temporary arrays"
N_STAGED = 6        # temps actually carrying staged values

FUN3D_FUNCTIONS = ("edgejp", "cell_loop", "edge_loop", "angle_check", "ioff_search")


def build_fun3d_program() -> GlafProgram:
    b = GlafBuilder("fun3d")

    # --- existing-module grids (the legacy mesh/solution storage) --------
    b.global_grid("q", T_REAL8, dims=("nnode", 5), exists_in_module=GRIDS_MODULE,
                  comment="primitive variables at nodes")
    b.global_grid("cell_nodes", T_INT, dims=("ncell", 4), exists_in_module=GRIDS_MODULE)
    b.global_grid("cell_edges", T_INT, dims=("ncell", 6), exists_in_module=GRIDS_MODULE)
    b.global_grid("edge_nodes", T_INT, dims=("nedge", 2), exists_in_module=GRIDS_MODULE)
    b.global_grid("face_norm", T_REAL8, dims=("ncell", 4, 3),
                  exists_in_module=GRIDS_MODULE, comment="face normal vectors")
    b.global_grid("face_angle", T_REAL8, dims=("ncell", 4),
                  exists_in_module=GRIDS_MODULE, comment="cell-face angle metric")
    b.global_grid("row_ptr", T_INT, dims=("nnodep1",), exists_in_module=GRIDS_MODULE,
                  comment="CSR row offsets (1-based)")
    b.global_grid("col_idx", T_INT, dims=("nnz",), exists_in_module=GRIDS_MODULE,
                  comment="CSR column indices")
    b.global_grid("jac", T_REAL8, dims=("nnz", 5), exists_in_module=JAC_MODULE,
                  comment="Jacobian entries (output)")
    # --- GLAF module-scope grids (§3.3): shared between cell_loop and
    # edge_loop — "interior loops must return complex data to an outer scope"
    b.global_grid("grad", T_REAL8, dims=(5, 3), module_scope=True,
                  comment="per-cell Green-Gauss gradient")
    b.global_grid("gamma_c", T_REAL8, module_scope=True, comment="ratio of specific heats")
    b.global_grid("ew_c", T_REAL8, module_scope=True, comment="edge weight")
    b.global_grid("angle_thresh", T_REAL8, module_scope=True,
                  comment="cell-face angle threshold")

    m = b.module("Module1")

    # ------------------------------------------------------------------
    # angle_check: returns 1 when any face angle exceeds the threshold
    # ------------------------------------------------------------------
    f = m.function("angle_check", return_type=T_INT,
                   comment="Check for a cell-face angle in excess of threshold")
    f.param("c", T_INT, intent="in")
    s = f.step("face_scan")
    s.foreach(fc=(1, 4))
    s.if_(ref("face_angle", ref("c"), I("fc")).gt(ref("angle_thresh")),
          [SB.ret(1)])
    f.returns(0)

    # ------------------------------------------------------------------
    # ioff_search: CSR offset of (row, col) with early return
    # ------------------------------------------------------------------
    f = m.function("ioff_search", return_type=T_INT,
                   comment="Search the CSR row for the column's offset")
    f.param("row", T_INT, intent="in")
    f.param("col", T_INT, intent="in")
    s = f.step("search")
    s.foreach(p=(ref("row_ptr", ref("row")), ref("row_ptr", ref("row") + 1) - 1))
    s.if_(ref("col_idx", I("p")).eq(ref("col")), [SB.ret(I("p"))])
    f.returns(-1)

    # ------------------------------------------------------------------
    # edge_loop: per-cell edge assembly with the 50 temporaries
    # ------------------------------------------------------------------
    f = m.function("edge_loop", return_type=T_VOID,
                   comment="Assemble this cell's edge contributions into jac")
    f.param("c", T_INT, intent="in")
    for k in range(1, N_EDGE_TEMPS + 1):
        f.local(f"tmp{k:02d}", T_REAL8, dims=(5,), allocatable=True,
                comment="edge-loop temporary" if k <= N_STAGED else "")
    f.local("eoff", T_INT, dims=(6,), allocatable=True,
            comment="CSR offsets of this cell's edges")
    f.local("n1v", T_INT)
    f.local("n2v", T_INT)

    s = f.step("stage_sums", comment="stage gradient row sums")
    s.foreach(k=(1, 5))
    s.formula(ref("tmp01", I("k")),
              ref("grad", I("k"), 1) + ref("grad", I("k"), 2) + ref("grad", I("k"), 3))
    s = f.step("stage_gamma")
    s.foreach(k=(1, 5))
    s.formula(ref("tmp02", I("k")), ref("tmp01", I("k")) * ref("gamma_c"))
    # The staged temporaries form a live chain — each stage consumes the
    # previous one and the final stage feeds the assembly.  The algebra
    # is exact in IEEE double (power-of-two scaling and a Sterbenz
    # subtraction), so tmp06 carries precisely 0.5 * tmp02.
    s = f.step("stage_half")
    s.foreach(k=(1, 5))
    s.formula(ref("tmp03", I("k")), ref("tmp02", I("k")) * 0.5)
    s = f.step("stage_resid")
    s.foreach(k=(1, 5))
    s.formula(ref("tmp04", I("k")), ref("tmp02", I("k")) - ref("tmp03", I("k")))
    s = f.step("stage_recombine")
    s.foreach(k=(1, 5))
    s.formula(ref("tmp05", I("k")), ref("tmp03", I("k")) + ref("tmp04", I("k")))
    s = f.step("stage_carry")
    s.foreach(k=(1, 5))
    s.formula(ref("tmp06", I("k")), ref("tmp05", I("k")) * 0.5)

    s = f.step("edge_offsets", comment="locate each edge's CSR offset")
    s.foreach(e=(1, 6))
    s.formula(ref("n1v"), ref("edge_nodes", ref("cell_edges", ref("c"), I("e")), 1))
    s.formula(ref("n2v"), ref("edge_nodes", ref("cell_edges", ref("c"), I("e")), 2))
    from ..core.expr import FuncCall

    s.formula(ref("eoff", I("e")), FuncCall("ioff_search", (ref("n1v"), ref("n2v"))))

    s = f.step("edge_assembly", comment="accumulate edge fluxes into jac")
    s.foreach(e=(1, 6), k=(1, 5))
    s.formula(
        ref("jac", ref("eoff", I("e")), I("k")),
        ref("jac", ref("eoff", I("e")), I("k"))
        + (
            ref("q", ref("edge_nodes", ref("cell_edges", ref("c"), I("e")), 1), I("k"))
            + ref("q", ref("edge_nodes", ref("cell_edges", ref("c"), I("e")), 2), I("k"))
        )
        * ref("tmp06", I("k"))
        * ref("ew_c"),
    )

    # ------------------------------------------------------------------
    # cell_loop: per-cell computation (node + face loops parallelizable)
    # ------------------------------------------------------------------
    f = m.function("cell_loop", return_type=T_VOID,
                   comment="Per-cell gradient, angle check and edge dispatch")
    f.param("c", T_INT, intent="in")
    f.local("qa", T_REAL8, dims=(5,), allocatable=True,
            comment="cell-average primitives")
    f.local("flagv", T_INT)

    s = f.step("init_qa")
    s.foreach(k=(1, 5))
    s.formula(ref("qa", I("k")), 0.0)
    s = f.step("init_grad")
    s.foreach(k=(1, 5), d=(1, 3))
    s.formula(ref("grad", I("k"), I("d")), 0.0)
    s = f.step("node_loop", comment="average primitives over the cell's nodes")
    s.foreach(n=(1, 4), k=(1, 5))
    s.formula(
        ref("qa", I("k")),
        ref("qa", I("k")) + ref("q", ref("cell_nodes", ref("c"), I("n")), I("k")) * 0.25,
    )
    s = f.step("face_loop", comment="Green-Gauss gradient over the cell's faces")
    s.foreach(fc=(1, 4), k=(1, 5), d=(1, 3))
    s.formula(
        ref("grad", I("k"), I("d")),
        ref("grad", I("k"), I("d"))
        + ref("qa", I("k")) * lib("ABS", ref("face_norm", ref("c"), I("fc"), I("d"))) * 0.5,
    )
    s = f.step("angle", comment="skip the cell on an excessive face angle")
    from ..core.expr import FuncCall as FC

    s.formula(ref("flagv"), FC("angle_check", (ref("c"),)))
    s = f.step("edges")
    s.condition(ref("flagv").eq(0))
    s.call("edge_loop", [ref("c")])

    # ------------------------------------------------------------------
    # edgejp: the outermost scope
    # ------------------------------------------------------------------
    f = m.function("edgejp", return_type=T_VOID,
                   comment="Jacobian matrix reconstruction: outermost scope")
    f.param("ncells", T_INT, intent="in")
    f.param("nnzs", T_INT, intent="in")
    s = f.step("constants", comment="initialize critical module-wide constants")
    s.formula(ref("gamma_c"), GAMMA)
    s.formula(ref("ew_c"), EDGE_WEIGHT)
    s.formula(ref("angle_thresh"), ANGLE_THRESHOLD)
    s = f.step("init_jac", comment="zero the Jacobian storage")
    s.foreach(i=(1, "nnzs"), k=(1, 5))
    s.formula(ref("jac", I("i"), I("k")), 0.0)
    s = f.step("cell_sweep", comment="loop over all cells of the simulation")
    s.foreach(c=(1, "ncells"))
    s.call("cell_loop", [I("c")])

    return b.build()


def context_values(mesh: TetMesh) -> dict:
    """Global-grid values for an ExecutionContext, from a mesh."""
    return {
        "q": mesh.q,
        "cell_nodes": mesh.cell_nodes,
        "cell_edges": mesh.cell_edges,
        "edge_nodes": mesh.edge_nodes,
        "face_norm": mesh.face_norm,
        "face_angle": mesh.face_angle,
        "row_ptr": mesh.row_ptr,
        "col_idx": mesh.col_idx,
    }


def fun3d_workload(
    ncell: int = 1_000_000,
    *,
    edge_visits_per_cell: float = 10.0,
    avg_row_len: float = 14.0,
) -> Workload:
    """Performance-model workload at the paper's dataset scale.

    ``edge_visits_per_cell`` reflects "the innermost edge loop ... is called
    an average of 10 times per cell in the provided test case"; the CSR row
    search scans half the row on average before its early return.
    """
    nnode = max(1, ncell // 5)
    nedge = int(ncell * 1.2)
    nnz = nnode + 2 * nedge
    return Workload(
        name="fun3d-jacobian",
        entry="edgejp",
        sizes={
            "ncells": ncell, "nnzs": nnz,
            "nnode": nnode, "ncell": ncell, "nedge": nedge,
            "nnodep1": nnode + 1, "nnz": nnz,
        },
        trip_overrides={
            # edge_offsets / edge_assembly run per edge visit.
            ("edge_loop", N_STAGED): edge_visits_per_cell,
            ("edge_loop", N_STAGED + 1): edge_visits_per_cell * 5.0,
            ("ioff_search", 0): avg_row_len,
        },
        early_exit_fractions={
            ("ioff_search", 0): 0.5,
            ("angle_check", 0): 0.6,
        },
        branch_fractions={
            ("cell_loop", 5): 0.95,   # 95% of cells pass the angle check
        },
        # The 1M-cell assembly streams mesh + Jacobian from DRAM; parallel
        # scaling saturates memory bandwidth well below the thread count
        # (the paper's manual version tops out at 3.85x on 16 threads).
        parallel_throughput_cap=3.9,
    )
