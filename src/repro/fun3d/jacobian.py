"""NumPy reference of the Jacobian matrix reconstruction mini-app.

Defines the ground-truth semantics of the kernel GLAF decomposes into
EdgeJP / cell_loop / edge_loop / angle_check / ioff_search (paper §4.2).
The math is a synthetic Green-Gauss-flavoured assembly:

for each cell c:
    qa(k)      = 0.25 * sum_n q(node(c, n), k)                 (node loop)
    grad(k, d) = sum_f qa(k) * |face_norm(c, f, d)| * 0.5      (face loop)
    if any face_angle(c, f) > threshold: skip cell             (angle_check)
    tmp2(k)    = (grad(k,1) + grad(k,2) + grad(k,3)) * gamma
    for each edge e of c with nodes (n1, n2):                  (edge loop)
        p = csr_offset(n1, n2)                                 (ioff_search)
        jac(p, k) += 0.5 * (q(n1,k) + q(n2,k)) * tmp2(k) * ew

The reference also provides the RMS of the output Jacobian, which the
validation gate checks at 1e-7 absolute tolerance "after all cells have
been processed to ensure against any major floating point errors ...
critical when performing parallel summation" (paper §4.2.1).
"""

from __future__ import annotations

import numpy as np

from .mesh import TetMesh

__all__ = ["GAMMA", "EDGE_WEIGHT", "ANGLE_THRESHOLD", "ref_jacobian_recon",
           "jac_rms", "RMS_TOLERANCE"]

GAMMA = 1.4
EDGE_WEIGHT = 0.125
ANGLE_THRESHOLD = 0.98
RMS_TOLERANCE = 1e-7


def ref_jacobian_recon(mesh: TetMesh) -> np.ndarray:
    """Sequential reference; returns jac (nnz, 5)."""
    nq = 5
    jac = np.zeros((mesh.nnz, nq), dtype=np.float64)
    q = mesh.q
    for c in range(mesh.ncell):
        nodes = mesh.cell_nodes[c] - 1                  # 0-based
        qa = 0.25 * q[nodes, :].sum(axis=0)             # (5,)
        grad = np.zeros((nq, 3))
        for f in range(4):
            grad += qa[:, None] * np.abs(mesh.face_norm[c, f, :])[None, :] * 0.5
        if (mesh.face_angle[c] > ANGLE_THRESHOLD).any():
            continue
        tmp1 = grad.sum(axis=1)                         # grad(k,1)+grad(k,2)+grad(k,3)
        tmp2 = tmp1 * GAMMA
        for e in range(6):
            ed = mesh.cell_edges[c, e] - 1
            n1, n2 = mesh.edge_nodes[ed] - 1
            p = mesh.csr_offset(n1 + 1, n2 + 1) - 1
            jac[p, :] += 0.5 * (q[n1, :] + q[n2, :]) * tmp2 * EDGE_WEIGHT
    return jac


def jac_rms(jac: np.ndarray) -> float:
    """Root mean square of the output array — the paper's reference check.

    An empty Jacobian raises instead of letting ``np.mean`` of nothing
    produce a NaN (which would then compare False against any tolerance
    and pass the gate vacuously).
    """
    arr = np.asarray(jac, dtype=np.float64)
    if arr.size == 0:
        from ..errors import NumericIntegrityError

        raise NumericIntegrityError(
            "jac_rms of an empty array: the RMS gate would pass vacuously")
    return float(np.sqrt(np.mean(arr * arr)))
