"""The synthetic legacy FUN3D mini-app FORTRAN code.

The original Jacobian matrix reconstruction "is implemented as a single
function with several levels of loop nesting" (paper §2.3): here that is
the monolithic ``edgejp`` subroutine, with the angle check, the CSR offset
search and the edge assembly all inlined.  The mesh and solution live in
``fun3d_grids_mod``; the output Jacobian in ``fun3d_jac_mod``.
"""

from __future__ import annotations

from .jacobian import ANGLE_THRESHOLD, EDGE_WEIGHT, GAMMA
from .mesh import TetMesh

__all__ = ["legacy_modules_source", "legacy_kernel_source", "legacy_driver_source",
           "full_legacy_source"]


def legacy_modules_source(mesh: TetMesh) -> str:
    return f"""
MODULE fun3d_grids_mod
  IMPLICIT NONE
  REAL(KIND=8) :: q({mesh.nnode}, 5)
  INTEGER :: cell_nodes({mesh.ncell}, 4)
  INTEGER :: cell_edges({mesh.ncell}, 6)
  INTEGER :: edge_nodes({mesh.nedge}, 2)
  REAL(KIND=8) :: face_norm({mesh.ncell}, 4, 3)
  REAL(KIND=8) :: face_angle({mesh.ncell}, 4)
  INTEGER :: row_ptr({mesh.nnode + 1})
  INTEGER :: col_idx({mesh.nnz})
END MODULE fun3d_grids_mod

MODULE fun3d_jac_mod
  IMPLICIT NONE
  REAL(KIND=8) :: jac({mesh.nnz}, 5)
END MODULE fun3d_jac_mod
"""


def legacy_kernel_source(mesh: TetMesh) -> str:
    return f"""
! Original serial Jacobian matrix reconstruction: one function, several
! levels of loop nesting (paper section 2.3).
SUBROUTINE edgejp(ncells, nnzs)
  USE fun3d_grids_mod
  USE fun3d_jac_mod, ONLY: jac
  IMPLICIT NONE
  INTEGER, INTENT(IN) :: ncells
  INTEGER, INTENT(IN) :: nnzs
  REAL(KIND=8) :: qa(5)
  REAL(KIND=8) :: grad(5, 3)
  REAL(KIND=8) :: tmp1(5)
  REAL(KIND=8) :: tmp2(5)
  REAL(KIND=8) :: gamma_c, ew_c, angle_thresh
  INTEGER :: i, k, d, c, n, fc, e, p, n1v, n2v, ioffv, flagv

  gamma_c = {GAMMA}D0
  ew_c = {EDGE_WEIGHT}D0
  angle_thresh = {ANGLE_THRESHOLD}D0

  DO i = 1, nnzs
    DO k = 1, 5
      jac(i, k) = 0.0D0
    END DO
  END DO

  DO c = 1, ncells
    DO k = 1, 5
      qa(k) = 0.0D0
    END DO
    DO k = 1, 5
      DO d = 1, 3
        grad(k, d) = 0.0D0
      END DO
    END DO
    DO n = 1, 4
      DO k = 1, 5
        qa(k) = qa(k) + q(cell_nodes(c, n), k) * 0.25D0
      END DO
    END DO
    DO fc = 1, 4
      DO k = 1, 5
        DO d = 1, 3
          grad(k, d) = grad(k, d) + qa(k) * ABS(face_norm(c, fc, d)) * 0.5D0
        END DO
      END DO
    END DO
    flagv = 0
    DO fc = 1, 4
      IF (face_angle(c, fc) > angle_thresh) THEN
        flagv = 1
        EXIT
      END IF
    END DO
    IF (flagv == 0) THEN
      DO k = 1, 5
        tmp1(k) = grad(k, 1) + grad(k, 2) + grad(k, 3)
        tmp2(k) = tmp1(k) * gamma_c
      END DO
      DO e = 1, 6
        n1v = edge_nodes(cell_edges(c, e), 1)
        n2v = edge_nodes(cell_edges(c, e), 2)
        ioffv = -1
        DO p = row_ptr(n1v), row_ptr(n1v + 1) - 1
          IF (col_idx(p) == n2v) THEN
            ioffv = p
            EXIT
          END IF
        END DO
        DO k = 1, 5
          jac(ioffv, k) = jac(ioffv, k) + 0.5D0 * (q(n1v, k) + q(n2v, k)) * tmp2(k) * ew_c
        END DO
      END DO
    END IF
  END DO
END SUBROUTINE edgejp
"""


def legacy_driver_source(mesh: TetMesh) -> str:
    return f"""
PROGRAM fun3d_test
  USE fun3d_jac_mod, ONLY: jac
  IMPLICIT NONE
  INTEGER :: i, k
  REAL(KIND=8) :: rms
  CALL edgejp({mesh.ncell}, {mesh.nnz})
  rms = 0.0D0
  DO i = 1, {mesh.nnz}
    DO k = 1, 5
      rms = rms + jac(i, k) * jac(i, k)
    END DO
  END DO
  rms = SQRT(rms / ({mesh.nnz} * 5))
  PRINT *, 'jac_rms', rms
END PROGRAM fun3d_test
"""


def full_legacy_source(mesh: TetMesh) -> dict[str, str]:
    return {
        "fun3d_modules.f90": legacy_modules_source(mesh),
        "fun3d_edgejp.f90": legacy_kernel_source(mesh),
        "fun3d_driver.f90": legacy_driver_source(mesh),
    }
