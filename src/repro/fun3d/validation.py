"""FUN3D functional correctness (paper §4.2.1).

"The produced code is integrated with the rest of the program's code, and
output at various stages is compared to that produced by the original on a
representative data set ... the dataset includes a reference root mean
square of the output arrays that is automatically checked at a 1e-7
(absolute) tolerance after all cells have been processed."
"""

from __future__ import annotations

import numpy as np

from ..codegen.fortran import FortranGenerator
from ..fortranlib import FortranRuntime
from ..glafexec import (
    ExecutionContext,
    GeneratedModule,
    GuardedRunner,
    Interpreter,
    executor_mode,
    get_executor,
    guard_mode,
)
from ..integration import LegacyCodebase, splice_into_codebase
from ..numeric import RmsPolicy
from ..optimize.plan import Tweaks, make_plan
from .jacobian import RMS_TOLERANCE, ref_jacobian_recon
from .kernels import FUN3D_FUNCTIONS, build_fun3d_program, context_values
from .legacy_src import full_legacy_source
from .mesh import TetMesh, make_mesh

__all__ = ["mesh_sizes", "run_reference", "run_ir_interpreter",
           "run_generated_python", "run_legacy_fortran",
           "run_generated_fortran", "run_spliced", "rms_check",
           "build_legacy_codebase", "set_fun3d_inputs"]


def mesh_sizes(mesh: TetMesh) -> dict[str, int]:
    return {"nnode": mesh.nnode, "ncell": mesh.ncell, "nedge": mesh.nedge,
            "nnodep1": mesh.nnode + 1, "nnz": mesh.nnz}


def rms_check(jac: np.ndarray, reference: np.ndarray) -> bool:
    """The paper's automatic gate: RMS agreement at 1e-7 absolute.

    Routed through the ``rms`` tolerance policy, so a NaN or infinity in
    either Jacobian fails the gate loudly (``nan <= tol`` is ``False``
    only by accident of direction; the policy makes the semantics
    explicit) and empty arrays raise instead of passing vacuously.
    """
    return bool(RmsPolicy(RMS_TOLERANCE).compare(jac, reference))


def run_reference(mesh: TetMesh) -> np.ndarray:
    return ref_jacobian_recon(mesh)


def run_ir_interpreter(mesh: TetMesh, *, save_inner_arrays: bool = False,
                       guarded: bool | None = None,
                       executor: str | None = None) -> np.ndarray:
    """Run through the IR execution pipeline; under ``--guarded`` (or
    explicit ``guarded=True``) execution goes through :class:`GuardedRunner`
    with per-step divergence probes and serial fallback.  Otherwise the
    selected executor runs the program (``executor=None`` honors the
    process-wide ``--executor`` mode)."""
    program = build_fun3d_program()
    ctx = ExecutionContext(program, sizes=mesh_sizes(mesh),
                           values=context_values(mesh))
    args = [mesh.ncell, mesh.nnz]
    if guard_mode() if guarded is None else guarded:
        GuardedRunner(program).run("edgejp", args, context=ctx)
    else:
        mode = executor_mode() if executor is None else executor
        if mode == "interpreter":
            interp = Interpreter(program, ctx,
                                 save_inner_arrays=save_inner_arrays)
            interp.call("edgejp", args)
        else:
            get_executor(mode, save_inner_arrays=save_inner_arrays).run(
                program, "edgejp", args, context=ctx)
    return ctx.get("jac").copy()


def run_generated_python(mesh: TetMesh, *, save_inner_arrays: bool = False) -> np.ndarray:
    program = build_fun3d_program()
    ctx = ExecutionContext(program, sizes=mesh_sizes(mesh),
                           values=context_values(mesh))
    plan = make_plan(program, "GLAF serial",
                     tweaks=Tweaks(save_inner_arrays=save_inner_arrays))
    mod = GeneratedModule(plan, ctx)
    mod.call("edgejp", [mesh.ncell, mesh.nnz])
    return ctx.get("jac").copy()


def build_legacy_codebase(mesh: TetMesh) -> LegacyCodebase:
    legacy = LegacyCodebase("fun3d-mini")
    for fname, src in full_legacy_source(mesh).items():
        legacy.add_file(fname, src)
    return legacy


def set_fun3d_inputs(rt: FortranRuntime, mesh: TetMesh) -> None:
    gm = rt.modules["fun3d_grids_mod"]
    gm.variables["q"].store[...] = mesh.q
    gm.variables["cell_nodes"].store[...] = mesh.cell_nodes
    gm.variables["cell_edges"].store[...] = mesh.cell_edges
    gm.variables["edge_nodes"].store[...] = mesh.edge_nodes
    gm.variables["face_norm"].store[...] = mesh.face_norm
    gm.variables["face_angle"].store[...] = mesh.face_angle
    gm.variables["row_ptr"].store[...] = mesh.row_ptr
    gm.variables["col_idx"].store[...] = mesh.col_idx


def run_legacy_fortran(mesh: TetMesh) -> tuple[np.ndarray, FortranRuntime]:
    rt = FortranRuntime()
    for fname, src in sorted(full_legacy_source(mesh).items()):
        rt.load(src)
    set_fun3d_inputs(rt, mesh)
    rt.call("edgejp", [mesh.ncell, mesh.nnz])
    return rt.modules["fun3d_jac_mod"].variables["jac"].store.copy(), rt


def run_generated_fortran(
    mesh: TetMesh, *, variant: str = "GLAF serial",
    save_inner_arrays: bool = False,
) -> tuple[np.ndarray, FortranRuntime, str]:
    program = build_fun3d_program()
    plan = make_plan(program, variant,
                     tweaks=Tweaks(save_inner_arrays=save_inner_arrays))
    source = FortranGenerator(plan).generate_module()
    rt = FortranRuntime()
    rt.load(full_legacy_source(mesh)["fun3d_modules.f90"])
    rt.load(source)
    set_fun3d_inputs(rt, mesh)
    rt.call("edgejp", [mesh.ncell, mesh.nnz])
    return rt.modules["fun3d_jac_mod"].variables["jac"].store.copy(), rt, source


def run_spliced(
    mesh: TetMesh, *, variant: str = "GLAF serial",
) -> tuple[np.ndarray, FortranRuntime, list]:
    """Replace the legacy monolithic edgejp with the GLAF decomposition
    (the four factored-out functions are appended as new units), then run
    the legacy driver program."""
    program = build_fun3d_program()
    plan = make_plan(program, variant)
    legacy = build_legacy_codebase(mesh)
    result = splice_into_codebase(plan, legacy, list(FUN3D_FUNCTIONS),
                                  add_missing=True)
    rt = FortranRuntime()
    if result.support_source:
        rt.load(result.support_source)
    for fname in sorted(result.files):
        rt.load(result.files[fname])
    set_fun3d_inputs(rt, mesh)
    rt.run_program("fun3d_test")
    return rt.modules["fun3d_jac_mod"].variables["jac"].store.copy(), rt, rt.output
