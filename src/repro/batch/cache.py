"""Content-addressed artifact cache for the batch compiler.

The transformation pipeline is a pure function of (source text, pipeline
options) — the property the fuzz shrinker already leans on — so the same
input must never be compiled twice.  :class:`ArtifactCache` stores one
JSON entry per compile, addressed by the sha256 of the canonical-JSON
``(content digest, item kind, pipeline options)`` tuple and fanned into
``<digest[:2]>/<digest>.json`` shards.

Robustness over raw speed:

* entries are written with :func:`repro.numeric.integrity.atomic_write_json`
  (temp + fsync + rename), so a SIGKILLed batch never leaves a torn
  entry behind;
* every read re-verifies the entry's embedded sha256 over its payload —
  a tampered or bit-rotted entry is *discarded* (unlinked), counted in
  the ``batch.cache.corrupt`` metric, flagged with a
  ``cache:corrupt-entry`` DecisionLog event, and reported as a miss so
  the driver simply recompiles;
* ``max_entries`` bounds the cache with oldest-first (mtime) eviction,
  counted in ``batch.cache.evictions``.

Hit/miss accounting lives in the driver (the cache cannot know whether
a ``None`` became a recompile); see ``docs/BATCH.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..numeric.integrity import atomic_write_json, content_digest

__all__ = ["CACHE_SCHEMA", "ArtifactCache"]

CACHE_SCHEMA = "repro.batch.cache/v1"


class ArtifactCache:
    """A sharded directory of digest-verified compile artifacts."""

    def __init__(self, directory: str | Path, *, max_entries: int = 0):
        self.dir = Path(directory)
        self.max_entries = int(max_entries)
        self.corrupt_discarded = 0
        self.evicted = 0

    # -- addressing ----------------------------------------------------
    @staticmethod
    def key_for(content_sha: str, kind: str, options: dict) -> str:
        """The cache address of one (source, pipeline options) pair."""
        return content_digest({
            "schema": CACHE_SCHEMA,
            "content_sha": content_sha,
            "kind": kind,
            "options": options,
        })

    def path_for(self, key: str) -> Path:
        return self.dir / key[:2] / f"{key}.json"

    # -- reading -------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The artifacts stored under ``key``; ``None`` on miss.

        A present-but-invalid entry (truncated JSON, wrong schema, key or
        digest mismatch) is deleted and reported as a miss — the caller
        recompiles, and the corruption is observable via
        :attr:`corrupt_discarded` / ``batch.cache.corrupt`` /
        the ``cache:corrupt-entry`` decision.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        reason = ""
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            doc, reason = None, f"unreadable entry ({e})"
        if doc is not None and not reason:
            if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
                reason = "wrong schema"
            elif doc.get("key") != key:
                reason = "key mismatch"
            elif doc.get("sha256") != content_digest(
                    {k: v for k, v in doc.items() if k != "sha256"}):
                reason = "content digest mismatch"
        if reason:
            path.unlink(missing_ok=True)
            self.corrupt_discarded += 1
            self._note_corrupt(key, reason)
            return None
        return doc["artifacts"]

    def _note_corrupt(self, key: str, reason: str) -> None:
        from ..observe import get_decisions, get_metrics

        m = get_metrics()
        if m.enabled:
            m.counter("batch.cache.corrupt").inc()
        dl = get_decisions()
        if dl.enabled:
            dl.record("cache:corrupt-entry", "cache", -1, key[:12],
                      "discarded", reasons=(reason,))

    # -- writing -------------------------------------------------------
    def put(self, key: str, *, content_sha: str, kind: str, options: dict,
            artifacts: dict) -> Path:
        """Store one compile's artifacts atomically; returns the path."""
        doc = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "content_sha": content_sha,
            "kind": kind,
            "options": options,
            "artifacts": artifacts,
        }
        doc["sha256"] = content_digest(doc)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, doc)
        if self.max_entries > 0:
            self._evict(keep=path)
        return path

    def entry_paths(self) -> list[Path]:
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("??/*.json"))

    def _evict(self, keep: Path) -> None:
        """Drop the oldest entries beyond ``max_entries`` (never the one
        just written — the current batch still wants it)."""
        entries = self.entry_paths()
        if len(entries) <= self.max_entries:
            return
        by_age = sorted(entries, key=lambda p: (p.stat().st_mtime, p.name))
        doomed = [p for p in by_age if p != keep]
        doomed = doomed[:len(entries) - self.max_entries]
        from ..observe import get_metrics

        m = get_metrics()
        for p in doomed:
            p.unlink(missing_ok=True)
            self.evicted += 1
            if m.enabled:
                m.counter("batch.cache.evictions").inc()
