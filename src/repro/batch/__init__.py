"""Crash-isolated parallel batch compilation (``repro batch``).

The robustness capstone over the whole pipeline: fan a corpus of GLAF
projects, legacy FORTRAN sources, and fuzz-generated programs through
parse→analyze→optimize→codegen→lint in isolated worker processes, with
per-item budgets, parent-side deadlines, seeded retry, content-addressed
artifact caching, sticky poison-item quarantine, per-item checkpoints
behind ``--resume``, and graceful degradation to serial execution.
Narrative documentation lives in ``docs/BATCH.md``.
"""

from .cache import CACHE_SCHEMA, ArtifactCache
from .corpus import POISON_KINDS, SOURCE_SUFFIXES, CorpusItem, ingest_corpus
from .driver import (
    DEFAULT_CACHE_DIR,
    DEFAULT_CHECKPOINT_DIR,
    DEFAULT_QUARANTINE_DIR,
    POISON_SCHEMA,
    BatchOptions,
    BatchResult,
    quarantine_bundle_name,
    run_batch,
)
from .manifest import (
    MANIFEST_SCHEMA,
    ItemOutcome,
    build_manifest,
    load_manifest,
    write_manifest,
)
from .worker import (
    ARTIFACT_SCHEMA,
    POISON_CRASH_EXIT,
    POISON_OOM_EXIT,
    WorkerConfig,
    compile_item,
    run_item,
    worker_entry,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "BatchOptions",
    "BatchResult",
    "CACHE_SCHEMA",
    "CorpusItem",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CHECKPOINT_DIR",
    "DEFAULT_QUARANTINE_DIR",
    "ItemOutcome",
    "MANIFEST_SCHEMA",
    "POISON_CRASH_EXIT",
    "POISON_KINDS",
    "POISON_OOM_EXIT",
    "POISON_SCHEMA",
    "SOURCE_SUFFIXES",
    "WorkerConfig",
    "build_manifest",
    "compile_item",
    "ingest_corpus",
    "load_manifest",
    "quarantine_bundle_name",
    "run_batch",
    "run_item",
    "worker_entry",
]
