"""Aggregate batch manifest: the digest-stable record of one campaign.

One :class:`ItemOutcome` per corpus item, one ``repro.batch.manifest/v1``
document per batch.  The manifest's ``content_sha256`` covers only the
*semantic* core — pipeline options plus the per-item outcome cores,
sorted by item id — and deliberately excludes anything an interruption
can perturb: wall seconds, cache hit/miss status, resume counts, and
per-item attempt counts all live in the un-digested ``run`` section.
That exclusion is the resume contract: a batch SIGKILLed mid-campaign
and finished with ``--resume`` produces a manifest whose digest equals
an uninterrupted run's (``scripts/resume_smoke.py`` enforces it against
the real CLI), and a serial (``--jobs 1``) run digests identically to a
parallel one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import BatchError
from ..numeric.integrity import atomic_write_json, content_digest

__all__ = ["MANIFEST_SCHEMA", "ItemOutcome", "build_manifest",
           "write_manifest", "load_manifest"]

MANIFEST_SCHEMA = "repro.batch.manifest/v1"

_STATUSES = ("ok", "failed", "quarantined")


@dataclass
class ItemOutcome:
    """The terminal state of one corpus item.

    ``ok``: compiled, artifacts digested; findings-free.
    ``failed``: the pipeline produced a typed verdict (lint findings,
    a DiagnosticBundle, a budget trip) — deterministic, not retried into
    quarantine.
    ``quarantined``: the item killed its worker on every attempt and a
    digest-named poison bundle was written.
    """

    id: str
    kind: str
    status: str
    content_sha: str
    artifact_sha: str = ""
    failures: list[dict] = field(default_factory=list)
    deaths: list[dict] = field(default_factory=list)
    bundle: str = ""
    attempts: int = 1
    cached: bool = False
    resumed: bool = False

    def core(self) -> dict:
        """The digested projection: everything an interruption, a cache
        hit, or a retry count cannot change."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "content_sha": self.content_sha,
            "artifact_sha": self.artifact_sha,
            "failures": list(self.failures),
            "deaths": list(self.deaths),
            "bundle": self.bundle,
        }

    def to_json(self) -> dict:
        doc = self.core()
        doc.update({"attempts": self.attempts, "cached": self.cached,
                    "resumed": self.resumed})
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "ItemOutcome":
        if doc.get("status") not in _STATUSES:
            raise BatchError(
                f"bad item outcome status {doc.get('status')!r} "
                f"(want one of {', '.join(_STATUSES)})")
        return cls(
            id=doc["id"], kind=doc["kind"], status=doc["status"],
            content_sha=doc["content_sha"],
            artifact_sha=doc.get("artifact_sha", ""),
            failures=list(doc.get("failures", ())),
            deaths=list(doc.get("deaths", ())),
            bundle=doc.get("bundle", ""),
            attempts=int(doc.get("attempts", 1)),
            cached=bool(doc.get("cached", False)),
            resumed=bool(doc.get("resumed", False)),
        )


def build_manifest(outcomes: list[ItemOutcome], options: dict,
                   run: dict | None = None) -> dict:
    """Assemble and digest-stamp the aggregate manifest.

    ``options`` is the pipeline-options document (the same one the cache
    keys on, plus the retry/timeout envelope); ``run`` is free-form
    un-digested run telemetry (wall seconds, jobs, cache stats, resumed
    counts).
    """
    core = {
        "schema": MANIFEST_SCHEMA,
        "options": dict(options),
        "items": [o.core() for o in sorted(outcomes, key=lambda o: o.id)],
    }
    doc = dict(core)
    doc["content_sha256"] = content_digest(core)
    doc["run"] = dict(run or {})
    # The full (non-core) outcome views ride along for triage, outside
    # the digest so cached/resumed flags never perturb it.
    doc["run"]["items"] = {
        o.id: {"attempts": o.attempts, "cached": o.cached,
               "resumed": o.resumed}
        for o in sorted(outcomes, key=lambda o: o.id)
    }
    return doc


def write_manifest(path: str | Path, doc: dict) -> Path:
    return atomic_write_json(path, doc)


def load_manifest(path: str | Path) -> dict:
    """Read and digest-verify a manifest; typed error on any corruption."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise BatchError(f"{path}: unreadable batch manifest ({e})") from e
    if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA:
        raise BatchError(
            f"{path}: expected manifest schema {MANIFEST_SCHEMA!r}, found "
            f"{doc.get('schema') if isinstance(doc, dict) else doc!r}")
    core = {k: doc.get(k) for k in ("schema", "options", "items")}
    if doc.get("content_sha256") != content_digest(core):
        raise BatchError(
            f"{path}: manifest digest mismatch — file corrupted or "
            "hand-edited")
    return doc
