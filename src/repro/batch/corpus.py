"""Corpus ingestion for ``repro batch``: files, directories, specs.

A corpus is an ordered list of :class:`CorpusItem` values, each carrying
its payload *by value* (project JSON, legacy FORTRAN text, a fuzz spec,
or a poison directive), so items pickle cleanly into worker processes
and their content digests are stable no matter where the batch runs.

Four item kinds:

``project``
    A saved GLAF project (``*.json``): validated, planned, generated,
    re-parsed, and linted — the full paper pipeline.
``source``
    A legacy FORTRAN file (``*.f``, ``*.f90``, ``*.f77``, ``*.for``):
    parsed with recovery, range-analyzed, and linted.
``fuzz``
    One :class:`repro.fuzz.CodebaseSpec` drawn from a ``fuzz:SEED:COUNT``
    input — the seeded generator as an infinite corpus faucet.
``poison``
    A synthetic fault directive from ``poison:KIND[:N]`` (``crash``,
    ``hang``, or ``oom``), used to prove the crash-isolation envelope:
    the item kills/stalls/overallocates its worker on purpose and must
    end up quarantined, never taking the batch down (docs/BATCH.md).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path

from ..errors import BatchError

__all__ = ["CorpusItem", "ingest_corpus", "SOURCE_SUFFIXES",
           "POISON_KINDS"]

#: Legacy FORTRAN file suffixes picked up from files and directories.
SOURCE_SUFFIXES = (".f", ".f90", ".f77", ".for")

#: Fault directives ``poison:KIND[:N]`` understands.
POISON_KINDS = ("crash", "hang", "oom")

_ID_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass(frozen=True)
class CorpusItem:
    """One unit of batch work, self-contained and pickle-safe."""

    id: str                  # unique, filename-safe (checkpoint key)
    kind: str                # project | source | fuzz | poison
    content: str             # JSON text / FORTRAN text / poison kind
    origin: str = ""         # provenance (path or spec), display only

    @property
    def content_sha(self) -> str:
        return hashlib.sha256(self.content.encode("utf-8")).hexdigest()


def _safe_id(text: str) -> str:
    safe = _ID_SAFE.sub("-", text).strip("-.")
    return safe or "item"


def _unique(base: str, taken: set[str]) -> str:
    if base not in taken:
        return base
    n = 2
    while f"{base}-{n}" in taken:
        n += 1
    return f"{base}-{n}"


def _from_file(path: Path, taken: set[str]) -> CorpusItem:
    suffix = path.suffix.lower()
    if suffix == ".json":
        kind = "project"
    elif suffix in SOURCE_SUFFIXES:
        kind = "source"
    else:
        raise BatchError(
            f"{path}: unsupported corpus file type {suffix!r} (want .json "
            f"for projects or {'/'.join(SOURCE_SUFFIXES)} for legacy "
            "FORTRAN)")
    try:
        content = path.read_text(encoding="utf-8")
    except OSError as e:
        raise BatchError(f"{path}: unreadable corpus file ({e})") from e
    item_id = _unique(_safe_id(path.name), taken)
    return CorpusItem(id=item_id, kind=kind, content=content,
                      origin=str(path))


def _from_dir(path: Path, taken: set[str]) -> list[CorpusItem]:
    wanted = (".json",) + SOURCE_SUFFIXES
    found = sorted(p for p in path.rglob("*")
                   if p.is_file() and p.suffix.lower() in wanted)
    if not found:
        raise BatchError(
            f"{path}: directory holds no corpus files "
            f"({'/'.join(wanted)})")
    items = []
    for p in found:
        item = _from_file(p, taken)
        taken.add(item.id)
        items.append(item)
    return items


def _from_fuzz_spec(spec: str, profile: str, taken: set[str]
                    ) -> list[CorpusItem]:
    from ..fuzz import generate_spec

    parts = spec.split(":")
    if len(parts) != 3:
        raise BatchError(
            f"bad fuzz corpus spec {spec!r} (want fuzz:SEED:COUNT)")
    try:
        seed, count = int(parts[1]), int(parts[2])
    except ValueError as e:
        raise BatchError(
            f"bad fuzz corpus spec {spec!r}: SEED and COUNT must be "
            "integers") from e
    if count <= 0:
        raise BatchError(f"bad fuzz corpus spec {spec!r}: COUNT must be "
                         "positive")
    items = []
    for i in range(count):
        cs = generate_spec(seed, profile, i)
        item_id = _unique(f"fuzz-{seed}-{i:04d}", taken)
        taken.add(item_id)
        items.append(CorpusItem(
            id=item_id, kind="fuzz",
            content=json.dumps(cs.to_json(), sort_keys=True),
            origin=spec))
    return items


def _from_poison_spec(spec: str, taken: set[str]) -> list[CorpusItem]:
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise BatchError(
            f"bad poison spec {spec!r} (want poison:KIND[:N], KIND one of "
            f"{', '.join(POISON_KINDS)})")
    kind = parts[1]
    if kind not in POISON_KINDS:
        raise BatchError(
            f"bad poison spec {spec!r}: unknown kind {kind!r} (want one "
            f"of {', '.join(POISON_KINDS)})")
    try:
        count = int(parts[2]) if len(parts) == 3 else 1
    except ValueError as e:
        raise BatchError(f"bad poison spec {spec!r}: N must be an "
                         "integer") from e
    if count <= 0:
        raise BatchError(f"bad poison spec {spec!r}: N must be positive")
    items = []
    for i in range(count):
        item_id = _unique(f"poison-{kind}-{i}", taken)
        taken.add(item_id)
        items.append(CorpusItem(id=item_id, kind="poison", content=kind,
                                origin=spec))
    return items


def ingest_corpus(inputs: list[str] | tuple[str, ...], *,
                  fuzz_profile: str = "small") -> list[CorpusItem]:
    """Resolve CLI inputs into a deterministic, de-duplicated corpus.

    Each input is a project/FORTRAN file, a directory of them (recursed
    in sorted order), a ``fuzz:SEED:COUNT`` generator spec, or a
    ``poison:KIND[:N]`` fault directive.  Item ids are filename-safe
    (checkpoint keys) and unique across the whole corpus; input order is
    preserved so two invocations with the same arguments produce the
    same corpus, in the same order, byte for byte.
    """
    if not inputs:
        raise BatchError("empty corpus: give files, directories, "
                         "fuzz:SEED:COUNT, or poison:KIND[:N] inputs")
    items: list[CorpusItem] = []
    taken: set[str] = set()
    for raw in inputs:
        if raw.startswith("fuzz:"):
            items.extend(_from_fuzz_spec(raw, fuzz_profile, taken))
            continue
        if raw.startswith("poison:"):
            items.extend(_from_poison_spec(raw, taken))
            continue
        path = Path(raw)
        if path.is_dir():
            items.extend(_from_dir(path, taken))
        elif path.is_file():
            item = _from_file(path, taken)
            taken.add(item.id)
            items.append(item)
        else:
            raise BatchError(
                f"{raw}: not a corpus file, directory, fuzz:SEED:COUNT "
                "spec, or poison:KIND[:N] directive")
    return items
