"""The crash-isolated parallel batch driver (``repro batch``).

ROADMAP item 3's robustness half: fan a corpus of projects / legacy
sources / fuzz specs through the whole pipeline with the guarantee that
one pathological item can never hang, crash, or corrupt the run for the
rest.  The envelope, per item:

1. **Resume** — with ``--resume``, a digest-valid checkpoint from a
   killed campaign short-circuits the item entirely
   (:class:`repro.numeric.CheckpointStore`).
2. **Sticky quarantine** — an item already quarantined as poison (its
   digest-named bundle exists for these pipeline options) is skipped
   without spawning a worker: poison stays down across invocations.
3. **Cache** — the content-addressed :class:`.cache.ArtifactCache` is
   consulted before any process is spawned; a verified hit costs one
   JSON read instead of a compile.
4. **Isolated compile with retry** — the item runs in a worker process
   (forkserver, falling back to spawn) under its ``ResourceLimits``
   (iteration/wall budgets inside, ``RLIMIT_AS`` memory budget at
   startup) plus a parent-side deadline that SIGKILLs a hung worker.
   Worker death raises :class:`repro.errors.WorkerCrashError`, retried
   under a seeded :class:`repro.numeric.RetryPolicy`; typed pipeline
   errors are transported back as themselves, and the never-retry
   classes (``ResourceLimitError``, ``NumericIntegrityError``) propagate
   without re-spawning.
5. **Quarantine** — an item whose worker died on every attempt gets a
   digest-named ``batch-<sha12>.json`` poison bundle (fuzz-style) and
   the batch keeps going.

``--jobs 1`` — or a platform without ``multiprocessing`` — degrades to
serial in-process execution of the same compile path (poison faults are
then *simulated* with identical death records, since really crashing
would take the parent down); serial and parallel runs produce
digest-identical manifests.  See ``docs/BATCH.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import (
    BatchError,
    DiagnosticBundle,
    ExecutionError,
    GlafError,
    WorkerCrashError,
)
from ..numeric.checkpoint import CheckpointStore
from ..numeric.integrity import atomic_write_json, content_digest
from ..numeric.retry import RetryPolicy, retry_call
from ..robust.watchdog import ResourceLimits
from .cache import ArtifactCache
from .corpus import CorpusItem
from .manifest import ItemOutcome, build_manifest
from .worker import (
    POISON_CRASH_EXIT,
    POISON_OOM_EXIT,
    WorkerConfig,
    run_item,
    worker_entry,
)

__all__ = ["POISON_SCHEMA", "DEFAULT_CHECKPOINT_DIR",
           "DEFAULT_QUARANTINE_DIR", "DEFAULT_CACHE_DIR",
           "BatchOptions", "BatchResult", "run_batch",
           "quarantine_bundle_name"]

POISON_SCHEMA = "repro.batch.poison/v1"
DEFAULT_CHECKPOINT_DIR = ".repro_batch.ckpt"
DEFAULT_QUARANTINE_DIR = "batch_quarantine"
DEFAULT_CACHE_DIR = os.path.join(".repro", "batch-cache")


@dataclass(frozen=True)
class BatchOptions:
    """The whole envelope for one batch, validated up front."""

    variant: str = "GLAF-parallel v0"
    target: str = "fortran"
    jobs: int = 1
    timeout: float = 60.0             # parent-side per-item deadline (s)
    retries: int = 1                  # worker re-spawns before quarantine
    seed: int = 0                     # retry-jitter stream root
    max_loop_iterations: int | None = 2_000_000
    max_wall_seconds: float | None = 30.0
    max_memory_mb: int | None = 2048
    fuzz_profile: str = "small"
    cache_dir: str | None = DEFAULT_CACHE_DIR
    cache_max_entries: int = 0        # 0: unbounded
    checkpoint_dir: str | None = DEFAULT_CHECKPOINT_DIR
    resume: bool = False
    quarantine_dir: str = DEFAULT_QUARANTINE_DIR
    retry_base_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise BatchError("batch jobs must be >= 1")
        if self.timeout <= 0:
            raise BatchError("batch timeout must be positive")
        if self.retries < 0:
            raise BatchError("batch retries must be >= 0")
        if self.cache_max_entries < 0:
            raise BatchError("cache_max_entries must be >= 0")

    def limits(self) -> ResourceLimits:
        return ResourceLimits(
            max_loop_iterations=self.max_loop_iterations,
            max_wall_seconds=self.max_wall_seconds,
            max_memory_mb=self.max_memory_mb)

    def worker_config(self) -> WorkerConfig:
        return WorkerConfig(variant=self.variant, target=self.target,
                            limits=self.limits())

    def pipeline_options(self) -> dict:
        """The options half of the cache address: everything that can
        change what the pipeline *emits* for a given source."""
        return {"variant": self.variant, "target": self.target,
                "fuzz_profile": self.fuzz_profile}

    def manifest_options(self) -> dict:
        """The digested manifest options: the pipeline options plus the
        robustness envelope (budgets shape typed-failure outcomes, the
        timeout appears in hang death records, retries bound death
        lists) — but never ``jobs``, so serial and parallel runs digest
        identically."""
        return {
            **self.pipeline_options(),
            "retries": self.retries,
            "timeout": self.timeout,
            "seed": self.seed,
            "max_loop_iterations": self.max_loop_iterations,
            "max_wall_seconds": self.max_wall_seconds,
            "max_memory_mb": self.max_memory_mb,
        }


@dataclass
class BatchResult:
    """Everything one batch produced, manifest already digest-stamped."""

    manifest: dict
    outcomes: list[ItemOutcome]
    stats: dict

    @property
    def ok(self) -> bool:
        return (self.stats["failed"] == 0
                and self.stats["quarantined"] == 0)


# -- worker process management ------------------------------------------

def _main_is_spawn_safe() -> bool:
    """Whether spawn/forkserver children can re-import ``__main__``.

    Both start methods replay the parent's main module in the child; a
    parent whose main is not a real importable file — a REPL, a heredoc,
    an embedded interpreter — would kill every worker at startup with
    ``FileNotFoundError``, which the driver would then dutifully
    quarantine as poison.  Detect that up front and degrade to serial
    instead.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None:
        return False
    spec = getattr(main, "__spec__", None)
    if getattr(spec, "name", None):
        return True               # python -m …: re-imported by name
    path = getattr(main, "__file__", None)
    return bool(path) and os.path.exists(path)


def _mp_context():
    """A working multiprocessing context, or ``None`` to degrade serial.

    Prefers ``forkserver`` (safe next to the driver's threads, and forks
    are fast once the server has preloaded the package); falls back to
    ``spawn``; returns ``None`` where multiprocessing itself is broken
    (missing OS semaphores, restricted platforms) or where worker
    startup could never succeed (:func:`_main_is_spawn_safe`).
    """
    if not _main_is_spawn_safe():
        return None
    try:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("forkserver")
            try:
                ctx.set_forkserver_preload(["repro.batch.worker"])
            except Exception:         # server already running: keep it
                pass
        except ValueError:
            ctx = mp.get_context("spawn")
        return ctx
    except (ImportError, OSError, ValueError):
        return None


def _hang_message(item_id: str, timeout: float) -> str:
    return (f"batch:{item_id}: worker SIGKILLed after exceeding the "
            f"parent deadline of {timeout:g}s")


def _crash_message(item_id: str, exit_code) -> str:
    return (f"batch:{item_id}: worker died before reporting a result "
            f"(exit code {exit_code})")


def _kill(proc) -> None:
    if proc.is_alive():
        proc.kill()
    proc.join()


def _spawn_once(item: CorpusItem, config: WorkerConfig,
                options: BatchOptions, ctx) -> dict:
    """One worker process for one item: typed result, typed error, or
    :class:`WorkerCrashError` — never a parent hang."""
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=worker_entry,
                       args=(child_conn, item, config), daemon=True)
    proc.start()
    child_conn.close()
    message = None
    try:
        if parent_conn.poll(options.timeout):
            try:
                message = parent_conn.recv()
            except (EOFError, OSError):
                message = None        # died without reporting
        else:
            _kill(proc)
            raise WorkerCrashError(
                _hang_message(item.id, options.timeout),
                item=item.id, kind="hang")
    finally:
        parent_conn.close()
    if message is None:
        proc.join(options.timeout)
        _kill(proc)
        code = proc.exitcode
        raise WorkerCrashError(_crash_message(item.id, code),
                               item=item.id, kind="crash", exit_code=code)
    proc.join(options.timeout)
    _kill(proc)
    status, payload = message
    if status == "ok":
        return payload
    raise payload


def _simulate_poison(item: CorpusItem, options: BatchOptions) -> None:
    """Serial-mode stand-in for a poison worker death.

    Really crashing/hanging would take the whole (single-process) batch
    down, so serial mode raises the exact :class:`WorkerCrashError` the
    parallel parent would have synthesized — same kind, same exit code,
    same message — keeping serial and parallel manifests digest-equal.
    """
    kind = item.content
    if kind == "hang":
        raise WorkerCrashError(_hang_message(item.id, options.timeout),
                               item=item.id, kind="hang")
    code = POISON_OOM_EXIT if kind == "oom" else POISON_CRASH_EXIT
    raise WorkerCrashError(_crash_message(item.id, code),
                           item=item.id, kind="crash", exit_code=code)


def _run_serial(item: CorpusItem, config: WorkerConfig,
                options: BatchOptions) -> dict:
    if item.kind == "poison":
        _simulate_poison(item, options)
    return run_item(item, config)


# -- quarantine ---------------------------------------------------------

def quarantine_bundle_name(item: CorpusItem, options: BatchOptions) -> str:
    """Deterministic bundle filename for one poisonous (item, options).

    The digest covers only the item identity and the pipeline options —
    not the deaths — so interrupted, resumed, and repeated runs converge
    on the same file (the stickiness key)."""
    digest = content_digest({
        "schema": POISON_SCHEMA,
        "item": {"id": item.id, "kind": item.kind,
                 "content_sha": item.content_sha},
        "options": options.manifest_options(),
    })
    return f"batch-{digest[:12]}.json"


def _write_quarantine(item: CorpusItem, options: BatchOptions,
                      deaths: list[dict]) -> str:
    name = quarantine_bundle_name(item, options)
    qdir = Path(options.quarantine_dir)
    qdir.mkdir(parents=True, exist_ok=True)
    atomic_write_json(qdir / name, {
        "schema": POISON_SCHEMA,
        "item": {"id": item.id, "kind": item.kind,
                 "content_sha": item.content_sha,
                 "content": item.content, "origin": item.origin},
        "options": options.manifest_options(),
        "deaths": list(deaths),
        "attempts": len(deaths),
    })
    return name


def _sticky_deaths(item: CorpusItem, options: BatchOptions
                   ) -> list[dict] | None:
    """The death record from a prior quarantine of this exact (item,
    options), or ``None``.  An unreadable bundle is ignored — the item
    gets a fresh chance and a fresh bundle."""
    path = Path(options.quarantine_dir) / quarantine_bundle_name(
        item, options)
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != POISON_SCHEMA:
        return None
    return [d for d in doc.get("deaths", ()) if isinstance(d, dict)]


# -- outcomes -----------------------------------------------------------

def _failure_doc(exc: GlafError) -> dict:
    doc = {
        "stage": getattr(exc, "batch_stage", "") or "compile",
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, DiagnosticBundle):
        doc["diagnostics"] = [str(d) for d in exc.diagnostics]
    return doc


def _outcome_from_artifacts(item: CorpusItem, artifacts: dict, *,
                            cached: bool, attempts: int,
                            deaths: list[dict]) -> ItemOutcome:
    failures = []
    for f in artifacts.get("lint", {}).get("findings", ()):
        failures.append({
            "stage": "lint",
            "error": "LintFinding",
            "rule": f.get("rule", ""),
            "message": (f"{f.get('unit', '?')}:{f.get('line', 0)}: "
                        f"{f.get('message', '')}"),
        })
    return ItemOutcome(
        id=item.id, kind=item.kind,
        status="failed" if failures else "ok",
        content_sha=item.content_sha,
        artifact_sha=content_digest(artifacts),
        failures=failures, deaths=list(deaths),
        attempts=attempts, cached=cached)


class _Stats:
    """Thread-safe tallies for the run section / metrics / CLI lines."""

    FIELDS = ("ok", "failed", "quarantined", "resumed", "sticky",
              "deaths", "hits", "misses")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts = dict.fromkeys(self.FIELDS, 0)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counts[name] += n


def _note_item(item: CorpusItem, index: int, outcome: ItemOutcome) -> None:
    from ..observe import get_decisions, get_metrics

    m = get_metrics()
    if m.enabled:
        m.counter("batch.items").inc()
        m.counter(f"batch.{outcome.status}").inc()
        if outcome.cached:
            m.counter("batch.cache.hits").inc()
        if outcome.deaths:
            m.counter("batch.deaths").inc(len(outcome.deaths))
    dl = get_decisions()
    if dl.enabled:
        reasons = tuple(f["message"] for f in outcome.failures[:3])
        dl.record("batch:item", item.id, index, item.kind, outcome.status,
                  reasons=reasons, cached=outcome.cached,
                  resumed=outcome.resumed, attempts=outcome.attempts)


def _note_quarantine(item: CorpusItem, index: int, bundle: str,
                     verdict: str, detail: str) -> None:
    from ..observe import get_decisions, get_metrics

    m = get_metrics()
    if m.enabled:
        m.counter("batch.quarantined").inc()
    dl = get_decisions()
    if dl.enabled:
        dl.record("batch:quarantine", item.id, index, item.kind, verdict,
                  reasons=(detail,), bundle=bundle)


def _process_item(item: CorpusItem, index: int, options: BatchOptions,
                  config: WorkerConfig, store: CheckpointStore | None,
                  cache: ArtifactCache | None, ctx,
                  stats: _Stats) -> ItemOutcome:
    from ..observe import get_metrics

    key = f"item-{item.id}"

    # 1. a digest-valid checkpoint from a killed campaign wins outright.
    if store is not None and options.resume:
        doc = store.load(key, discard_corrupt=True)
        if doc is not None:
            outcome = ItemOutcome.from_json(doc["outcome"])
            outcome.resumed = True
            stats.bump("resumed")
            stats.bump(outcome.status)
            _note_item(item, index, outcome)
            return outcome

    # 2. sticky quarantine: known poison is never given a third worker.
    prior = _sticky_deaths(item, options)
    if prior is not None:
        bundle = quarantine_bundle_name(item, options)
        outcome = ItemOutcome(
            id=item.id, kind=item.kind, status="quarantined",
            content_sha=item.content_sha, deaths=prior, bundle=bundle,
            attempts=0,
            failures=[{"stage": "worker", "error": "WorkerCrashError",
                       "message": prior[-1]["detail"] if prior else
                       "quarantined by a previous run"}])
        stats.bump("quarantined")
        stats.bump("sticky")
        _note_quarantine(item, index, bundle, "sticky",
                         "bundle already on disk; worker not spawned")
        if store is not None:
            store.save(key, {"outcome": outcome.to_json()})
        _note_item(item, index, outcome)
        return outcome

    # 3. content-addressed cache: verified hits skip the compile.
    cache_key = None
    if cache is not None and item.kind != "poison":
        cache_key = cache.key_for(item.content_sha, item.kind,
                                  options.pipeline_options())
        artifacts = cache.get(cache_key)
        if artifacts is not None:
            stats.bump("hits")
            outcome = _outcome_from_artifacts(
                item, artifacts, cached=True, attempts=0, deaths=[])
            stats.bump(outcome.status)
            if store is not None:
                store.save(key, {"outcome": outcome.to_json()})
            _note_item(item, index, outcome)
            return outcome
        stats.bump("misses")
        m = get_metrics()
        if m.enabled:
            m.counter("batch.cache.misses").inc()

    # 4. isolated compile under seeded retry-with-backoff.
    deaths: list[dict] = []
    attempts = 0

    def attempt() -> dict:
        nonlocal attempts
        attempts += 1
        try:
            if ctx is None:
                return _run_serial(item, config, options)
            return _spawn_once(item, config, options, ctx)
        except WorkerCrashError as e:
            deaths.append({"kind": e.kind, "attempt": attempts - 1,
                           "detail": str(e)})
            stats.bump("deaths")
            raise

    policy = RetryPolicy(retries=options.retries,
                         base_delay=options.retry_base_delay,
                         seed=(options.seed * 1_000_003 + index) % 2**32)
    try:
        artifacts = retry_call(
            attempt, policy=policy, what=f"batch:{item.id}",
            retryable=(WorkerCrashError, ExecutionError))
    except WorkerCrashError:
        # 5. every attempt killed its worker: quarantine and move on.
        bundle = _write_quarantine(item, options, deaths)
        outcome = ItemOutcome(
            id=item.id, kind=item.kind, status="quarantined",
            content_sha=item.content_sha, deaths=deaths, bundle=bundle,
            attempts=attempts,
            failures=[{"stage": "worker", "error": "WorkerCrashError",
                       "message": deaths[-1]["detail"]}])
        stats.bump("quarantined")
        _note_quarantine(item, index, bundle, "written",
                         deaths[-1]["detail"])
    except GlafError as e:
        outcome = ItemOutcome(
            id=item.id, kind=item.kind, status="failed",
            content_sha=item.content_sha, failures=[_failure_doc(e)],
            deaths=deaths, attempts=attempts)
        stats.bump("failed")
    else:
        if cache_key is not None:
            cache.put(cache_key, content_sha=item.content_sha,
                      kind=item.kind,
                      options=options.pipeline_options(),
                      artifacts=artifacts)
        outcome = _outcome_from_artifacts(
            item, artifacts, cached=False, attempts=attempts,
            deaths=deaths)
        stats.bump(outcome.status)
    if store is not None:
        store.save(key, {"outcome": outcome.to_json()})
    _note_item(item, index, outcome)
    return outcome


def run_batch(items: list[CorpusItem],
              options: BatchOptions | None = None) -> BatchResult:
    """Drive the whole corpus to a digest-stamped aggregate manifest."""
    from ..observe import get_decisions

    options = options or BatchOptions()
    if not items:
        raise BatchError("run_batch: empty corpus")
    ids = [i.id for i in items]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise BatchError(f"run_batch: duplicate item id(s): "
                         f"{', '.join(dupes)}")

    t0 = time.perf_counter()
    store = (CheckpointStore(options.checkpoint_dir)
             if options.checkpoint_dir else None)
    if store is not None and not options.resume:
        store.clear()              # stale checkpoints must not skip work
    cache = (ArtifactCache(options.cache_dir,
                           max_entries=options.cache_max_entries)
             if options.cache_dir else None)

    ctx = None
    mode = "serial"
    if options.jobs > 1:
        ctx = _mp_context()
        if ctx is not None:
            mode = "parallel"
        else:
            dl = get_decisions()
            if dl.enabled:
                dl.record("batch:degraded", "batch", 0, "", "serial",
                          reasons=("multiprocessing unavailable; compiling "
                                   "in-process without crash isolation",))

    stats = _Stats()
    config = options.worker_config()

    def process(pair) -> ItemOutcome:
        index, item = pair
        return _process_item(item, index, options, config, store, cache,
                             ctx, stats)

    if mode == "parallel":
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=options.jobs) as pool:
            outcomes = list(pool.map(process, enumerate(items)))
    else:
        outcomes = [process(pair) for pair in enumerate(items)]

    wall_s = time.perf_counter() - t0
    counts = dict(stats.counts)
    run_stats = {
        "items": len(items),
        "ok": counts["ok"],
        "failed": counts["failed"],
        "quarantined": counts["quarantined"],
        "resumed": counts["resumed"],
        "sticky": counts["sticky"],
        "deaths": counts["deaths"],
        "attempts": sum(o.attempts for o in outcomes),
        "cache": {
            "enabled": cache is not None,
            "hits": counts["hits"],
            "misses": counts["misses"],
            "corrupt": cache.corrupt_discarded if cache else 0,
            "evictions": cache.evicted if cache else 0,
        },
        "wall_s": round(wall_s, 6),
        "jobs": options.jobs,
        "mode": mode,
    }
    manifest = build_manifest(outcomes, options.manifest_options(),
                              run=run_stats)
    if store is not None:
        store.clear()              # campaign complete: checkpoints spent
    dl = get_decisions()
    if dl.enabled:
        dl.record(
            "batch:campaign", "batch", len(items), mode,
            "completed" if not (counts["failed"] or counts["quarantined"])
            else "failed",
            reasons=(f"ok {counts['ok']}, failed {counts['failed']}, "
                     f"quarantined {counts['quarantined']}",),
            digest=manifest["content_sha256"])
    return BatchResult(manifest=manifest, outcomes=outcomes,
                       stats=run_stats)
