"""The isolated compile worker: one corpus item per process.

:func:`worker_entry` is the ``multiprocessing`` target the batch driver
spawns (forkserver/spawn context).  The worker applies its memory budget
(``RLIMIT_AS`` via :func:`repro.robust.apply_memory_limit`), runs the
item through parse→analyze→optimize→codegen→lint under a
:class:`repro.robust.Budget`, and reports exactly one message over its
pipe: ``("ok", artifacts)`` or ``("error", exc)`` with a pickle-safe
typed exception.  Anything else — a segfault, an ``os._exit``, a hang
past the parent deadline — is the *parent's* problem, surfaced there as
:class:`repro.errors.WorkerCrashError` (docs/BATCH.md).

The same compile path runs in-process for ``--jobs 1`` / degraded-serial
batches via :func:`run_item`, so serial and parallel runs produce
digest-identical artifacts.

``poison`` items exercise the isolation envelope on purpose:

* ``crash`` — ``os._exit(66)`` without reporting;
* ``hang`` — sleep until the parent deadline SIGKILLs the worker;
* ``oom`` — allocate until the ``RLIMIT_AS`` budget trips, then die
  hard (``os._exit(77)``), modelling a worker the allocator took down
  before Python could unwind cleanly.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from ..errors import BatchError, GlafError, ResourceLimitError
from ..robust.watchdog import Budget, ResourceLimits, apply_memory_limit

__all__ = ["ARTIFACT_SCHEMA", "POISON_CRASH_EXIT", "POISON_OOM_EXIT",
           "WorkerConfig", "compile_item", "run_item", "worker_entry",
           "oom_message"]

ARTIFACT_SCHEMA = "repro.batch.artifact/v1"

#: Exit codes the poison faults die with (deterministic, so serial-mode
#: simulation and the real worker produce identical death records).
POISON_CRASH_EXIT = 66
POISON_OOM_EXIT = 77

#: Hard ceiling on poison:oom allocation when no memory budget is set —
#: the fault must prove the budget, not invite the kernel OOM killer.
_POISON_OOM_CAP_MB = 4096


def oom_message(item_id: str, max_memory_mb: int | None) -> str:
    """The typed message for a graceful (caught) memory-budget trip."""
    return (f"batch:{item_id}: memory budget of {max_memory_mb} MB "
            "exceeded")


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs, pickle-safe for process transport."""

    variant: str = "GLAF-parallel v0"
    target: str = "fortran"
    limits: ResourceLimits = ResourceLimits()


def _run_poison(kind: str, item_id: str, limits: ResourceLimits) -> None:
    """Execute one poison directive for real (worker process only)."""
    if kind == "crash":
        os._exit(POISON_CRASH_EXIT)
    if kind == "hang":
        while True:                   # parent deadline SIGKILLs us
            time.sleep(0.05)
    if kind == "oom":
        import numpy as np

        chunk_mb = 16
        hoard = []
        try:
            for _ in range(_POISON_OOM_CAP_MB // chunk_mb):
                # ones(), not zeros(): touch the pages so the allocation
                # is real even where the platform overcommits.
                hoard.append(np.ones(chunk_mb * 131072, dtype=np.float64))
        except MemoryError:
            del hoard
            os._exit(POISON_OOM_EXIT)
        raise BatchError(
            f"batch:{item_id}: poison:oom allocated {_POISON_OOM_CAP_MB} "
            "MB without tripping a memory budget — run with --max-memory "
            "to arm RLIMIT_AS")
    raise BatchError(f"batch:{item_id}: unknown poison kind {kind!r}")


def _empty_lint(units: int = 0) -> dict:
    from ..lint.findings import LintReport

    report = LintReport(units=units)
    return report.to_json()


def compile_item(item, config: WorkerConfig) -> dict:
    """parse→analyze→optimize→codegen→lint for one corpus item.

    Returns the artifacts document (code + lint report + SLOC; the
    caller attaches decisions).  Typed failures are annotated with the
    pipeline stage they surfaced in (``batch_stage``), which survives
    pickling into the parent's failure records.  Artifacts carry no item
    id — two items with identical content and options must digest (and
    cache) identically.
    """
    budget = Budget(config.limits, what=f"batch:{item.id}")
    budget.start()
    stage = "ingest"
    try:
        if item.kind == "poison":
            stage = "poison"
            _run_poison(item.content, item.id, config.limits)
            raise AssertionError("unreachable")  # pragma: no cover
        if item.kind == "source":
            return _compile_source(item, budget)
        return _compile_program(item, config, budget)
    except GlafError as e:
        if not getattr(e, "batch_stage", ""):
            e.batch_stage = stage
        raise


def _compile_source(item, budget: Budget) -> dict:
    from ..codegen import count_sloc
    from ..fortranlib.parser import parse_source
    from ..lint.dataflow import analyze_batch_ranges
    from ..lint.runner import lint_text

    stage = "parse"
    try:
        parsed = parse_source(item.content, recover=True)
        budget.check_time()
        stage = "analyze"
        ranges = analyze_batch_ranges({"source.f90": parsed})
        summary = {
            ur.unit: {"proven": ur.summary.proven,
                      "possible": ur.summary.possible,
                      "unknown": ur.summary.unknown}
            for ur in ranges
        }
        budget.check_time()
        stage = "lint"
        report = lint_text(item.content)
        budget.check_time()
    except GlafError as e:
        e.batch_stage = getattr(e, "batch_stage", "") or stage
        raise
    return {
        "schema": ARTIFACT_SCHEMA,
        "target": "source",
        "code": "",                   # nothing generated: lint-only path
        "sloc": count_sloc(item.content),
        "units": report.units,
        "lint": report.to_json(),
        "ranges": summary,
    }


def _compile_program(item, config: WorkerConfig, budget: Budget) -> dict:
    from ..codegen import (
        count_sloc,
        generate_c_source,
        generate_fortran_module,
        generate_opencl,
        generate_python_source,
    )
    from ..fortranlib.parser import parse_source
    from ..lint.runner import lint_text
    from ..optimize import make_plan

    stage = "build"
    try:
        if item.kind == "fuzz":
            from ..fuzz import CodebaseSpec, build_program

            try:
                spec = CodebaseSpec.from_json(json.loads(item.content))
            except (ValueError, KeyError, TypeError) as e:
                raise BatchError(
                    f"batch:{item.id}: invalid fuzz spec payload "
                    f"({e})") from e
            program = build_program(spec)
        else:
            from ..core.project import program_from_dict
            from ..core.validate import validate_program

            try:
                data = json.loads(item.content)
            except ValueError as e:
                raise BatchError(
                    f"batch:{item.id}: invalid project JSON ({e})") from e
            program = program_from_dict(data)
            validate_program(program, collect=True)
        budget.check_time()
        stage = "analyze"
        plan = make_plan(program, config.variant)
        budget.check_time()
        stage = "codegen"
        if config.target == "fortran":
            code = generate_fortran_module(plan)
        elif config.target == "c":
            code = generate_c_source(plan)
        elif config.target == "python":
            code = generate_python_source(plan)
        elif config.target == "opencl":
            code = generate_opencl(plan).kernels_source
        else:
            raise BatchError(
                f"batch:{item.id}: unknown codegen target "
                f"{config.target!r}")
        budget.check_time()
        if config.target == "fortran":
            # Round-trip the emitted module through the front end, then
            # lint it: generated code must satisfy the same gates the
            # case studies do.
            stage = "parse"
            parse_source(code)
            budget.check_time()
            stage = "lint"
            report_json = lint_text(code, plan=plan).to_json()
        else:
            report_json = _empty_lint()
        budget.check_time()
    except GlafError as e:
        e.batch_stage = getattr(e, "batch_stage", "") or stage
        raise
    return {
        "schema": ARTIFACT_SCHEMA,
        "target": config.target,
        "code": code,
        "sloc": count_sloc(code),
        "units": report_json.get("units", 0),
        "lint": report_json,
        "ranges": {},
    }


def run_item(item, config: WorkerConfig) -> dict:
    """Compile one item under a fresh observation; attach its decisions.

    Shared by the worker process and the serial in-process path, so the
    two modes produce byte-identical artifacts.  Decision events are
    stripped of their wall-clock stamps — artifacts are content-addressed
    and must not digest differently across runs.  A ``MemoryError``
    (the ``RLIMIT_AS`` budget tripping mid-compile) becomes a typed
    :class:`ResourceLimitError`.
    """
    from .. import observe

    try:
        with observe.observed() as obs:
            artifacts = compile_item(item, config)
    except MemoryError:
        raise ResourceLimitError(
            oom_message(item.id, config.limits.max_memory_mb)) from None
    decisions = []
    for d in obs.decisions.events:
        doc = d.to_dict()
        doc.pop("t", None)
        decisions.append(doc)
    artifacts["decisions"] = decisions
    return artifacts


def _transportable(exc: BaseException, item_id: str) -> GlafError:
    """A pickle-safe typed stand-in for whatever the compile raised."""
    import pickle

    if isinstance(exc, GlafError):
        try:
            pickle.loads(pickle.dumps(exc))
            return exc
        except Exception:
            pass                      # fall through to the stripped form
    wrapped = GlafError(
        f"batch:{item_id}: {type(exc).__name__}: {exc}")
    wrapped.batch_stage = getattr(exc, "batch_stage", "") or "compile"
    wrapped.original_type = type(exc).__name__
    return wrapped


def worker_entry(conn, item, config: WorkerConfig) -> None:
    """Process target: budget, compile, report exactly once, exit."""
    try:
        if config.limits.max_memory_mb:
            apply_memory_limit(config.limits.max_memory_mb)
        message = ("ok", run_item(item, config))
    except MemoryError:
        message = ("error", ResourceLimitError(
            oom_message(item.id, config.limits.max_memory_mb)))
    except BaseException as e:
        message = ("error", _transportable(e, item.id))
    try:
        conn.send(message)
    except Exception:
        try:
            conn.send(("error", _transportable(
                GlafError(f"batch:{item.id}: result was not transportable "
                          "across the process boundary"), item.id)))
        except Exception:             # pragma: no cover - pipe gone
            pass
    finally:
        conn.close()
