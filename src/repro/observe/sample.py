"""Background resource sampling: RSS, CPU time, GC counts over time.

A :class:`ResourceSampler` is a daemon thread that wakes every
``interval`` seconds and records one tick — resident set size, process
CPU seconds, and the generation-0/1/2 garbage-collector counts.  Each
tick is (a) appended to the sampler's own time series, which the run
ledger persists under ``samples`` and the Chrome exporter renders as
counter tracks, and (b) written into the active metrics registry as
gauges (``sample.rss_mb``, ``sample.cpu_s``, ``sample.gc_gen0``) plus a
``sample.rss_mb`` histogram, so long vectorized or fuzz runs expose
their memory trajectory through the ordinary metrics machinery.

Sampling is **off by default**: it costs a thread and a syscall per
tick, and the zero-overhead contract of :mod:`repro.observe` only bends
when the user asks (``repro <cmd> --sample SECONDS``).  Starting and
stopping each record one ``sample:resource`` decision event.

RSS comes from ``/proc/self/statm`` where available (Linux), falling
back to ``resource.getrusage`` (macOS/BSD report ``ru_maxrss`` — a high
watermark, still monotone and useful) and to 0.0 where neither exists.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from typing import Callable

__all__ = ["ResourceSampler", "read_rss_bytes"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> float:
    """Current resident set size in bytes (best effort, never raises)."""
    try:
        with open("/proc/self/statm", "rb") as f:
            return float(f.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; on Linux /proc above wins, so
        # treat the value as KiB only when it is implausibly small.
        return float(rss) * (1024.0 if rss < 1 << 32 else 1.0)
    except Exception:
        return 0.0


class ResourceSampler:
    """Periodic RSS/CPU/GC sampler attached to the active observation.

    Use as a context manager or via :meth:`start` / :meth:`stop`::

        with ResourceSampler(interval=0.05) as sampler:
            run_long_workload()
        ticks = sampler.series()        # [{"t": ..., "rss_mb": ...}, ...]

    ``clock`` is injectable for tests; ticks carry ``t`` seconds relative
    to the sampler's start (re-based onto a tracer epoch by the caller
    when needed).
    """

    def __init__(self, interval: float = 0.05,
                 clock: Callable[[], float] = time.perf_counter):
        if interval <= 0:
            raise ValueError("sample interval must be > 0 seconds")
        self.interval = float(interval)
        self._clock = clock
        self._samples: list[dict] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._epoch = 0.0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("ResourceSampler already started")
        from .decisions import get_decisions

        self._epoch = self._clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True)
        self._thread.start()
        get_decisions().record(
            "sample:resource", "cli", 0, "sampler", "started",
            interval_s=self.interval)
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self.tick()                     # final point closes the series
        from .decisions import get_decisions

        get_decisions().record(
            "sample:resource", "cli", 0, "sampler", "stopped",
            interval_s=self.interval, ticks=len(self._samples))

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------
    def tick(self) -> dict:
        """Take one sample now (the thread calls this; tests may too)."""
        from .metrics import get_metrics

        counts = gc.get_count()
        sample = {
            "t": round(self._clock() - self._epoch, 6),
            "rss_mb": round(read_rss_bytes() / (1024.0 * 1024.0), 3),
            "cpu_s": round(time.process_time(), 6),
            "gc_gen0": counts[0],
            "gc_gen1": counts[1],
            "gc_gen2": counts[2],
        }
        with self._lock:
            self._samples.append(sample)
        m = get_metrics()
        if m.enabled:
            m.gauge("sample.rss_mb").set(sample["rss_mb"])
            m.gauge("sample.cpu_s").set(sample["cpu_s"])
            m.gauge("sample.gc_gen0").set(sample["gc_gen0"])
            m.histogram("sample.rss_mb").observe(sample["rss_mb"])
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    # -- results -------------------------------------------------------
    def series(self) -> list[dict]:
        """A copy of the recorded time series, in tick order."""
        with self._lock:
            return [dict(s) for s in self._samples]

    @property
    def ticks(self) -> int:
        with self._lock:
            return len(self._samples)
