"""Benchmark statistics over observations: the longitudinal leg of observe.

:mod:`repro.observe` explains one run; this module supplies the pieces that
make runs *comparable across PRs*:

* :class:`RepeatStats` / :func:`summarize_repeats` — order-statistics
  summaries (min/median/IQR) of repeated measurements.  Medians and IQRs
  are preferred over means throughout the bench artifacts because a single
  preempted repeat should not move the recorded number;
* :func:`stage_seconds` — per-stage cumulative wall time of a recorded
  trace, the quantity the bench recorder tracks per repeat;
* :data:`BENCH_SCHEMA` — the version string stamped into every
  ``BENCH_<n>.json`` artifact written by :mod:`repro.bench.record` (see
  ``docs/BENCHMARKING.md``).

Everything here is pure (no clocks, no I/O) so the recorder's statistics
are exactly reproducible under an injected clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import stage_totals
from .trace import NullTracer, Tracer

__all__ = ["BENCH_SCHEMA", "RepeatStats", "summarize_repeats", "stage_seconds"]

BENCH_SCHEMA = "repro.bench/v1"


@dataclass(frozen=True)
class RepeatStats:
    """Order statistics of one measured quantity over N repeats."""

    n: int
    minimum: float
    median: float
    iqr: float
    mean: float
    maximum: float

    def to_dict(self) -> dict[str, object]:
        return {
            "n": self.n,
            "min": self.minimum,
            "median": self.median,
            "iqr": self.iqr,
            "mean": self.mean,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RepeatStats":
        return cls(n=int(d["n"]), minimum=float(d["min"]),
                   median=float(d["median"]), iqr=float(d["iqr"]),
                   mean=float(d["mean"]), maximum=float(d["max"]))


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not ordered:
        raise ValueError("quantile of an empty sample")
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def summarize_repeats(values: list[float] | tuple[float, ...]) -> RepeatStats:
    """Summarize repeated measurements; robust to a single outlier repeat."""
    if not values:
        raise ValueError("summarize_repeats needs at least one value")
    ordered = sorted(float(v) for v in values)
    return RepeatStats(
        n=len(ordered),
        minimum=ordered[0],
        median=_quantile(ordered, 0.5),
        iqr=_quantile(ordered, 0.75) - _quantile(ordered, 0.25),
        mean=sum(ordered) / len(ordered),
        maximum=ordered[-1],
    )


def stage_seconds(tracer: Tracer | NullTracer) -> dict[str, float]:
    """Cumulative seconds per pipeline stage for one recorded trace."""
    return {str(r["stage"]): float(r["cumulative_s"])
            for r in stage_totals(tracer)}
