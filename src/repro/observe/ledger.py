"""Persistent, append-only run ledger: ``.repro/runs/`` (``repro.run/v1``).

PR 1 made single runs observable; this module makes the observations
*durable*.  Every ledgered CLI invocation (``experiments``, ``bench
record``, ``fuzz``, ``lint``, ``faultcheck``, ``profile``, ``generate``)
appends one digest-stamped record to a directory ledger:

* :func:`build_record` distills one finished run — command, argv,
  outcome/exit status, wall seconds, per-stage seconds, the metrics
  snapshot, the decision events, an aggregated flame tree, the resource
  sampler's time series, checkpoint/resume linkage, and the
  :func:`repro.bench.record.environment_fingerprint` — into one
  ``repro.run/v1`` document;
* :class:`RunLedger` appends records as ``run-<n>.json`` files (atomic
  write + sha256 content digest, the :mod:`repro.numeric.integrity`
  machinery) and maintains an atomic ``index.json``.  The record file is
  written *before* the index, so a crash between the two leaves a
  loadable index that is merely stale; :meth:`RunLedger.entries`
  reconciles it against the directory and rebuilds when they disagree.
  A record that fails validation (truncated write on a non-atomic
  filesystem, hand-editing) is never ingested: it is moved to
  ``quarantine/`` and dropped from the index.

``repro runs list|show|diff|trend|gc|export|html|selftest`` is the CLI
over the ledger; :mod:`repro.observe.export` renders the exporters.
The whole machinery is documented in ``docs/RUN_LEDGER.md``.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from ..errors import RunLedgerError
from ..numeric.integrity import atomic_write_json, content_digest
from .report import aggregate_children, stage_totals

__all__ = [
    "RUN_SCHEMA",
    "INDEX_SCHEMA",
    "DEFAULT_LEDGER_DIR",
    "LEDGER_ENV",
    "RunLedger",
    "build_record",
    "ledger_dir_from_env",
]

RUN_SCHEMA = "repro.run/v1"
INDEX_SCHEMA = "repro.run.index/v1"
DEFAULT_LEDGER_DIR = os.path.join(".repro", "runs")

#: ``REPRO_LEDGER=0|off|`` disables the ledger; any other value is the
#: ledger directory (overrides the default, loses to an explicit flag).
LEDGER_ENV = "REPRO_LEDGER"

_RUN_RE = re.compile(r"^run-(\d{6,})\.json$")

# Entry fields the index carries per record, so `repro runs list` never
# has to open every record file.
_INDEX_FIELDS = ("command", "status", "exit_code", "wall_s", "started",
                 "git_sha")


def ledger_dir_from_env(explicit: str | None = None) -> str | None:
    """The effective ledger directory: explicit flag > env var > default.

    Returns ``None`` when the environment disables the ledger
    (``REPRO_LEDGER`` set to ``0``, ``off``, or empty) and no explicit
    directory was given.
    """
    if explicit:
        return explicit
    env = os.environ.get(LEDGER_ENV)
    if env is None:
        return DEFAULT_LEDGER_DIR
    if env.strip().lower() in ("", "0", "off", "no", "false"):
        return None
    return env


_ENV_CACHE: dict[str, object] | None = None


def _default_environment() -> dict[str, object]:
    """The bench recorder's fingerprint, computed once per process — it
    shells out to git, which would dominate sub-millisecond ledger
    appends.  (Lazy import too: bench.record imports observe at load.)"""
    global _ENV_CACHE
    if _ENV_CACHE is None:
        from ..bench.record import environment_fingerprint

        _ENV_CACHE = environment_fingerprint()
    return dict(_ENV_CACHE)


def _flame_tree(spans) -> list[dict[str, object]]:
    """Recursive name-aggregated view of the span tree — compact enough
    to persist per run, rich enough for the dashboard's flame summaries."""
    out = []
    for a in aggregate_children(list(spans)):
        out.append({
            "name": a.name,
            "calls": a.count,
            "total_s": round(a.total, 9),
            "children": _flame_tree(a.children),
        })
    return out


def build_record(
    *,
    command: str,
    argv: list[str] | tuple[str, ...] = (),
    exit_code: int = 0,
    status: str = "ok",
    wall_s: float = 0.0,
    observation=None,
    samples: list[dict] | None = None,
    checkpoint: dict | None = None,
    environment: dict | None = None,
    started: float | None = None,
    **meta: object,
) -> dict[str, object]:
    """One ``repro.run/v1`` document (unstamped: :meth:`RunLedger.append`
    assigns the id and the content digest).

    ``observation`` is a :class:`repro.observe.Observation`; its tracer
    yields the per-stage seconds and the flame tree, its metrics registry
    the snapshot, its decision log the events.  ``environment`` defaults
    to the bench recorder's fingerprint so run records and bench
    artifacts stay comparable.
    """
    if environment is None:
        environment = _default_environment()
    stages: list[dict] = []
    flame: list[dict] = []
    metrics: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    decisions: list[dict] = []
    if observation is not None:
        stages = stage_totals(observation.tracer)
        flame = _flame_tree(observation.tracer.roots)
        metrics = observation.metrics.snapshot()
        # Decision stamps are absolute perf_counter values; the persisted
        # record carries seconds since the tracer epoch so the Chrome
        # exporter can place instants without knowing the live clock.
        epoch = getattr(observation.tracer, "epoch", 0.0)
        for d in observation.decisions.events:
            doc = d.to_dict()
            doc["t"] = round(max(0.0, doc.get("t", 0.0) - epoch), 6) \
                if doc.get("t") else 0.0
            decisions.append(doc)
    return {
        "schema": RUN_SCHEMA,
        "command": command,
        "argv": list(argv),
        "started": round(started if started is not None else time.time(), 3),
        "outcome": {"status": status, "exit_code": int(exit_code)},
        "wall_s": round(float(wall_s), 9),
        "stages": stages,
        "flame": flame,
        "metrics": metrics,
        "decisions": decisions,
        "samples": list(samples or ()),
        "checkpoint": checkpoint,
        "environment": environment,
        "meta": dict(meta),
    }


class RunLedger:
    """A directory of digest-verified run records with an atomic index."""

    def __init__(self, directory: str | Path | None = None):
        self.dir = Path(directory or DEFAULT_LEDGER_DIR)

    # -- paths ---------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.dir / "index.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.dir / "quarantine"

    def path_for(self, run_id: str) -> Path:
        return self.dir / f"{run_id}.json"

    # -- writing -------------------------------------------------------
    def next_id(self) -> str:
        last = 0
        if self.dir.is_dir():
            for p in self.dir.iterdir():
                m = _RUN_RE.match(p.name)
                if m:
                    last = max(last, int(m.group(1)))
        return f"run-{last + 1:06d}"

    def append(self, record: dict) -> dict:
        """Stamp and persist one record; returns it with ``id``/``sha256``.

        The record file lands (atomically) before the index is rewritten,
        so a crash between the two steps can only leave the index *stale*
        — never pointing at a record that does not exist.  ``entries()``
        heals staleness by rebuilding from the directory.

        Safe under concurrent writers (two simultaneous ``repro``
        invocations, a ``repro batch`` parent next to another CLI): the
        record-then-index critical section runs under an ``index.lock``
        directory lock, and the record file itself is claimed with
        O_EXCL-style ``os.link`` semantics — if two writers ever race the
        same id (a stolen stale lock), the loser re-draws the next id
        instead of silently overwriting the winner's record.
        """
        self.dir.mkdir(parents=True, exist_ok=True)
        record = dict(record)
        record.setdefault("schema", RUN_SCHEMA)
        with self._locked():
            self._claim_and_write(record)
            entries = self._index_entries_tolerant()
            entries = [e for e in entries if e.get("id") != record["id"]]
            entries.append(self._entry_for(record))
            self._write_index(entries)
        return record

    #: Seconds a writer waits for ``index.lock`` before assuming its
    #: holder crashed and stealing it (appends are sub-millisecond; a
    #: lock this old is an orphan, not a slow writer).
    LOCK_STALE_S = 30.0

    @contextmanager
    def _locked(self):
        """Advisory directory lock for the record-then-index protocol.

        O_CREAT|O_EXCL on ``index.lock``; holders that die are detected
        by lock-file age and the lock is stolen rather than deadlocking —
        correctness then rests on the O_EXCL record claim in
        :meth:`_claim_and_write`, never on the lock alone.
        """
        lock = self.dir / "index.lock"
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                break
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue          # released between open and stat
                if age > self.LOCK_STALE_S:
                    lock.unlink(missing_ok=True)
                    continue
                time.sleep(0.003)
        try:
            yield
        finally:
            lock.unlink(missing_ok=True)

    def _claim_and_write(self, record: dict) -> None:
        """Stamp ``record`` with the next free id and persist it.

        The write is atomic *and* exclusive: the payload is fsynced to a
        temp file, then ``os.link``ed to its final name — link fails with
        EEXIST instead of clobbering, so a concurrent writer that won the
        same id costs us a re-draw, never a lost record.
        """
        import json

        while True:
            record["id"] = self.next_id()
            record.pop("sha256", None)
            record["sha256"] = content_digest(record)
            path = self.path_for(record["id"])
            tmp = path.parent / (f".{path.name}.tmp.{os.getpid()}"
                                 f".{threading.get_ident()}")
            with open(tmp, "w") as fh:
                json.dump(record, fh, indent=2)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            try:
                os.link(tmp, path)
                return
            except FileExistsError:
                continue              # lost the id race: re-draw
            finally:
                tmp.unlink(missing_ok=True)

    def _entry_for(self, record: dict) -> dict:
        entry = {"id": record["id"], "file": f"{record['id']}.json"}
        outcome = record.get("outcome", {})
        env = record.get("environment", {})
        entry.update({
            "command": record.get("command", ""),
            "status": outcome.get("status", ""),
            "exit_code": outcome.get("exit_code", 0),
            "wall_s": record.get("wall_s", 0.0),
            "started": record.get("started", 0.0),
            "git_sha": str(env.get("git_sha", "unknown"))[:12],
        })
        return entry

    def _write_index(self, entries: list[dict]) -> None:
        entries = sorted(entries, key=lambda e: e.get("id", ""))
        atomic_write_json(self.index_path,
                          {"schema": INDEX_SCHEMA, "entries": entries})

    # -- reading -------------------------------------------------------
    def _index_entries_tolerant(self) -> list[dict]:
        """Best-effort read of the current index (empty on any problem —
        the caller is about to rewrite it from authoritative data)."""
        import json

        try:
            doc = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return []
        if not isinstance(doc, dict) or doc.get("schema") != INDEX_SCHEMA:
            return []
        entries = doc.get("entries", [])
        return [e for e in entries if isinstance(e, dict)]

    def run_files(self) -> list[Path]:
        if not self.dir.is_dir():
            return []
        found = [(int(m.group(1)), p) for p in self.dir.iterdir()
                 if (m := _RUN_RE.match(p.name))]
        return [p for _, p in sorted(found)]

    def entries(self) -> list[dict]:
        """The index entries, reconciled against the record files.

        When the index and the directory disagree (a crash between the
        record write and the index write, files added or removed by
        hand), the index is rebuilt from the validated record files —
        invalid records are quarantined along the way.
        """
        files = {p.name for p in self.run_files()}
        entries = self._index_entries_tolerant()
        if {e.get("file") for e in entries} != files:
            return self.rebuild_index()
        return entries

    def rebuild_index(self) -> list[dict]:
        """Re-derive the index from the record files on disk.

        Every record is validated (schema + content digest); records that
        fail are moved to ``quarantine/`` — a half-written file must
        never masquerade as a completed run.
        """
        entries = []
        for path in self.run_files():
            try:
                record = self._validate(path)
            except RunLedgerError:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, self.quarantine_dir / path.name)
                continue
            entries.append(self._entry_for(record))
        if self.dir.is_dir():
            self._write_index(entries)
        return entries

    def _validate(self, path: Path) -> dict:
        import json

        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            raise RunLedgerError(
                f"{path}: corrupt/truncated run record ({e})") from e
        if not isinstance(record, dict) or record.get("schema") != RUN_SCHEMA:
            raise RunLedgerError(
                f"{path}: expected run schema {RUN_SCHEMA!r}, found "
                f"{record.get('schema') if isinstance(record, dict) else record!r}")
        recorded = record.get("sha256")
        stripped = {k: v for k, v in record.items() if k != "sha256"}
        expected = content_digest(stripped)
        if recorded != expected:
            raise RunLedgerError(
                f"{path}: run record digest mismatch (recorded "
                f"{str(recorded)[:12]}…, computed {expected[:12]}…) — "
                "record corrupted or hand-edited")
        return record

    def load(self, run_id: str) -> dict:
        """One validated record by id (e.g. ``run-000003``)."""
        path = self.path_for(run_id)
        if not path.exists():
            known = ", ".join(e["id"] for e in self.entries()) or "(none)"
            raise RunLedgerError(
                f"no run record {run_id!r} in {self.dir} (have: {known})")
        return self._validate(path)

    def latest_id(self) -> str | None:
        entries = self.entries()
        return entries[-1]["id"] if entries else None

    def resolve(self, ref: str | None) -> dict:
        """A record by reference: an id, or ``None``/``"latest"``."""
        if ref is None or ref == "latest":
            run_id = self.latest_id()
            if run_id is None:
                raise RunLedgerError(f"run ledger {self.dir} is empty")
            return self.load(run_id)
        return self.load(ref)

    # -- maintenance ---------------------------------------------------
    def gc(self, keep: int) -> list[str]:
        """Drop the oldest records beyond ``keep``; purge the quarantine.

        Returns the ids removed.  The index is rewritten after the
        deletions, so a reader never sees an entry whose file is gone.
        """
        if keep < 0:
            raise RunLedgerError("gc keep must be >= 0")
        entries = self.entries()
        doomed = entries[:-keep] if keep else entries
        for entry in doomed:
            self.path_for(entry["id"]).unlink(missing_ok=True)
        if doomed:
            self._write_index(entries[len(doomed):])
        if self.quarantine_dir.is_dir():
            for p in self.quarantine_dir.glob("run-*.json"):
                p.unlink(missing_ok=True)
            try:
                self.quarantine_dir.rmdir()
            except OSError:
                pass
        return [e["id"] for e in doomed]
