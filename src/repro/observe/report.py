"""Reporting: flame-style tree, per-stage summary, JSON export, decisions.

Three views over one observation:

* :func:`render_tree` — siblings aggregated by span name into a
  flame-style text tree (total ms, call count, attrs of singletons);
* :func:`render_stage_summary` — a table keyed by pipeline stage (the
  first dotted component of the span name: ``fortran``, ``analysis``,
  ``optimize``, ``codegen``, ``exec``, ``bench``, …) with cumulative and
  self time;
* :func:`trace_to_json` / :func:`render_report` — the machine-readable
  export (schema ``repro.observe.trace/v1``, documented in
  ``docs/OBSERVABILITY.md``) and the human-readable composite used by
  ``repro profile`` and ``--profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .decisions import Decision, DecisionLog, NullDecisionLog
from .metrics import MetricsRegistry, NullMetricsRegistry
from .trace import NullTracer, Span, Tracer

__all__ = [
    "TRACE_SCHEMA",
    "aggregate_children",
    "render_tree",
    "stage_totals",
    "render_stage_summary",
    "render_metrics",
    "render_decisions",
    "trace_to_json",
    "to_chrome_trace",
    "render_report",
]

TRACE_SCHEMA = "repro.observe.trace/v1"


@dataclass
class _Agg:
    """Siblings with the same span name, merged."""

    name: str
    count: int = 0
    total: float = 0.0
    attrs: dict[str, object] = field(default_factory=dict)
    children: list[Span] = field(default_factory=list)


def aggregate_children(spans: list[Span]) -> list[_Agg]:
    """Merge sibling spans by name, preserving first-seen order."""
    out: dict[str, _Agg] = {}
    for s in spans:
        a = out.get(s.name)
        if a is None:
            a = out[s.name] = _Agg(name=s.name)
        a.count += 1
        a.total += s.duration
        a.children.extend(s.children)
        if a.count == 1:
            a.attrs = dict(s.attrs)
        else:
            a.attrs = {}           # attrs only shown for unmerged spans
    return list(out.values())


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}ms"


def _fmt_attrs(attrs: dict[str, object]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{inner}]"


def render_tree(tracer: Tracer | NullTracer, *, max_depth: int = 12) -> str:
    """Flame-style text tree of the recorded spans."""
    lines: list[str] = []

    def emit(aggs: list[_Agg], depth: int) -> None:
        if depth >= max_depth:
            return
        for a in aggs:
            calls = f" x{a.count}" if a.count > 1 else ""
            lines.append(
                f"{_fmt_ms(a.total)}  {'  ' * depth}{a.name}{calls}"
                f"{_fmt_attrs(a.attrs)}"
            )
            emit(aggregate_children(a.children), depth + 1)

    emit(aggregate_children(list(tracer.roots)), 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def stage_totals(tracer: Tracer | NullTracer) -> list[dict[str, object]]:
    """Cumulative/self time and call count per pipeline stage.

    The stage is the first dotted component of the span name.  *Cumulative*
    counts a stage's time only at its outermost spans (nested same-stage
    spans are not double counted); *self* excludes time spent in child
    spans of any stage.
    """
    rows: dict[str, dict[str, object]] = {}

    def row(stage: str) -> dict[str, object]:
        r = rows.get(stage)
        if r is None:
            r = rows[stage] = {"stage": stage, "calls": 0,
                               "cumulative_s": 0.0, "self_s": 0.0}
        return r

    def visit(span: Span, enclosing: str | None) -> None:
        stage = span.name.split(".", 1)[0]
        r = row(stage)
        r["calls"] = int(r["calls"]) + 1
        if stage != enclosing:
            r["cumulative_s"] = float(r["cumulative_s"]) + span.duration
        child_time = sum(c.duration for c in span.children)
        r["self_s"] = float(r["self_s"]) + max(0.0, span.duration - child_time)
        for c in span.children:
            visit(c, stage)

    for root in tracer.roots:
        visit(root, None)
    return sorted(rows.values(), key=lambda r: -float(r["cumulative_s"]))


def render_stage_summary(tracer: Tracer | NullTracer) -> str:
    rows = stage_totals(tracer)
    if not rows:
        return "(no stages recorded)"
    lines = [f"{'stage':<12s} {'calls':>6s} {'cumulative':>12s} {'self':>12s}"]
    lines.append(f"{'-' * 12} {'-' * 6} {'-' * 12} {'-' * 12}")
    for r in rows:
        lines.append(
            f"{r['stage']:<12s} {r['calls']:>6d} "
            f"{float(r['cumulative_s']) * 1e3:>10.3f}ms "
            f"{float(r['self_s']) * 1e3:>10.3f}ms"
        )
    return "\n".join(lines)


def render_metrics(metrics: MetricsRegistry | NullMetricsRegistry) -> str:
    snap = metrics.snapshot()
    lines: list[str] = []
    for name, v in snap["counters"].items():
        lines.append(f"{name:<40s} {v:>10d}")
    for name, v in snap["gauges"].items():
        lines.append(f"{name:<40s} {v:>10g}")
    for name, s in snap["histograms"].items():
        lines.append(
            f"{name:<40s} n={s['count']} mean={s['mean']:.4g} "
            f"min={s['min']:.4g} max={s['max']:.4g}"
        )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _decision_line(d: Decision) -> str:
    cls = f" class={d.loop_class}" if d.loop_class else ""
    why = f" — {d.reasons[0]}" if d.reasons else ""
    extra = {k: v for k, v in d.attrs if v not in ("", None) and k != "variant"}
    ex = ("  [" + ", ".join(f"{k}={v}" for k, v in sorted(extra.items())) + "]"
          if extra else "")
    return (f"    step {d.step_index} {d.step_name:<24s} "
            f"[{d.stage}:{d.verdict}]{cls}{why}{ex}")


def render_decisions(log: DecisionLog | NullDecisionLog) -> str:
    """Decision events grouped per subroutine/function."""
    grouped = log.by_function()
    if not grouped:
        return "(no decisions recorded)"
    lines: list[str] = []
    for fname, events in grouped.items():
        lines.append(f"  {fname}")
        for d in events:
            lines.append(_decision_line(d))
    return "\n".join(lines)


def _span_to_dict(span: Span, epoch: float) -> dict[str, object]:
    return {
        "name": span.name,
        "start_s": round(span.start - epoch, 9),
        "duration_s": round(span.duration, 9),
        "thread": span.thread,
        "attrs": dict(span.attrs),
        "children": [_span_to_dict(c, epoch) for c in span.children],
    }


def trace_to_json(
    tracer: Tracer | NullTracer,
    metrics: MetricsRegistry | NullMetricsRegistry | None = None,
    decisions: DecisionLog | NullDecisionLog | None = None,
    **meta: object,
) -> dict[str, object]:
    """The exportable trace document (see ``docs/OBSERVABILITY.md``)."""
    epoch = getattr(tracer, "epoch", 0.0)
    doc: dict[str, object] = {
        "schema": TRACE_SCHEMA,
        "meta": dict(meta),
        "spans": [_span_to_dict(r, epoch) for r in tracer.roots],
        "stages": stage_totals(tracer),
    }
    if metrics is not None:
        doc["metrics"] = metrics.snapshot()
    if decisions is not None:
        doc["decisions"] = [d.to_dict() for d in decisions.events]
    return doc


def _chrome_arg(value: object) -> object:
    """Chrome trace ``args`` values must be JSON-serializable primitives."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def to_chrome_trace(
    tracer: Tracer | NullTracer,
    metrics: MetricsRegistry | NullMetricsRegistry | None = None,
    decisions: DecisionLog | NullDecisionLog | None = None,
    *,
    samples: list[dict] | None = None,
    **meta: object,
) -> dict[str, object]:
    """Export the recorded spans in Chrome trace-event format.

    The result loads directly into ``chrome://tracing`` or Perfetto
    (https://ui.perfetto.dev).  Every span becomes a complete event
    (``"ph": "X"``) with microsecond ``ts``/``dur`` relative to the trace
    epoch; its pipeline stage (the first dotted name component) becomes the
    event category, so the UI can filter by stage.  Threads are mapped to
    stable integer ``tid``\\ s with metadata events carrying the real names.

    With a ``metrics`` registry, every counter and gauge becomes a
    Perfetto counter track: phase-``"C"`` events (a zero point at the
    epoch and the final value at the end of the trace for counters, the
    last-written value for gauges).  With a ``decisions`` log, every
    decision becomes an instant event (``"ph": "i"``) at the moment it
    was recorded, categorized by stage.  ``samples`` — the
    :class:`repro.observe.sample.ResourceSampler` time series, dicts with
    a ``t`` key in seconds relative to the epoch — become per-tick
    counter events (``sample.rss_mb``, ``sample.cpu_s``,
    ``sample.gc_gen0``).
    """
    epoch = getattr(tracer, "epoch", 0.0)
    tids: dict[str, int] = {}
    events: list[dict[str, object]] = []

    def tid_of(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids)
            events.append({
                "name": "thread_name", "ph": "M", "pid": 0,
                "tid": tids[thread], "args": {"name": thread or "main"},
            })
        return tids[thread]

    end = 0.0

    def emit(span: Span) -> None:
        nonlocal end
        start = (span.start - epoch) * 1e6
        dur = span.duration * 1e6
        end = max(end, start + dur)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(start, 3),
            "dur": round(dur, 3),
            "pid": 0,
            "tid": tid_of(span.thread),
            "args": {k: _chrome_arg(v) for k, v in span.attrs.items()},
        })
        for c in span.children:
            emit(c)

    for root in tracer.roots:
        emit(root)

    if metrics is not None:
        snap = metrics.snapshot()
        for name, value in snap["counters"].items():
            # Two points per counter: the zero at the epoch gives the UI
            # a track to draw even for a single-valued counter.
            events.append({"name": name, "cat": "metric", "ph": "C",
                           "ts": 0.0, "pid": 0, "args": {"value": 0}})
            events.append({"name": name, "cat": "metric", "ph": "C",
                           "ts": round(end, 3), "pid": 0,
                           "args": {"value": value}})
        for name, value in snap["gauges"].items():
            events.append({"name": name, "cat": "metric", "ph": "C",
                           "ts": round(end, 3), "pid": 0,
                           "args": {"value": value}})
    if decisions is not None:
        for d in decisions.events:
            ts = max(0.0, (d.t - epoch) * 1e6) if d.t else 0.0
            events.append({
                "name": f"{d.stage}:{d.verdict}", "cat": d.stage,
                "ph": "i", "s": "g", "ts": round(ts, 3), "pid": 0,
                "tid": 0,
                "args": {"function": d.function, "step": d.step_name,
                         "reasons": _chrome_arg(list(d.reasons))},
            })
    for tick in samples or ():
        ts = round(max(0.0, float(tick.get("t", 0.0))) * 1e6, 3)
        for key, track in (("rss_mb", "sample.rss_mb"),
                           ("cpu_s", "sample.cpu_s"),
                           ("gc_gen0", "sample.gc_gen0")):
            if key in tick:
                events.append({"name": track, "cat": "sample", "ph": "C",
                               "ts": ts, "pid": 0,
                               "args": {"value": tick[key]}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {str(k): _chrome_arg(v) for k, v in meta.items()},
    }


def render_report(
    tracer: Tracer | NullTracer,
    metrics: MetricsRegistry | NullMetricsRegistry | None = None,
    decisions: DecisionLog | NullDecisionLog | None = None,
    *,
    title: str = "pipeline profile",
) -> str:
    """The composite human-readable report printed by ``repro profile``."""
    parts = [f"== {title} =="]
    parts.append("\n-- span tree --")
    parts.append(render_tree(tracer))
    parts.append("\n-- per-stage summary --")
    parts.append(render_stage_summary(tracer))
    if metrics is not None:
        parts.append("\n-- metrics --")
        parts.append(render_metrics(metrics))
    if decisions is not None:
        parts.append("\n-- parallelization decisions --")
        parts.append(render_decisions(decisions))
    return "\n".join(parts)
