"""Thread-safe counters, gauges, and histograms for the pipeline.

A :class:`MetricsRegistry` hands out named instruments on first use
(``registry.counter("analysis.dependence.tests").inc()``); all mutation is
lock-guarded so instrumented code may run under OpenMP-style thread pools.
As with tracing, the installed default is a no-op registry
(:data:`NULL_METRICS`) whose instruments are shared inert singletons.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-written value (e.g. current thread count, directive count)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary (count/sum/min/max) plus retained samples.

    Samples are kept in a bounded reservoir (``max_samples``) so reports
    can show medians without a dependency.  Once full, each new
    observation replaces a uniformly random slot with probability
    ``max_samples / count`` (Vitter's Algorithm R), so every observation
    — early or late — is retained with equal probability and the
    percentile estimates stay unbiased.  The RNG is seeded from the
    instrument name, so two runs observing the same stream report the
    same percentiles.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_max_samples", "_rng", "_lock")

    def __init__(self, name: str, max_samples: int = 4096):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        v = float(v)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            if len(self._samples) < self._max_samples:
                self._samples.append(v)
            else:
                j = self._rng.randrange(self.count)
                if j < self._max_samples:
                    self._samples[j] = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        with self._lock:
            xs = sorted(self._samples)
        if not xs:
            return 0.0
        i = min(len(xs) - 1, max(0, round(q / 100.0 * (len(xs) - 1))))
        return xs[i]

    def summary(self) -> dict[str, float]:
        # One locked read of the whole tuple: a concurrent observe() can
        # never yield a count from one observation and a sum from another
        # (the sampler and the vectorized executor observe from threads).
        with self._lock:
            count, total = self.count, self.total
            mn, mx = self.min, self.max
        if not count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {"count": count, "sum": total, "min": mn,
                "max": mx, "mean": total / count}


class MetricsRegistry:
    """Named instruments, created on first access, listed sorted."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    def counters(self) -> Iterable[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> Iterable[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> Iterable[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict view used by the JSON exporter."""
        return {
            "counters": {c.name: c.value for c in self.counters()},
            "gauges": {g.name: g.value for g in self.gauges()},
            "histograms": {h.name: h.summary() for h in self.histograms()},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _NullInstrument:
    """Shared inert counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, v: float) -> None:
        return None

    def observe(self, v: float) -> None:
        return None

    def summary(self) -> dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Default no-op registry: every instrument is one shared singleton."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counters(self) -> list:
        return []

    def gauges(self) -> list:
        return []

    def histograms(self) -> list:
        return []

    def snapshot(self) -> dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        return None


NULL_METRICS = NullMetricsRegistry()

_metrics: MetricsRegistry | NullMetricsRegistry = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The process-wide registry (no-op unless observation is active)."""
    return _metrics


def set_metrics(
    registry: MetricsRegistry | NullMetricsRegistry | None,
) -> MetricsRegistry | NullMetricsRegistry:
    """Install ``registry`` (``None`` restores the no-op); returns previous."""
    global _metrics
    prev = _metrics
    _metrics = registry if registry is not None else NULL_METRICS
    return prev
