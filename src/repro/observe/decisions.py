"""Structured "why" events from the analysis and optimization passes.

Timing says *where* the pipeline spends its effort; decisions say *what it
concluded*.  The parallelization analyzer, the pruning pipeline, and the
model-guided advisor each emit one :class:`Decision` per (function, step)
they rule on, carrying the loop class, the verdict, and the reasons — so
the paper's Table 2 variant differences ("why did v2 drop this loop but
keep that one?") can be answered from a single ``repro profile`` run.

Stages and their verdict vocabularies:

=======================  ============================================
``parallelize``          ``parallel`` | ``serial``
``pruning``              ``kept`` | ``pruned`` | ``not-parallel``
``advisor``              ``omp`` | ``simd`` | ``none``
``guard``                ``serial-fallback``
``fault``                ``injected``
``lint:<rule>``          ``violation``
``numeric:<kind>``       ``detected``
``retry``                ``retried`` | ``gave-up``
``executor:fallback``    ``interpreter``
``fuzz:item``            ``clean`` | ``failed``
``fuzz:signature``       ``new`` | ``duplicate``
``fuzz:shrink``          ``minimized``
``fuzz:quarantine``      ``written``
``fuzz:campaign``        ``clean`` | ``failed``
``run:record``           ``opened``
``sample:resource``      ``started`` | ``stopped``
``batch:item``           ``ok`` | ``failed`` | ``quarantined``
``batch:quarantine``     ``written`` | ``sticky``
``batch:degraded``       ``serial``
``batch:campaign``       ``completed`` | ``failed``
``cache:corrupt-entry``  ``discarded``
=======================  ============================================

The ``guard`` stage is emitted by :class:`repro.glafexec.GuardedRunner`
when a divergence guard demotes a parallel step to serial; the ``fault``
stage is emitted by :mod:`repro.robust.faults` whenever an injected fault
fires, so a profiled fault-injection run shows cause and recovery side by
side.  The ``lint:<rule>`` stages (one per rule id in
:data:`repro.lint.RULES`, e.g. ``lint:race-shared-write``) are emitted by
the static linter for every finding, so injected directive corruptions
and the lint findings that catch them land in the same log.  The
``numeric:<kind>`` stages (one per kind in
:data:`repro.numeric.SENTINEL_KINDS`, e.g. ``numeric:nan``) are emitted
by the numeric sentinels on every trip, and ``retry`` by
:func:`repro.numeric.retry_call` for every backoff or give-up — see
``docs/NUMERICS.md``.  The ``executor:fallback`` stage is emitted by
:class:`repro.glafexec.VectorizedInterpreter` whenever a step it cannot
lift to a whole-grid array program is demoted to the reference
interpreter (verdict ``interpreter``, with the reason the lift was
refused) — see ``docs/EXECUTORS.md``.  The ``fuzz:*`` stages narrate a
``repro fuzz`` campaign — one ``fuzz:item`` per generated project
(reasons = failure signature keys), ``fuzz:signature`` when triage sees
a signature (``new`` opens a bucket), ``fuzz:shrink`` /
``fuzz:quarantine`` as a new bucket's exemplar is minimized and its
reproducer bundle written, and one closing ``fuzz:campaign`` — see
``docs/FUZZING.md``.  The ``run:record`` stage is emitted by the CLI when
a ledgered run opens (attrs carry the ledger directory and the previous
run id, so consecutive records link into a chain), and
``sample:resource`` by the background
:class:`repro.observe.sample.ResourceSampler` when it starts and stops —
see ``docs/RUN_LEDGER.md``.  The ``batch:*`` stages narrate a
``repro batch`` campaign — one ``batch:item`` per corpus item (with
cache/resume/attempt attrs), ``batch:quarantine`` when a poison item's
bundle is written (or recognized ``sticky`` from a prior campaign),
``batch:degraded`` when multiprocessing is unavailable and the driver
compiles in-process, and one closing ``batch:campaign`` carrying the
manifest digest; ``cache:corrupt-entry`` is emitted by the
content-addressed artifact cache whenever a tampered or truncated entry
is detected, discarded, and recompiled — see ``docs/BATCH.md``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Decision",
    "DecisionLog",
    "NullDecisionLog",
    "NULL_DECISIONS",
    "get_decisions",
    "set_decisions",
]


@dataclass(frozen=True)
class Decision:
    """One structured verdict from an analysis/optimization pass."""

    stage: str                      # 'parallelize' | 'pruning' | 'advisor'
    function: str
    step_index: int
    step_name: str
    verdict: str
    loop_class: str = ""
    reasons: tuple[str, ...] = ()
    attrs: tuple[tuple[str, object], ...] = ()
    t: float = 0.0                  # perf_counter stamp (Chrome instants)

    def to_dict(self) -> dict[str, object]:
        return {
            "stage": self.stage,
            "function": self.function,
            "step_index": self.step_index,
            "step_name": self.step_name,
            "verdict": self.verdict,
            "loop_class": self.loop_class,
            "reasons": list(self.reasons),
            "attrs": dict(self.attrs),
            "t": self.t,
        }


@dataclass
class DecisionLog:
    """Append-only, thread-safe list of :class:`Decision` events."""

    events: list[Decision] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    enabled = True

    def record(
        self,
        stage: str,
        function: str,
        step_index: int,
        step_name: str,
        verdict: str,
        *,
        loop_class: str = "",
        reasons: tuple[str, ...] | list[str] = (),
        **attrs: object,
    ) -> None:
        d = Decision(
            stage=stage,
            function=function,
            step_index=step_index,
            step_name=step_name,
            verdict=verdict,
            loop_class=loop_class,
            reasons=tuple(reasons),
            attrs=tuple(sorted(attrs.items())),
            t=time.perf_counter(),
        )
        with self._lock:
            self.events.append(d)

    def for_stage(self, stage: str) -> list[Decision]:
        with self._lock:
            return [d for d in self.events if d.stage == stage]

    def by_function(self) -> dict[str, list[Decision]]:
        """Events grouped per subroutine/function, insertion-ordered."""
        out: dict[str, list[Decision]] = {}
        with self._lock:
            for d in self.events:
                out.setdefault(d.function, []).append(d)
        return out

    def reset(self) -> None:
        with self._lock:
            self.events.clear()


class NullDecisionLog:
    """Default no-op log: ``record`` discards, queries return empty."""

    enabled = False
    events: list[Decision] = []

    def record(self, *args, **kwargs) -> None:
        return None

    def for_stage(self, stage: str) -> list[Decision]:
        return []

    def by_function(self) -> dict[str, list[Decision]]:
        return {}

    def reset(self) -> None:
        return None


NULL_DECISIONS = NullDecisionLog()

_decisions: DecisionLog | NullDecisionLog = NULL_DECISIONS


def get_decisions() -> DecisionLog | NullDecisionLog:
    """The process-wide decision log (no-op unless observation is active)."""
    return _decisions


def set_decisions(
    log: DecisionLog | NullDecisionLog | None,
) -> DecisionLog | NullDecisionLog:
    """Install ``log`` (``None`` restores the no-op); returns the previous."""
    global _decisions
    prev = _decisions
    _decisions = log if log is not None else NULL_DECISIONS
    return prev
