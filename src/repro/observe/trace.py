"""Nestable-span tracing for the GLAF pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects per thread.  Each
span captures a wall-clock duration (``time.perf_counter``), arbitrary
key/value attributes, and its children, so the whole pipeline run —
parse → access analysis → dependence → parallelization → pruning →
codegen → execution — renders as one flame-style tree
(:func:`repro.observe.report.render_tree`).

The module-level default is :data:`NULL_TRACER`, a no-op whose ``span``
call returns a shared singleton context manager; instrumented code that
runs without an active observation therefore costs one global read and
two trivial method calls per site.  Install a real tracer with
:func:`set_tracer` or, more commonly, :func:`repro.observe.observed`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
]


@dataclass
class Span:
    """One timed region of the pipeline, with nested children."""

    name: str
    start: float
    end: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    thread: str = ""

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attrs: object) -> None:
        """Attach key/value attributes to this span."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        yield self
        for c in self.children:
            yield from c.walk()


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self._span)
        return None


class Tracer:
    """Collects spans into per-root trees; safe for concurrent threads.

    Each thread keeps its own span stack (``threading.local``); completed
    top-of-stack spans attach to their parent, and parentless spans become
    roots.  The roots list is guarded by a lock so threads may open spans
    concurrently.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self.epoch = clock()
        self.roots: list[Span] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a nestable span: ``with tracer.span("analysis.step", fn=f):``."""
        s = Span(name=name, start=self._clock(), attrs=dict(attrs),
                 thread=threading.current_thread().name)
        return _SpanContext(self, s)

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the innermost open span (no-op at top level)."""
        stack = self._stack()
        if stack:
            stack[-1].set(**attrs)

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- internals -----------------------------------------------------
    def _stack(self) -> list[Span]:
        try:
            return self._local.stack
        except AttributeError:
            self._local.stack = []
            return self._local.stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- inspection ----------------------------------------------------
    def all_spans(self) -> Iterator[Span]:
        for r in self.roots:
            yield from r.walk()

    def total_seconds(self) -> float:
        return sum(r.duration for r in self.roots)

    def reset(self) -> None:
        with self._lock:
            self.roots.clear()
        self.epoch = self._clock()


class _NullSpan:
    """Inert stand-in yielded by the no-op tracer's span context."""

    __slots__ = ()
    name = ""
    attrs: dict[str, object] = {}
    children: list = []
    duration = 0.0

    def set(self, **attrs: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer installed by default: every ``span`` call returns
    one shared inert context manager, so un-instrumented runs pay nothing."""

    enabled = False
    roots: list[Span] = []

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def annotate(self, **attrs: object) -> None:
        return None

    def current(self) -> None:
        return None

    def all_spans(self):
        return iter(())

    def total_seconds(self) -> float:
        return 0.0

    def reset(self) -> None:
        return None


NULL_TRACER = NullTracer()

_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer (the shared no-op unless observation is on)."""
    return _tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (``None`` restores the no-op); returns the previous."""
    global _tracer
    prev = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return prev
