"""Telemetry exporters over the run ledger (``docs/RUN_LEDGER.md``).

Three export surfaces plus the human-readable renderers behind the
``repro runs`` CLI family:

* :func:`to_prometheus` — the metrics snapshot of a run record in the
  Prometheus text exposition format (counters as ``*_total``, gauges,
  histogram summaries), with :func:`parse_prometheus` as the built-in
  grammar check so tests and ``repro runs selftest`` can verify every
  emitted page actually parses;
* :func:`record_to_chrome` — a Chrome/Perfetto trace synthesized from a
  persisted record: phase-``"X"`` span events re-laid from the stored
  flame tree, phase-``"C"`` counter tracks from the metrics snapshot and
  the resource-sampler series, and phase-``"i"`` instants for every
  decision event;
* :func:`render_runs_html` — a fully self-contained static HTML
  dashboard (inline CSS + SVG, zero external dependencies) showing the
  run trajectory, per-stage flame summaries, and the
  guard/fallback/sentinel event timeline;
* :func:`render_runs_table` / :func:`render_run` / :func:`diff_runs` /
  :func:`render_runs_trend` — the text views for ``repro runs
  list|show|diff|trend``.
"""

from __future__ import annotations

import html as _html
import re
import time

__all__ = [
    "to_prometheus",
    "parse_prometheus",
    "record_to_chrome",
    "render_runs_html",
    "render_runs_table",
    "render_run",
    "diff_runs",
    "render_runs_trend",
]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
_PROM_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _prom_name(name: str, suffix: str = "") -> str:
    """A valid Prometheus metric name for one of our dotted instruments."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not re.match(r"[a-zA-Z_:]", sanitized[0]):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}{suffix}"


def _prom_value(v: object) -> str:
    f = float(v)  # bools are filtered out upstream; ints format cleanly
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _prom_labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    parts = []
    for k, v in sorted(labels.items()):
        if not _PROM_LABEL_RE.match(k):
            raise ValueError(f"invalid Prometheus label name {k!r}")
        escaped = (str(v).replace("\\", r"\\").replace('"', r"\"")
                   .replace("\n", r"\n"))
        parts.append(f'{k}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def to_prometheus(snapshot: dict, labels: dict[str, str] | None = None,
                  help_prefix: str = "GLAF pipeline metric") -> str:
    """A metrics snapshot (``MetricsRegistry.snapshot()`` / a run
    record's ``metrics`` field) in Prometheus text exposition format.

    Counters become ``repro_<name>_total`` counter families, gauges
    ``repro_<name>`` gauges, histograms summary families
    (``_sum``/``_count``) with companion ``_min``/``_max`` gauges.
    ``labels`` (e.g. ``{"run": "run-000003"}``) are attached to every
    sample.  The output is checked by :func:`parse_prometheus` in the
    selftest, so what we emit is what the grammar admits.
    """
    lab = _prom_labels(labels)
    lines: list[str] = []

    def family(name: str, kind: str, samples: list[tuple[str, object]]):
        lines.append(f"# HELP {name} {help_prefix}")
        lines.append(f"# TYPE {name} {kind}")
        for sample_name, value in samples:
            lines.append(f"{sample_name}{lab} {_prom_value(value)}")

    for name, value in snapshot.get("counters", {}).items():
        family(_prom_name(name, "_total"), "counter",
               [(_prom_name(name, "_total"), value)])
    for name, value in snapshot.get("gauges", {}).items():
        family(_prom_name(name), "gauge", [(_prom_name(name), value)])
    for name, summary in snapshot.get("histograms", {}).items():
        base = _prom_name(name)
        family(base, "summary", [(f"{base}_sum", summary.get("sum", 0.0)),
                                 (f"{base}_count", summary.get("count", 0))])
        for stat in ("min", "max"):
            family(f"{base}_{stat}", "gauge",
                   [(f"{base}_{stat}", summary.get(stat, 0.0))])
    return "\n".join(lines) + "\n" if lines else "# EOF\n"


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse a text-exposition page; raises ``ValueError`` on grammar
    violations.  Returns ``{metric_name: [(labels, value), ...]}`` —
    the acceptance check behind "the exporter output parses"."""
    out: dict[str, list[tuple[dict, float]]] = {}
    typed: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _PROM_NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"line {lineno}: malformed {parts[1]} comment: {line!r}")
                if parts[1] == "TYPE":
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        raise ValueError(
                            f"line {lineno}: unknown metric type {kind!r}")
                    typed[parts[2]] = kind
            continue
        m = _PROM_SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        labels: dict[str, str] = {}
        body = m.group("labels")
        if body:
            matched = _PROM_LABEL_PAIR_RE.findall(body)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in matched)
            if rebuilt.replace(" ", "") != body.strip().rstrip(",").replace(" ", ""):
                raise ValueError(f"line {lineno}: malformed labels: {body!r}")
            labels = dict(matched)
        try:
            value = float(m.group("value"))
        except ValueError as e:
            raise ValueError(
                f"line {lineno}: bad sample value {m.group('value')!r}") from e
        out.setdefault(m.group("name"), []).append((labels, value))
    return out


# ---------------------------------------------------------------------------
# Chrome trace from a persisted record
# ---------------------------------------------------------------------------

def record_to_chrome(record: dict) -> dict[str, object]:
    """A Chrome/Perfetto trace document for one ``repro.run/v1`` record.

    The ledger stores the name-aggregated flame tree, not individual
    spans, so sibling aggregates are re-laid sequentially inside their
    parent — per-name totals and nesting are exact, interleaving is not.
    Counters, sampler ticks, and decision instants are exact.
    """
    events: list[dict[str, object]] = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "main"}},
    ]

    def emit(nodes: list[dict], cursor: float) -> None:
        for node in nodes:
            dur = float(node.get("total_s", 0.0)) * 1e6
            events.append({
                "name": node.get("name", "?"),
                "cat": str(node.get("name", "?")).split(".", 1)[0],
                "ph": "X", "ts": round(cursor, 3), "dur": round(dur, 3),
                "pid": 0, "tid": 0,
                "args": {"calls": node.get("calls", 1)},
            })
            emit(node.get("children", []), cursor)
            cursor += dur

    emit(record.get("flame", []), 0.0)
    end = float(record.get("wall_s", 0.0)) * 1e6
    metrics = record.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        events.append({"name": name, "cat": "metric", "ph": "C", "ts": 0.0,
                       "pid": 0, "args": {"value": 0}})
        events.append({"name": name, "cat": "metric", "ph": "C",
                       "ts": round(end, 3), "pid": 0,
                       "args": {"value": value}})
    for name, value in metrics.get("gauges", {}).items():
        events.append({"name": name, "cat": "metric", "ph": "C",
                       "ts": round(end, 3), "pid": 0,
                       "args": {"value": value}})
    for tick in record.get("samples", []):
        ts = round(max(0.0, float(tick.get("t", 0.0))) * 1e6, 3)
        for key, track in (("rss_mb", "sample.rss_mb"),
                           ("cpu_s", "sample.cpu_s"),
                           ("gc_gen0", "sample.gc_gen0")):
            if key in tick:
                events.append({"name": track, "cat": "sample", "ph": "C",
                               "ts": ts, "pid": 0,
                               "args": {"value": tick[key]}})
    for d in record.get("decisions", []):
        ts = round(max(0.0, float(d.get("t", 0.0))) * 1e6, 3)
        events.append({
            "name": f"{d.get('stage', '?')}:{d.get('verdict', '?')}",
            "cat": str(d.get("stage", "?")), "ph": "i", "s": "g",
            "ts": ts, "pid": 0, "tid": 0,
            "args": {"function": d.get("function", ""),
                     "step": d.get("step_name", ""),
                     "reasons": str(d.get("reasons", []))},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run": str(record.get("id", "?")),
                      "command": str(record.get("command", "?")),
                      "schema": str(record.get("schema", ""))},
    }


# ---------------------------------------------------------------------------
# text renderers (repro runs list/show/diff/trend)
# ---------------------------------------------------------------------------

def _when(ts: object) -> str:
    try:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(float(ts)))
    except (TypeError, ValueError, OverflowError):
        return "?"


def render_runs_table(entries: list[dict]) -> str:
    if not entries:
        return "(run ledger is empty)"
    header = (f"{'id':<12s} {'command':<14s} {'status':<8s} {'exit':>4s} "
              f"{'wall':>12s} {'recorded (UTC)':<20s} {'git':<8s}")
    lines = [header, "-" * len(header)]
    for e in entries:
        lines.append(
            f"{e.get('id', '?'):<12s} {e.get('command', '?'):<14s} "
            f"{e.get('status', '?'):<8s} {e.get('exit_code', 0):>4d} "
            f"{float(e.get('wall_s', 0.0)) * 1e3:>10.1f}ms "
            f"{_when(e.get('started')):<20s} "
            f"{str(e.get('git_sha', 'unknown'))[:7]:<8s}")
    return "\n".join(lines)


_EVENT_GROUPS = (
    ("guard", lambda s: s == "guard"),
    ("executor:fallback", lambda s: s == "executor:fallback"),
    ("numeric:*", lambda s: s.startswith("numeric:")),
    ("fault", lambda s: s == "fault"),
    ("lint:*", lambda s: s.startswith("lint:")),
    ("retry", lambda s: s == "retry"),
    ("fuzz:*", lambda s: s.startswith("fuzz:")),
    ("sample:*", lambda s: s.startswith("sample:")),
    ("run:*", lambda s: s.startswith("run:")),
)


def _event_counts(record: dict) -> dict[str, int]:
    counts: dict[str, int] = {}
    for d in record.get("decisions", []):
        stage = str(d.get("stage", ""))
        for label, match in _EVENT_GROUPS:
            if match(stage):
                counts[label] = counts.get(label, 0) + 1
                break
    return counts


def render_run(record: dict) -> str:
    """The ``repro runs show`` view of one record."""
    outcome = record.get("outcome", {})
    env = record.get("environment", {})
    ck = record.get("checkpoint") or {}
    lines = [
        f"== {record.get('id', '?')}: repro {record.get('command', '?')} ==",
        f"argv:      {' '.join(record.get('argv', [])) or '(none)'}",
        f"outcome:   {outcome.get('status', '?')} "
        f"(exit {outcome.get('exit_code', '?')})",
        f"wall:      {float(record.get('wall_s', 0.0)) * 1e3:.1f}ms",
        f"recorded:  {_when(record.get('started'))} UTC",
        f"env:       python {env.get('python', '?')}, numpy "
        f"{env.get('numpy', '?')}, git {str(env.get('git_sha', '?'))[:12]}, "
        f"executor {env.get('executor', '?')}",
    ]
    if ck:
        lines.append(f"checkpoint: dir={ck.get('dir', '?')} "
                     f"resume={ck.get('resume', False)}")
    stages = record.get("stages", [])
    if stages:
        lines.append("-- per-stage seconds --")
        for row in stages:
            lines.append(f"  {row.get('stage', '?'):<12s} "
                         f"calls {int(row.get('calls', 0)):>6d} "
                         f"cumulative {float(row.get('cumulative_s', 0)) * 1e3:>10.3f}ms "
                         f"self {float(row.get('self_s', 0)) * 1e3:>10.3f}ms")
    metrics = record.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("-- counters --")
        for name in sorted(counters):
            lines.append(f"  {name:<40s} {counters[name]:>10}")
    events = _event_counts(record)
    if events:
        lines.append("-- events --")
        for label in sorted(events):
            lines.append(f"  {label:<20s} {events[label]:>6d}")
    samples = record.get("samples", [])
    if samples:
        rss = [s.get("rss_mb", 0.0) for s in samples]
        lines.append(f"-- resource samples: {len(samples)} tick(s), "
                     f"rss {min(rss):.1f}..{max(rss):.1f} MB --")
    return "\n".join(lines)


def _pct(old: float, new: float) -> str:
    if old <= 0.0:
        return "+inf%" if new > 0.0 else "+0.0%"
    return f"{(new - old) / old * 100.0:+.1f}%"


def diff_runs(a: dict, b: dict) -> str:
    """The ``repro runs diff`` view: wall, stages, counters, environment."""
    lines = [f"== runs diff: {a.get('id', '?')} -> {b.get('id', '?')} =="]
    wa, wb = float(a.get("wall_s", 0.0)), float(b.get("wall_s", 0.0))
    lines.append(f"wall: {wa * 1e3:.1f}ms -> {wb * 1e3:.1f}ms "
                 f"({_pct(wa, wb)})")
    sa = {r["stage"]: r for r in a.get("stages", [])}
    sb = {r["stage"]: r for r in b.get("stages", [])}
    shared = sorted(set(sa) | set(sb))
    if shared:
        lines.append("-- stages (cumulative) --")
        for stage in shared:
            oa = float(sa.get(stage, {}).get("cumulative_s", 0.0))
            ob = float(sb.get(stage, {}).get("cumulative_s", 0.0))
            lines.append(f"  {stage:<12s} {oa * 1e3:>10.3f}ms "
                         f"{ob * 1e3:>10.3f}ms {_pct(oa, ob):>8s}")
    ca = a.get("metrics", {}).get("counters", {})
    cb = b.get("metrics", {}).get("counters", {})
    changed = [n for n in sorted(set(ca) | set(cb))
               if ca.get(n, 0) != cb.get(n, 0)]
    if changed:
        lines.append("-- counters (changed) --")
        for name in changed:
            lines.append(f"  {name:<40s} {ca.get(name, 0):>8} -> "
                         f"{cb.get(name, 0):>8}")
    env_keys = ("python", "numpy", "platform", "git_sha", "executor",
                "guard_mode")
    env_diffs = [(k, a.get("environment", {}).get(k),
                  b.get("environment", {}).get(k))
                 for k in env_keys
                 if a.get("environment", {}).get(k)
                 != b.get("environment", {}).get(k)]
    if env_diffs:
        lines.append("-- environment changed --")
        for k, va, vb in env_diffs:
            lines.append(f"  {k}: {va} -> {vb}")
    return "\n".join(lines)


def render_runs_trend(records: list[dict]) -> str:
    """Wall-time trajectory per command across the whole ledger."""
    if not records:
        return "(run ledger is empty)"
    lines = ["== run trend (wall time per command) =="]
    prev: dict[str, float] = {}
    header = (f"{'id':<12s} {'command':<14s} {'status':<8s} {'wall':>12s} "
              f"{'vs prev':>8s}")
    lines += [header, "-" * len(header)]
    for r in records:
        cmd = str(r.get("command", "?"))
        wall = float(r.get("wall_s", 0.0))
        delta = _pct(prev[cmd], wall) if cmd in prev else "-"
        prev[cmd] = wall
        lines.append(
            f"{r.get('id', '?'):<12s} {cmd:<14s} "
            f"{r.get('outcome', {}).get('status', '?'):<8s} "
            f"{wall * 1e3:>10.1f}ms {delta:>8s}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# static HTML dashboard
# ---------------------------------------------------------------------------

# Categorical palette (validated default order; light / dark steps per
# surface).  Stages take slots in fixed order of first appearance across
# the ledger; past 8, stages fold into "other".
_SERIES = [
    ("#2a78d6", "#3987e5"), ("#eb6834", "#d95926"), ("#1baf7a", "#199e70"),
    ("#eda100", "#c98500"), ("#e87ba4", "#d55181"), ("#008300", "#008300"),
    ("#4a3aa7", "#9085e9"), ("#e34948", "#e66767"),
]

_CSS = """
.viz-root { color-scheme: light;
  --surface-1:#fcfcfb; --surface-2:#f0efec; --line:#d9d8d3;
  --text-primary:#0b0b0b; --text-secondary:#52514e; --text-muted:#7c7b76;
  font: 13px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary); background: var(--surface-1);
  max-width: 980px; margin: 0 auto; padding: 24px; }
@media (prefers-color-scheme: dark) { .viz-root { color-scheme: dark;
  --surface-1:#1a1a19; --surface-2:#262624; --line:#3a3a37;
  --text-primary:#ffffff; --text-secondary:#c3c2b7; --text-muted:#8d8c85; } }
.viz-root h1 { font-size: 18px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 16px; }
.viz-root svg { display: block; }
.viz-root svg text { fill: var(--text-secondary); font-size: 11px; }
.viz-root .axis { stroke: var(--line); stroke-width: 1; }
.viz-root .grid { stroke: var(--line); stroke-width: 1; opacity: .6; }
.viz-root .legend { display: flex; flex-wrap: wrap; gap: 4px 16px;
  margin: 6px 0 0; color: var(--text-secondary); }
.viz-root .legend span { display: inline-flex; align-items: center;
  gap: 6px; }
.viz-root .chip { width: 10px; height: 10px; border-radius: 3px;
  display: inline-block; }
.viz-root table { border-collapse: collapse; width: 100%;
  margin-top: 8px; }
.viz-root th, .viz-root td { text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--line); font-variant-numeric: tabular-nums; }
.viz-root th { color: var(--text-muted); font-weight: 600; }
.viz-root .num { text-align: right; }
.viz-root .badge { display: inline-flex; align-items: center; gap: 5px;
  margin-right: 12px; color: var(--text-secondary); }
.viz-root .dot { width: 8px; height: 8px; border-radius: 50%;
  display: inline-block; }
"""


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:,.1f}ms"


def _series_color(i: int) -> tuple[str, str]:
    return _SERIES[i % len(_SERIES)]


def _svg_var_color(pair: tuple[str, str], idx: int) -> str:
    # One CSS custom property per slot so dark mode swaps in one place.
    return f"var(--s{idx})"


def _trajectory_svg(records: list[dict]) -> str:
    """Single-series line chart: wall seconds per run."""
    width, height, pad_l, pad_b, pad_t = 940, 220, 60, 34, 14
    walls = [float(r.get("wall_s", 0.0)) for r in records]
    top = max(walls, default=0.0) * 1.15 or 1.0
    n = len(records)
    xs = [pad_l + (width - pad_l - 12) * (i / max(1, n - 1))
          for i in range(n)]
    ys = [height - pad_b - (height - pad_b - pad_t) * (w / top)
          for w in walls]
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="Wall time per run">']
    for frac in (0.0, 0.5, 1.0):
        y = height - pad_b - (height - pad_b - pad_t) * frac
        parts.append(f'<line class="grid" x1="{pad_l}" y1="{y:.1f}" '
                     f'x2="{width - 12}" y2="{y:.1f}"/>')
        parts.append(f'<text x="{pad_l - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{top * frac * 1e3:,.0f}ms</text>')
    parts.append(f'<line class="axis" x1="{pad_l}" y1="{height - pad_b}" '
                 f'x2="{width - 12}" y2="{height - pad_b}"/>')
    if n > 1:
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="var(--s0)" stroke-width="2" '
                     f'stroke-linejoin="round" stroke-linecap="round"/>')
    label_every = max(1, n // 8)
    for i, (r, x, y) in enumerate(zip(records, xs, ys)):
        rid = _html.escape(str(r.get("id", "?")))
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="var(--s0)" '
            f'stroke="var(--surface-1)" stroke-width="2">'
            f'<title>{rid} · repro {_html.escape(str(r.get("command", "?")))}'
            f' · {_fmt_ms(walls[i])}</title></circle>')
        if i % label_every == 0 or i == n - 1:
            parts.append(f'<text x="{x:.1f}" y="{height - pad_b + 16}" '
                         f'text-anchor="middle">{rid[-6:]}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _stage_slots(records: list[dict]) -> list[str]:
    """Stages in fixed first-appearance order; callers fold past 8."""
    order: list[str] = []
    for r in records:
        for row in r.get("stages", []):
            stage = str(row.get("stage", "?"))
            if stage not in order:
                order.append(stage)
    return order


def _stacked_stages_svg(records: list[dict], slots: list[str]) -> str:
    """One horizontal stacked bar per run: cumulative seconds per stage."""
    bar_h, gap, pad_l, width = 22, 8, 110, 940
    height = 12 + len(records) * (bar_h + gap)
    totals = []
    for r in records:
        per = {str(row.get("stage", "?")): float(row.get("cumulative_s", 0.0))
               for row in r.get("stages", [])}
        totals.append(per)
    scale_max = max((sum(p.values()) for p in totals), default=0.0) or 1.0
    span = width - pad_l - 12
    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="Per-stage time per run">']
    for i, (r, per) in enumerate(zip(records, totals)):
        y = 6 + i * (bar_h + gap)
        rid = _html.escape(str(r.get("id", "?")))
        parts.append(f'<text x="{pad_l - 10}" y="{y + bar_h - 7}" '
                     f'text-anchor="end">{rid}</text>')
        x = float(pad_l)
        for si, stage in enumerate(slots[:8]):
            v = per.get(stage, 0.0)
            if si == 7 and len(slots) > 8:           # fold tail into Other
                v += sum(per.get(s, 0.0) for s in slots[8:])
            if v <= 0.0:
                continue
            w = span * (v / scale_max)
            name = ("other" if si == 7 and len(slots) > 8 else stage)
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(w - 2, 1):.1f}" '
                f'height="{bar_h}" rx="3" fill="var(--s{si})">'
                f'<title>{rid} · {_html.escape(name)} · {_fmt_ms(v)}</title>'
                f'</rect>')
            x += w
    parts.append("</svg>")
    return "".join(parts)


def _events_rows(records: list[dict]) -> str:
    rows = []
    for r in records:
        counts = _event_counts(r)
        badges = "".join(
            f'<span class="badge"><span class="dot" '
            f'style="background:var(--s{min(i, 7)})"></span>'
            f'{_html.escape(label)}&nbsp;×{counts[label]}</span>'
            for i, label in enumerate(sorted(counts)))
        rows.append(
            f"<tr><td>{_html.escape(str(r.get('id', '?')))}</td>"
            f"<td>{_html.escape(str(r.get('command', '?')))}</td>"
            f"<td>{badges or '<span class=badge>—</span>'}</td></tr>")
    return "".join(rows)


def render_runs_html(records: list[dict],
                     title: str = "repro run ledger") -> str:
    """The self-contained dashboard page for ``repro runs html``."""
    slots = _stage_slots(records)
    css_vars_light = "".join(
        f"--s{i}:{_series_color(i)[0]};" for i in range(8))
    css_vars_dark = "".join(
        f"--s{i}:{_series_color(i)[1]};" for i in range(8))
    legend = "".join(
        f'<span><span class="chip" style="background:var(--s{i})"></span>'
        f'{_html.escape("other" if i == 7 and len(slots) > 8 else s)}</span>'
        for i, s in enumerate(slots[:8]))
    table_rows = "".join(
        f"<tr><td>{_html.escape(str(r.get('id', '?')))}</td>"
        f"<td>{_html.escape(str(r.get('command', '?')))}</td>"
        f"<td>{_html.escape(str(r.get('outcome', {}).get('status', '?')))}</td>"
        f"<td class=num>{float(r.get('wall_s', 0.0)) * 1e3:,.1f}</td>"
        f"<td>{_html.escape(_when(r.get('started')))}</td>"
        f"<td>{_html.escape(str(r.get('environment', {}).get('git_sha', '?'))[:7])}</td>"
        f"</tr>"
        for r in records)
    n = len(records)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_html.escape(title)}</title>
<style>
{_CSS}
.viz-root {{ {css_vars_light} }}
@media (prefers-color-scheme: dark) {{ .viz-root {{ {css_vars_dark} }} }}
</style>
</head>
<body class="viz-root">
<h1>{_html.escape(title)}</h1>
<p class="sub">{n} recorded run(s) · schema repro.run/v1 ·
generated by <code>repro runs html</code></p>

<h2>Run trajectory — wall time</h2>
{_trajectory_svg(records)}

<h2>Per-stage flame summary</h2>
{_stacked_stages_svg(records, slots)}
<div class="legend">{legend}</div>

<h2>Guard / fallback / sentinel event timeline</h2>
<table>
<thead><tr><th>run</th><th>command</th><th>events</th></tr></thead>
<tbody>{_events_rows(records)}</tbody>
</table>

<h2>All runs</h2>
<table>
<thead><tr><th>run</th><th>command</th><th>status</th>
<th class=num>wall (ms)</th><th>recorded (UTC)</th><th>git</th></tr></thead>
<tbody>{table_rows}</tbody>
</table>
</body>
</html>
"""
