"""Zero-dependency observability for the GLAF pipeline.

The subsystem has three legs, each with a module-level no-op default so
un-instrumented runs cost nothing (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.observe.trace` — a :class:`Tracer` of nestable spans
  (``with tracer.span("analysis.dependence", step=name):``) capturing
  wall time, call counts, and key/value attributes;
* :mod:`repro.observe.metrics` — a thread-safe :class:`MetricsRegistry`
  of counters / gauges / histograms;
* :mod:`repro.observe.decisions` — a :class:`DecisionLog` of structured
  "why" events from the parallelization analyzer, the pruning passes,
  and the model-guided advisor.

The usual entry point is :func:`observed`, which installs all three for
the duration of a ``with`` block and hands back the bundle::

    from repro import observe

    with observe.observed() as obs:
        plan = make_plan(program, "GLAF-parallel v2")
        src = generate_fortran_module(plan)
    print(observe.render_report(obs.tracer, obs.metrics, obs.decisions))

``repro profile PROJECT.json`` and the ``--profile`` flag on
``experiments`` / ``generate`` are the CLI front doors to the same
machinery; :mod:`repro.observe.report` renders the flame-style tree, the
per-stage summary, and the JSON export (schema ``repro.observe.trace/v1``).

On top of the in-process trio sit the durable pieces (PR 8):

* :mod:`repro.observe.ledger` — the persistent ``.repro/runs/`` run
  ledger (``repro.run/v1`` records, atomic index, quarantine);
* :mod:`repro.observe.export` — Prometheus text exposition, the
  Chrome/Perfetto trace synthesized from a record, and the static HTML
  dashboard behind ``repro runs``;
* :mod:`repro.observe.sample` — the opt-in background
  :class:`ResourceSampler` (RSS / CPU / GC time series).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .decisions import (
    NULL_DECISIONS,
    Decision,
    DecisionLog,
    NullDecisionLog,
    get_decisions,
    set_decisions,
)
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    set_metrics,
)
from .bench import BENCH_SCHEMA, RepeatStats, stage_seconds, summarize_repeats
from .report import (
    TRACE_SCHEMA,
    render_decisions,
    render_metrics,
    render_report,
    render_stage_summary,
    render_tree,
    stage_totals,
    to_chrome_trace,
    trace_to_json,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    # trace
    "Span", "Tracer", "NullTracer", "NULL_TRACER", "get_tracer", "set_tracer",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullMetricsRegistry",
    "NULL_METRICS", "get_metrics", "set_metrics",
    # decisions
    "Decision", "DecisionLog", "NullDecisionLog", "NULL_DECISIONS",
    "get_decisions", "set_decisions",
    # reporting
    "TRACE_SCHEMA", "render_tree", "render_stage_summary", "render_metrics",
    "render_decisions", "render_report", "stage_totals", "trace_to_json",
    "to_chrome_trace",
    # bench statistics
    "BENCH_SCHEMA", "RepeatStats", "summarize_repeats", "stage_seconds",
    # session
    "Observation", "observed", "observing", "is_observing",
    # run ledger + exporters + sampling
    "RUN_SCHEMA", "INDEX_SCHEMA", "DEFAULT_LEDGER_DIR", "LEDGER_ENV",
    "RunLedger", "build_record", "ledger_dir_from_env",
    "to_prometheus", "parse_prometheus", "record_to_chrome",
    "render_runs_html", "render_runs_table", "render_run", "diff_runs",
    "render_runs_trend",
    "ResourceSampler", "read_rss_bytes",
]


@dataclass
class Observation:
    """The tracer + metrics + decision log installed by one :func:`observed`."""

    tracer: Tracer
    metrics: MetricsRegistry
    decisions: DecisionLog

    def to_json(self, **meta: object) -> dict[str, object]:
        return trace_to_json(self.tracer, self.metrics, self.decisions, **meta)

    def to_chrome_trace(self, *, samples=None, **meta: object) -> dict[str, object]:
        return to_chrome_trace(self.tracer, self.metrics, self.decisions,
                               samples=samples, **meta)

    def report(self, title: str = "pipeline profile") -> str:
        return render_report(self.tracer, self.metrics, self.decisions,
                             title=title)


def is_observing() -> bool:
    """True while a real (non-null) tracer is installed."""
    return get_tracer().enabled


@contextmanager
def observed(clock=None) -> Iterator[Observation]:
    """Install a fresh tracer/metrics/decision-log trio for the block.

    Restores whatever was installed before on exit, so observations nest
    (the inner one wins while active).  ``clock`` is handed to the
    :class:`Tracer` so recorded durations are deterministic under test
    (the bench recorder threads its injected clock through here).
    """
    obs = Observation(Tracer(clock) if clock is not None else Tracer(),
                      MetricsRegistry(), DecisionLog())
    prev_t = set_tracer(obs.tracer)
    prev_m = set_metrics(obs.metrics)
    prev_d = set_decisions(obs.decisions)
    try:
        yield obs
    finally:
        set_tracer(prev_t)
        set_metrics(prev_m)
        set_decisions(prev_d)


@contextmanager
def observing(clock=None) -> Iterator[Observation]:
    """The active observation if one is installed, else a fresh one.

    ``repro profile`` and the run ledger both want "the observation for
    this process": when ``main()`` has already installed one (because the
    ledger is on), nesting a second would hide the outer one's spans from
    the persisted record.  This joins the active trio instead; only when
    nothing is installed does it behave like :func:`observed`.
    """
    if is_observing():
        yield Observation(get_tracer(), get_metrics(), get_decisions())
    else:
        with observed(clock) as obs:
            yield obs


# Durable layer last: ledger/export/sample import the modules above.
from .export import (  # noqa: E402
    diff_runs,
    parse_prometheus,
    record_to_chrome,
    render_run,
    render_runs_html,
    render_runs_table,
    render_runs_trend,
    to_prometheus,
)
from .ledger import (  # noqa: E402
    DEFAULT_LEDGER_DIR,
    INDEX_SCHEMA,
    LEDGER_ENV,
    RUN_SCHEMA,
    RunLedger,
    build_record,
    ledger_dir_from_env,
)
from .sample import ResourceSampler, read_rss_bytes  # noqa: E402
