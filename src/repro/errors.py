"""Exception hierarchy for the GLAF reproduction.

Every subsystem raises a subclass of :class:`GlafError` so callers can
distinguish framework faults from programming errors in user code.
"""

from __future__ import annotations


class GlafError(Exception):
    """Base class for all framework errors."""


class ValidationError(GlafError):
    """A GLAF program violates a structural rule (scoping, nesting, types)."""


class BuilderError(GlafError):
    """Invalid use of the programmatic GPI builder."""


class AnalysisError(GlafError):
    """Auto-parallelization analysis failed or was given invalid input."""


class CodegenError(GlafError):
    """Code generation could not produce output for the requested target."""


class FortranSyntaxError(GlafError):
    """The FORTRAN-subset lexer/parser rejected the input source."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.message = message
        self.line = line
        self.col = col
        parts = []
        if line is not None:
            parts.append(f"line {line}")
        if col is not None:
            parts.append(f"col {col}")
        loc = f" ({', '.join(parts)})" if parts else ""
        super().__init__(message + loc)

    def __reduce__(self):
        # BaseException's default pickling replays ``cls(*self.args)``, but
        # args[0] is the message *with* the location suffix already
        # appended — unpickling would append it a second time.  Rebuild
        # from the raw constructor inputs instead; the state dict keeps
        # any extra attributes (batch workers annotate ``batch_stage``
        # before shipping these across process boundaries; docs/BATCH.md).
        return (type(self), (self.message, self.line, self.col),
                dict(self.__dict__))


class DiagnosticBundle(FortranSyntaxError):
    """Several errors collected instead of raised one at a time.

    Two collectors produce these: the recovering FORTRAN parser
    (``parse_source(src, recover=True)``), which resynchronizes at
    statement and unit boundaries and collects every error it skipped,
    and the GLAF validator (``validate_program(program, collect=True)``),
    which gathers all structural violations.  The partially-parsed source
    file (every unit that did parse) is attached as ``partial`` so callers
    can degrade instead of failing outright; validator bundles have no
    partial and no line/col (ValidationError carries neither).
    """

    def __init__(self, diagnostics, partial=None):
        self.diagnostics = list(diagnostics)
        self.partial = partial
        n = len(self.diagnostics)
        first = self.diagnostics[0] if self.diagnostics else None
        msg = f"{n} error(s) collected"
        if first is not None:
            msg += f"; first: {first}"
        super().__init__(msg)
        if first is not None:
            self.line = getattr(first, "line", None)
            self.col = getattr(first, "col", None)

    def __reduce__(self):
        # The inherited pickling would replay ``cls(*args)`` with the
        # summary *string*, which ``__init__`` iterates character by
        # character as the diagnostics list — the round trip silently
        # corrupts the bundle.  Rebuild from the real constructor inputs.
        return (type(self), (self.diagnostics, self.partial),
                dict(self.__dict__))


class FortranRuntimeError(GlafError):
    """The FORTRAN-subset interpreter hit a runtime fault (bounds, kinds...)."""


class IntegrationError(GlafError):
    """Generated code cannot be integrated with the legacy codebase."""


class InterfaceMismatchError(IntegrationError):
    """A generated subprogram's interface does not match the legacy call site."""


class ExecutionError(GlafError):
    """The GLAF IR interpreter hit a runtime fault."""


class ResourceLimitError(ExecutionError):
    """An execution watchdog tripped (iteration budget or wall-clock limit).

    Deliberately *not* recoverable by the divergence guard: re-executing a
    step that already exhausted its budget can only make things worse, so
    the guard re-raises this instead of falling back to serial."""


class NumericIntegrityError(ExecutionError):
    """A numeric sentinel detected a non-finite or out-of-range value.

    Raised by :mod:`repro.numeric.sentinel` when sentinels are active and a
    NaN, Inf, overflow-scale, or denormal value is assigned during
    execution.  Carries the offending location so the report can name the
    step and cell.  Deliberately never retried by
    :func:`repro.numeric.retry.retry_call`: a numeric-integrity violation
    is deterministic, so re-running the stage cannot help.
    """

    def __init__(self, message: str, *, kind: str = "", function: str = "",
                 step_index: int = -1, grid: str = "",
                 cell: tuple[int, ...] | None = None):
        self.kind = kind
        self.function = function
        self.step_index = step_index
        self.grid = grid
        self.cell = cell
        super().__init__(message)


class PerfModelError(GlafError):
    """The performance simulator was given an inconsistent configuration."""


class WorkloadError(GlafError):
    """A case-study workload specification is invalid."""


class BenchArtifactError(GlafError):
    """A ``BENCH_<n>.json`` artifact is malformed or has the wrong schema."""


class RunLedgerError(GlafError):
    """A ``.repro/runs`` record or index is malformed, missing, or fails
    its content-digest check (see ``docs/RUN_LEDGER.md``)."""


class BatchError(GlafError):
    """A ``repro batch`` corpus or configuration is invalid
    (see ``docs/BATCH.md``)."""


class WorkerCrashError(GlafError):
    """A batch worker process died without reporting a typed result.

    ``kind`` is ``"crash"`` (the worker exited or was killed by a signal
    before sending its result) or ``"hang"`` (the parent-side deadline
    expired and the worker was SIGKILLed).  Deliberately *not* an
    :class:`ExecutionError` subclass reused from the interpreter: worker
    death is a process-level event, retried by the batch driver under
    :func:`repro.numeric.retry.retry_call` — an item whose worker keeps
    dying is quarantined as poison (``docs/BATCH.md``).
    """

    def __init__(self, message: str, *, item: str = "", kind: str = "crash",
                 exit_code: int | None = None):
        self.item = item
        self.kind = kind
        self.exit_code = exit_code
        super().__init__(message)
