"""Exception hierarchy for the GLAF reproduction.

Every subsystem raises a subclass of :class:`GlafError` so callers can
distinguish framework faults from programming errors in user code.
"""

from __future__ import annotations


class GlafError(Exception):
    """Base class for all framework errors."""


class ValidationError(GlafError):
    """A GLAF program violates a structural rule (scoping, nesting, types)."""


class BuilderError(GlafError):
    """Invalid use of the programmatic GPI builder."""


class AnalysisError(GlafError):
    """Auto-parallelization analysis failed or was given invalid input."""


class CodegenError(GlafError):
    """Code generation could not produce output for the requested target."""


class FortranSyntaxError(GlafError):
    """The FORTRAN-subset lexer/parser rejected the input source."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = f" (line {line}" + (f", col {col}" if col is not None else "") + ")" if line else ""
        super().__init__(message + loc)


class FortranRuntimeError(GlafError):
    """The FORTRAN-subset interpreter hit a runtime fault (bounds, kinds...)."""


class IntegrationError(GlafError):
    """Generated code cannot be integrated with the legacy codebase."""


class InterfaceMismatchError(IntegrationError):
    """A generated subprogram's interface does not match the legacy call site."""


class ExecutionError(GlafError):
    """The GLAF IR interpreter hit a runtime fault."""


class PerfModelError(GlafError):
    """The performance simulator was given an inconsistent configuration."""


class WorkloadError(GlafError):
    """A case-study workload specification is invalid."""
