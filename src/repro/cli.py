"""Command-line interface.

``python -m repro <command>``:

* ``experiments [IDS...]`` — run registered paper experiments (default all)
  and print their tables.
* ``generate PROJECT.json --target {fortran,c,opencl,python} --variant V``
  — load a saved GLAF project and print generated code.
* ``analyze PROJECT.json`` — print per-step loop classes and
  parallelization verdicts; ``--liftability`` adds, per loop step,
  whether the vectorized executor lifts it or falls back to the
  interpreter (and why — docs/EXECUTORS.md).
* ``sloc PROJECT.json`` — per-subprogram SLOC of the generated FORTRAN.
* ``variants`` — list the Table-2 pruning variants.
* ``profile PROJECT.json`` — run the whole pipeline under the
  :mod:`repro.observe` tracer and print the per-stage timing tree, the
  metrics, and the parallelization decision log (``--json FILE`` exports
  the trace document; see ``docs/OBSERVABILITY.md``).  With ``--guarded``
  the project's case-study workload is also executed under the
  :class:`repro.glafexec.GuardedRunner`, so guard demotions show up in the
  decision log; ``--fault SITE:KIND[:FUNCTION]`` (repeatable) injects
  seeded faults first (see ``docs/ROBUSTNESS.md``).
* ``faultcheck`` — sweep every registered fault-injection site and report
  whether each fault was recovered or surfaced as a typed error.
* ``lint [--level v0|v1|v2|v3|all] [--case sarb|fun3d|all] [--json [FILE]]``
  — regenerate the case-study outputs (generated MODULE + spliced legacy
  codebase) at the chosen pruning level(s) and run the static race /
  parallel-correctness linter over the emitted text (see
  ``docs/STATIC_ANALYSIS.md``); exits 1 on any finding.  ``--selftest``
  runs the seeded clause-mutation corpus instead and fails unless the
  linter catches every mutant.
* ``fuzz [--seed N] [--count K] [--profile small|full] [--resume]
  [--json [FILE]]`` — generate K seeded legacy codebases and drive each
  through the whole pipeline (build → analyze → codegen → parse → lint →
  differential interpreter-vs-vectorized execution) under per-item
  resource budgets (``docs/FUZZING.md``); failures are bucketed by
  signature, quarantined as digest-named reproducer bundles
  (``--quarantine DIR``), and delta-debug minimized.  ``--resume``
  continues a killed campaign from its checkpoints, ``--fault
  SITE:KIND[:FUNCTION]`` injects seeded faults into every item.  Exits 1
  when any failure signature was found.
* ``runs list|show|diff|trend|gc|export|html|selftest`` — the persistent
  run ledger (``docs/RUN_LEDGER.md``): every ledgered invocation appends
  one digest-stamped ``repro.run/v1`` record to ``.repro/runs/``;
  ``list`` tabulates them, ``show [RUN]`` prints one (default: latest),
  ``diff OLD NEW`` compares wall/stages/counters/environment, ``trend``
  renders the wall-time trajectory per command, ``gc --keep N`` prunes
  old records, ``export [RUN] --prometheus|--chrome [--out FILE]``
  renders one record as a Prometheus text-exposition page or a
  Chrome/Perfetto trace, ``html [--out FILE]`` writes the self-contained
  static dashboard, and ``selftest`` smoke-tests the whole ledger round
  trip in a scratch directory (used by ``make ci``).
* ``bench record|compare|trend`` — the longitudinal benchmark layer
  (``docs/BENCHMARKING.md``): ``record`` runs the experiments N times and
  writes the next schema-versioned ``BENCH_<n>.json`` artifact (atomic
  write + sha256 content digest; per-repeat checkpoints let ``--resume``
  continue a killed recording, ``--retries N`` re-runs transiently
  failing repeats); ``compare OLD NEW [--fail-on-regress PCT]`` verifies
  artifact digests, prints the per-experiment diff and exits 1 on
  wall-time regressions beyond the threshold; ``trend`` renders the whole
  ``BENCH_*.json`` trajectory as one table.

``experiments`` and ``generate`` also accept ``--profile [FILE]``: with no
argument the observability report is printed to stderr after the normal
output; with a file argument the JSON trace is written there instead.
``experiments --guarded`` routes the case-study interpreter runs through
guarded execution with serial fallback, ``experiments --json FILE``
writes the machine-readable tables (``ExperimentResult.to_json``),
``--sentinels`` screens every interpreter assignment for NaN/Inf/overflow
(``docs/NUMERICS.md``), and ``--resume`` continues an interrupted sweep
from its per-case checkpoints.  ``experiments``, ``profile``, and
``bench record`` accept ``--executor {interpreter,vectorized,guarded}``
to choose the IR execution engine (``docs/EXECUTORS.md``): the reference
interpreter, the vectorized whole-grid array executor, or the guarded
executor that cross-checks the two with serial fallback.

Every pipeline entry point (``experiments``, ``generate``, ``profile``,
``faultcheck``, ``lint``, ``fuzz``, ``bench record``) also records
itself into the run ledger by default — ``--ledger DIR`` redirects it,
``--no-ledger`` (or ``REPRO_LEDGER=0``) disables it, and ``--sample
SECONDS`` turns on the background resource sampler whose RSS/CPU/GC
time series lands in the record (``docs/RUN_LEDGER.md``).

Any uncaught :class:`repro.errors.GlafError` prints a one-line
``error: ...`` and exits 2; only raw (non-framework) exceptions traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

_PROFILE_REPORT = object()     # sentinel: bare --profile (text report to stderr)
_JSON_STDOUT = object()        # sentinel: bare --json (JSON to stdout)


def _write_json(path: str, doc: object) -> None:
    """All CLI JSON artifacts are written atomically (temp + os.replace),
    so a killed process never leaves a truncated file behind."""
    from .numeric import atomic_write_json

    atomic_write_json(path, doc)


def _add_profile_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--profile", nargs="?", const=_PROFILE_REPORT, default=None,
        metavar="FILE",
        help="trace the run; print a report to stderr, or write a JSON "
             "trace to FILE when given",
    )


def _add_ledger_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--ledger", dest="ledger_dir", metavar="DIR", default=None,
        help="run-ledger directory (default: .repro/runs, or $REPRO_LEDGER; "
             "docs/RUN_LEDGER.md)",
    )
    sub.add_argument(
        "--no-ledger", action="store_true",
        help="do not append a run record to the ledger",
    )
    sub.add_argument(
        "--sample", type=float, default=None, metavar="SECONDS",
        help="sample RSS/CPU/GC every SECONDS into the run record "
             "(off by default)",
    )


def _add_executor_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--executor", choices=["interpreter", "vectorized", "guarded"],
        default=None,
        help="IR execution engine (docs/EXECUTORS.md): the reference "
             "interpreter, the vectorized array executor, or the guarded "
             "executor that cross-checks the two (default: interpreter, "
             "or $REPRO_EXECUTOR)",
    )


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="GLAF reproduction (ICPP 2018) command-line tools",
    )
    sub = p.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments", help="run paper experiments")
    exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    exp.add_argument("--guarded", action="store_true",
                     help="run interpreter workloads under the divergence "
                          "guard (serial fallback on mis-parallelization)")
    exp.add_argument("--sentinels", action="store_true",
                     help="screen every interpreter assignment for NaN/Inf/"
                          "overflow; abort with a typed error on the first "
                          "trip (docs/NUMERICS.md)")
    exp.add_argument("--resume", action="store_true",
                     help="skip experiments with valid checkpoints from an "
                          "interrupted run")
    exp.add_argument("--checkpoint", metavar="DIR", default=None,
                     help="checkpoint directory (default: "
                          ".repro_experiments.ckpt)")
    exp.add_argument("--json", dest="json_path", metavar="FILE",
                     help="also write the result tables as JSON to FILE")
    _add_executor_flag(exp)
    _add_profile_flag(exp)
    _add_ledger_flags(exp)

    gen = sub.add_parser("generate", help="generate code from a project file")
    gen.add_argument("project", help="path to a saved GLAF project JSON")
    gen.add_argument("--target", choices=["fortran", "c", "opencl", "python"],
                     default="fortran")
    gen.add_argument("--variant", default="GLAF-parallel v0",
                     help='pruning variant (e.g. "GLAF serial", "GLAF-parallel v3")')
    gen.add_argument("--threads", type=int, default=4)
    _add_profile_flag(gen)
    _add_ledger_flags(gen)

    ana = sub.add_parser("analyze", help="print loop classes and verdicts")
    ana.add_argument("project")
    ana.add_argument("--liftability", action="store_true",
                     help="also print, per loop step, whether the "
                          "vectorized executor can lift it and the "
                          "refusal reason when it cannot "
                          "(docs/EXECUTORS.md)")
    ana.add_argument("--ranges", action="store_true",
                     help="run interval range propagation and the static "
                          "bounds checker over the generated FORTRAN and "
                          "print per-unit subscript classifications "
                          "(docs/STATIC_ANALYSIS.md)")

    fuzz = sub.add_parser(
        "fuzz",
        help="generate seeded legacy codebases and differentially fuzz "
             "the whole pipeline (docs/FUZZING.md)",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default 0); same seed + same "
                           "profile reproduces the same campaign")
    fuzz.add_argument("--count", type=int, default=25,
                      help="number of generated codebases (default 25)")
    fuzz.add_argument("--profile", dest="fuzz_profile",
                      choices=["small", "full"], default="small",
                      help="size/feature profile: 'small' for CI, "
                           "'full' for nightly (default: small)")
    fuzz.add_argument("--resume", action="store_true",
                      help="continue a killed campaign from its per-item "
                           "checkpoints")
    fuzz.add_argument("--checkpoint", metavar="DIR", default=None,
                      help="checkpoint directory (default: "
                           ".repro_fuzz.ckpt)")
    fuzz.add_argument("--quarantine", metavar="DIR", default=None,
                      help="reproducer-bundle directory (default: "
                           "fuzz_quarantine)")
    fuzz.add_argument("--json", dest="json_path", nargs="?",
                      const=_JSON_STDOUT, default=None, metavar="FILE",
                      help="emit the campaign summary as JSON (to stdout, "
                           "or to FILE when given)")
    fuzz.add_argument("--fault", action="append", default=[],
                      metavar="SITE:KIND[:FUNCTION]",
                      help="inject a seeded fault into every item "
                           "(repeatable); used to verify the campaign "
                           "catches and quarantines known-bad pipelines")
    fuzz.add_argument("--fault-seed", type=int, default=0,
                      help="seed for the injected fault plans (default 0)")
    fuzz.add_argument("--crosscheck", action="store_true",
                      help="cross-check the static bounds checker's "
                           "proven-in-bounds claims against runtime "
                           "out-of-bounds trips (fuzzer as soundness "
                           "oracle; docs/FUZZING.md)")
    _add_ledger_flags(fuzz)

    batch = sub.add_parser(
        "batch",
        help="compile a corpus of projects / legacy sources in "
             "crash-isolated parallel workers (docs/BATCH.md)",
    )
    batch.add_argument("inputs", nargs="+", metavar="INPUT",
                       help="corpus inputs: project JSON files, legacy "
                            "FORTRAN files, directories of either, "
                            "fuzz:SEED:COUNT generator specs, or "
                            "poison:KIND[:N] fault directives "
                            "(crash/hang/oom)")
    batch.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1: serial, "
                            "in-process)")
    batch.add_argument("--variant", default="GLAF-parallel v0",
                       help="pruning variant to plan and generate for")
    batch.add_argument("--target",
                       choices=["fortran", "c", "opencl", "python"],
                       default="fortran",
                       help="codegen back-end (default: fortran)")
    batch.add_argument("--profile", dest="fuzz_profile",
                       choices=["small", "full"], default="small",
                       help="size profile for fuzz:SEED:COUNT inputs "
                            "(default: small)")
    batch.add_argument("--timeout", type=float, default=60.0,
                       help="parent-side per-item deadline in seconds; a "
                            "worker past it is SIGKILLed (default 60)")
    batch.add_argument("--retries", type=int, default=1,
                       help="worker re-spawns before an item is "
                            "quarantined as poison (default 1)")
    batch.add_argument("--seed", type=int, default=0,
                       help="retry-backoff jitter seed (default 0)")
    batch.add_argument("--max-wall", type=float, default=30.0,
                       metavar="SECONDS", dest="max_wall",
                       help="in-worker wall-clock budget per item "
                            "(default 30)")
    batch.add_argument("--max-iterations", type=int, default=2_000_000,
                       dest="max_iterations",
                       help="in-worker loop-iteration budget per item")
    batch.add_argument("--max-memory", type=int, default=2048,
                       metavar="MB", dest="max_memory",
                       help="per-worker address-space budget in MB "
                            "(RLIMIT_AS; default 2048; 0 disables)")
    batch.add_argument("--cache", metavar="DIR", default=None,
                       help="content-addressed artifact cache directory "
                            "(default: .repro/batch-cache)")
    batch.add_argument("--no-cache", action="store_true",
                       help="compile every item even when cached")
    batch.add_argument("--cache-max-entries", type=int, default=0,
                       metavar="N",
                       help="evict oldest cache entries beyond N "
                            "(default 0: unbounded)")
    batch.add_argument("--resume", action="store_true",
                       help="continue a killed batch from its per-item "
                            "checkpoints")
    batch.add_argument("--checkpoint", metavar="DIR", default=None,
                       help="checkpoint directory (default: "
                            ".repro_batch.ckpt)")
    batch.add_argument("--quarantine", metavar="DIR", default=None,
                       help="poison-bundle directory (default: "
                            "batch_quarantine)")
    batch.add_argument("--manifest", metavar="FILE", default=None,
                       help="write the digest-stamped aggregate manifest "
                            "JSON to FILE")
    batch.add_argument("--json", dest="json_path", nargs="?",
                       const=_JSON_STDOUT, default=None, metavar="FILE",
                       help="emit the run summary as JSON (to stdout, or "
                            "to FILE when given)")
    _add_ledger_flags(batch)

    sloc = sub.add_parser("sloc", help="SLOC of the generated FORTRAN")
    sloc.add_argument("project")

    sub.add_parser("variants", help="list Table-2 variants")

    prof = sub.add_parser(
        "profile",
        help="trace the pipeline stages for a project and explain decisions",
    )
    prof.add_argument("project", help="path to a saved GLAF project JSON")
    prof.add_argument("--variant", default="GLAF-parallel v0",
                      help="pruning variant to plan and generate for")
    prof.add_argument("--threads", type=int, default=4)
    prof.add_argument("--target",
                      choices=["fortran", "c", "opencl", "python", "all"],
                      default="fortran",
                      help="back-end(s) to run through codegen")
    prof.add_argument("--json", dest="json_path", metavar="FILE",
                      help="also write the JSON trace document to FILE")
    prof.add_argument("--chrome", dest="chrome_path", metavar="FILE",
                      help="also write the trace in Chrome trace-event "
                           "format (open in chrome://tracing or Perfetto)")
    prof.add_argument("--guarded", action="store_true",
                      help="also execute the project's case-study workload "
                           "under the divergence guard")
    prof.add_argument("--fault", action="append", default=[],
                      metavar="SITE:KIND[:FUNCTION]",
                      help="inject a fault before running (repeatable); "
                           "see 'repro faultcheck' for the site registry")
    prof.add_argument("--fault-seed", type=int, default=0,
                      help="seed for the injected fault plan (default 0)")
    prof.add_argument("--sentinels", action="store_true",
                      help="screen every interpreter assignment for NaN/Inf/"
                           "overflow during the profiled run")
    _add_executor_flag(prof)
    _add_ledger_flags(prof)

    fc = sub.add_parser(
        "faultcheck",
        help="sweep every fault-injection site; verify recover/surface",
    )
    fc.add_argument("--seed", type=int, default=0,
                    help="seed for the deterministic fault plans (default 0)")
    fc.add_argument("--json", dest="json_path", metavar="FILE",
                    help="also write the report as JSON to FILE")
    _add_ledger_flags(fc)

    lint = sub.add_parser(
        "lint",
        help="static race / parallel-correctness linter over the emitted "
             "case-study FORTRAN (docs/STATIC_ANALYSIS.md)",
    )
    lint.add_argument("--level", choices=["v0", "v1", "v2", "v3", "all"],
                      default="all",
                      help="pruning level(s) to regenerate and lint "
                           "(default: all)")
    lint.add_argument("--case", choices=["sarb", "fun3d", "all"],
                      default="all",
                      help="case study to lint (default: both)")
    lint.add_argument("--json", dest="json_path", nargs="?",
                      const=_JSON_STDOUT, default=None, metavar="FILE",
                      help="emit the report as JSON (to stdout, or to FILE "
                           "when given)")
    lint.add_argument("--dataflow", action="store_true",
                      help="also run the interprocedural dataflow pass "
                           "(use-before-def, dead-store, possible-oob, "
                           "intent-violation, const-false-guard)")
    lint.add_argument("--selftest", action="store_true",
                      help="run the seeded clause-mutation corpus and "
                           "verify the linter catches every mutant")
    lint.add_argument("--seed", type=int, default=0,
                      help="seed for the --selftest fault plans (default 0)")
    _add_ledger_flags(lint)

    bench = sub.add_parser(
        "bench",
        help="record, compare, and trend BENCH_<n>.json benchmark artifacts",
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)

    rec = bsub.add_parser(
        "record", help="run the experiments N times, write the next artifact")
    rec.add_argument("ids", nargs="*",
                     help="experiment ids to record (default: all)")
    rec.add_argument("--repeats", type=int, default=3,
                     help="repeats per experiment (default 3)")
    rec.add_argument("--out", metavar="FILE",
                     help="artifact path (default: next BENCH_<n>.json here)")
    rec.add_argument("--resume", action="store_true",
                     help="skip repeats with valid checkpoints from an "
                          "interrupted recording")
    rec.add_argument("--checkpoint", metavar="DIR", default=None,
                     help="checkpoint directory (default: <out>.ckpt)")
    rec.add_argument("--retries", type=int, default=0,
                     help="retry a repeat that fails with a transient "
                          "ExecutionError up to N times (default 0)")
    _add_executor_flag(rec)
    _add_ledger_flags(rec)

    cmp_ = bsub.add_parser(
        "compare", help="diff two artifacts; gate on wall-time regressions")
    cmp_.add_argument("old", help="baseline BENCH_*.json")
    cmp_.add_argument("new", help="candidate BENCH_*.json")
    cmp_.add_argument("--fail-on-regress", type=float, default=None,
                      metavar="PCT",
                      help="exit 1 if any experiment's wall-time median "
                           "regressed by more than PCT percent")

    trend = bsub.add_parser(
        "trend", help="summarize every BENCH_*.json into one trajectory table")
    trend.add_argument("--dir", dest="bench_dir", default=".",
                       help="directory holding the artifacts (default: .)")

    runs = sub.add_parser(
        "runs",
        help="inspect and export the persistent run ledger "
             "(docs/RUN_LEDGER.md)",
    )
    rsub = runs.add_subparsers(dest="runs_command", required=True)

    def _runs_sub(name: str, help_: str) -> argparse.ArgumentParser:
        rp = rsub.add_parser(name, help=help_)
        rp.add_argument("--dir", dest="runs_dir", metavar="DIR", default=None,
                        help="ledger directory (default: .repro/runs, or "
                             "$REPRO_LEDGER)")
        return rp

    _runs_sub("list", "tabulate every recorded run")
    rshow = _runs_sub("show", "print one run record (default: latest)")
    rshow.add_argument("run", nargs="?", default=None,
                       help="run id (e.g. run-000003) or 'latest'")
    rdiff = _runs_sub("diff", "compare two run records")
    rdiff.add_argument("old", help="baseline run id")
    rdiff.add_argument("new", help="candidate run id (or 'latest')")
    _runs_sub("trend", "wall-time trajectory per command across the ledger")
    rgc = _runs_sub("gc", "prune old run records (and the quarantine)")
    rgc.add_argument("--keep", type=int, default=20,
                     help="newest records to keep (default 20; 0 drops all)")
    rexp = _runs_sub("export", "render one run record for external tools")
    rexp.add_argument("run", nargs="?", default=None,
                      help="run id to export (default: latest)")
    fmt = rexp.add_mutually_exclusive_group(required=True)
    fmt.add_argument("--prometheus", action="store_true",
                     help="Prometheus text exposition of the metrics "
                          "snapshot")
    fmt.add_argument("--chrome", action="store_true",
                     help="Chrome/Perfetto trace-event JSON (spans + "
                          "counters + decision instants)")
    rexp.add_argument("--out", metavar="FILE", default=None,
                      help="write to FILE instead of stdout")
    rhtml = _runs_sub("html", "write the self-contained HTML dashboard")
    rhtml.add_argument("--out", metavar="FILE", default="runs.html",
                       help="output path (default: runs.html)")
    rhtml.add_argument("--last", type=int, default=None, metavar="N",
                       help="only the newest N runs (default: all)")
    rsub.add_parser(
        "selftest",
        help="smoke-test the ledger round trip (append, reconcile, "
             "quarantine, every exporter) in a scratch directory")
    return p


def _load_program(path: str):
    from .core.project import load_project
    from .core.validate import validate_program

    program = load_project(path)
    # collect=True: a malformed project reports every structural error in
    # one DiagnosticBundle (rendered line by line in main()) instead of
    # stopping at the first.
    validate_program(program, collect=True)
    return program


def _cmd_experiments(args) -> int:
    from contextlib import ExitStack

    from .bench import EXPERIMENTS, run_and_format
    from .bench.harness import ExperimentResult, format_table
    from .glafexec import guarded, using_executor
    from .numeric import CheckpointStore, sentinels

    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}; "
              f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    store = CheckpointStore(getattr(args, "checkpoint", None)
                            or ".repro_experiments.ckpt")
    resume = bool(getattr(args, "resume", False))
    if not resume:
        store.clear()          # stale checkpoints must not skip fresh work
    results = []
    resumed = 0
    with ExitStack() as stack:
        stack.enter_context(
            guarded(enabled=bool(getattr(args, "guarded", False))))
        if getattr(args, "executor", None):
            stack.enter_context(using_executor(args.executor))
        if getattr(args, "sentinels", False):
            stack.enter_context(sentinels())
        for exp_id in ids:
            done = (store.load(f"exp-{exp_id}", discard_corrupt=True)
                    if resume else None)
            if done is not None:
                result = ExperimentResult.from_json(done["result"])
                resumed += 1
                print(format_table(result))
            else:
                result, text = run_and_format(EXPERIMENTS[exp_id])
                store.save(f"exp-{exp_id}", {"result": result.to_json()})
                print(text)
            results.append(result)
            print()
    if resumed:
        print(f"resumed {resumed} experiment(s) from checkpoint",
              file=sys.stderr)
    if getattr(args, "json_path", None):
        _write_json(args.json_path,
                    {"schema": "repro.bench.experiments/v1",
                     "experiments": [r.to_json() for r in results]})
        print(f"tables written to {args.json_path}", file=sys.stderr)
    store.clear()              # full sweep done: checkpoints are spent
    return 0


def _cmd_generate(args) -> int:
    from .codegen import (
        generate_c_source,
        generate_fortran_module,
        generate_opencl,
        generate_python_source,
    )
    from .optimize import make_plan

    program = _load_program(args.project)
    plan = make_plan(program, args.variant, threads=args.threads)
    if args.target == "fortran":
        print(generate_fortran_module(plan), end="")
    elif args.target == "c":
        print(generate_c_source(plan), end="")
    elif args.target == "python":
        print(generate_python_source(plan), end="")
    else:
        out = generate_opencl(plan)
        print(out.kernels_source, end="")
        print("/* launch plan:")
        for launch in out.launch_plan:
            print(f"   {launch.kind:6s} {launch.name}")
        print("*/")
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import analyze_program, classify_step

    program = _load_program(args.project)
    plan = analyze_program(program)
    lift = {}
    if getattr(args, "liftability", False):
        from .glafexec import liftability_report

        lift = liftability_report(program)
    for fn in program.functions():
        print(f"{'SUBROUTINE' if fn.is_subroutine else 'FUNCTION'} {fn.name}")
        for i, step in enumerate(fn.steps):
            sp = plan.get(fn.name, i)
            flags = []
            if sp.reductions:
                flags.append("reduction(" + ",".join(sp.reductions) + ")")
            if sp.atomic:
                flags.append("atomic(" + ",".join(sp.atomic) + ")")
            if sp.collapse > 1:
                flags.append(f"collapse({sp.collapse})")
            print(f"  step {i} {step.name:24s} class={classify_step(step).value:15s}"
                  f" parallel={'yes' if sp.parallel else 'no ':3s} "
                  + " ".join(flags))
            if not sp.parallel and sp.reasons:
                print(f"       reason: {sp.reasons[0]}")
            if (fn.name, i) in lift:
                reason = lift[(fn.name, i)]
                print("       lift: "
                      + ("vectorized" if not reason
                         else f"interpreter fallback ({reason})"))
    if getattr(args, "ranges", False):
        from .codegen import generate_fortran_module
        from .fortranlib.parser import parse_source
        from .lint.dataflow import analyze_batch_ranges
        from .optimize import make_plan

        src = generate_fortran_module(make_plan(program, "GLAF-parallel v0"))
        parsed = {"generated.f90": parse_source(src)}
        print("ranges (generated FORTRAN, interval analysis):")
        for ur in analyze_batch_ranges(parsed):
            s = ur.summary
            print(f"  {ur.unit}: subscripts proven={s.proven} "
                  f"possible-oob={s.possible} unknown={s.unknown}")
            for issue in s.issues:
                print(f"       oob: {issue.detail} (line {issue.line})")
            for n, iv in sorted(s.exit_env.items()):
                print(f"       {n} in {iv!r} at exit")
    return 0


def _cmd_sloc(args) -> int:
    from .codegen import generate_fortran_module, module_unit_slocs
    from .optimize import make_plan

    program = _load_program(args.project)
    src = generate_fortran_module(make_plan(program, "GLAF-parallel v0"))
    for name, n in module_unit_slocs(src).items():
        print(f"{name:32s} {n:6d}")
    return 0


def _cmd_variants(args) -> int:
    from .optimize import VARIANTS

    for v in VARIANTS:
        print(f"{v.name:18s} {v.description}")
    return 0


def _cmd_profile(args) -> int:
    from . import observe
    from .codegen import (
        generate_c_source,
        generate_fortran_module,
        generate_opencl,
        generate_python_source,
    )
    from .fortranlib.parser import parse_source
    from .optimize import make_plan

    from contextlib import ExitStack

    from .robust import FaultPlan, FaultSpec, fault_injection

    specs = [FaultSpec.parse(text) for text in args.fault]
    targets = (["fortran", "c", "opencl", "python"]
               if args.target == "all" else [args.target])
    with observe.observing() as obs, ExitStack() as stack:
        if specs:
            stack.enter_context(
                fault_injection(FaultPlan(specs, seed=args.fault_seed)))
        if getattr(args, "sentinels", False):
            from .numeric import sentinels

            stack.enter_context(sentinels())
        with observe.get_tracer().span("pipeline", project=args.project,
                                       variant=args.variant):
            program = _load_program(args.project)
            if args.guarded:
                # Execute the case-study workload under the divergence
                # guard first, so an injected mis-parallelization is both
                # caused and recovered inside this one profiled run.
                from .robust.scenarios import scenario_for

                scenario_for(program.name).run_guarded()
            if getattr(args, "executor", None):
                # Run the case-study workload under the chosen executor so
                # exec.run.* spans and executor:fallback decisions land in
                # this profile (docs/EXECUTORS.md).
                from .robust.scenarios import scenario_for

                scenario_for(program.name).run_executor(args.executor)
            plan = make_plan(program, args.variant, threads=args.threads)
            for target in targets:
                if target == "fortran":
                    # Round-trip the generated module through the FORTRAN
                    # front end so the lexer/parser stages show up too.
                    parse_source(generate_fortran_module(plan))
                elif target == "c":
                    generate_c_source(plan)
                elif target == "python":
                    generate_python_source(plan)
                else:
                    generate_opencl(plan)
    print(obs.report(title=f"repro profile: {args.project} "
                           f"(variant {args.variant!r})"))
    if args.json_path:
        _write_json(args.json_path,
                    obs.to_json(project=args.project, variant=args.variant,
                                targets=targets))
        print(f"\ntrace written to {args.json_path}", file=sys.stderr)
    if args.chrome_path:
        _write_json(args.chrome_path,
                    obs.to_chrome_trace(project=args.project,
                                        variant=args.variant))
        print(f"chrome trace written to {args.chrome_path} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)",
              file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    from .bench import record

    if args.bench_command == "record":
        from contextlib import ExitStack

        from .glafexec import using_executor
        from .numeric import CheckpointStore, RetryPolicy

        out = args.out or record.next_bench_path()
        store = CheckpointStore(args.checkpoint or f"{out}.ckpt")
        if not args.resume:
            store.clear()      # fresh recording: stale checkpoints are void
        retry = (RetryPolicy(retries=args.retries)
                 if args.retries > 0 else None)
        with ExitStack() as stack:
            if getattr(args, "executor", None):
                stack.enter_context(using_executor(args.executor))
            doc = record.record_benchmark(ids=args.ids or None,
                                          repeats=args.repeats,
                                          checkpoints=store, retry=retry)
        path = record.write_benchmark(doc, out)
        store.clear()          # artifact written: checkpoints are spent
        n_exp = len(doc["experiments"])
        resumed = doc["meta"]["resumed"]
        note = f", {resumed} repeat(s) resumed from checkpoint" if resumed else ""
        print(f"recorded {n_exp} experiment(s) x {args.repeats} repeat(s)"
              f"{note} -> {path}")
        return 0

    if args.bench_command == "compare":
        import os

        comparison = record.compare_benchmarks(
            record.load_bench(args.old),
            record.load_bench(args.new),
            fail_on_regress=args.fail_on_regress,
            old_label=os.path.basename(args.old),
            new_label=os.path.basename(args.new),
        )
        print(comparison.render())
        return 0 if comparison.ok else 1

    entries = [(p.name, record.load_bench(p))
               for p in record.bench_files(args.bench_dir)]
    print(record.render_trend(entries))
    return 0


def _cmd_lint(args) -> int:
    from .lint import LEVELS, lint_levels, run_mutation_selftest

    if args.selftest:
        results = run_mutation_selftest(seed=args.seed)
        width = max(len(r.mutant.id) for r in results)
        for r in results:
            mark = "caught" if r.ok else "MISSED"
            rules = ", ".join(r.rules) or "-"
            print(f"  {r.mutant.id:<{width}}  {r.mutant.kind:<18}  "
                  f"{mark:<6}  {rules}")
        n_ok = sum(r.ok for r in results)
        print(f"mutation self-test: {n_ok}/{len(results)} mutant(s) caught")
        return 0 if n_ok == len(results) else 1

    levels = sorted(LEVELS) if args.level == "all" else [args.level]
    cases = ("sarb", "fun3d") if args.case == "all" else (args.case,)
    report = lint_levels(levels, cases, dataflow=args.dataflow)
    if args.json_path is not None:
        doc = report.to_json()
        if args.json_path is _JSON_STDOUT:
            json.dump(doc, sys.stdout, indent=2)
            print()
        else:
            _write_json(args.json_path, doc)
            print(f"report written to {args.json_path}", file=sys.stderr)
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_faultcheck(args) -> int:
    from .robust.faultcheck import run_faultcheck

    report = run_faultcheck(seed=args.seed)
    print(report.render())
    if args.json_path:
        _write_json(args.json_path, report.to_json())
        print(f"report written to {args.json_path}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    from .fuzz import DEFAULT_QUARANTINE_DIR, run_campaign
    from .robust import FaultSpec

    faults = tuple(FaultSpec.parse(text) for text in args.fault)
    summary = run_campaign(
        args.seed, args.count, args.fuzz_profile,
        resume=args.resume,
        checkpoint_dir=args.checkpoint,
        quarantine_dir=args.quarantine,
        faults=faults,
        fault_seed=args.fault_seed,
        crosscheck=args.crosscheck,
    )
    doc = summary.to_json()
    if args.json_path is not None:
        if args.json_path is _JSON_STDOUT:
            json.dump(doc, sys.stdout, indent=2)
            print()
        else:
            _write_json(args.json_path, doc)
            print(f"summary written to {args.json_path}", file=sys.stderr)
    if args.json_path is not _JSON_STDOUT:
        stats = doc["stats"]
        print(f"fuzz campaign: seed {summary.seed}, "
              f"{summary.count} codebase(s), profile "
              f"{summary.profile.name}")
        print(f"  clean {stats['clean']}  failed {stats['failed']}  "
              f"units {stats['units_run']}  "
              f"vectorized fallbacks {stats['fallbacks']}")
        if args.crosscheck:
            print(f"  crosscheck: {stats['claims_proven']} proven-in-bounds "
                  f"unit claim(s), {stats['claims_refuted']} refuted by "
                  "the runtime")
        if summary.resumed:
            print(f"  resumed {summary.resumed} item(s) from checkpoint",
                  file=sys.stderr)
        for key in sorted(summary.buckets):
            print(f"  signature {key}: {summary.buckets[key]} item(s)")
        qdir = args.quarantine or DEFAULT_QUARANTINE_DIR
        for q in summary.quarantined:
            print(f"  quarantined {q['signature']} -> {qdir}/{q['bundle']}")
    return 1 if summary.failed else 0


def _cmd_batch(args) -> int:
    from .batch import (
        DEFAULT_CACHE_DIR,
        DEFAULT_CHECKPOINT_DIR,
        DEFAULT_QUARANTINE_DIR,
        BatchOptions,
        ingest_corpus,
        run_batch,
        write_manifest,
    )

    items = ingest_corpus(args.inputs, fuzz_profile=args.fuzz_profile)
    options = BatchOptions(
        variant=args.variant,
        target=args.target,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        seed=args.seed,
        max_loop_iterations=args.max_iterations or None,
        max_wall_seconds=args.max_wall or None,
        max_memory_mb=args.max_memory or None,
        fuzz_profile=args.fuzz_profile,
        cache_dir=(None if args.no_cache
                   else args.cache or DEFAULT_CACHE_DIR),
        cache_max_entries=args.cache_max_entries,
        checkpoint_dir=args.checkpoint or DEFAULT_CHECKPOINT_DIR,
        resume=args.resume,
        quarantine_dir=args.quarantine or DEFAULT_QUARANTINE_DIR,
    )
    result = run_batch(items, options)
    if args.manifest:
        write_manifest(args.manifest, result.manifest)
        print(f"manifest written to {args.manifest}", file=sys.stderr)
    doc = {"manifest_sha256": result.manifest["content_sha256"],
           "stats": result.stats,
           "items": [o.to_json() for o in result.outcomes]}
    if args.json_path is not None:
        if args.json_path is _JSON_STDOUT:
            json.dump(doc, sys.stdout, indent=2)
            print()
        else:
            _write_json(args.json_path, doc)
            print(f"summary written to {args.json_path}", file=sys.stderr)
    if args.json_path is not _JSON_STDOUT:
        s = result.stats
        print(f"batch: {s['items']} item(s), {s['mode']} "
              f"(jobs {s['jobs']}), {s['wall_s']:.2f}s")
        print(f"  ok {s['ok']}  failed {s['failed']}  "
              f"quarantined {s['quarantined']}"
              + (f"  resumed {s['resumed']}" if s['resumed'] else ""))
        c = s["cache"]
        if c["enabled"]:
            print(f"  cache: {c['hits']} hit(s), {c['misses']} miss(es)"
                  + (f", {c['corrupt']} corrupt entry(ies) discarded"
                     if c['corrupt'] else "")
                  + (f", {c['evictions']} evicted"
                     if c['evictions'] else ""))
        for o in result.outcomes:
            if o.status == "quarantined":
                print(f"  quarantined {o.id} -> "
                      f"{options.quarantine_dir}/{o.bundle}")
            elif o.status == "failed":
                first = o.failures[0] if o.failures else {}
                print(f"  failed {o.id}: [{first.get('stage', '?')}] "
                      f"{first.get('message', '')}")
        print(f"  manifest sha256 {result.manifest['content_sha256']}")
    return 0 if result.ok else 1


def _cmd_runs(args) -> int:
    from . import observe

    if args.runs_command == "selftest":
        return _runs_selftest()

    directory = (observe.ledger_dir_from_env(args.runs_dir)
                 or observe.DEFAULT_LEDGER_DIR)
    ledger = observe.RunLedger(directory)

    if args.runs_command == "list":
        print(observe.render_runs_table(ledger.entries()))
        return 0
    if args.runs_command == "show":
        print(observe.render_run(ledger.resolve(args.run)))
        return 0
    if args.runs_command == "diff":
        print(observe.diff_runs(ledger.resolve(args.old),
                                ledger.resolve(args.new)))
        return 0
    if args.runs_command == "trend":
        records = [ledger.load(e["id"]) for e in ledger.entries()]
        print(observe.render_runs_trend(records))
        return 0
    if args.runs_command == "gc":
        removed = ledger.gc(args.keep)
        print(f"removed {len(removed)} run record(s), kept "
              f"{len(ledger.entries())} in {ledger.dir}")
        return 0
    if args.runs_command == "export":
        record = ledger.resolve(args.run)
        if args.prometheus:
            text = observe.to_prometheus(
                record.get("metrics", {}),
                labels={"run": record["id"],
                        "command": record.get("command", "?")})
            observe.parse_prometheus(text)   # what we emit must parse
            if args.out:
                from .numeric import atomic_write_text

                atomic_write_text(args.out, text)
                print(f"prometheus exposition written to {args.out}",
                      file=sys.stderr)
            else:
                sys.stdout.write(text)
        else:
            doc = observe.record_to_chrome(record)
            if args.out:
                _write_json(args.out, doc)
                print(f"chrome trace written to {args.out} (open in "
                      f"chrome://tracing or https://ui.perfetto.dev)",
                      file=sys.stderr)
            else:
                json.dump(doc, sys.stdout, indent=2)
                print()
        return 0
    # html
    entries = ledger.entries()
    if args.last:
        entries = entries[-args.last:]
    records = [ledger.load(e["id"]) for e in entries]
    from .numeric import atomic_write_text

    atomic_write_text(args.out, observe.render_runs_html(records))
    print(f"dashboard with {len(records)} run(s) written to {args.out}")
    return 0


def _runs_selftest() -> int:
    """End-to-end ledger smoke test in a scratch directory: append three
    observed runs, reconcile a stale index, quarantine a corrupt record,
    and push every exporter through its own validator."""
    import tempfile
    from pathlib import Path

    from . import observe
    from .errors import GlafError

    def check(name: str, ok: bool) -> None:
        print(f"  {name:<28s} {'ok' if ok else 'FAIL'}")
        if not ok:
            raise GlafError(f"runs selftest: {name} failed")

    with tempfile.TemporaryDirectory(prefix="repro-runs-selftest-") as tmp:
        ledger = observe.RunLedger(tmp)
        for i in range(3):
            with observe.observed() as obs:
                with obs.tracer.span("selftest.stage", round=i):
                    obs.metrics.counter("selftest.items").inc(i + 1)
                    obs.metrics.histogram("selftest.ms").observe(1.0 + i)
                obs.decisions.record("run:record", "selftest", i,
                                     "ledger", "opened")
            ledger.append(observe.build_record(
                command="selftest", argv=["runs", "selftest"],
                wall_s=0.001 * (i + 1), observation=obs,
                samples=[{"t": 0.0, "rss_mb": 1.0, "cpu_s": 0.0,
                          "gc_gen0": 0}]))
        check("append x3", len(ledger.entries()) == 3)
        check("load latest",
              ledger.resolve("latest")["outcome"]["status"] == "ok")

        # A crash between record write and index write leaves the index
        # stale; entries() must heal it from the directory.
        ledger.index_path.unlink()
        check("reconcile stale index", len(ledger.entries()) == 3)

        # A torn write must be quarantined, never listed.
        bad = Path(tmp) / "run-000099.json"
        bad.write_text('{"schema": "repro.run/v1", "truncat')
        check("quarantine corrupt record",
              len(ledger.entries()) == 3
              and (ledger.quarantine_dir / bad.name).exists())

        record = ledger.resolve("latest")
        page = observe.to_prometheus(record["metrics"],
                                     labels={"run": record["id"]})
        check("prometheus parses",
              "repro_selftest_items_total" in observe.parse_prometheus(page))
        doc = observe.record_to_chrome(record)
        phases = {e["ph"] for e in doc["traceEvents"]}
        check("chrome spans+counters+instants",
              {"X", "C", "i"} <= phases)
        html = observe.render_runs_html(
            [ledger.load(e["id"]) for e in ledger.entries()])
        check("html dashboard", "<svg" in html and "run-000003" in html)
        check("gc keeps newest", ledger.gc(1) == ["run-000001", "run-000002"]
              and ledger.latest_id() == "run-000003")
    print("runs selftest: ok")
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "sloc": _cmd_sloc,
    "variants": _cmd_variants,
    "profile": _cmd_profile,
    "faultcheck": _cmd_faultcheck,
    "lint": _cmd_lint,
    "fuzz": _cmd_fuzz,
    "batch": _cmd_batch,
    "bench": _cmd_bench,
    "runs": _cmd_runs,
}

#: Commands that append a ``repro.run/v1`` record by default.  ``bench``
#: is ledgered only for ``bench record`` (compare/trend are read-only).
_LEDGERED = ("experiments", "generate", "profile", "faultcheck", "lint",
             "fuzz", "batch", "bench")


def _ledgered_command(args) -> str | None:
    """The ledger's command name for this invocation, or ``None``."""
    if args.command not in _LEDGERED:
        return None
    if args.command == "bench":
        return ("bench record" if getattr(args, "bench_command", None)
                == "record" else None)
    return args.command


def _checkpoint_linkage(args) -> dict | None:
    """Checkpoint/resume linkage for the run record, when the command
    has checkpointing at all (experiments, fuzz, bench record)."""
    if not hasattr(args, "resume"):
        return None
    return {"dir": getattr(args, "checkpoint", None),
            "resume": bool(args.resume)}


def main(argv: Sequence[str] | None = None) -> int:
    from . import observe
    from .errors import DiagnosticBundle, GlafError

    args = build_parser().parse_args(argv)
    cmd = _COMMANDS[args.command]

    def run() -> int:
        try:
            return cmd(args)
        except FileNotFoundError as e:
            print(f"error: no such file: {e.filename or e}", file=sys.stderr)
            return 2
        except KeyError as e:
            # Unknown variant / function name surfaced by the pipeline.
            print(f"error: {e.args[0] if e.args else e}", file=sys.stderr)
            return 2
        except DiagnosticBundle as e:
            # Collected diagnostics (recovering parser, collect-mode
            # validator): one line per problem, then the summary.
            for diag in e.diagnostics:
                print(f"error: {diag}", file=sys.stderr)
            print(f"error: {e}", file=sys.stderr)
            return 2
        except GlafError as e:
            # Framework errors are user-facing: one line, exit 2, no
            # traceback.  Raw exceptions still propagate (they are bugs).
            print(f"error: {e}", file=sys.stderr)
            return 2

    profile = getattr(args, "profile", None)
    ledger_command = _ledgered_command(args)
    ledger_dir = None
    if ledger_command is not None and not getattr(args, "no_ledger", False):
        ledger_dir = observe.ledger_dir_from_env(
            getattr(args, "ledger_dir", None))
    sample_interval = getattr(args, "sample", None)
    if profile is None and ledger_dir is None and not sample_interval:
        return run()

    # One observation covers the whole invocation: the profile report,
    # the resource sampler, and the persisted run record all read from
    # it (commands that observe themselves join it via observing()).
    import time

    started = time.time()
    t0 = time.perf_counter()
    sampler = None
    rc, status, failure = 0, "ok", None
    with observe.observed() as obs:
        if ledger_dir is not None:
            obs.decisions.record("run:record", "cli", 0, ledger_command,
                                 "opened", ledger=ledger_dir)
        if sample_interval:
            try:
                sampler = observe.ResourceSampler(
                    interval=sample_interval).start()
            except ValueError as e:
                print(f"error: {e}", file=sys.stderr)
                return 2
        try:
            rc = run()
            status = "ok" if rc == 0 else "failed"
        except BaseException as e:           # recorded, then re-raised
            rc, status, failure = 1, "crashed", e
        finally:
            if sampler is not None:
                sampler.stop()
    wall_s = time.perf_counter() - t0

    if profile is _PROFILE_REPORT:
        print(obs.report(title=f"profile: repro {args.command}"),
              file=sys.stderr)
    elif profile is not None:
        _write_json(profile, obs.to_json(command=args.command))
        print(f"trace written to {profile}", file=sys.stderr)

    if ledger_dir is not None:
        try:
            record = observe.build_record(
                command=ledger_command,
                argv=list(argv) if argv is not None else sys.argv[1:],
                exit_code=rc, status=status, wall_s=wall_s,
                observation=obs,
                samples=sampler.series() if sampler is not None else None,
                checkpoint=_checkpoint_linkage(args),
                started=started,
                executor=getattr(args, "executor", None))
            stamped = observe.RunLedger(ledger_dir).append(record)
            print(f"run ledger: appended {stamped['id']} to {ledger_dir}",
                  file=sys.stderr)
        except OSError as e:
            # A read-only or full filesystem must not fail the run.
            print(f"run ledger: could not append to {ledger_dir} ({e})",
                  file=sys.stderr)
    if failure is not None:
        raise failure
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
