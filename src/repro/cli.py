"""Command-line interface.

``python -m repro <command>``:

* ``experiments [IDS...]`` — run registered paper experiments (default all)
  and print their tables.
* ``generate PROJECT.json --target {fortran,c,opencl,python} --variant V``
  — load a saved GLAF project and print generated code.
* ``analyze PROJECT.json`` — print per-step loop classes and
  parallelization verdicts.
* ``sloc PROJECT.json`` — per-subprogram SLOC of the generated FORTRAN.
* ``variants`` — list the Table-2 pruning variants.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="GLAF reproduction (ICPP 2018) command-line tools",
    )
    sub = p.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments", help="run paper experiments")
    exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")

    gen = sub.add_parser("generate", help="generate code from a project file")
    gen.add_argument("project", help="path to a saved GLAF project JSON")
    gen.add_argument("--target", choices=["fortran", "c", "opencl", "python"],
                     default="fortran")
    gen.add_argument("--variant", default="GLAF-parallel v0",
                     help='pruning variant (e.g. "GLAF serial", "GLAF-parallel v3")')
    gen.add_argument("--threads", type=int, default=4)

    ana = sub.add_parser("analyze", help="print loop classes and verdicts")
    ana.add_argument("project")

    sloc = sub.add_parser("sloc", help="SLOC of the generated FORTRAN")
    sloc.add_argument("project")

    sub.add_parser("variants", help="list Table-2 variants")
    return p


def _load_program(path: str):
    from .core.project import load_project
    from .core.validate import validate_program

    program = load_project(path)
    validate_program(program)
    return program


def _cmd_experiments(args) -> int:
    from .bench import EXPERIMENTS, run_and_format

    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}; "
              f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        _, text = run_and_format(EXPERIMENTS[exp_id])
        print(text)
        print()
    return 0


def _cmd_generate(args) -> int:
    from .codegen import (
        generate_c_source,
        generate_fortran_module,
        generate_opencl,
        generate_python_source,
    )
    from .optimize import make_plan

    program = _load_program(args.project)
    plan = make_plan(program, args.variant, threads=args.threads)
    if args.target == "fortran":
        print(generate_fortran_module(plan), end="")
    elif args.target == "c":
        print(generate_c_source(plan), end="")
    elif args.target == "python":
        print(generate_python_source(plan), end="")
    else:
        out = generate_opencl(plan)
        print(out.kernels_source, end="")
        print("/* launch plan:")
        for launch in out.launch_plan:
            print(f"   {launch.kind:6s} {launch.name}")
        print("*/")
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import analyze_program, classify_step

    program = _load_program(args.project)
    plan = analyze_program(program)
    for fn in program.functions():
        print(f"{'SUBROUTINE' if fn.is_subroutine else 'FUNCTION'} {fn.name}")
        for i, step in enumerate(fn.steps):
            sp = plan.get(fn.name, i)
            flags = []
            if sp.reductions:
                flags.append("reduction(" + ",".join(sp.reductions) + ")")
            if sp.atomic:
                flags.append("atomic(" + ",".join(sp.atomic) + ")")
            if sp.collapse > 1:
                flags.append(f"collapse({sp.collapse})")
            print(f"  step {i} {step.name:24s} class={classify_step(step).value:15s}"
                  f" parallel={'yes' if sp.parallel else 'no ':3s} "
                  + " ".join(flags))
            if not sp.parallel and sp.reasons:
                print(f"       reason: {sp.reasons[0]}")
    return 0


def _cmd_sloc(args) -> int:
    from .codegen import generate_fortran_module, module_unit_slocs
    from .optimize import make_plan

    program = _load_program(args.project)
    src = generate_fortran_module(make_plan(program, "GLAF-parallel v0"))
    for name, n in module_unit_slocs(src).items():
        print(f"{name:32s} {n:6d}")
    return 0


def _cmd_variants(args) -> int:
    from .optimize import VARIANTS

    for v in VARIANTS:
        print(f"{v.name:18s} {v.description}")
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "sloc": _cmd_sloc,
    "variants": _cmd_variants,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
