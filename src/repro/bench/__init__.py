"""Benchmark harness: one registered experiment per paper table/figure."""

from .experiments import (
    EXPERIMENTS,
    get_experiment,
    run_figure5,
    run_figure6,
    run_figure7,
    run_fun3d_correctness,
    run_sarb_correctness,
    run_table1,
    run_table2,
)
from .harness import Experiment, ExperimentResult, format_table, run_and_format

__all__ = [
    "EXPERIMENTS", "get_experiment",
    "run_figure5", "run_figure6", "run_figure7",
    "run_fun3d_correctness", "run_sarb_correctness",
    "run_table1", "run_table2",
    "Experiment", "ExperimentResult", "format_table", "run_and_format",
]
