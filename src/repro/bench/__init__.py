"""Benchmark harness: one registered experiment per paper table/figure,
plus the longitudinal recorder behind ``repro bench record/compare/trend``
(:mod:`repro.bench.record`, artifacts ``BENCH_<n>.json``)."""

from .experiments import (
    EXPERIMENTS,
    get_experiment,
    run_figure5,
    run_figure6,
    run_figure7,
    run_fun3d_correctness,
    run_sarb_correctness,
    run_table1,
    run_table2,
)
from .harness import (
    Experiment,
    ExperimentResult,
    format_table,
    run_and_format,
    run_timed,
)
from .record import (
    BENCH_SCHEMA,
    BenchComparison,
    BenchDelta,
    bench_files,
    compare_benchmarks,
    environment_fingerprint,
    load_bench,
    next_bench_path,
    record_benchmark,
    render_trend,
    stamp_digest,
    write_benchmark,
)

__all__ = [
    "EXPERIMENTS", "get_experiment",
    "run_figure5", "run_figure6", "run_figure7",
    "run_fun3d_correctness", "run_sarb_correctness",
    "run_table1", "run_table2",
    "Experiment", "ExperimentResult", "format_table", "run_and_format",
    "run_timed",
    "BENCH_SCHEMA", "BenchComparison", "BenchDelta", "bench_files",
    "compare_benchmarks", "environment_fingerprint", "load_bench",
    "next_bench_path", "record_benchmark", "render_trend", "stamp_digest",
    "write_benchmark",
]
