"""Experiment harness: runs an experiment and prints the paper-style table.

Every table and figure of the paper's evaluation section has a registered
experiment (see :mod:`repro.bench.experiments`).  The harness renders rows
side by side with the paper's reported values so the reproduction's shape
criteria — orderings, crossovers, rough factors — can be eyeballed and are
asserted in the benchmark suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ExperimentResult", "Experiment", "format_table", "run_and_format",
           "run_timed"]


@dataclass
class ExperimentResult:
    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""

    def column(self, name: str) -> list[object]:
        i = self.headers.index(name)
        return [r[i] for r in self.rows]

    def as_dict(self, key_col: int = 0, val_col: int = 1) -> dict:
        return {r[key_col]: r[val_col] for r in self.rows}

    def to_json(self) -> dict[str, object]:
        """Machine-readable form of the paper table (``experiments --json``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` (checkpoint resume path)."""
        return cls(
            experiment_id=str(doc["experiment_id"]),
            title=str(doc.get("title", "")),
            headers=list(doc.get("headers", [])),
            rows=[list(r) for r in doc.get("rows", [])],
            notes=str(doc.get("notes", "")),
        )


@dataclass(frozen=True)
class Experiment:
    experiment_id: str
    title: str
    paper_ref: str
    run: Callable[[], ExperimentResult]
    description: str = ""


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v != 0 and abs(v) < 0.01:
            return f"{v:.5f}"
        return f"{v:.3f}"
    return str(v)


def format_table(result: ExperimentResult) -> str:
    rows = [[_fmt(v) for v in row] for row in result.rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(result.headers)
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(result.headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    if result.notes:
        lines.append(result.notes)
    return "\n".join(lines)


def run_and_format(exp: Experiment) -> tuple[ExperimentResult, str]:
    result, _ = run_timed(exp)
    return result, format_table(result)


def run_timed(
    exp: Experiment,
    clock: Callable[[], float] = time.perf_counter,
) -> tuple[ExperimentResult, float]:
    """Run one experiment under the tracer; also measure its wall seconds.

    ``clock`` is injectable (mirroring ``Tracer(clock=...)``) so the bench
    recorder's statistics are deterministic in tests.
    """
    from ..observe import get_metrics, get_tracer

    with get_tracer().span("bench.experiment", id=exp.experiment_id,
                           paper_ref=exp.paper_ref) as _sp:
        t0 = clock()
        result = exp.run()
        elapsed = clock() - t0
        _sp.set(rows=len(result.rows))
        get_metrics().counter("bench.experiments.run").inc()
    return result, elapsed
