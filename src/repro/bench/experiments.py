"""Registry of reproduced experiments: every table and figure of §4.

=====  =========================================================
id     paper artifact
=====  =========================================================
T1     Table 1 — SLOC of the six SARB subroutines
T2     Table 2 — the implementation-variant matrix
F5     Figure 5 — SARB variant speed-ups vs original serial (4T)
F6     Figure 6 — v3 thread scaling vs GLAF serial
F7     Figure 7 — FUN3D option-lattice speed-ups (16T) + manual
C1     §4.1.1 — SARB functional-correctness gates
C2     §4.2.1 — FUN3D RMS gate at 1e-7
X1     docs/EXECUTORS.md — vectorized-executor speedup vs interpreter
X2     docs/BATCH.md — warm-artifact-cache batch throughput vs cold
=====  =========================================================
"""

from __future__ import annotations

from ..fun3d.perffig import PAPER_FIGURE7, figure7_rows
from ..sarb.perffig import (
    PAPER_FIGURE5,
    PAPER_FIGURE6,
    PAPER_TABLE1,
    figure5_rows,
    figure6_rows,
    table1_rows,
    table2_rows,
)
from .harness import Experiment, ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "run_table1", "run_table2",
           "run_figure5", "run_figure6", "run_figure7",
           "run_sarb_correctness", "run_fun3d_correctness",
           "run_executor_speedup", "EXECUTOR_SPEEDUP_GATE",
           "run_warm_cache", "WARM_CACHE_HIT_GATE",
           "WARM_CACHE_SPEEDUP_GATE"]


def run_table1() -> ExperimentResult:
    ours = table1_rows()
    rows = [
        [name, PAPER_TABLE1[name], ours[name]]
        for name in ours
    ]
    return ExperimentResult(
        experiment_id="T1",
        title="Subroutines implemented using GLAF (SLOC)",
        headers=["subroutine", "paper SLOC", "our generated SLOC"],
        rows=rows,
        notes=("Paper SLOC counts NASA's original sources; ours counts the "
               "synthetic kernels' generated FORTRAN. The ordering (the "
               "longwave entropy model dominating) is the comparable shape."),
    )


def run_table2() -> ExperimentResult:
    rows = [[name, desc] for name, desc in table2_rows()]
    return ExperimentResult(
        experiment_id="T2",
        title="Synoptic SARB implementations",
        headers=["Implementation", "Description"],
        rows=rows,
    )


def run_figure5() -> ExperimentResult:
    rows = []
    for name, speedup in figure5_rows():
        rows.append([name, PAPER_FIGURE5[name], round(speedup, 3)])
    return ExperimentResult(
        experiment_id="F5",
        title="Speed-up of GLAF-generated versions vs original serial "
              "(SARB kernels, 4 threads)",
        headers=["implementation", "paper", "model"],
        rows=rows,
    )


def run_figure6() -> ExperimentResult:
    rows = []
    for threads, speedup in figure6_rows():
        rows.append([f"{threads}T", PAPER_FIGURE6[threads], round(speedup, 3)])
    return ExperimentResult(
        experiment_id="F6",
        title="GLAF-parallel v3 speed-up vs GLAF serial, by thread count",
        headers=["threads", "paper", "model"],
        rows=rows,
    )


def run_figure7(ncell: int = 1_000_000) -> ExperimentResult:
    rows = []
    for r in sorted(figure7_rows(ncell), key=lambda x: x.speedup):
        rows.append([r.label, round(r.speedup, 4)])
    return ExperimentResult(
        experiment_id="F7",
        title="FUN3D 16-thread speed-up over original serial, all option "
              "combinations + manual",
        headers=["configuration", "speed-up"],
        rows=rows,
        notes=(f"paper anchors: manual {PAPER_FIGURE7['manual']}x, best GLAF "
               f"{PAPER_FIGURE7['best_glaf']}x, worst ~1/128x"),
    )


def run_sarb_correctness() -> ExperimentResult:
    from ..sarb import (
        make_inputs,
        run_generated_fortran,
        run_generated_python,
        run_ir_interpreter,
        run_legacy_fortran,
        run_reference,
        run_spliced,
    )
    from ..sarb.validation import SARB_COMPARE_TOLERANCE, compare_outputs

    inp = make_inputs()
    ref = run_reference(inp)
    paths = {
        "IR interpreter": run_ir_interpreter(inp),
        "generated Python": run_generated_python(inp),
        "legacy FORTRAN": run_legacy_fortran(inp)[0],
        "generated FORTRAN": run_generated_fortran(inp)[0],
        "spliced v3 run": run_spliced(inp, variant="GLAF-parallel v3")[0],
    }
    rows = []
    for label, outs in paths.items():
        # NaN/Inf-aware: a NaN in any output fails this gate loudly
        # instead of slipping past the naive max-abs comparison.
        res = compare_outputs(outs, ref, tolerance=SARB_COMPARE_TOLERANCE)
        rows.append([label, res.max_error, "PASS" if res.ok else "FAIL"])
    return ExperimentResult(
        experiment_id="C1",
        title="SARB side-by-side functional comparison (max abs error vs "
              "NumPy reference)",
        headers=["execution path", "max |err|", "verdict"],
        rows=rows,
    )


def run_fun3d_correctness() -> ExperimentResult:
    from ..fun3d import (
        jac_rms,
        make_mesh,
        rms_check,
        run_generated_fortran,
        run_ir_interpreter,
        run_legacy_fortran,
        run_reference,
        run_spliced,
    )

    mesh = make_mesh(27)
    ref = run_reference(mesh)
    paths = {
        "IR interpreter": run_ir_interpreter(mesh),
        "legacy FORTRAN": run_legacy_fortran(mesh)[0],
        "generated FORTRAN": run_generated_fortran(mesh)[0],
        "generated FORTRAN + SAVE": run_generated_fortran(
            mesh, save_inner_arrays=True)[0],
        "spliced run": run_spliced(mesh)[0],
    }
    rows = []
    for label, jac in paths.items():
        rows.append([
            label,
            jac_rms(jac),
            abs(jac_rms(jac) - jac_rms(ref)),
            "PASS" if rms_check(jac, ref) else "FAIL",
        ])
    return ExperimentResult(
        experiment_id="C2",
        title="FUN3D RMS reference check at 1e-7 absolute tolerance",
        headers=["execution path", "jac RMS", "|RMS err|", "verdict"],
        rows=rows,
    )


#: The vectorized executor must beat the interpreter by at least this
#: factor on the scaled SARB workload (ISSUE acceptance bar; measured
#: headroom is ~60x, so this gate survives noisy CI hosts).
EXECUTOR_SPEEDUP_GATE = 10.0


def run_executor_speedup() -> ExperimentResult:
    """Measured interpreter-vs-vectorized wall time (docs/EXECUTORS.md).

    Both case studies run under both executors with identical inputs;
    outputs must agree at the case study's own tolerance, and the scaled
    SARB workload must clear :data:`EXECUTOR_SPEEDUP_GATE`.  FUN3D is
    reported but not speed-gated: its hot loop calls a subprogram per
    cell, which the vectorizer correctly demotes to the interpreter
    (``executor:fallback``), so only the pointwise steps are lifted.
    """
    import time

    from ..fun3d import make_mesh, rms_check
    from ..fun3d import run_ir_interpreter as fun3d_run
    from ..sarb import make_inputs
    from ..sarb import run_ir_interpreter as sarb_run
    from ..sarb.atmosphere import SarbDimensions
    from ..sarb.validation import SARB_COMPARE_TOLERANCE, compare_outputs

    rows = []

    # SARB at scaled dimensions: enough work per step for the array path
    # to amortize its per-step setup (the paper-default dims still show
    # >10x, the scaled run shows the asymptotic picture).
    inp = make_inputs(SarbDimensions(nv=600, nblw=24, nbsw=12))
    t0 = time.perf_counter()
    ref = sarb_run(inp, executor="interpreter")
    t_interp = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec = sarb_run(inp, executor="vectorized")
    t_vec = time.perf_counter() - t0
    agree = compare_outputs(vec, ref, tolerance=SARB_COMPARE_TOLERANCE).ok
    speedup = t_interp / t_vec
    rows.append(["SARB nv=600", round(t_interp * 1e3, 2),
                 round(t_vec * 1e3, 2), round(speedup, 1),
                 "PASS" if agree and speedup >= EXECUTOR_SPEEDUP_GATE
                 else "FAIL"])

    # FUN3D: correctness-gated only (see docstring).
    mesh = make_mesh(27)
    t0 = time.perf_counter()
    jac_ref = fun3d_run(mesh, executor="interpreter")
    t_interp = time.perf_counter() - t0
    t0 = time.perf_counter()
    jac_vec = fun3d_run(mesh, executor="vectorized")
    t_vec = time.perf_counter() - t0
    rows.append(["FUN3D mesh 27", round(t_interp * 1e3, 2),
                 round(t_vec * 1e3, 2), round(t_interp / t_vec, 1),
                 "PASS" if rms_check(jac_vec, jac_ref) else "FAIL"])

    return ExperimentResult(
        experiment_id="X1",
        title="Vectorized executor vs reference interpreter (measured wall "
              "time)",
        headers=["workload", "interp ms", "vectorized ms", "speedup",
                 "verdict"],
        rows=rows,
        notes=(f"gate: SARB speedup >= {EXECUTOR_SPEEDUP_GATE:g}x with "
               "outputs agreeing at each case study's tolerance; FUN3D is "
               "correctness-gated only (per-cell subprogram call demotes "
               "its hot loop to the interpreter)."),
    )


#: The warm (cached) batch run must serve at least this fraction of its
#: items from the content-addressed artifact cache …
WARM_CACHE_HIT_GATE = 0.9
#: … and finish at least this many times faster than the cold run.  The
#: measured headroom is large (a hit is one JSON read vs a full
#: parse→…→lint compile), so 2x survives noisy CI hosts.
WARM_CACHE_SPEEDUP_GATE = 2.0


def run_warm_cache() -> ExperimentResult:
    """Cold-vs-warm batch compile throughput (docs/BATCH.md).

    One fuzz-drawn corpus is compiled twice through the real batch
    driver against a fresh content-addressed cache: the first (cold) run
    fills it, the second (warm) run must hit for at least
    :data:`WARM_CACHE_HIT_GATE` of the items and clear
    :data:`WARM_CACHE_SPEEDUP_GATE` end-to-end — and both runs must
    produce the same manifest digest, proving a cache hit is
    observationally equivalent to a recompile.  Serial, with
    checkpointing off, so the numbers measure the cache rather than the
    process pool or checkpoint I/O.
    """
    import tempfile
    import time

    from ..batch import BatchOptions, ingest_corpus, run_batch

    items = ingest_corpus(["fuzz:11:12"])
    with tempfile.TemporaryDirectory(prefix="repro-warm-cache-") as tmp:
        options = BatchOptions(
            jobs=1, retries=0,
            cache_dir=f"{tmp}/cache", checkpoint_dir=None,
            quarantine_dir=f"{tmp}/quarantine")
        rows = []
        digests = []
        timings = {}
        for phase in ("cold", "warm"):
            t0 = time.perf_counter()
            result = run_batch(items, options)
            wall = time.perf_counter() - t0
            timings[phase] = wall
            cache = result.stats["cache"]
            hit_rate = cache["hits"] / result.stats["items"]
            digests.append(result.manifest["content_sha256"])
            ok = (result.stats["failed"] == 0
                  and result.stats["quarantined"] == 0
                  and (phase == "cold"
                       or hit_rate >= WARM_CACHE_HIT_GATE))
            rows.append([phase, result.stats["items"], cache["hits"],
                         cache["misses"], round(hit_rate, 3),
                         round(wall * 1e3, 2),
                         "PASS" if ok else "FAIL"])
        speedup = timings["cold"] / timings["warm"]
        rows.append(["warm speedup", "", "", "", "",
                     round(speedup, 1),
                     "PASS" if speedup >= WARM_CACHE_SPEEDUP_GATE
                     and digests[0] == digests[1] else "FAIL"])
    return ExperimentResult(
        experiment_id="X2",
        title="Batch compile throughput: cold vs warm artifact cache",
        headers=["phase", "items", "hits", "misses", "hit rate", "ms",
                 "verdict"],
        rows=rows,
        notes=(f"gates: warm hit rate >= {WARM_CACHE_HIT_GATE:.0%} and "
               f"warm run >= {WARM_CACHE_SPEEDUP_GATE:g}x faster than "
               "cold, with cold and warm manifests digest-identical."),
    )


EXPERIMENTS: dict[str, Experiment] = {
    "T1": Experiment("T1", "Table 1: SLOC per subroutine", "Table 1", run_table1),
    "T2": Experiment("T2", "Table 2: implementation matrix", "Table 2", run_table2),
    "F5": Experiment("F5", "Figure 5: SARB variant speed-ups", "Figure 5", run_figure5),
    "F6": Experiment("F6", "Figure 6: v3 thread scaling", "Figure 6", run_figure6),
    "F7": Experiment("F7", "Figure 7: FUN3D option lattice", "Figure 7", run_figure7),
    "C1": Experiment("C1", "SARB correctness gates", "§4.1.1", run_sarb_correctness),
    "C2": Experiment("C2", "FUN3D RMS gate", "§4.2.1", run_fun3d_correctness),
    "X1": Experiment("X1", "Executor speedup: vectorized vs interpreter",
                     "docs/EXECUTORS.md", run_executor_speedup),
    "X2": Experiment("X2", "Batch throughput: warm artifact cache vs cold",
                     "docs/BATCH.md", run_warm_cache),
}


def get_experiment(experiment_id: str) -> Experiment:
    return EXPERIMENTS[experiment_id]
