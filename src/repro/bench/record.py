"""Benchmark recording, diffing, and trajectory: ``BENCH_<n>.json``.

The harness (:mod:`repro.bench.harness`) runs one experiment and prints the
paper-style table; this module is the longitudinal layer on top of it:

* :func:`record_benchmark` runs the registered experiments under the
  :mod:`repro.observe` tracer N times and distills repeat statistics
  (min/median/IQR wall seconds, per-stage span totals, per-cell values)
  plus an environment fingerprint into one schema-versioned document
  (:data:`repro.observe.bench.BENCH_SCHEMA`, ``repro.bench/v1``);
* :func:`write_benchmark` / :func:`next_bench_path` persist it as the next
  ``BENCH_<n>.json`` at the repo root, growing the bench trajectory;
* :func:`compare_benchmarks` diffs two artifacts — per-experiment wall-time
  deltas, per-stage deltas, per-cell value drift, new/removed rows — and
  gates on regressions beyond a threshold (``repro bench compare
  --fail-on-regress PCT`` exits nonzero);
* :func:`render_trend` summarizes every artifact in the trajectory into
  one table (``repro bench trend``).

Policy (see ``docs/BENCHMARKING.md``): the *gate* fires on wall-time
medians only; deterministic model cells are reported as drift, because a
cell change is a model change to be reviewed, not a perf regression.  All
statistics use medians/IQRs so one preempted repeat cannot fail a build.
"""

from __future__ import annotations

import os
import platform
import re
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from .. import observe
from ..numeric import (
    CheckpointStore,
    RetryPolicy,
    atomic_write_text,
    content_digest,
    retry_call,
)
from ..observe.bench import BENCH_SCHEMA, stage_seconds, summarize_repeats
from .harness import ExperimentResult, run_timed

__all__ = [
    "BENCH_SCHEMA",
    "environment_fingerprint",
    "record_benchmark",
    "stamp_digest",
    "write_benchmark",
    "bench_files",
    "next_bench_path",
    "load_bench",
    "BenchDelta",
    "BenchComparison",
    "compare_benchmarks",
    "render_trend",
]

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


# ---------------------------------------------------------------------------
# environment fingerprint
# ---------------------------------------------------------------------------

def _git_sha() -> tuple[str, str]:
    """The working tree's HEAD sha, plus why it is missing when it is.

    A hung probe (``subprocess.TimeoutExpired``) kills the child but
    leaves no stderr to explain the ``unknown`` — so the *reason* is
    returned alongside the sha and recorded as ``fingerprint:degraded``
    in the artifact, instead of silently omitting the provenance.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except subprocess.TimeoutExpired:
        return "unknown", "git probe hung past its 10s timeout"
    except (OSError, subprocess.SubprocessError) as e:
        return "unknown", f"git probe failed: {type(e).__name__}: {e}"
    sha = proc.stdout.strip()
    if proc.returncode == 0 and sha:
        return sha, ""
    detail = proc.stderr.strip() or f"git exited {proc.returncode}"
    return "unknown", f"git probe failed: {detail}"


def environment_fingerprint() -> dict[str, object]:
    """Everything a reader needs to judge whether two artifacts are
    comparable: interpreter, libraries, host, tree state, and the flags
    that change what the experiments execute (guard mode, fault plans,
    simulated-machine constants).  When a probe could not establish a
    field, ``degraded`` lists the reasons, so ``unknown`` values carry
    their cause into the artifact."""
    import numpy as np

    from ..glafexec import executor_mode, guard_mode
    from ..perf import machine_fingerprint
    from ..robust import get_fault_plan

    sha, sha_degraded = _git_sha()
    fp: dict[str, object] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": sha,
        "guard_mode": guard_mode(),
        "executor": executor_mode(),
        "fault_plan_active": get_fault_plan() is not None,
        "machines": machine_fingerprint(),
    }
    degraded = []
    if sha_degraded:
        degraded.append({"field": "git_sha", "reason": sha_degraded})
    if degraded:
        fp["degraded"] = degraded
    return fp


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------

def _is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _cell_stats(results: list) -> dict[str, dict[str, object]]:
    """Per-cell repeat statistics, keyed by row (first column) then header.

    Numeric cells get the full min/median/IQR summary over the repeats;
    non-numeric cells (variant names, PASS/FAIL verdicts) keep their last
    value so compare can still flag a flipped verdict.
    """
    headers = results[-1].headers
    samples: dict[str, dict[str, list]] = {}
    for result in results:
        for row in result.rows:
            by_col = samples.setdefault(str(row[0]), {})
            for header, value in zip(headers[1:], row[1:]):
                by_col.setdefault(header, []).append(value)
    cells: dict[str, dict[str, object]] = {}
    for row_key, by_col in samples.items():
        out: dict[str, object] = {}
        for header, values in by_col.items():
            if all(_is_number(v) for v in values):
                out[header] = summarize_repeats(values).to_dict()
            else:
                out[header] = values[-1]
        cells[row_key] = out
    return cells


def record_benchmark(
    ids: Sequence[str] | None = None,
    repeats: int = 3,
    clock: Callable[[], float] = time.perf_counter,
    *,
    experiments: dict | None = None,
    checkpoints: "CheckpointStore | None" = None,
    retry: "RetryPolicy | None" = None,
) -> dict[str, object]:
    """Run the registered experiments ``repeats`` times; return the
    ``repro.bench/v1`` document (see module docstring for the layout).

    ``experiments`` overrides the registry (faultcheck injects synthetic
    ones).  With a ``checkpoints`` store each completed repeat is persisted
    (key ``<id>-rep<r>``) and repeats with valid checkpoints are *skipped*
    on a resumed run — corrupt checkpoints are discarded and re-run, never
    ingested.  ``meta.resumed`` counts the skips (0 on a fresh run, so the
    stats schema is identical either way).  A :class:`repro.numeric.RetryPolicy`
    re-runs a repeat that raises a transient :class:`ExecutionError`.
    """
    from .experiments import EXPERIMENTS

    registry = experiments if experiments is not None else EXPERIMENTS
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    ids = list(ids) if ids else list(registry)
    unknown = [i for i in ids if i not in registry]
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")

    resumed = 0
    out: dict[str, object] = {}
    for exp_id in ids:
        exp = registry[exp_id]
        walls: list[float] = []
        stage_runs: list[dict[str, float]] = []
        results = []
        for r in range(repeats):
            key = f"{exp_id}-rep{r}"
            if checkpoints is not None:
                done = checkpoints.load(key, discard_corrupt=True)
                if done is not None:
                    walls.append(float(done["wall"]))
                    stage_runs.append({k: float(v)
                                       for k, v in done["stages"].items()})
                    results.append(ExperimentResult.from_json(done["result"]))
                    resumed += 1
                    continue

            def one_repeat():
                with observe.observed(clock=clock) as obs:
                    result, elapsed = run_timed(exp, clock=clock)
                return result, elapsed, stage_seconds(obs.tracer)

            if retry is not None:
                result, elapsed, stages_run = retry_call(
                    one_repeat, policy=retry, what=f"bench:{key}")
            else:
                result, elapsed, stages_run = one_repeat()
            walls.append(elapsed)
            stage_runs.append(stages_run)
            results.append(result)
            if checkpoints is not None:
                checkpoints.save(key, {"wall": elapsed, "stages": stages_run,
                                       "result": result.to_json()})
        stages = {
            stage: summarize_repeats([run.get(stage, 0.0)
                                      for run in stage_runs]).to_dict()
            for stage in sorted({s for run in stage_runs for s in run})
        }
        last = results[-1]
        out[exp_id] = {
            "title": last.title,
            "paper_ref": exp.paper_ref,
            "headers": list(last.headers),
            "rows": [list(r) for r in last.rows],
            "notes": last.notes,
            "wall_s": summarize_repeats(walls).to_dict(),
            "stages": stages,
            "cells": _cell_stats(results),
        }

    environment = environment_fingerprint()
    meta: dict[str, object] = {"repeats": repeats, "ids": ids,
                               "resumed": resumed}
    if environment.get("degraded"):
        # Surface probe failures where compare/trend readers look first:
        # an artifact with an unknown sha says *why* it is unknown.
        meta["fingerprint:degraded"] = environment["degraded"]
    return {
        "schema": BENCH_SCHEMA,
        "environment": environment,
        "meta": meta,
        "experiments": out,
    }


# ---------------------------------------------------------------------------
# artifact files
# ---------------------------------------------------------------------------

def bench_files(root: str | Path = ".") -> list[Path]:
    """The ``BENCH_<n>.json`` trajectory under ``root``, in index order."""
    root = Path(root)
    found = [(int(m.group(1)), p)
             for p in root.iterdir()
             if (m := _BENCH_RE.match(p.name))]
    return [p for _, p in sorted(found)]


def next_bench_path(root: str | Path = ".") -> Path:
    """The next free slot in the trajectory (``BENCH_1.json`` when empty)."""
    existing = bench_files(root)
    last = int(_BENCH_RE.match(existing[-1].name).group(1)) if existing else 0
    return Path(root) / f"BENCH_{last + 1}.json"


def stamp_digest(doc: dict) -> dict:
    """Stamp ``environment.content_sha256`` over the document.

    The digest covers the canonical JSON of the document *minus* the
    digest field itself, so :func:`load_bench` can recompute and verify.
    Returns ``doc`` (mutated in place).
    """
    env = doc.setdefault("environment", {})
    env.pop("content_sha256", None)
    env["content_sha256"] = content_digest(doc)
    return doc


def write_benchmark(doc: dict, path: str | Path) -> Path:
    """Stamp the content digest and write the artifact atomically, so a
    crash mid-write leaves either the old artifact or none — never a
    truncated one."""
    import json

    stamp_digest(doc)
    return atomic_write_text(Path(path),
                             json.dumps(doc, indent=2, sort_keys=False) + "\n")


def load_bench(path: str | Path) -> dict:
    import json

    from ..errors import BenchArtifactError

    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise BenchArtifactError(f"{path}: not valid JSON ({e})") from e
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema != BENCH_SCHEMA:
        raise BenchArtifactError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, found {schema!r}")
    recorded = doc.get("environment", {}).get("content_sha256")
    if recorded is not None:
        # Pre-digest artifacts (earlier PRs) load without a check; stamped
        # ones must verify, so corruption or hand-edits surface here.
        stripped = dict(doc)
        stripped["environment"] = {
            k: v for k, v in doc["environment"].items()
            if k != "content_sha256"
        }
        expected = content_digest(stripped)
        if recorded != expected:
            raise BenchArtifactError(
                f"{path}: content digest mismatch (recorded "
                f"{recorded[:12]}…, computed {expected[:12]}…) — artifact "
                "corrupted or hand-edited")
    return doc


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

def _pct(old: float, new: float) -> float:
    if old <= 0.0:
        return 0.0 if new <= 0.0 else float("inf")
    return (new - old) / old * 100.0


def _fmt_pct(pct: float) -> str:
    return "+inf%" if pct == float("inf") else f"{pct:+.1f}%"


@dataclass
class BenchDelta:
    """One experiment's old-vs-new wall time (medians of the repeats)."""

    experiment_id: str
    old_median_s: float
    new_median_s: float
    regressed: bool = False
    stage_deltas: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def delta_pct(self) -> float:
        return _pct(self.old_median_s, self.new_median_s)


@dataclass
class BenchComparison:
    """The full diff between two bench artifacts; ``ok`` drives the gate."""

    old_label: str
    new_label: str
    deltas: list[BenchDelta]
    added_experiments: list[str]
    removed_experiments: list[str]
    added_rows: list[tuple[str, str]]          # (experiment, row key)
    removed_rows: list[tuple[str, str]]
    cell_drift: list[tuple[str, str, str, object, object]]
    env_diffs: list[tuple[str, object, object]]
    fail_on_regress: float | None = None

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [f"== bench compare: {self.old_label} -> {self.new_label} =="]
        if self.env_diffs:
            lines.append("-- environment changed (wall-time deltas may not "
                         "be comparable) --")
            for key, old, new in self.env_diffs:
                lines.append(f"  {key}: {old} -> {new}")
        lines.append("-- wall time (median of repeats) --")
        lines.append(f"  {'experiment':<12s} {'old':>12s} {'new':>12s} "
                     f"{'delta':>8s}")
        for d in self.deltas:
            mark = "  << REGRESSION" if d.regressed else ""
            lines.append(
                f"  {d.experiment_id:<12s} {d.old_median_s * 1e3:>10.3f}ms "
                f"{d.new_median_s * 1e3:>10.3f}ms "
                f"{_fmt_pct(d.delta_pct):>8s}{mark}")
            for stage, (old, new) in sorted(d.stage_deltas.items()):
                lines.append(
                    f"      stage {stage:<10s} {old * 1e3:>10.3f}ms "
                    f"{new * 1e3:>10.3f}ms {_fmt_pct(_pct(old, new)):>8s}")
        if self.cell_drift:
            lines.append("-- value drift (model/table cells) --")
            for exp_id, row, col, old, new in self.cell_drift:
                lines.append(f"  {exp_id} [{row} / {col}]: {old} -> {new}")
        for label, items in (("new experiments", self.added_experiments),
                             ("removed experiments", self.removed_experiments)):
            if items:
                lines.append(f"-- {label}: {', '.join(items)} --")
        for label, pairs in (("new rows", self.added_rows),
                             ("removed rows", self.removed_rows)):
            if pairs:
                lines.append(f"-- {label} --")
                for exp_id, row in pairs:
                    lines.append(f"  {exp_id}: {row}")
        if self.fail_on_regress is not None:
            verdict = ("OK" if self.ok else
                       f"FAIL ({len(self.regressions)} regression(s))")
            lines.append(f"gate: fail-on-regress {self.fail_on_regress:g}% "
                         f"-> {verdict}")
        return "\n".join(lines)


def _cell_median(cell: object) -> object:
    """The comparable value of one recorded cell: the median for numeric
    cells, the raw value otherwise."""
    if isinstance(cell, dict) and "median" in cell:
        return cell["median"]
    return cell


# Relative drift below this is accumulated float noise, not a model change.
_DRIFT_RTOL = 1e-9


def _drifted(old: object, new: object) -> bool:
    if _is_number(old) and _is_number(new):
        scale = max(abs(float(old)), abs(float(new)), 1e-30)
        return abs(float(new) - float(old)) / scale > _DRIFT_RTOL
    return old != new


def compare_benchmarks(
    old: dict,
    new: dict,
    fail_on_regress: float | None = None,
    old_label: str = "old",
    new_label: str = "new",
) -> BenchComparison:
    """Diff two ``repro.bench/v1`` documents.

    A *regression* is an experiment whose new wall-time median exceeds the
    old one by more than ``fail_on_regress`` percent; with no threshold the
    comparison never fails.  Cell drift, row churn, and environment changes
    are always reported but never gate (module docstring has the why).
    """
    old_exps: dict = old.get("experiments", {})   # type: ignore[assignment]
    new_exps: dict = new.get("experiments", {})   # type: ignore[assignment]

    deltas: list[BenchDelta] = []
    added_rows: list[tuple[str, str]] = []
    removed_rows: list[tuple[str, str]] = []
    cell_drift: list[tuple[str, str, str, object, object]] = []

    for exp_id in [i for i in old_exps if i in new_exps]:
        o, n = old_exps[exp_id], new_exps[exp_id]
        d = BenchDelta(
            experiment_id=exp_id,
            old_median_s=float(o["wall_s"]["median"]),
            new_median_s=float(n["wall_s"]["median"]),
        )
        if fail_on_regress is not None:
            d.regressed = d.delta_pct > fail_on_regress
        for stage in sorted(set(o.get("stages", {})) | set(n.get("stages", {}))):
            os_ = float(o.get("stages", {}).get(stage, {}).get("median", 0.0))
            ns_ = float(n.get("stages", {}).get(stage, {}).get("median", 0.0))
            d.stage_deltas[stage] = (os_, ns_)
        deltas.append(d)

        o_cells, n_cells = o.get("cells", {}), n.get("cells", {})
        for row in o_cells:
            if row not in n_cells:
                removed_rows.append((exp_id, row))
        for row in n_cells:
            if row not in o_cells:
                added_rows.append((exp_id, row))
                continue
            for col in n_cells[row]:
                if col not in o_cells[row]:
                    continue
                ov = _cell_median(o_cells[row][col])
                nv = _cell_median(n_cells[row][col])
                if _drifted(ov, nv):
                    cell_drift.append((exp_id, row, col, ov, nv))

    env_diffs = [
        (key, old.get("environment", {}).get(key),
         new.get("environment", {}).get(key))
        for key in ("python", "numpy", "platform", "cpu_count", "machines")
        if old.get("environment", {}).get(key)
        != new.get("environment", {}).get(key)
    ]

    return BenchComparison(
        old_label=old_label,
        new_label=new_label,
        deltas=deltas,
        added_experiments=[i for i in new_exps if i not in old_exps],
        removed_experiments=[i for i in old_exps if i not in new_exps],
        added_rows=added_rows,
        removed_rows=removed_rows,
        cell_drift=cell_drift,
        env_diffs=env_diffs,
        fail_on_regress=fail_on_regress,
    )


# ---------------------------------------------------------------------------
# trajectory
# ---------------------------------------------------------------------------

def render_trend(entries: Iterable[tuple[str, dict]]) -> str:
    """One row per artifact: wall-time medians (ms) per experiment + total.

    ``entries`` are ``(label, document)`` pairs in trajectory order, as
    produced by loading :func:`bench_files`.
    """
    entries = list(entries)
    if not entries:
        return "(no BENCH_*.json artifacts found)"
    ids: list[str] = []
    for _, doc in entries:
        for exp_id in doc.get("experiments", {}):
            if exp_id not in ids:
                ids.append(exp_id)
    header = (f"{'artifact':<16s} {'git':<8s} {'reps':>4s} "
              + " ".join(f"{i:>10s}" for i in ids) + f" {'total':>10s}")
    lines = ["== bench trend (wall-time medians, ms) ==", header,
             "-" * len(header)]
    for label, doc in entries:
        sha = str(doc.get("environment", {}).get("git_sha", "unknown"))[:7]
        reps = doc.get("meta", {}).get("repeats", "?")
        cols, total = [], 0.0
        for exp_id in ids:
            exp = doc.get("experiments", {}).get(exp_id)
            if exp is None:
                cols.append(f"{'-':>10s}")
                continue
            median = float(exp["wall_s"]["median"])
            total += median
            cols.append(f"{median * 1e3:>10.3f}")
        lines.append(f"{label:<16s} {sha:<8s} {reps!s:>4s} "
                     + " ".join(cols) + f" {total * 1e3:>10.3f}")
    return "\n".join(lines)
