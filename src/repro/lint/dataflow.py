"""Dataflow lint pass: drives :mod:`repro.analysis.dataflow` per batch.

The structural linter in :mod:`repro.lint.races` inspects one directive
at a time; this pass complements it with whole-unit fixpoint analyses —
may-uninitialized (use-before-def + INTENT contracts), backward liveness
(dead stores), and interval range propagation (static subscript bounds
and constant-false parallel guards).  It shares the structural linter's
batch model: all units in a parsed batch are modeled first so that CALL
sites resolve against inferred INTENT summaries of sibling units rather
than worst-case assumptions.

Findings land in the same :class:`~repro.lint.findings.LintReport` under
the ``use-before-def`` / ``dead-store`` / ``possible-oob`` /
``intent-violation`` / ``const-false-guard`` rules, and therefore emit
the same ``lint:<rule>`` DecisionLog events as every other rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dataflow import (
    RangeSummary,
    build_model,
    build_unit_cfg,
    check_bounds,
    dead_stores,
    infer_summaries,
    solve_ranges,
    analyze_uninit,
)
from ..fortranlib.ast import (
    FDecl,
    FModule,
    FProgramUnit,
    FSourceFile,
    FSubprogram,
)
from .findings import LintFinding, LintReport
from .symbols import build_symbols

__all__ = ["UnitRanges", "run_dataflow", "analyze_batch_ranges",
           "analyze_case_ranges"]


@dataclass
class UnitRanges:
    """Range/bounds result for one unit, for ``analyze --ranges``."""

    unit: str
    summary: RangeSummary = field(default_factory=RangeSummary)

    def to_json(self) -> dict[str, object]:
        return {
            "unit": self.unit,
            "subscripts": {
                "proven": self.summary.proven,
                "possible_oob": self.summary.possible,
                "unknown": self.summary.unknown,
            },
            "issues": [
                {"array": i.array, "dim": i.dim, "line": i.line,
                 "detail": i.detail}
                for i in self.summary.issues
            ],
            "exit_ranges": {n: [iv.lo, iv.hi]
                            for n, iv in sorted(
                                self.summary.exit_env.items())},
        }


def _module_extents(mod: FModule) -> dict[str, tuple[int | None, ...]]:
    """Extents of arrays declared at module scope (constant when
    knowable, None per deferred dimension — registering a module
    allocatable as an array at all is what keeps ``a(i, j)`` references
    to it from being misread as function calls)."""
    from ..analysis.dataflow.model import _const_int

    out: dict[str, tuple[int | None, ...]] = {}
    for d in mod.decls:
        if not isinstance(d, FDecl):
            continue
        for ent in d.entities:
            if ent.dims:
                out[ent.name.lower()] = tuple(
                    _const_int(dim) for dim in ent.dims)
            elif ent.deferred_rank > 0:
                out[ent.name.lower()] = tuple(
                    None for _ in range(ent.deferred_rank))
    return out


def _collect_units(parsed: dict[str, FSourceFile], legacy
                   ) -> list[tuple[FSubprogram | FProgramUnit, dict,
                                   dict[str, tuple[int | None, ...]]]]:
    """(unit, channels, extra_extents) for every unit in the batch."""
    siblings: dict[str, FModule] = {}
    for out in parsed.values():
        for mod in out.modules:
            siblings[mod.name.lower()] = mod
    if legacy is not None:
        for out in legacy.parsed.values():
            for mod in out.modules:
                siblings.setdefault(mod.name.lower(), mod)

    units = []

    def visible_extents(syms) -> dict[str, tuple[int | None, ...]]:
        # Channels name the module a symbol comes from; resolve constant
        # extents through host, sibling and legacy modules.  Names the
        # unit redeclares locally (or receives as dummies) keep their
        # own declarations.
        extents: dict[str, tuple[int | None, ...]] = {}
        mods: set[str] = set()
        for ch in syms.channels.values():
            if ch.startswith("USE "):
                mods.add(ch[4:].split(" ")[0])
            elif ch.startswith("host module "):
                mods.add(ch[len("host module "):].lower())
        for m in sorted(mods):
            mod = siblings.get(m.lower())
            if mod is not None:
                extents.update(_module_extents(mod))
        return {n: e for n, e in extents.items()
                if syms.channels.get(n, "").startswith(
                    ("USE ", "host module "))}

    for out in parsed.values():
        for mod in out.modules:
            for sub in mod.subprograms:
                syms = build_symbols(sub, host=mod, legacy=legacy,
                                     siblings=siblings)
                ext = _module_extents(mod)
                ext.update(visible_extents(syms))
                units.append((sub, syms.channels, ext))
        for sub in out.subprograms:
            syms = build_symbols(sub, legacy=legacy, siblings=siblings)
            units.append((sub, syms.channels, visible_extents(syms)))
        for prog in out.programs:
            syms = build_symbols(prog, legacy=legacy, siblings=siblings)
            units.append((prog, syms.channels, visible_extents(syms)))
            for sub in prog.subprograms:
                syms = build_symbols(sub, legacy=legacy, siblings=siblings)
                units.append((sub, syms.channels, visible_extents(syms)))
    return units


def _analyze(parsed: dict[str, FSourceFile], legacy
             ) -> tuple[list[LintFinding], list[UnitRanges]]:
    from ..observe import get_metrics

    collected = _collect_units(parsed, legacy)
    models = {}
    for unit, channels, extents in collected:
        model = build_model(unit, channels, extra_extents=extents)
        cfg = build_unit_cfg(unit)
        models[unit.name.lower()] = (model, cfg)
    summaries = infer_summaries(models)

    findings: list[LintFinding] = []
    ranges: list[UnitRanges] = []
    for name in sorted(models):
        model, cfg = models[name]
        unit_name = model.unit.name

        uses, intent_issues = analyze_uninit(cfg, model, summaries)
        for u in uses:
            what = ("function result" if u.kind == "result"
                    else "local variable")
            findings.append(LintFinding(
                rule="use-before-def", unit=unit_name, line=u.line,
                message=f"{what} {u.name!r} may be read before it is "
                        "assigned on some path",
                variable=u.name, channel=model.channel(u.name)))
        for i in intent_issues:
            findings.append(LintFinding(
                rule="intent-violation", unit=unit_name, line=i.line,
                message=i.detail, variable=i.name,
                channel=model.channel(i.name)))

        dead, _ = dead_stores(cfg, model, summaries)
        for d in dead:
            if d.kind == "array-never-read":
                msg = (f"local array {d.name!r} is written but never "
                       "read in this unit")
            else:
                msg = (f"value stored to local {d.name!r} is never read "
                       "(dead store)")
            findings.append(LintFinding(
                rule="dead-store", unit=unit_name, line=d.line,
                message=msg, variable=d.name,
                channel=model.channel(d.name)))

        envs = solve_ranges(cfg, model, summaries)
        summary = check_bounds(cfg, model, summaries, envs)
        for b in summary.issues:
            findings.append(LintFinding(
                rule="possible-oob", unit=unit_name, line=b.line,
                message=b.detail, variable=b.array,
                channel=model.channel(b.array)))
        for g in summary.guards:
            findings.append(LintFinding(
                rule="const-false-guard", unit=unit_name, line=g.line,
                message=g.detail))
        ranges.append(UnitRanges(unit=unit_name, summary=summary))

    m = get_metrics()
    if m.enabled:
        m.counter("lint.dataflow.units").inc(len(models))
        m.counter("lint.dataflow.findings").inc(len(findings))
        m.counter("lint.dataflow.subscripts_proven").inc(
            sum(r.summary.proven for r in ranges))
    return findings, ranges


def run_dataflow(parsed: dict[str, FSourceFile], report: LintReport, *,
                 legacy=None) -> list[UnitRanges]:
    """Run the dataflow pass over a parsed batch into ``report``."""
    findings, ranges = _analyze(parsed, legacy)
    for f in findings:
        report.add(f)
    return ranges


def analyze_batch_ranges(parsed: dict[str, FSourceFile], *, legacy=None
                         ) -> list[UnitRanges]:
    """Range/bounds summaries only (``repro analyze --ranges``)."""
    _, ranges = _analyze(parsed, legacy)
    return ranges


def analyze_case_ranges(case: str, variant: str) -> list[UnitRanges]:
    """Generate one case study at one variant and summarize its ranges."""
    from ..codegen.fortran import FortranGenerator
    from ..core.validate import validate_program
    from ..fortranlib.parser import parse_source
    from ..optimize.plan import make_plan
    from .runner import _build_case

    program, legacy, _, _ = _build_case(case)
    validate_program(program, collect=True)
    plan = make_plan(program, variant)
    source = FortranGenerator(plan).generate_module()
    parsed = {"generated.f90": parse_source(source)}
    return analyze_batch_ranges(parsed, legacy=legacy)
