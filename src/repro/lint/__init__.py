"""Static race detector and parallel-correctness linter (``repro lint``).

A verification layer over the *text* the pipeline emits: it re-parses
generated and spliced FORTRAN, rebuilds each ``!$OMP PARALLEL DO``
region's data-sharing picture from structured clauses plus per-unit
symbol tables, and reports races, inconsistent clauses, and divergence
from the :class:`~repro.optimize.plan.OptimizationPlan` that produced the
code.  See ``docs/STATIC_ANALYSIS.md`` for every rule and its failure
mode, and :mod:`repro.lint.mutation` for the seeded clause-mutation
self-test that keeps the linter honest.
"""

from .crosscheck import collect_units, crosscheck_plan
from .findings import RULES, LintFinding, LintReport, LintRule
from .mutation import MUTANTS, MutantResult, run_mutation_selftest
from .races import lint_unit_body, linear_form
from .runner import LEVELS, lint_case, lint_levels, lint_sources, lint_text
from .symbols import UnitSymbols, build_symbols

__all__ = [
    "RULES", "LintRule", "LintFinding", "LintReport",
    "UnitSymbols", "build_symbols", "lint_unit_body", "linear_form",
    "collect_units", "crosscheck_plan",
    "LEVELS", "lint_text", "lint_sources", "lint_case", "lint_levels",
    "MUTANTS", "MutantResult", "run_mutation_selftest",
]
