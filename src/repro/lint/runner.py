"""End-to-end lint drivers: sources → findings, case studies → reports.

``repro lint`` (the CLI) calls :func:`lint_levels`, which regenerates the
SARB and FUN3D case-study outputs at each pruning level — the whole
generated MODULE *and* the spliced legacy codebase — and runs every
analysis over them:

1. parse (structured ``!$OMP`` clauses attach to their loops),
2. per-unit symbol tables (COMMON / USE / host-module channels),
3. race + clause analysis (:mod:`repro.lint.races`),
4. plan-vs-text cross-check (:mod:`repro.lint.crosscheck`).

The IR itself is validated first with ``validate_program(...,
collect=True)`` so a malformed program reports *all* structural errors in
one DiagnosticBundle instead of failing one error at a time.
"""

from __future__ import annotations

from ..core.validate import validate_program
from ..fortranlib.ast import FModule, FSourceFile
from ..fortranlib.parser import parse_source
from .crosscheck import collect_units, crosscheck_plan
from .findings import LintReport
from .races import lint_unit_body
from .symbols import build_symbols

__all__ = ["LEVELS", "lint_parsed", "lint_sources", "lint_text",
           "lint_case", "lint_levels"]

# CLI level -> pruning-variant name (Table 2).
LEVELS: dict[str, str] = {f"v{n}": f"GLAF-parallel v{n}" for n in range(4)}


def lint_parsed(parsed: dict[str, FSourceFile], *, legacy=None,
                label: str = "", dataflow: bool = False) -> LintReport:
    """Lint already-parsed files as one batch (modules defined in any of
    the files resolve wildcard USEs in all of them).  With ``dataflow``,
    the interprocedural fixpoint pass (use-before-def, dead stores,
    bounds, INTENT) runs over the same batch."""
    report = LintReport(label=label)
    siblings: dict[str, FModule] = {}
    for out in parsed.values():
        for mod in out.modules:
            siblings[mod.name.lower()] = mod
    for out in parsed.values():
        for mod in out.modules:
            for sub in mod.subprograms:
                syms = build_symbols(sub, host=mod, legacy=legacy,
                                     siblings=siblings)
                lint_unit_body(sub, syms, report)
        for sub in out.subprograms:
            syms = build_symbols(sub, legacy=legacy, siblings=siblings)
            lint_unit_body(sub, syms, report)
        for prog in out.programs:
            syms = build_symbols(prog, legacy=legacy, siblings=siblings)
            lint_unit_body(prog, syms, report)
            for sub in prog.subprograms:
                syms = build_symbols(sub, legacy=legacy, siblings=siblings)
                lint_unit_body(sub, syms, report)
    if dataflow:
        from .dataflow import run_dataflow

        run_dataflow(parsed, report, legacy=legacy)
    return report


def lint_sources(sources: dict[str, str], *, legacy=None, label: str = "",
                 dataflow: bool = False) -> LintReport:
    parsed = {fname: parse_source(src) for fname, src in sorted(sources.items())}
    return lint_parsed(parsed, legacy=legacy, label=label, dataflow=dataflow)


def lint_text(source: str, *, plan=None, label: str = "",
              dataflow: bool = False) -> LintReport:
    """Lint one source text; with ``plan``, cross-check directives too."""
    parsed = {"<source>": parse_source(source)}
    report = lint_parsed(parsed, label=label, dataflow=dataflow)
    if plan is not None:
        crosscheck_plan(plan, collect_units(parsed["<source>"]), report)
    return report


# ----------------------------------------------------------------------
# case studies
# ----------------------------------------------------------------------

def _build_case(case: str):
    """(program, legacy codebase, spliced-unit names, add_missing)."""
    if case == "sarb":
        from ..sarb.kernels import SARB_SUBROUTINES, build_sarb_program
        from ..sarb.validation import build_legacy_codebase

        return (build_sarb_program(), build_legacy_codebase(),
                list(SARB_SUBROUTINES), False)
    if case == "fun3d":
        from ..fun3d.kernels import FUN3D_FUNCTIONS, build_fun3d_program
        from ..fun3d.mesh import make_mesh
        from ..fun3d.validation import build_legacy_codebase

        return (build_fun3d_program(), build_legacy_codebase(make_mesh()),
                list(FUN3D_FUNCTIONS), True)
    raise ValueError(f"unknown lint case {case!r}; expected 'sarb' or 'fun3d'")


def lint_case(case: str, variant: str, *, spliced: bool = True,
              dataflow: bool = False) -> LintReport:
    """Lint one case study at one pruning variant.

    Covers the generated MODULE and (by default) the spliced legacy
    codebase — legacy units that surround the replacements included —
    with the plan cross-check applied to both.
    """
    from ..observe import get_tracer

    with get_tracer().span("lint.case", case=case, variant=variant):
        return _lint_case(case, variant, spliced=spliced, dataflow=dataflow)


def _lint_case(case: str, variant: str, *, spliced: bool,
               dataflow: bool = False) -> LintReport:
    from ..codegen.fortran import FortranGenerator
    from ..integration.splice import splice_into_codebase
    from ..optimize.plan import make_plan

    program, legacy, names, add_missing = _build_case(case)
    validate_program(program, collect=True)
    plan = make_plan(program, variant)

    gen_source = FortranGenerator(plan).generate_module()
    gen_parsed = {"generated.f90": parse_source(gen_source)}
    report = lint_parsed(gen_parsed, legacy=legacy,
                         label=f"{case} {variant}", dataflow=dataflow)
    crosscheck_plan(plan, collect_units(gen_parsed["generated.f90"]), report)

    if spliced:
        result = splice_into_codebase(plan, legacy, names,
                                      add_missing=add_missing)
        sources = dict(result.files)
        if result.support_source:
            sources["glaf_support_module.f90"] = result.support_source
        parsed = {f: parse_source(src) for f, src in sorted(sources.items())}
        spliced_report = lint_parsed(parsed, legacy=legacy,
                                     dataflow=dataflow)
        all_units = {}
        for out in parsed.values():
            all_units.update(collect_units(out))
        crosscheck_plan(plan, all_units, spliced_report)
        report.merge(spliced_report)
    return report


def lint_levels(levels: list[str] | None = None,
                cases: tuple[str, ...] = ("sarb", "fun3d"),
                dataflow: bool = False) -> LintReport:
    """Lint every case at every requested level; one merged deduplicated
    report.

    A finding that recurs at several pruning levels (the same rule on
    the same unit and line) is reported once, with every level it
    appeared at recorded in :attr:`LintFinding.levels` — so ``--json``
    consumers see one entry with ``levels: [...]`` instead of four
    copies.
    """
    from dataclasses import replace

    levels = levels or sorted(LEVELS)
    combined = LintReport(label=f"{'+'.join(cases)} @ {','.join(levels)}")
    order: list[tuple[str, str, int]] = []
    first: dict[tuple[str, str, int], "LintFinding"] = {}
    seen_levels: dict[tuple[str, str, int], list[str]] = {}
    for case in cases:
        for level in levels:
            report = lint_case(case, LEVELS[level], dataflow=dataflow)
            combined.units += report.units
            combined.regions += report.regions
            for f in report.findings:
                key = (f.rule, f.unit, f.line)
                if key not in first:
                    first[key] = f
                    seen_levels[key] = []
                    order.append(key)
                if level not in seen_levels[key]:
                    seen_levels[key].append(level)
    for key in order:
        combined.findings.append(
            replace(first[key], levels=tuple(seen_levels[key])))
    return combined
