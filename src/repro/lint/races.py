"""Static race detection over parsed FORTRAN parallel regions.

The analysis walks each ``!$OMP PARALLEL DO`` region (the parser attaches
the directive to its loop, see :func:`repro.fortranlib.parser._attach_omp`)
and classifies every write:

* a write to a *privatized* name (PRIVATE / FIRSTPRIVATE / REDUCTION /
  THREADPRIVATE / a parallel or sequential DO index) is thread-local;
* a write guarded by ``!$OMP ATOMIC`` (next assignment) or inside an
  ``!$OMP CRITICAL`` block is serialized;
* an *array* write is race-free only when every parallel index **pins**
  a subscript dimension: the dimension is affine, the index appears with
  nonzero coefficient, no other loop variable appears in it, and any
  symbolic offset is loop-invariant (neither privatized nor written in
  the region) — then distinct threads touch distinct elements;
* everything else is a shared write → ``race-shared-write``.

Clause-consistency checks ride along on the same walk: conflicting
data-sharing clauses, non-private inner DO indices, COLLAPSE over a nest
that is too shallow or non-rectangular, and clause variables that name
nothing visible in the unit.

**Known limitation** (documented in ``docs/STATIC_ANALYSIS.md``): ``CALL``
statements are opaque — callee side effects are not modeled, so a callee
writing shared state races undetected.  The GLAF generator never emits a
racing CALL (factored-out loop bodies receive privatized indices), but
hand-written legacy regions can fool this analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fortranlib.ast import (
    FAllocate,
    FAssign,
    FBin,
    FCall,
    FDeallocate,
    FDo,
    FDoWhile,
    FExpr,
    FFieldRef,
    FIf,
    FIndexed,
    FNum,
    FOmpDirective,
    FSubprogram,
    FUn,
    FVar,
)
from .findings import LintFinding, LintReport
from .symbols import UnitSymbols

__all__ = ["lint_unit_body", "linear_form"]


def linear_form(e: FExpr) -> tuple[dict[str, float], float] | None:
    """``e`` as ``sum(coeff * var) + const``, or None if not affine.

    Any array reference, field access, call, or nonlinear operator makes
    the whole expression non-affine (conservatively non-pinning).
    """
    if isinstance(e, FNum):
        return {}, float(e.value)
    if isinstance(e, FVar):
        return {e.name.lower(): 1.0}, 0.0
    if isinstance(e, FUn):
        inner = linear_form(e.operand)
        if inner is None:
            return None
        coeffs, const = inner
        if e.op == "neg":
            return {v: -c for v, c in coeffs.items()}, -const
        if e.op == "pos":
            return coeffs, const
        return None
    if isinstance(e, FBin):
        left = linear_form(e.left)
        right = linear_form(e.right)
        if left is None or right is None:
            return None
        (lc, lk), (rc, rk) = left, right
        if e.op == "+":
            out = dict(lc)
            for v, c in rc.items():
                out[v] = out.get(v, 0.0) + c
            return out, lk + rk
        if e.op == "-":
            out = dict(lc)
            for v, c in rc.items():
                out[v] = out.get(v, 0.0) - c
            return out, lk - rk
        if e.op == "*":
            if not lc:
                return {v: c * lk for v, c in rc.items()}, lk * rk
            if not rc:
                return {v: c * rk for v, c in lc.items()}, lk * rk
            return None
        return None
    return None


def _expr_vars(e: FExpr) -> set[str]:
    """All variable names mentioned anywhere in ``e`` (subscripts included)."""
    out: set[str] = set()
    stack = [e]
    while stack:
        x = stack.pop()
        if isinstance(x, FVar):
            out.add(x.name.lower())
        elif isinstance(x, FUn):
            stack.append(x.operand)
        elif isinstance(x, FBin):
            stack.extend((x.left, x.right))
        elif isinstance(x, FIndexed):
            stack.append(x.base)
            stack.extend(x.args)
        elif isinstance(x, FFieldRef):
            stack.append(x.base)
    return out


@dataclass
class _Target:
    """A flattened assignment target: root name, spelling, subscripts."""

    root: str                      # lowercased root variable
    spelled: str                   # e.g. "fin%temp" (no subscripts)
    dims: list[FExpr] = field(default_factory=list)
    has_field: bool = False


def _flatten_target(e: FExpr) -> _Target | None:
    dims: list[FExpr] = []
    fields: list[str] = []
    while True:
        if isinstance(e, FIndexed):
            dims = list(e.args) + dims
            e = e.base
        elif isinstance(e, FFieldRef):
            fields.insert(0, e.field.lower())
            e = e.base
        elif isinstance(e, FVar):
            root = e.name.lower()
            spelled = "%".join([root] + fields)
            return _Target(root=root, spelled=spelled, dims=dims,
                           has_field=bool(fields))
        else:
            return None


# ----------------------------------------------------------------------
# region analysis
# ----------------------------------------------------------------------

class _Region:
    def __init__(self, loop: FDo, syms: UnitSymbols, report: LintReport):
        self.loop = loop
        self.d = loop.omp
        self.syms = syms
        self.report = report
        self.unit = syms.unit
        # Clause sets (full spellings, lowercased).
        self.private = {v.lower() for v in self.d.private}
        self.firstprivate = {v.lower() for v in self.d.firstprivate}
        self.reduction_vars = {v.lower() for _, v in self.d.reductions}
        self.clause_spellings = (self.private | self.firstprivate
                                 | self.reduction_vars)
        self.parallel_vars: set[str] = set()
        self.seq_loop_vars: set[str] = set()
        self.writes_all: set[str] = set()
        self._reported: set[tuple[str, str]] = set()

    # -- findings ------------------------------------------------------
    def _emit(self, rule: str, line: int, message: str, *,
              variable: str = "", channel: str = "") -> None:
        key = (rule, variable or message)
        if key in self._reported:      # one finding per (rule, var) region
            return
        self._reported.add(key)
        self.report.add(LintFinding(rule=rule, unit=self.unit, line=line,
                                    message=message, variable=variable,
                                    channel=channel))

    # -- clause checks -------------------------------------------------
    def check_clauses(self) -> None:
        d, line = self.d, self.d.line
        pairs = (
            ("PRIVATE", self.private, "FIRSTPRIVATE", self.firstprivate),
            ("PRIVATE", self.private, "REDUCTION", self.reduction_vars),
            ("FIRSTPRIVATE", self.firstprivate, "REDUCTION",
             self.reduction_vars),
        )
        for name_a, set_a, name_b, set_b in pairs:
            for v in sorted(set_a & set_b):
                self._emit("clause-conflict", line,
                           f"'{v}' appears in both {name_a} and {name_b}",
                           variable=v)
        if self.syms.conclusive:
            for v in sorted(self.clause_spellings):
                root = v.split("%", 1)[0]
                if not self.syms.visible(root):
                    self._emit("unknown-clause-var", line,
                               f"clause names '{v}' but no such variable "
                               f"is visible in {self.unit}", variable=v)
        _ = d

    def check_collapse(self) -> list[FDo]:
        """Validate the COLLAPSE nest; returns the collapsed loops."""
        n = self.d.collapse
        loops = [self.loop]
        cur = self.loop
        for depth in range(2, n + 1):
            inner = [s for s in cur.body
                     if not isinstance(s, FOmpDirective)]
            if len(inner) != 1 or not isinstance(inner[0], FDo):
                self._emit("collapse-too-deep", self.d.line,
                           f"COLLAPSE({n}) but the DO nest is perfectly "
                           f"nested only {depth - 1} deep",
                           variable=self.loop.var)
                break
            cur = inner[0]
            outer_vars = {L.var.lower() for L in loops}
            for bound in (cur.start, cur.end, cur.step):
                if bound is None:
                    continue
                bad = _expr_vars(bound) & outer_vars
                if bad:
                    self._emit(
                        "collapse-non-rectangular", cur.line,
                        f"bound of collapsed loop '{cur.var}' references "
                        f"outer collapsed index "
                        f"'{', '.join(sorted(bad))}'",
                        variable=cur.var)
            loops.append(cur)
        return loops

    # -- write collection ----------------------------------------------
    def scan(self, stmts: list) -> None:
        """Pass 1: every written root name and every DO index in the region."""
        for s in stmts:
            if isinstance(s, FAssign):
                t = _flatten_target(s.target)
                if t is not None:
                    self.writes_all.add(t.root)
            elif isinstance(s, FDo):
                self.seq_loop_vars.add(s.var.lower())
                self.writes_all.add(s.var.lower())
                self.scan(s.body)
            elif isinstance(s, FDoWhile):
                self.scan(s.body)
            elif isinstance(s, FIf):
                for _, body in s.branches:
                    self.scan(body)
            elif isinstance(s, (FAllocate, FDeallocate)):
                for item in s.items:
                    ref = item[0] if isinstance(item, tuple) else item
                    t = _flatten_target(ref)
                    if t is not None:
                        self.writes_all.add(t.root)

    # -- classification ------------------------------------------------
    def classify(self, stmts: list, *, in_critical: bool) -> None:
        critical = in_critical
        atomic_next = False
        for s in stmts:
            if isinstance(s, FOmpDirective):
                if s.kind == "atomic":
                    atomic_next = True
                    continue
                if s.kind == "critical":
                    critical = True
                elif s.kind == "end_critical":
                    critical = in_critical
                continue
            protected = critical or atomic_next
            atomic_next = False
            if isinstance(s, FAssign):
                self._classify_write(s.target, s.line, protected)
            elif isinstance(s, FDo):
                v = s.var.lower()
                if (v not in self.clause_spellings
                        and v not in self.parallel_vars):
                    self._emit(
                        "loop-index-not-private", s.line,
                        f"inner DO index '{v}' is not named in any "
                        f"privatization clause", variable=v)
                self.classify(s.body, in_critical=critical)
            elif isinstance(s, FDoWhile):
                self.classify(s.body, in_critical=critical)
            elif isinstance(s, FIf):
                for _, body in s.branches:
                    self.classify(body, in_critical=critical)
            elif isinstance(s, (FAllocate, FDeallocate)):
                for item in s.items:
                    ref = item[0] if isinstance(item, tuple) else item
                    self._classify_write(ref, s.line, protected,
                                         allocation=True)
            elif isinstance(s, FCall):
                pass    # opaque: callee effects are not modeled (see above)

    def _privatized(self, t: _Target) -> bool:
        priv = (self.clause_spellings | self.parallel_vars
                | self.seq_loop_vars | self.syms.threadprivate)
        return t.root in priv or t.spelled in priv

    def _classify_write(self, target: FExpr, line: int, protected: bool,
                        *, allocation: bool = False) -> None:
        t = _flatten_target(target)
        if t is None:
            return
        if self._privatized(t) or protected:
            return
        channel = self.syms.channel(t.root)
        if t.has_field:
            channel = f"{channel}, TYPE element"
        if not t.dims or allocation:
            what = "ALLOCATE/DEALLOCATE of" if allocation else "write to"
            self._emit(
                "race-shared-write", line,
                f"unprotected {what} shared scalar '{t.spelled}' inside "
                f"a parallel region",
                variable=t.spelled, channel=channel)
            return
        loop_vars = self.parallel_vars | self.seq_loop_vars
        for p in sorted(self.parallel_vars):
            if not self._pinned(p, t.dims, loop_vars):
                self._emit(
                    "race-shared-write", line,
                    f"write to shared array '{t.spelled}' does not pin "
                    f"parallel index '{p}' to any subscript dimension",
                    variable=t.spelled, channel=channel)
                return

    def _pinned(self, p: str, dims: list[FExpr],
                loop_vars: set[str]) -> bool:
        for dim in dims:
            lin = linear_form(dim)
            if lin is None:
                continue
            coeffs, _const = lin
            if not coeffs.get(p):
                continue
            ok = True
            for v, c in coeffs.items():
                if v == p or not c:
                    continue
                if v in loop_vars:
                    ok = False          # another loop index varies here
                    break
                if v in self.clause_spellings or v in self.writes_all:
                    ok = False          # offset is not loop-invariant
                    break
            if ok:
                return True
        return False

    # -- driver --------------------------------------------------------
    def run(self) -> None:
        self.check_clauses()
        loops = self.check_collapse()
        self.parallel_vars = {L.var.lower() for L in loops}
        self.scan(self.loop.body)
        self.seq_loop_vars -= self.parallel_vars
        self.classify(self.loop.body, in_critical=False)


def _walk(stmts: list, syms: UnitSymbols, report: LintReport) -> None:
    for s in stmts:
        if isinstance(s, FDo):
            if s.omp is not None and s.omp.kind == "parallel_do":
                report.regions += 1
                _Region(s, syms, report).run()
            _walk(s.body, syms, report)
        elif isinstance(s, FDoWhile):
            _walk(s.body, syms, report)
        elif isinstance(s, FIf):
            for _, body in s.branches:
                _walk(body, syms, report)


def lint_unit_body(sub: FSubprogram, syms: UnitSymbols,
                   report: LintReport) -> None:
    """Analyze every parallel region in one subprogram."""
    report.units += 1
    _walk(sub.body, syms, report)
