"""Finding model and rule registry for the parallel-correctness linter.

Every check the linter performs is registered here as a :class:`LintRule`
with a one-line summary and its *failure mode* — what goes wrong at run
time when code violating the rule ships.  ``docs/STATIC_ANALYSIS.md``
documents the same registry and a docs-consistency test keeps the two in
sync, so a new rule cannot land undocumented.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LintRule", "RULES", "LintFinding", "LintReport"]


@dataclass(frozen=True)
class LintRule:
    """One registered lint check."""

    id: str
    summary: str
    failure_mode: str


RULES: dict[str, LintRule] = {r.id: r for r in (
    LintRule(
        id="race-shared-write",
        summary="a shared variable is written inside a parallel region "
                "without PRIVATE/FIRSTPRIVATE/REDUCTION/ATOMIC/CRITICAL "
                "protection and without every parallel index pinning a "
                "subscript dimension",
        failure_mode="two threads update the same storage location; "
                     "results become nondeterministic and silently wrong",
    ),
    LintRule(
        id="clause-conflict",
        summary="a variable appears in more than one data-sharing clause "
                "of the same directive (e.g. both PRIVATE and REDUCTION)",
        failure_mode="the OpenMP runtime rejects the directive or picks "
                     "one clause arbitrarily; behavior differs by compiler",
    ),
    LintRule(
        id="loop-index-not-private",
        summary="an inner sequential DO index inside a parallel region is "
                "not privatized by any clause",
        failure_mode="threads overwrite each other's loop counter; inner "
                     "loops skip or repeat iterations",
    ),
    LintRule(
        id="collapse-too-deep",
        summary="COLLAPSE(n) names more loops than the perfectly-nested "
                "depth of the annotated DO nest",
        failure_mode="the collapsed iteration space is ill-formed; "
                     "compilers reject the construct or collapse garbage",
    ),
    LintRule(
        id="collapse-non-rectangular",
        summary="an inner loop bound inside a COLLAPSE nest depends on an "
                "outer collapsed index (non-rectangular iteration space)",
        failure_mode="OpenMP requires rectangular collapse spaces; the "
                     "linearized schedule visits wrong index tuples",
    ),
    LintRule(
        id="unknown-clause-var",
        summary="a directive clause names a variable that is not visible "
                "in the enclosing subprogram",
        failure_mode="the clause silently protects nothing (typo'd name), "
                     "leaving the intended variable shared",
    ),
    LintRule(
        id="plan-mismatch",
        summary="the directives found in emitted text differ from what the "
                "ParallelPlan and pruning variant prescribe (missing or "
                "spurious directive, or a diverging clause set)",
        failure_mode="the shipped code no longer matches the analysis that "
                     "justified it; correctness arguments are void",
    ),
    LintRule(
        id="use-before-def",
        summary="a local scalar (or the function result) may be read on "
                "some path before anything assigns it, per the "
                "interprocedural may-uninitialized fixpoint",
        failure_mode="the read yields whatever the stack held; results "
                     "vary run to run and differ under parallel execution",
    ),
    LintRule(
        id="dead-store",
        summary="a store to a local whose value no later-reachable read "
                "consumes (backward liveness), or a local array that is "
                "written but never read anywhere in the unit",
        failure_mode="wasted work at best; at worst the store was meant "
                     "to feed a read that binds to something else entirely",
    ),
    LintRule(
        id="possible-oob",
        summary="interval analysis proves an array subscript can escape a "
                "statically known extent (or go below the 1-based lower "
                "bound) on some feasible path",
        failure_mode="out-of-bounds access corrupts neighboring storage "
                     "or traps; under OpenMP the corruption is racy too",
    ),
    LintRule(
        id="intent-violation",
        summary="a declared INTENT contract is broken: an INTENT(IN) "
                "dummy is written, an INTENT(OUT) dummy is read before "
                "the unit assigns it, or a call passes a non-variable "
                "actual to an INTENT(OUT) dummy",
        failure_mode="compilers may cache INTENT(IN) actuals or skip "
                     "copy-back; the violating access reads or loses data",
    ),
    LintRule(
        id="const-false-guard",
        summary="a conditional guarding a parallel region folds to a "
                "constant .false. under interval analysis",
        failure_mode="the parallel region is dead code; the speedup the "
                     "plan promised for it never materializes",
    ),
)}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    rule: str                 # a RULES key
    unit: str                 # enclosing subprogram (or module) name
    line: int                 # 1-based line in the linted source
    message: str
    variable: str = ""        # offending variable, when there is one
    channel: str = ""         # sharing channel: local / dummy / common /
                              # use'd module / host module / type element
    levels: tuple[str, ...] = ()   # pruning variants the finding appears
                                   # at, filled by lint_levels dedup

    def to_json(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule, "unit": self.unit, "line": self.line,
            "message": self.message, "variable": self.variable,
            "channel": self.channel,
        }
        if self.levels:
            out["levels"] = list(self.levels)
        return out


@dataclass
class LintReport:
    """All findings from linting one source text (or a batch of them)."""

    findings: list[LintFinding] = field(default_factory=list)
    units: int = 0            # subprograms analyzed
    regions: int = 0          # parallel regions analyzed
    label: str = ""           # what was linted, for rendering

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, finding: LintFinding) -> None:
        self.findings.append(finding)
        self._record(finding)

    def merge(self, other: "LintReport") -> None:
        for f in other.findings:
            self.findings.append(f)
        self.units += other.units
        self.regions += other.regions

    @staticmethod
    def _record(f: LintFinding) -> None:
        """Emit the finding as a ``lint:*`` DecisionLog event (no-op unless
        observation is active), so profiled runs show linter verdicts next
        to the parallelize/pruning decisions that produced the code."""
        from ..observe import get_decisions

        dl = get_decisions()
        if dl.enabled:
            dl.record(f"lint:{f.rule}", f.unit, -1, f.variable or f.channel,
                      "violation", reasons=(f.message,), line=f.line)

    def render(self) -> str:
        head = f"lint {self.label}: " if self.label else "lint: "
        head += (f"{self.units} unit(s), {self.regions} parallel region(s), "
                 f"{len(self.findings)} finding(s)")
        lines = [head]
        for f in self.findings:
            where = f"{f.unit}:{f.line}"
            chan = f" [{f.channel}]" if f.channel else ""
            lines.append(f"  {f.rule:24s} {where:28s} {f.message}{chan}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "schema": "repro.lint/v1",
            "label": self.label,
            "ok": self.ok,
            "units": self.units,
            "regions": self.regions,
            "findings": [f.to_json() for f in self.findings],
        }
