"""Seeded mutation self-test: can the linter catch known-bad code?

A linter that has never seen a bug is untrustworthy.  This module drives
the fault-injection registry to corrupt one generated module per run,
then lints the mutant and demands a nonzero finding count.  Two sites
feed the corpus:

* ``codegen.fortran.omp`` — directive-clause mutants for the structural
  rules: drop a PRIVATE, drop a REDUCTION, widen a COLLAPSE, suppress a
  directive, or conjure one onto a serial loop;
* ``codegen.fortran.body`` — statement mutants for the dataflow rules:
  delete an initialization (use-before-def), widen a literal DO bound
  past an array edge (possible-oob), store to a never-read array
  (dead-store), or flip a scalar INTENT(IN) to OUT (intent-violation).

The corpus spans both case studies and several pruning levels;
``repro lint --selftest`` (and CI) fail unless **every** mutant both
fires and is caught.

A dropped PRIVATE on a *collapsed* index is semantically harmless (the
index is predetermined private), so some mutants are detectable only by
the plan-vs-text cross-check — which is why the cross-check is part of
the linter, not an optional extra.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..robust.faults import FaultPlan, FaultSpec, fault_injection
from .findings import LintReport

__all__ = ["Mutant", "MutantResult", "MUTANTS", "run_mutation_selftest"]


@dataclass(frozen=True)
class Mutant:
    """One planned corruption of a generated module."""

    id: str
    case: str                     # 'sarb' | 'fun3d'
    variant: str                  # pruning-variant name
    kind: str                     # a fault kind the site supports
    function: str                 # match: only fire in this function
    serial_target: bool = False   # match loops the plan left serial
    site: str = "codegen.fortran.omp"

    def spec(self) -> FaultSpec:
        match: dict[str, object] = {"function": self.function}
        if self.serial_target:
            match["parallel"] = False
        return FaultSpec(site=self.site, kind=self.kind, match=match)


# Dataflow mutants ride the codegen.fortran.body site.
_BODY = "codegen.fortran.body"

# The corpus: distinct mutants covering every fault kind of both sites,
# both case studies, and more than one pruning level.
MUTANTS: tuple[Mutant, ...] = (
    Mutant("sarb-drop-private-lw", "sarb", "GLAF-parallel v0",
           "drop-private", "lw_spectral_integration"),
    Mutant("sarb-drop-private-lwent", "sarb", "GLAF-parallel v0",
           "drop-private", "longwave_entropy_model"),
    Mutant("fun3d-drop-private-edge", "fun3d", "GLAF-parallel v0",
           "drop-private", "edge_loop"),
    Mutant("fun3d-drop-private-cell", "fun3d", "GLAF-parallel v0",
           "drop-private", "cell_loop"),
    Mutant("sarb-drop-reduction-lw", "sarb", "GLAF-parallel v0",
           "drop-reduction", "lw_spectral_integration"),
    Mutant("sarb-drop-reduction-lwent-v3", "sarb", "GLAF-parallel v3",
           "drop-reduction", "longwave_entropy_model"),
    Mutant("fun3d-drop-reduction-cell", "fun3d", "GLAF-parallel v0",
           "drop-reduction", "cell_loop"),
    Mutant("fun3d-drop-reduction-cell-v3", "fun3d", "GLAF-parallel v3",
           "drop-reduction", "cell_loop"),
    Mutant("sarb-widen-collapse-lw", "sarb", "GLAF-parallel v0",
           "widen-collapse", "lw_spectral_integration"),
    Mutant("fun3d-widen-collapse-cell", "fun3d", "GLAF-parallel v0",
           "widen-collapse", "cell_loop"),
    Mutant("sarb-drop-directive-sw", "sarb", "GLAF-parallel v0",
           "drop-directive", "sw_spectral_integration"),
    Mutant("fun3d-drop-directive-edge", "fun3d", "GLAF-parallel v0",
           "drop-directive", "edge_loop"),
    Mutant("sarb-spurious-adjust2", "sarb", "GLAF-parallel v0",
           "spurious-directive", "adjust2", serial_target=True),
    Mutant("fun3d-spurious-ioff", "fun3d", "GLAF-parallel v0",
           "spurious-directive", "ioff_search", serial_target=True),
    # -- dataflow mutants (codegen.fortran.body) -----------------------
    Mutant("fun3d-drop-init-edge", "fun3d", "GLAF-parallel v0",
           "drop-init", "edge_loop", site=_BODY),
    Mutant("fun3d-drop-init-cell", "fun3d", "GLAF-parallel v0",
           "drop-init", "cell_loop", site=_BODY),
    Mutant("fun3d-overrun-edge", "fun3d", "GLAF-parallel v0",
           "overrun-bound", "edge_loop", site=_BODY),
    Mutant("fun3d-overrun-edge-v3", "fun3d", "GLAF-parallel v3",
           "overrun-bound", "edge_loop", site=_BODY),
    Mutant("fun3d-dead-store-edge", "fun3d", "GLAF-parallel v0",
           "dead-store", "edge_loop", site=_BODY),
    Mutant("sarb-flip-intent-lw", "sarb", "GLAF-parallel v0",
           "flip-intent", "lw_spectral_integration", site=_BODY),
    Mutant("sarb-flip-intent-sw-v3", "sarb", "GLAF-parallel v3",
           "flip-intent", "sw_spectral_integration", site=_BODY),
    Mutant("fun3d-flip-intent-cell", "fun3d", "GLAF-parallel v0",
           "flip-intent", "cell_loop", site=_BODY),
)


@dataclass
class MutantResult:
    """Outcome of one mutant run."""

    mutant: Mutant
    fired: bool                   # the fault transform actually applied
    caught: bool                  # the linter reported >= 1 finding
    fault_detail: str
    rules: tuple[str, ...]        # which lint rules tripped

    @property
    def ok(self) -> bool:
        return self.fired and self.caught


def run_mutant(mutant: Mutant, *, seed: int = 0
               ) -> tuple[MutantResult, LintReport]:
    """Generate the case's module with the mutation armed, then lint it."""
    from ..codegen.fortran import FortranGenerator
    from ..optimize.plan import make_plan
    from .runner import lint_text

    if mutant.case == "sarb":
        from ..sarb.kernels import build_sarb_program

        program = build_sarb_program()
    else:
        from ..fun3d.kernels import build_fun3d_program

        program = build_fun3d_program()
    plan = make_plan(program, mutant.variant)
    with fault_injection(FaultPlan([mutant.spec()], seed=seed)) as fp:
        source = FortranGenerator(plan).generate_module()
    fired = bool(fp.fired)
    report = lint_text(source, plan=plan,
                       label=f"mutant {mutant.id}", dataflow=True)
    result = MutantResult(
        mutant=mutant,
        fired=fired,
        caught=fired and not report.ok,
        fault_detail=fp.fired[0].detail if fp.fired else "did not fire",
        rules=tuple(sorted({f.rule for f in report.findings})),
    )
    return result, report


def run_mutation_selftest(
    *, seed: int = 0, mutants: tuple[Mutant, ...] | None = None
) -> list[MutantResult]:
    """Run the corpus (or a subset); callers assert ``all(r.ok)``."""
    return [run_mutant(m, seed=seed)[0] for m in (mutants or MUTANTS)]
