"""Plan-vs-text cross-check: do the emitted directives match the plan?

Race analysis asks "is this directive *safe*?"; the cross-check asks "is
this directive *the one the pipeline decided on*?".  It re-derives the
expected ``!$OMP PARALLEL DO`` clause set for every loop step straight
from :func:`repro.codegen.fortran.directive_for_step` (the same function
codegen calls), parses the emitted or spliced text, and diffs the two.
A dropped PRIVATE on a collapsed index is semantically harmless — no race
— but it still means the text no longer matches the analysis; only this
check catches that class of corruption.

Mismatches are reported as ``plan-mismatch`` findings, which
:meth:`repro.lint.findings.LintReport.add` also records as ``lint:*``
DecisionLog events when observation is active.
"""

from __future__ import annotations

from ..codegen.fortran import directive_for_step
from ..fortranlib.ast import FDo, FSourceFile, FSubprogram
from .findings import LintFinding, LintReport

__all__ = ["crosscheck_plan", "collect_units"]


def collect_units(out: FSourceFile) -> dict[str, FSubprogram]:
    """All subprograms in a parsed file, keyed by lowercase name."""
    units: dict[str, FSubprogram] = {}
    subs = list(out.subprograms)
    for mod in out.modules:
        subs.extend(mod.subprograms)
    for prog in out.programs:
        subs.extend(prog.subprograms)
    for sub in subs:
        units[sub.name.lower()] = sub
    return units


def _norm_directive(d) -> tuple[frozenset, frozenset, frozenset, int]:
    """Case-insensitive clause fingerprint of a directive (codegen
    :class:`~repro.codegen.omp.OmpDirective` or parsed
    :class:`~repro.fortranlib.ast.FOmpDirective` — both carry the same
    ``private``/``firstprivate``/``reductions``/``collapse`` fields)."""
    reds = frozenset((op.upper(), var.lower()) for op, var in d.reductions)
    return (
        frozenset(v.lower() for v in d.private),
        frozenset(v.lower() for v in d.firstprivate),
        reds,
        int(d.collapse),
    )


def _diff_clauses(expected, actual) -> list[str]:
    (ep, efp, er, ec) = _norm_directive(expected)
    (ap, afp, ar, ac) = _norm_directive(actual)
    problems: list[str] = []

    def diff_set(label: str, want: frozenset, have: frozenset,
                 fmt=lambda v: v) -> None:
        for v in sorted(want - have):
            problems.append(f"missing {label}({fmt(v)})")
        for v in sorted(have - want):
            problems.append(f"unexpected {label}({fmt(v)})")

    diff_set("PRIVATE", ep, ap)
    diff_set("FIRSTPRIVATE", efp, afp)
    diff_set("REDUCTION", er, ar, fmt=lambda r: f"{r[0]}:{r[1]}")
    if ec != ac:
        problems.append(f"COLLAPSE is {ac}, plan says {ec}")
    return problems


def crosscheck_plan(plan, parsed_units: dict[str, FSubprogram],
                    report: LintReport) -> None:
    """Diff directives in ``parsed_units`` against what ``plan`` expects.

    Units in ``parsed_units`` with no counterpart in the plan's program
    (surrounding legacy subroutines in a spliced codebase) are skipped;
    program functions absent from the text are skipped too, so the same
    check serves both whole generated modules and partial splices.
    """
    for fn in plan.program.functions():
        sub = parsed_units.get(fn.name.lower())
        if sub is None:
            continue
        loop_steps = [i for i, st in enumerate(fn.steps) if st.is_loop]
        top_dos = [s for s in sub.body if isinstance(s, FDo)]
        if len(top_dos) != len(loop_steps):
            report.add(LintFinding(
                rule="plan-mismatch", unit=fn.name, line=sub.line,
                message=(f"plan has {len(loop_steps)} loop step(s) but the "
                         f"emitted unit has {len(top_dos)} top-level DO "
                         f"loop(s)")))
            continue
        for do, idx in zip(top_dos, loop_steps):
            expected = directive_for_step(plan, fn, idx)
            actual = do.omp
            step_name = fn.steps[idx].name
            if expected is None and actual is None:
                continue
            if expected is None:
                report.add(LintFinding(
                    rule="plan-mismatch", unit=fn.name, line=do.line,
                    message=(f"step '{step_name}' carries an !$OMP PARALLEL "
                             f"DO the plan does not prescribe")))
                continue
            if actual is None:
                report.add(LintFinding(
                    rule="plan-mismatch", unit=fn.name, line=do.line,
                    message=(f"step '{step_name}' is missing the !$OMP "
                             f"PARALLEL DO the plan prescribes")))
                continue
            for problem in _diff_clauses(expected, actual):
                report.add(LintFinding(
                    rule="plan-mismatch", unit=fn.name, line=do.line,
                    message=f"step '{step_name}': {problem}"))
